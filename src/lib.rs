//! # abr-unmuxed — facade crate
//!
//! Reproduction of *"ABR Streaming with Separate Audio and Video Tracks:
//! Measurements and Best Practices"* (Qin, Sen & Wang, CoNEXT 2019).
//!
//! This crate re-exports the workspace's building blocks under one roof and
//! hosts the runnable examples (`examples/`) and cross-crate integration
//! tests (`tests/`). See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`media`] | `abr-media` | tracks, ladders, Table-1 content, combinations |
//! | [`manifest`] | `abr-manifest` | DASH MPD + HLS playlist models and text formats |
//! | [`event`] | `abr-event` | virtual time, event queue, deterministic RNG |
//! | [`net`] | `abr-net` | bandwidth traces and the fluid bottleneck link |
//! | [`httpsim`] | `abr-httpsim` | origin server, byte ranges, CDN cache model |
//! | [`player`] | `abr-player` | buffers, playback engine, streaming session |
//! | [`core`] | `abr-core` | bandwidth estimators and ABR policies |
//! | [`qoe`] | `abr-qoe` | QoE metrics and session scoring |
//! | [`obs`] | `abr-obs` | event tracing, metrics, JSONL/Chrome exporters |

#![forbid(unsafe_code)]

pub use abr_core as core;
pub use abr_event as event;
pub use abr_httpsim as httpsim;
pub use abr_manifest as manifest;
pub use abr_media as media;
pub use abr_net as net;
pub use abr_obs as obs;
pub use abr_player as player;
pub use abr_qoe as qoe;
