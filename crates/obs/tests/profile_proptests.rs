//! Property tests for the span profiler's structural invariants.
//!
//! Guards are RAII values, so user code can drop them in any order —
//! including dropping an outer guard while inner guards are still alive
//! (the outer drop force-closes the inner frames, and the stale inner
//! drops become no-ops). Whatever order the guards die in, the reported
//! tree must stay well-formed:
//!
//! * every span that was entered is counted exactly once,
//! * `total_ns == self_ns + Σ children.total_ns` at every node,
//! * the duration histogram of a node holds exactly `count` samples,
//! * root spans never account for more time than the profiler's wall.

use std::rc::Rc;

use abr_obs::{ProfileReport, Profiler, SpanGuard, SpanNode};
use proptest::prelude::*;

const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// One step of a random guard lifecycle: open a new span (nested under
/// whatever is innermost), or drop one of the guards we still hold —
/// possibly an outer one, forcing the out-of-order close path.
#[derive(Debug, Clone)]
enum Op {
    Enter(usize),
    DropHeld(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..2, 0..NAMES.len(), 0usize..1024).prop_map(|(kind, name, pick)| {
        if kind == 0 {
            Op::Enter(name)
        } else {
            Op::DropHeld(pick)
        }
    })
}

fn check_node(node: &SpanNode) -> u64 {
    let child_total: u64 = node.children.iter().map(check_node).sum();
    assert_eq!(
        node.total_ns,
        node.self_ns + child_total,
        "span {}: total != self + children",
        node.name
    );
    assert_eq!(
        node.durations.count, node.count,
        "span {}: histogram sample count != span count",
        node.name
    );
    assert!(
        node.count > 0,
        "span {} reported but never closed",
        node.name
    );
    node.total_ns
}

fn check_report(report: &ProfileReport, entered: u64) {
    let mut counted = 0u64;
    let mut root_total = 0u64;
    for root in &report.roots {
        root_total += check_node(root);
    }
    for (_, _, node) in report.flatten() {
        counted += node.count;
    }
    assert_eq!(counted, entered, "every entered span closes exactly once");
    assert!(
        root_total <= report.wall_ns,
        "roots account for {} ns > {} ns wall",
        root_total,
        report.wall_ns
    );
}

proptest! {
    #[test]
    fn arbitrary_guard_drop_order_yields_well_formed_tree(
        ops in proptest::collection::vec(op_strategy(), 1..64)
    ) {
        let profiler = Rc::new(Profiler::new());
        let mut held: Vec<SpanGuard> = Vec::new();
        let mut entered = 0u64;
        for op in ops {
            match op {
                Op::Enter(name) => {
                    held.push(profiler.span(NAMES[name]));
                    entered += 1;
                }
                Op::DropHeld(i) => {
                    if !held.is_empty() {
                        // Dropping out of stack order on purpose: an
                        // early position force-closes everything opened
                        // after it; later guards become stale no-ops.
                        held.remove(i % held.len());
                    }
                }
            }
        }
        drop(held);
        check_report(&profiler.report(), entered);
    }

    #[test]
    fn merged_reports_preserve_the_invariants(
        ops_a in proptest::collection::vec(op_strategy(), 1..32),
        ops_b in proptest::collection::vec(op_strategy(), 1..32),
    ) {
        let mut entered = 0u64;
        let mut merged = ProfileReport::default();
        for ops in [ops_a, ops_b] {
            let profiler = Rc::new(Profiler::new());
            let mut held: Vec<SpanGuard> = Vec::new();
            for op in ops {
                match op {
                    Op::Enter(name) => {
                        held.push(profiler.span(NAMES[name]));
                        entered += 1;
                    }
                    Op::DropHeld(i) => {
                        if !held.is_empty() {
                            held.remove(i % held.len());
                        }
                    }
                }
            }
            drop(held);
            merged.merge(&profiler.report());
        }
        check_report(&merged, entered);
    }
}
