//! # abr-obs — structured observability for the abr-unmuxed simulator
//!
//! Three layers, all optional at run time and free when disabled:
//!
//! * **Events** ([`event`]) — a typed vocabulary of simulator happenings
//!   (requests, transfers, cache lookups, estimate updates, policy
//!   decisions, buffer/stall/seek lifecycle), stamped with the simulated
//!   clock and the host wall clock.
//! * **Tracers** ([`tracer`]) — the [`Tracer`] sink trait, the
//!   zero-overhead [`NullTracer`], the in-memory [`RecordingTracer`], and
//!   the [`ObsHandle`] that instrumented code holds. A disabled handle
//!   costs one branch per site; event payloads are built lazily.
//! * **Metrics** ([`metrics`]) — a [`MetricsRegistry`] of counters, gauges
//!   and fixed-bucket histograms (cache hit/miss, link busy/idle time,
//!   bytes per flow, estimator updates, decision latency in host
//!   nanoseconds, pending-queue depth).
//! * **Profiling** ([`profile`]) — a hierarchical span profiler measuring
//!   where *host* time goes (engine dispatch per event class, policy
//!   evaluation, link advance, sweep-runner phases). RAII guards, a call
//!   tree keyed by `(parent, name)`, and mergeable [`ProfileReport`]
//!   snapshots; like the tracer, one branch per site when disabled.
//!
//! [`export`] renders recorded traces as JSONL (one event per line,
//! qlog-flavoured; parse it back with [`export::from_jsonl`]) or as a
//! Chrome `trace_event` document that Perfetto opens directly.

#![deny(missing_docs)]

pub mod event;
pub mod export;
pub mod metrics;
pub mod profile;
pub mod tracer;

pub use event::{Event, TracedEvent};
pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use profile::{ProfileReport, Profiler, SpanGuard, SpanNode};
pub use tracer::{HostStopwatch, NullTracer, ObsHandle, RecordingTracer, Tracer};
