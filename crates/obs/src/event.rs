//! The structured event vocabulary.
//!
//! Every observable state change in the simulator maps to one [`Event`]
//! variant. Events are *facts about the simulation*, stamped with the
//! simulated clock by the emitter and with the host wall clock by the
//! recording tracer — so a trace can both reconstruct a
//! `SessionLog` exactly and be opened in a host-time profiler.

use abr_event::time::{Duration, Instant};
use abr_media::track::{MediaType, TrackId};
use abr_media::units::{BitsPerSec, Bytes};

/// One structured observation from the simulator.
///
/// Variant granularity follows the qlog philosophy: each is a typed record
/// of a single protocol- or player-level happening, carrying enough payload
/// to reconstruct the session history without replaying the simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A session begins: identifies the policy and content shape.
    SessionStart {
        /// Name of the ABR policy driving the session.
        policy: String,
        /// Duration of one chunk.
        chunk_duration: Duration,
        /// Number of chunks per track.
        num_chunks: usize,
    },
    /// An HTTP-level request was handed to the link.
    RequestIssued {
        /// Link flow carrying the response body.
        flow: u64,
        /// Track the request is for (`None` for muxed/playlist bookkeeping
        /// where a single track does not apply).
        track: Option<TrackId>,
        /// Chunk index (`None` for playlist fetches).
        chunk: Option<usize>,
        /// Response body size.
        size: Bytes,
    },
    /// Periodic progress of an in-flight transfer (emitted at simulation
    /// boundaries while a flow is active).
    TransferProgress {
        /// The flow making progress.
        flow: u64,
        /// Bytes delivered so far.
        delivered: Bytes,
        /// Bytes still outstanding.
        remaining: Bytes,
        /// The per-flow share rate over the elapsed interval.
        rate: BitsPerSec,
    },
    /// A chunk transfer finished and was pushed into a buffer.
    TransferCompleted {
        /// The flow that completed.
        flow: u64,
        /// Track the chunk belongs to (video track for muxed segments).
        track: TrackId,
        /// Chunk index.
        chunk: usize,
        /// Transferred size.
        size: Bytes,
        /// When the request was issued.
        opened_at: Instant,
        /// The policy's bandwidth estimate after ingesting this transfer.
        estimate_after: Option<BitsPerSec>,
    },
    /// An edge-cache lookup was served.
    CacheLookup {
        /// Human-readable object key.
        object: String,
        /// Whether the object was already cached.
        hit: bool,
        /// Object size.
        size: Bytes,
    },
    /// A bandwidth estimator revised its estimate.
    EstimateUpdated {
        /// Estimate before the update (`None` if the estimator had no
        /// measured value yet).
        old: Option<BitsPerSec>,
        /// Estimate after the update.
        new: BitsPerSec,
        /// Aggregate bytes in the measurement window that drove the update.
        window_bytes: Bytes,
    },
    /// An ABR policy made a selection decision.
    PolicyDecision {
        /// Media type being decided.
        media: MediaType,
        /// Chunk index being decided.
        chunk: usize,
        /// Labels of the candidates the policy considered.
        candidates: Vec<String>,
        /// The track it chose.
        chosen: TrackId,
        /// Short human-readable rationale.
        reason: String,
    },
    /// The session committed a track selection for a chunk (one per media
    /// type; authoritative for log reconstruction).
    TrackSelected {
        /// Chunk index.
        chunk: usize,
        /// Selected track.
        track: TrackId,
        /// Declared (manifest) bitrate of that track.
        declared: BitsPerSec,
        /// True average bitrate of that track.
        avg_bitrate: BitsPerSec,
    },
    /// Buffer levels were sampled after a scheduling round.
    BufferStateChange {
        /// Audio buffer level.
        audio: Duration,
        /// Video buffer level.
        video: Duration,
    },
    /// Playback entered a rebuffering stall.
    StallBegin,
    /// Playback recovered from a stall.
    StallEnd,
    /// Startup completed; playback began.
    PlaybackStarted,
    /// The presentation played to its end.
    PlaybackEnded,
    /// The user seeked; playback stops until the buffer refills.
    SeekStarted {
        /// Playback position the seek left.
        from: Duration,
        /// Target position.
        to: Duration,
    },
    /// Playback resumed after a seek.
    SeekResumed,
    /// A media-playlist fetch completed.
    PlaylistFetch {
        /// Track whose playlist was fetched.
        track: TrackId,
        /// When the playlist request was issued.
        requested_at: Instant,
    },
    /// A live playlist-refresh timer fired and the session re-requested its
    /// media playlists (emitted by the engine's refresh-tick handler).
    PlaylistRefreshTick {
        /// Number of playlist refetches issued by this tick.
        refetched: usize,
    },
    /// The session ended (deadline, starvation, or playback end).
    SessionEnd,
}

impl Event {
    /// Stable snake_case name of this event (the `"name"` field in JSONL
    /// output and the event name in Chrome traces).
    pub fn name(&self) -> &'static str {
        match self {
            Event::SessionStart { .. } => "session_start",
            Event::RequestIssued { .. } => "request_issued",
            Event::TransferProgress { .. } => "transfer_progress",
            Event::TransferCompleted { .. } => "transfer_completed",
            Event::CacheLookup { .. } => "cache_lookup",
            Event::EstimateUpdated { .. } => "estimate_updated",
            Event::PolicyDecision { .. } => "policy_decision",
            Event::TrackSelected { .. } => "track_selected",
            Event::BufferStateChange { .. } => "buffer_state",
            Event::StallBegin => "stall_begin",
            Event::StallEnd => "stall_end",
            Event::PlaybackStarted => "playback_started",
            Event::PlaybackEnded => "playback_ended",
            Event::SeekStarted { .. } => "seek_started",
            Event::SeekResumed => "seek_resumed",
            Event::PlaylistFetch { .. } => "playlist_fetch",
            Event::PlaylistRefreshTick { .. } => "playlist_refresh_tick",
            Event::SessionEnd => "session_end",
        }
    }
}

/// An [`Event`] as captured by a recording tracer: stamped with a
/// monotonic sequence number, the simulated clock, and the host wall
/// clock (nanoseconds since the tracer was created).
#[derive(Debug, Clone, PartialEq)]
pub struct TracedEvent {
    /// Monotonic per-tracer sequence number (total order of emission).
    pub seq: u64,
    /// Simulated time the event happened at.
    pub at: Instant,
    /// Host wall-clock nanoseconds since the tracer started.
    pub wall_ns: u64,
    /// The event payload.
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_snake_case_and_distinct() {
        let events = [
            Event::StallBegin,
            Event::StallEnd,
            Event::PlaybackStarted,
            Event::PlaybackEnded,
            Event::SeekResumed,
            Event::SessionEnd,
        ];
        let names: Vec<&str> = events.iter().map(Event::name).collect();
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
        for n in names {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }
}
