//! Trace exporters: JSONL (qlog-flavoured) and Chrome `trace_event`.
//!
//! The JSONL form is one compact JSON object per line —
//! `{"seq":…,"time_us":…,"wall_ns":…,"name":…,"data":{…}}` — lossless
//! enough that `SessionLog::from_trace` (in `abr-player`) reconstructs the
//! session history from it. The Chrome form is a `{"traceEvents":[…]}`
//! document that Perfetto / `chrome://tracing` opens directly: transfers
//! become duration slices, stalls and seeks become begin/end pairs, and
//! buffer levels and bandwidth estimates become counter tracks.

use serde::{Deserialize, FromValueError, Map, Serialize, Value};

use abr_event::time::Instant;
use abr_media::track::TrackId;
use abr_media::units::{BitsPerSec, Bytes};

use crate::event::{Event, TracedEvent};

impl Serialize for Event {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("name".to_string(), Value::String(self.name().to_string()));
        map.insert("data".to_string(), event_data(self));
        Value::Object(map)
    }
}

impl Deserialize for Event {
    fn from_value(v: &Value) -> Result<Self, FromValueError> {
        let name = v["name"]
            .as_str()
            .ok_or_else(|| FromValueError::expected("event name string", &v["name"]))?;
        event_from(name, &v["data"])
    }
}

impl Serialize for TracedEvent {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("seq".to_string(), self.seq.to_value());
        map.insert("time_us".to_string(), self.at.as_micros().to_value());
        map.insert("wall_ns".to_string(), self.wall_ns.to_value());
        map.insert(
            "name".to_string(),
            Value::String(self.event.name().to_string()),
        );
        map.insert("data".to_string(), event_data(&self.event));
        Value::Object(map)
    }
}

impl Deserialize for TracedEvent {
    fn from_value(v: &Value) -> Result<Self, FromValueError> {
        let name = v["name"]
            .as_str()
            .ok_or_else(|| FromValueError::expected("event name string", &v["name"]))?;
        Ok(TracedEvent {
            seq: u64::from_value(&v["seq"])?,
            at: Instant::from_micros(u64::from_value(&v["time_us"])?),
            wall_ns: u64::from_value(&v["wall_ns"])?,
            event: event_from(name, &v["data"])?,
        })
    }
}

macro_rules! data {
    ($($key:literal : $val:expr),* $(,)?) => {{
        #[allow(unused_mut)]
        let mut map = Map::new();
        $( map.insert($key.to_string(), $val.to_value()); )*
        Value::Object(map)
    }};
}

fn event_data(event: &Event) -> Value {
    match event {
        Event::SessionStart {
            policy,
            chunk_duration,
            num_chunks,
        } => data! {
            "policy": policy, "chunk_duration_us": chunk_duration, "num_chunks": num_chunks,
        },
        Event::RequestIssued {
            flow,
            track,
            chunk,
            size,
        } => data! {
            "flow": flow, "track": track, "chunk": chunk, "size": size,
        },
        Event::TransferProgress {
            flow,
            delivered,
            remaining,
            rate,
        } => data! {
            "flow": flow, "delivered": delivered, "remaining": remaining, "rate": rate,
        },
        Event::TransferCompleted {
            flow,
            track,
            chunk,
            size,
            opened_at,
            estimate_after,
        } => data! {
            "flow": flow, "track": track, "chunk": chunk, "size": size,
            "opened_at_us": opened_at, "estimate_after": estimate_after,
        },
        Event::CacheLookup { object, hit, size } => data! {
            "object": object, "hit": hit, "size": size,
        },
        Event::EstimateUpdated {
            old,
            new,
            window_bytes,
        } => data! {
            "old": old, "new": new, "window_bytes": window_bytes,
        },
        Event::PolicyDecision {
            media,
            chunk,
            candidates,
            chosen,
            reason,
        } => data! {
            "media": media, "chunk": chunk, "candidates": candidates,
            "chosen": chosen, "reason": reason,
        },
        Event::TrackSelected {
            chunk,
            track,
            declared,
            avg_bitrate,
        } => data! {
            "chunk": chunk, "track": track, "declared": declared, "avg_bitrate": avg_bitrate,
        },
        Event::BufferStateChange { audio, video } => data! {
            "audio_us": audio, "video_us": video,
        },
        Event::SeekStarted { from, to } => data! { "from_us": from, "to_us": to },
        Event::PlaylistFetch {
            track,
            requested_at,
        } => data! {
            "track": track, "requested_at_us": requested_at,
        },
        Event::PlaylistRefreshTick { refetched } => data! { "refetched": refetched },
        Event::StallBegin
        | Event::StallEnd
        | Event::PlaybackStarted
        | Event::PlaybackEnded
        | Event::SeekResumed
        | Event::SessionEnd => data! {},
    }
}

fn event_from(name: &str, d: &Value) -> Result<Event, FromValueError> {
    Ok(match name {
        "session_start" => Event::SessionStart {
            policy: String::from_value(&d["policy"])?,
            chunk_duration: Deserialize::from_value(&d["chunk_duration_us"])?,
            num_chunks: usize::from_value(&d["num_chunks"])?,
        },
        "request_issued" => Event::RequestIssued {
            flow: u64::from_value(&d["flow"])?,
            track: Option::<TrackId>::from_value(&d["track"])?,
            chunk: Option::<usize>::from_value(&d["chunk"])?,
            size: Bytes::from_value(&d["size"])?,
        },
        "transfer_progress" => Event::TransferProgress {
            flow: u64::from_value(&d["flow"])?,
            delivered: Bytes::from_value(&d["delivered"])?,
            remaining: Bytes::from_value(&d["remaining"])?,
            rate: BitsPerSec::from_value(&d["rate"])?,
        },
        "transfer_completed" => Event::TransferCompleted {
            flow: u64::from_value(&d["flow"])?,
            track: TrackId::from_value(&d["track"])?,
            chunk: usize::from_value(&d["chunk"])?,
            size: Bytes::from_value(&d["size"])?,
            opened_at: Instant::from_value(&d["opened_at_us"])?,
            estimate_after: Option::<BitsPerSec>::from_value(&d["estimate_after"])?,
        },
        "cache_lookup" => Event::CacheLookup {
            object: String::from_value(&d["object"])?,
            hit: bool::from_value(&d["hit"])?,
            size: Bytes::from_value(&d["size"])?,
        },
        "estimate_updated" => Event::EstimateUpdated {
            old: Option::<BitsPerSec>::from_value(&d["old"])?,
            new: BitsPerSec::from_value(&d["new"])?,
            window_bytes: Bytes::from_value(&d["window_bytes"])?,
        },
        "policy_decision" => Event::PolicyDecision {
            media: Deserialize::from_value(&d["media"])?,
            chunk: usize::from_value(&d["chunk"])?,
            candidates: Vec::<String>::from_value(&d["candidates"])?,
            chosen: TrackId::from_value(&d["chosen"])?,
            reason: String::from_value(&d["reason"])?,
        },
        "track_selected" => Event::TrackSelected {
            chunk: usize::from_value(&d["chunk"])?,
            track: TrackId::from_value(&d["track"])?,
            declared: BitsPerSec::from_value(&d["declared"])?,
            avg_bitrate: BitsPerSec::from_value(&d["avg_bitrate"])?,
        },
        "buffer_state" => Event::BufferStateChange {
            audio: Deserialize::from_value(&d["audio_us"])?,
            video: Deserialize::from_value(&d["video_us"])?,
        },
        "seek_started" => Event::SeekStarted {
            from: Deserialize::from_value(&d["from_us"])?,
            to: Deserialize::from_value(&d["to_us"])?,
        },
        "playlist_fetch" => Event::PlaylistFetch {
            track: TrackId::from_value(&d["track"])?,
            requested_at: Instant::from_value(&d["requested_at_us"])?,
        },
        "playlist_refresh_tick" => Event::PlaylistRefreshTick {
            refetched: usize::from_value(&d["refetched"])?,
        },
        "stall_begin" => Event::StallBegin,
        "stall_end" => Event::StallEnd,
        "playback_started" => Event::PlaybackStarted,
        "playback_ended" => Event::PlaybackEnded,
        "seek_resumed" => Event::SeekResumed,
        "session_end" => Event::SessionEnd,
        other => {
            return Err(FromValueError::message(format!(
                "unknown event name {other:?}"
            )))
        }
    })
}

/// Error from [`from_jsonl`]: malformed JSON or an unknown event shape,
/// with the 1-based line it occurred on.
#[derive(Debug, Clone)]
pub struct TraceReadError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What went wrong there.
    pub message: String,
}

impl std::fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceReadError {}

/// Serializes a trace as JSONL: one compact JSON object per event line.
pub fn to_jsonl(events: &[TracedEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        serde_json::to_string_into(ev, &mut out);
        out.push('\n');
    }
    out
}

/// Streams a trace as JSONL into `w`, serializing each event into one
/// reused line buffer — the path for writing large traces to disk (wrap
/// the file in a [`std::io::BufWriter`]). Output is byte-identical to
/// [`to_jsonl`].
pub fn write_jsonl<W: std::io::Write>(events: &[TracedEvent], w: &mut W) -> std::io::Result<()> {
    let mut line = String::new();
    for ev in events {
        line.clear();
        serde_json::to_string_into(ev, &mut line);
        line.push('\n');
        w.write_all(line.as_bytes())?;
    }
    Ok(())
}

/// Streams the Chrome `trace_event` document into `w` (wrap the file in a
/// [`std::io::BufWriter`]). Output is byte-identical to
/// [`to_chrome_trace`].
pub fn write_chrome_trace<W: std::io::Write>(
    events: &[TracedEvent],
    w: &mut W,
) -> std::io::Result<()> {
    w.write_all(to_chrome_trace(events).as_bytes())
}

/// Parses a JSONL trace back into events. Blank lines are skipped.
pub fn from_jsonl(text: &str) -> Result<Vec<TracedEvent>, TraceReadError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = serde_json::from_str(line).map_err(|e| TraceReadError {
            line: i + 1,
            message: e.to_string(),
        })?;
        let ev = TracedEvent::from_value(&value).map_err(|e| TraceReadError {
            line: i + 1,
            message: e.to_string(),
        })?;
        out.push(ev);
    }
    Ok(out)
}

/// Thread ids used in the Chrome trace: playback lifecycle, network
/// transfers, and policy decisions each get their own row.
const TID_PLAYBACK: u64 = 1;
const TID_NET: u64 = 2;
const TID_POLICY: u64 = 3;

fn chrome_record(ph: &str, name: &str, tid: u64, ts_us: u64, args: Value) -> Value {
    let mut map = Map::new();
    map.insert("ph".to_string(), Value::String(ph.to_string()));
    map.insert("name".to_string(), Value::String(name.to_string()));
    map.insert("cat".to_string(), Value::String("abr".to_string()));
    map.insert("pid".to_string(), 1u64.to_value());
    map.insert("tid".to_string(), tid.to_value());
    map.insert("ts".to_string(), ts_us.to_value());
    if !args.is_null() {
        map.insert("args".to_string(), args);
    }
    Value::Object(map)
}

fn thread_name(tid: u64, name: &str) -> Value {
    let mut rec = chrome_record(
        "M",
        "thread_name",
        tid,
        0,
        serde_json::json!({ "name": name }),
    );
    if let Value::Object(map) = &mut rec {
        map.remove("ts");
        map.remove("cat");
    }
    rec
}

/// Converts a trace to Chrome `trace_event` JSON (the `{"traceEvents":…}`
/// document Perfetto and `chrome://tracing` open). Timestamps are the
/// *simulated* clock in microseconds.
pub fn to_chrome_trace(events: &[TracedEvent]) -> String {
    let mut records: Vec<Value> = vec![
        chrome_record(
            "M",
            "process_name",
            TID_PLAYBACK,
            0,
            serde_json::json!({ "name": "abr-unmuxed" }),
        ),
        thread_name(TID_PLAYBACK, "playback"),
        thread_name(TID_NET, "network"),
        thread_name(TID_POLICY, "policy"),
    ];
    for ev in events {
        let ts = ev.at.as_micros();
        match &ev.event {
            Event::TransferCompleted {
                track,
                chunk,
                size,
                opened_at,
                estimate_after,
                ..
            } => {
                let mut rec = chrome_record(
                    "X",
                    &format!("{track}#{chunk}"),
                    TID_NET,
                    opened_at.as_micros(),
                    serde_json::json!({
                        "size_bytes": size,
                        "estimate_after_kbps": estimate_after.map(abr_media::BitsPerSec::kbps),
                    }),
                );
                if let Value::Object(map) = &mut rec {
                    map.insert("dur".to_string(), (ts - opened_at.as_micros()).to_value());
                }
                records.push(rec);
            }
            Event::StallBegin => {
                records.push(chrome_record("B", "stall", TID_PLAYBACK, ts, Value::Null));
            }
            Event::StallEnd => {
                records.push(chrome_record("E", "stall", TID_PLAYBACK, ts, Value::Null));
            }
            Event::SeekStarted { from, to } => records.push(chrome_record(
                "B",
                "seek",
                TID_PLAYBACK,
                ts,
                serde_json::json!({ "from_s": from.as_secs_f64(), "to_s": to.as_secs_f64() }),
            )),
            Event::SeekResumed => {
                records.push(chrome_record("E", "seek", TID_PLAYBACK, ts, Value::Null));
            }
            Event::BufferStateChange { audio, video } => records.push(chrome_record(
                "C",
                "buffer_s",
                TID_PLAYBACK,
                ts,
                serde_json::json!({ "audio": audio.as_secs_f64(), "video": video.as_secs_f64() }),
            )),
            Event::EstimateUpdated { new, .. } => records.push(chrome_record(
                "C",
                "estimate_kbps",
                TID_POLICY,
                ts,
                serde_json::json!({ "estimate": new.kbps() }),
            )),
            Event::PolicyDecision {
                media,
                chunk,
                chosen,
                reason,
                ..
            } => records.push(chrome_record(
                "i",
                &format!("decide {media} #{chunk}"),
                TID_POLICY,
                ts,
                serde_json::json!({ "chosen": chosen.to_string(), "reason": reason }),
            )),
            Event::TrackSelected { chunk, track, .. } => records.push(chrome_record(
                "i",
                &format!("select {track}#{chunk}"),
                TID_POLICY,
                ts,
                Value::Null,
            )),
            Event::CacheLookup { object, hit, .. } => records.push(chrome_record(
                "i",
                &format!("cache {}", if *hit { "hit" } else { "miss" }),
                TID_NET,
                ts,
                serde_json::json!({ "object": object }),
            )),
            Event::PlaybackStarted => records.push(chrome_record(
                "i",
                "playback_started",
                TID_PLAYBACK,
                ts,
                Value::Null,
            )),
            Event::PlaybackEnded => records.push(chrome_record(
                "i",
                "playback_ended",
                TID_PLAYBACK,
                ts,
                Value::Null,
            )),
            Event::SessionStart { policy, .. } => records.push(chrome_record(
                "i",
                &format!("session {policy}"),
                TID_PLAYBACK,
                ts,
                Value::Null,
            )),
            Event::SessionEnd => records.push(chrome_record(
                "i",
                "session_end",
                TID_PLAYBACK,
                ts,
                Value::Null,
            )),
            // Request/progress/playlist detail stays JSONL-only; in the
            // Chrome view the transfer slices already cover the network row.
            Event::RequestIssued { .. }
            | Event::TransferProgress { .. }
            | Event::PlaylistFetch { .. }
            | Event::PlaylistRefreshTick { .. } => {}
        }
    }
    let doc = serde_json::json!({
        "traceEvents": Value::Array(records),
        "displayTimeUnit": "ms",
    });
    serde_json::to_string_pretty(&doc).expect("trace serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_event::time::Duration;
    use abr_media::track::MediaType;

    fn sample_events() -> Vec<TracedEvent> {
        let mk = |seq, at, event| TracedEvent {
            seq,
            at,
            wall_ns: seq * 10,
            event,
        };
        vec![
            mk(
                0,
                Instant::ZERO,
                Event::SessionStart {
                    policy: "shaka-hls".to_string(),
                    chunk_duration: Duration::from_secs(4),
                    num_chunks: 3,
                },
            ),
            mk(
                1,
                Instant::ZERO,
                Event::RequestIssued {
                    flow: 1,
                    track: Some(TrackId::video(2)),
                    chunk: Some(0),
                    size: Bytes(50_000),
                },
            ),
            mk(
                2,
                Instant::from_millis(500),
                Event::PolicyDecision {
                    media: MediaType::Video,
                    chunk: 0,
                    candidates: vec!["V1+A1".to_string(), "V2+A2".to_string()],
                    chosen: TrackId::video(1),
                    reason: "highest under estimate".to_string(),
                },
            ),
            mk(
                3,
                Instant::from_millis(800),
                Event::TransferCompleted {
                    flow: 1,
                    track: TrackId::video(2),
                    chunk: 0,
                    size: Bytes(50_000),
                    opened_at: Instant::ZERO,
                    estimate_after: Some(BitsPerSec::from_kbps(900)),
                },
            ),
            mk(
                4,
                Instant::from_secs(1),
                Event::EstimateUpdated {
                    old: None,
                    new: BitsPerSec::from_kbps(900),
                    window_bytes: Bytes(50_000),
                },
            ),
            mk(5, Instant::from_secs(2), Event::StallBegin),
            mk(
                6,
                Instant::from_secs(3),
                Event::BufferStateChange {
                    audio: Duration::from_secs(8),
                    video: Duration::from_millis(500),
                },
            ),
            mk(7, Instant::from_secs(4), Event::StallEnd),
            mk(
                8,
                Instant::from_secs(5),
                Event::SeekStarted {
                    from: Duration::from_secs(4),
                    to: Duration::from_secs(60),
                },
            ),
            mk(
                9,
                Instant::from_secs(6),
                Event::PlaylistFetch {
                    track: TrackId::audio(0),
                    requested_at: Instant::from_secs(5),
                },
            ),
            mk(10, Instant::from_secs(7), Event::SessionEnd),
        ]
    }

    #[test]
    fn jsonl_roundtrip_is_lossless() {
        let events = sample_events();
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), events.len());
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn write_jsonl_matches_to_jsonl_bytes() {
        let events = sample_events();
        let mut buf: Vec<u8> = Vec::new();
        write_jsonl(&events, &mut buf).unwrap();
        assert_eq!(buf, to_jsonl(&events).into_bytes());
        let mut doc: Vec<u8> = Vec::new();
        write_chrome_trace(&events, &mut doc).unwrap();
        assert_eq!(doc, to_chrome_trace(&events).into_bytes());
    }

    #[test]
    fn jsonl_lines_carry_the_envelope() {
        let text = to_jsonl(&sample_events());
        let first: Value = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(first["name"], "session_start");
        assert_eq!(first["seq"], 0u64);
        assert_eq!(first["time_us"], 0u64);
        assert_eq!(first["data"]["policy"], "shaka-hls");
        assert_eq!(first["data"]["num_chunks"], 3u64);
    }

    #[test]
    fn from_jsonl_reports_offending_line() {
        let err = from_jsonl("{\"seq\":0,\"time_us\":0,\"wall_ns\":0,\"name\":\"session_end\",\"data\":{}}\nnot json\n")
            .unwrap_err();
        assert_eq!(err.line, 2);
        let err = from_jsonl(
            "{\"seq\":0,\"time_us\":0,\"wall_ns\":0,\"name\":\"mystery\",\"data\":{}}\n",
        )
        .unwrap_err();
        assert!(err.message.contains("mystery"));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let events = sample_events();
        let mut text = String::from("\n");
        text.push_str(&to_jsonl(&events));
        text.push('\n');
        assert_eq!(from_jsonl(&text).unwrap(), events);
    }

    #[test]
    fn chrome_trace_shapes() {
        let doc: Value = serde_json::from_str(&to_chrome_trace(&sample_events())).unwrap();
        let records = doc["traceEvents"].as_array().unwrap();
        // Transfer slice: X with duration equal to the transfer time.
        let x = records.iter().find(|r| r["ph"] == "X").unwrap();
        assert_eq!(x["name"], "V3#0");
        assert_eq!(x["ts"], 0u64);
        assert_eq!(x["dur"], 800_000u64);
        // Stall begins and ends pair up on the playback thread.
        let begins = records
            .iter()
            .filter(|r| r["ph"] == "B" && r["name"] == "stall")
            .count();
        let ends = records
            .iter()
            .filter(|r| r["ph"] == "E" && r["name"] == "stall")
            .count();
        assert_eq!((begins, ends), (1, 1));
        // Buffer counter carries both series.
        let c = records
            .iter()
            .find(|r| r["ph"] == "C" && r["name"] == "buffer_s")
            .unwrap();
        assert_eq!(c["args"]["audio"].as_f64(), Some(8.0));
        assert_eq!(c["args"]["video"].as_f64(), Some(0.5));
        // Thread metadata names the rows.
        assert!(records
            .iter()
            .any(|r| r["ph"] == "M" && r["args"]["name"] == "network"));
    }
}
