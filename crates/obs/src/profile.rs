//! Hierarchical span profiler: where the simulator's host time goes.
//!
//! PR 1's tracer records *what the simulation did*; this module records
//! *what it cost*. Instrumented code opens named spans through
//! [`crate::ObsHandle::span`] and the profiler aggregates them into a call
//! tree keyed by `(parent, name)`: per node it keeps the invocation count,
//! inclusive (total) time, exclusive (self) time and a duration histogram,
//! all in host nanoseconds. The design rules (DESIGN.md §13):
//!
//! * **Zero cost when off.** Without an attached profiler,
//!   `ObsHandle::span` is one branch returning an inert guard — the same
//!   contract as the tracer's `emit`, pinned by the `obs_overhead`
//!   ablation bench.
//! * **Clock confinement.** The monotonic host clock is read only through
//!   [`crate::tracer::HostStopwatch`], the designated host-timing module,
//!   so the `ABR-L002` lint allowlist stays a single file.
//! * **Never perturbs artifacts.** Profiling writes nothing into traces,
//!   metrics, or session logs; goldens, `legacy_parity` and
//!   `parallel_determinism` hold byte-identical with profiling on
//!   (`crates/bench/tests/profile_determinism.rs`).
//! * **Robust to drop order.** Spans are RAII guards. Guards normally
//!   drop LIFO, but a guard dropped out of order force-closes every span
//!   nested inside it, and a guard whose span was already force-closed is
//!   a no-op — self/total times stay well-formed for *any* drop order
//!   (property-tested in `tests/profile_proptests.rs`).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::metrics::{Histogram, HistogramSnapshot};
use crate::tracer::HostStopwatch;

/// Span-duration histogram bounds, in nanoseconds: whole decades from
/// 100 ns to 10 s (+∞ implied). Spans below 100 ns are clock-resolution
/// noise; single spans above 10 s land in the overflow bucket, where the
/// interpolated quantiles fall back to the recorded maximum.
pub const SPAN_BOUNDS_NS: &[f64] = &[1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10];

/// One node of the live call tree.
#[derive(Debug)]
struct Node {
    name: &'static str,
    /// Children by span name — `BTreeMap` so reports flatten in a stable
    /// order regardless of first-visit order.
    children: BTreeMap<&'static str, usize>,
    count: u64,
    total_ns: u64,
    self_ns: u64,
    durations: Histogram,
}

impl Node {
    fn new(name: &'static str) -> Node {
        Node {
            name,
            children: BTreeMap::new(),
            count: 0,
            total_ns: 0,
            self_ns: 0,
            durations: Histogram::with_bounds(SPAN_BOUNDS_NS),
        }
    }
}

/// One open span on the stack.
#[derive(Debug, Clone, Copy)]
struct Frame {
    node: usize,
    /// Unique id issued at entry; exit matches on it so a stale guard
    /// (whose frame an outer guard already force-closed) is a no-op.
    token: u64,
    start_ns: u64,
    /// Time spent in already-closed direct children of this frame.
    child_ns: u64,
}

#[derive(Debug)]
struct Inner {
    /// Node 0 is the synthetic root (never reported); real spans hang off
    /// it. Nodes are append-only, identified by index.
    nodes: Vec<Node>,
    stack: Vec<Frame>,
    next_token: u64,
}

/// The span profiler. Interior-mutable and [`Rc`]-shared like the tracer
/// (the simulator is single-threaded); the parallel sweep runner builds
/// one per worker item and merges the resulting [`ProfileReport`]s.
#[derive(Debug)]
pub struct Profiler {
    clock: HostStopwatch,
    inner: RefCell<Inner>,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new()
    }
}

impl Profiler {
    /// A fresh profiler; its wall clock starts now.
    pub fn new() -> Profiler {
        Profiler {
            clock: HostStopwatch::start(),
            inner: RefCell::new(Inner {
                nodes: vec![Node::new("")],
                stack: Vec::new(),
                next_token: 0,
            }),
        }
    }

    /// Opens a span as a child of the innermost open span (or as a root
    /// span). Prefer [`crate::ObsHandle::span`], which adds the
    /// one-branch disabled path.
    #[must_use = "the span closes when the guard drops; bind it to a scope"]
    pub fn span(self: &Rc<Self>, name: &'static str) -> SpanGuard {
        let token = self.enter(name);
        SpanGuard {
            prof: Some((Rc::clone(self), token)),
        }
    }

    fn enter(&self, name: &'static str) -> u64 {
        let now = self.clock.elapsed_ns();
        let mut inner = self.inner.borrow_mut();
        let parent = inner.stack.last().map_or(0, |f| f.node);
        let node = match inner.nodes[parent].children.get(name) {
            Some(&idx) => idx,
            None => {
                let idx = inner.nodes.len();
                inner.nodes.push(Node::new(name));
                inner.nodes[parent].children.insert(name, idx);
                idx
            }
        };
        let token = inner.next_token;
        inner.next_token += 1;
        inner.stack.push(Frame {
            node,
            token,
            start_ns: now,
            child_ns: 0,
        });
        token
    }

    /// Closes the span holding `token`, force-closing anything nested
    /// inside it first. No-op if the span was already closed by an outer
    /// guard dropping early.
    fn exit(&self, token: u64) {
        let now = self.clock.elapsed_ns();
        let mut inner = self.inner.borrow_mut();
        let Some(pos) = inner.stack.iter().rposition(|f| f.token == token) else {
            return;
        };
        let Inner { nodes, stack, .. } = &mut *inner;
        while stack.len() > pos {
            let frame = stack.pop().expect("len > pos >= 0");
            let elapsed = now.saturating_sub(frame.start_ns);
            let node = &mut nodes[frame.node];
            node.count += 1;
            node.total_ns += elapsed;
            node.self_ns += elapsed.saturating_sub(frame.child_ns);
            node.durations.observe(elapsed as f64);
            if let Some(parent) = stack.last_mut() {
                parent.child_ns += elapsed;
            }
        }
    }

    /// Snapshots the aggregated call tree. Only *closed* spans are
    /// reported — drop every guard (or let scopes end) before calling.
    /// `wall_ns` is the profiler's own lifetime so far, the denominator
    /// for [`ProfileReport::attributed`].
    pub fn report(&self) -> ProfileReport {
        let wall_ns = self.clock.elapsed_ns();
        let inner = self.inner.borrow();
        fn build(nodes: &[Node], idx: usize) -> SpanNode {
            let n = &nodes[idx];
            SpanNode {
                name: n.name.to_string(),
                count: n.count,
                total_ns: n.total_ns,
                self_ns: n.self_ns,
                durations: n.durations.snapshot(),
                children: n.children.values().map(|&c| build(nodes, c)).collect(),
            }
        }
        ProfileReport {
            wall_ns,
            roots: inner.nodes[0]
                .children
                .values()
                .map(|&c| build(&inner.nodes, c))
                .collect(),
        }
    }
}

/// RAII guard for one open span; the span closes when it drops.
#[derive(Debug)]
pub struct SpanGuard {
    prof: Option<(Rc<Profiler>, u64)>,
}

impl SpanGuard {
    /// The guard the disabled path hands out: dropping it does nothing.
    #[must_use]
    pub fn inert() -> SpanGuard {
        SpanGuard { prof: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((prof, token)) = self.prof.take() {
            prof.exit(token);
        }
    }
}

/// Aggregated statistics for one span name at one position in the tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Span name as passed to [`crate::ObsHandle::span`].
    pub name: String,
    /// Number of closed invocations.
    pub count: u64,
    /// Inclusive time: the span plus everything nested inside it.
    pub total_ns: u64,
    /// Exclusive time: `total_ns` minus direct children's inclusive time.
    pub self_ns: u64,
    /// Histogram of per-invocation inclusive durations (ns,
    /// [`SPAN_BOUNDS_NS`]).
    pub durations: HistogramSnapshot,
    /// Child spans, in name order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn merge(&mut self, other: &SpanNode) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.self_ns += other.self_ns;
        self.durations.merge(&other.durations);
        merge_children(&mut self.children, &other.children);
    }
}

/// Merges `other` into `nodes`, aligning by name and keeping name order.
fn merge_children(nodes: &mut Vec<SpanNode>, other: &[SpanNode]) {
    for o in other {
        match nodes.iter_mut().find(|n| n.name == o.name) {
            Some(n) => n.merge(o),
            None => {
                nodes.push(o.clone());
                nodes.sort_by(|a, b| a.name.cmp(&b.name));
            }
        }
    }
}

/// An owned, mergeable snapshot of a [`Profiler`]'s call tree. `Send`, so
/// worker threads can hand their per-item profiles back across the sweep
/// runner's channel.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    /// Profiler lifetime at snapshot, in host nanoseconds. Merging adds
    /// walls, so a merged per-session report's wall is the total session
    /// compute time (not the sweep's elapsed wall clock).
    pub wall_ns: u64,
    /// Root spans, in name order.
    pub roots: Vec<SpanNode>,
}

impl ProfileReport {
    /// Folds `other` into `self`: counts and times add node-wise (aligned
    /// by path), duration histograms merge, walls add. Commutative and
    /// associative, so the sweep runner can fold per-item reports in spec
    /// order.
    pub fn merge(&mut self, other: &ProfileReport) {
        self.wall_ns += other.wall_ns;
        merge_children(&mut self.roots, &other.roots);
    }

    /// Depth-first flattening in tree order: `(path, depth, node)` with
    /// `/`-joined paths.
    pub fn flatten(&self) -> Vec<(String, usize, &SpanNode)> {
        fn walk<'a>(
            node: &'a SpanNode,
            prefix: &str,
            depth: usize,
            out: &mut Vec<(String, usize, &'a SpanNode)>,
        ) {
            let path = if prefix.is_empty() {
                node.name.clone()
            } else {
                format!("{prefix}/{}", node.name)
            };
            out.push((path.clone(), depth, node));
            for child in &node.children {
                walk(child, &path, depth + 1, out);
            }
        }
        let mut out = Vec::new();
        for root in &self.roots {
            walk(root, "", 0, &mut out);
        }
        out
    }

    /// Fraction of `wall_ns` attributed to root spans (0 when no wall was
    /// measured). The acceptance bar for a well-instrumented workload is
    /// ≥ 0.95: everything the profiler lived through should be inside
    /// some named span.
    pub fn attributed(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        let rooted: u64 = self.roots.iter().map(|r| r.total_ns).sum();
        rooted as f64 / self.wall_ns as f64
    }

    /// The `n` hottest spans by self time, as `(path, self_ns)` descending
    /// (ties broken by path, so the listing is stable).
    pub fn hot(&self, n: usize) -> Vec<(String, u64)> {
        let mut spans: Vec<(String, u64)> = self
            .flatten()
            .into_iter()
            .map(|(path, _, node)| (path, node.self_ns))
            .collect();
        spans.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        spans.truncate(n);
        spans
    }

    /// Renders the self/total-time table: one row per span in tree order,
    /// with interpolated p50/p90/p99 per-invocation durations, followed by
    /// the attribution line and the hottest spans by self time.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<44} {:>10} {:>10} {:>10} {:>6} {:>9} {:>9} {:>9}\n",
            "span", "count", "total", "self", "self%", "p50", "p90", "p99"
        ));
        let wall = self.wall_ns.max(1);
        for (_, depth, node) in self.flatten() {
            let label = format!("{}{}", "  ".repeat(depth), node.name);
            let q = |p: f64| {
                node.durations
                    .quantile(p)
                    .map_or_else(|| "-".to_string(), |v| fmt_ns(v as u64))
            };
            out.push_str(&format!(
                "{:<44} {:>10} {:>10} {:>10} {:>5.1}% {:>9} {:>9} {:>9}\n",
                label,
                node.count,
                fmt_ns(node.total_ns),
                fmt_ns(node.self_ns),
                100.0 * node.self_ns as f64 / wall as f64,
                q(0.50),
                q(0.90),
                q(0.99),
            ));
        }
        out.push_str(&format!(
            "attributed: {:.1}% of {} measured wall time\n",
            100.0 * self.attributed(),
            fmt_ns(self.wall_ns),
        ));
        let hot = self.hot(5);
        if !hot.is_empty() {
            out.push_str("hot spans by self time:\n");
            for (path, self_ns) in hot {
                out.push_str(&format!("  {:<52} {:>10}\n", path, fmt_ns(self_ns)));
            }
        }
        out
    }
}

/// Formats a nanosecond quantity with an adaptive unit (`ns`/`µs`/`ms`/`s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsHandle;

    fn tree_invariants(report: &ProfileReport) {
        for (path, _, node) in report.flatten() {
            let child_total: u64 = node.children.iter().map(|c| c.total_ns).sum();
            assert_eq!(
                node.self_ns + child_total,
                node.total_ns,
                "self + children != total at {path}"
            );
            assert_eq!(node.durations.count, node.count, "histogram count {path}");
        }
    }

    #[test]
    fn nested_spans_attribute_self_and_total() {
        let prof = Rc::new(Profiler::new());
        {
            let _outer = prof.span("outer");
            {
                let _a = prof.span("a");
            }
            {
                let _b = prof.span("b");
            }
        }
        let report = prof.report();
        assert_eq!(report.roots.len(), 1);
        let outer = &report.roots[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.count, 1);
        assert_eq!(outer.children.len(), 2);
        assert_eq!(outer.children[0].name, "a");
        assert_eq!(outer.children[1].name, "b");
        assert!(outer.total_ns >= outer.children.iter().map(|c| c.total_ns).sum());
        tree_invariants(&report);
        assert!(report.attributed() <= 1.0 + f64::EPSILON);
        let flat = report.flatten();
        assert_eq!(
            flat.iter().map(|(p, ..)| p.as_str()).collect::<Vec<_>>(),
            vec!["outer", "outer/a", "outer/b"]
        );
    }

    #[test]
    fn same_name_different_parents_are_distinct_nodes() {
        let prof = Rc::new(Profiler::new());
        {
            let _x = prof.span("x");
            let _shared = prof.span("shared");
        }
        {
            let _y = prof.span("y");
            let _shared = prof.span("shared");
        }
        let report = prof.report();
        assert_eq!(report.roots.len(), 2);
        assert!(report
            .flatten()
            .iter()
            .any(|(p, ..)| p == "x/shared" || p == "y/shared"));
        tree_invariants(&report);
    }

    #[test]
    fn out_of_order_drop_force_closes_inner_spans() {
        let prof = Rc::new(Profiler::new());
        let outer = prof.span("outer");
        let inner = prof.span("inner");
        drop(outer); // force-closes `inner` too
        drop(inner); // stale: must be a no-op
        let report = prof.report();
        tree_invariants(&report);
        let flat = report.flatten();
        assert_eq!(flat.len(), 2);
        assert_eq!(flat[1].0, "outer/inner");
        assert_eq!(flat[1].2.count, 1, "inner closed exactly once");
    }

    #[test]
    fn disabled_handle_spans_are_inert() {
        let obs = ObsHandle::disabled();
        assert!(!obs.profiling());
        let g = obs.span("anything");
        drop(g);
        // Attached profiler records through the same call.
        let prof = Rc::new(Profiler::new());
        let obs = ObsHandle::disabled().with_profiler(prof.clone());
        assert!(obs.profiling());
        drop(obs.span("thing"));
        assert_eq!(prof.report().roots[0].count, 1);
    }

    #[test]
    fn merge_aligns_by_path_and_adds() {
        let mk = |names: &[&'static str]| {
            let prof = Rc::new(Profiler::new());
            {
                let _r = prof.span("root");
                for n in names {
                    drop(prof.span(n));
                }
            }
            prof.report()
        };
        let a = mk(&["x", "y"]);
        let b = mk(&["y", "z"]);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.wall_ns, a.wall_ns + b.wall_ns);
        let flat = merged.flatten();
        let paths: Vec<&str> = flat.iter().map(|(p, ..)| p.as_str()).collect();
        assert_eq!(paths, vec!["root", "root/x", "root/y", "root/z"]);
        let y = flat.iter().find(|(p, ..)| p == "root/y").unwrap().2;
        assert_eq!(y.count, 2);
        tree_invariants(&merged);
        // Merge is order-independent on the tree structure.
        let mut other = b.clone();
        other.merge(&a);
        assert_eq!(
            other
                .flatten()
                .iter()
                .map(|(p, ..)| p.clone())
                .collect::<Vec<_>>(),
            paths.iter().map(|p| (*p).to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn table_and_hot_name_spans() {
        let prof = Rc::new(Profiler::new());
        {
            let _r = prof.span("session.run");
            drop(prof.span("dispatch.transfer_complete"));
        }
        let report = prof.report();
        let table = report.table();
        assert!(table.contains("session.run"));
        assert!(table.contains("dispatch.transfer_complete"));
        assert!(table.contains("attributed:"));
        assert!(table.contains("hot spans by self time:"));
        assert_eq!(report.hot(1).len(), 1);
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(12), "12 ns");
        assert_eq!(fmt_ns(4_200), "4.2 µs");
        assert_eq!(fmt_ns(9_900_000), "9.9 ms");
        assert_eq!(fmt_ns(2_500_000_000), "2.50 s");
    }
}
