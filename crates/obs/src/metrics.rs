//! Lightweight metrics: counters, gauges and fixed-bucket histograms.
//!
//! The registry is interior-mutable (the simulator is single-threaded) and
//! keyed by `&'static str` so the hot path never allocates. Reading happens
//! through an owned [`MetricsSnapshot`].

use std::cell::RefCell;
use std::collections::BTreeMap;

/// Default histogram bucket upper bounds: whole decades from 10 to 1e9,
/// wide enough for both nanosecond latencies and per-flow byte counts. A
/// final +∞ bucket is implicit.
pub const DEFAULT_BOUNDS: &[f64] = &[1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9];

/// A fixed-bucket histogram with running sum / min / max.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: &'static [f64],
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram over the given ascending upper bounds (+∞ implied).
    pub fn with_bounds(bounds: &'static [f64]) -> Histogram {
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation. Non-finite values are rejected (counted
    /// nowhere) so NaNs cannot poison the summary statistics.
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Owned summary of this histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            buckets: self
                .bounds
                .iter()
                .copied()
                .chain(std::iter::once(f64::INFINITY))
                .zip(self.counts.iter().copied())
                .collect(),
        }
    }
}

/// Owned summary of a [`Histogram`]. The `Default` value is an empty
/// snapshot with no buckets — a merge identity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of (finite) observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// `(upper_bound, count)` pairs; the last bound is +∞.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Folds `other` into `self`: counts, sums and per-bucket tallies add;
    /// min/max widen. Buckets are aligned by upper bound, so histograms
    /// recorded with different bound sets merge into the union of their
    /// buckets. An empty side contributes nothing (its 0/0 min/max
    /// sentinels are not real observations).
    ///
    /// Merging is commutative and associative over observation multisets,
    /// which is what lets the parallel sweep runner combine per-session
    /// registries in **spec order** and get the same snapshot any worker
    /// count produces.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for &(bound, n) in &other.buckets {
            match self
                .buckets
                .iter_mut()
                .find(|(b, _)| b.total_cmp(&bound).is_eq())
            {
                Some((_, count)) => *count += n,
                None => {
                    self.buckets.push((bound, n));
                    self.buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
                }
            }
        }
    }

    /// Upper bound of the bucket containing quantile `q` (clamped to
    /// [0, 1]); `None` when empty. Coarse by construction — bucket
    /// resolution, not exact order statistics.
    pub fn quantile_bound(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for &(bound, n) in &self.buckets {
            acc += n;
            if acc >= target {
                return Some(bound);
            }
        }
        self.buckets.last().map(|&(b, _)| b)
    }

    /// Interpolated quantile `q` (clamped to [0, 1]); `None` when empty.
    ///
    /// Walks the cumulative bucket counts to the bucket containing the
    /// target rank, then interpolates linearly inside it, assuming
    /// observations spread uniformly across the bucket. Bucket edges are
    /// tightened with the recorded `min`/`max` (the lowest occupied
    /// bucket cannot start below `min`; the +∞ overflow bucket ends at
    /// `max`), so single-bucket histograms degrade gracefully to the
    /// `min..max` span instead of the raw bound. Results are clamped to
    /// `[min, max]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut acc = 0u64;
        let mut prev_bound = f64::NEG_INFINITY;
        for &(bound, n) in &self.buckets {
            let next = acc + n;
            if n > 0 && next as f64 >= target {
                let lo = prev_bound.max(self.min);
                let hi = if bound.is_finite() { bound } else { self.max }.min(self.max);
                let frac = ((target - acc as f64) / n as f64).clamp(0.0, 1.0);
                let v = if hi > lo { lo + frac * (hi - lo) } else { hi };
                return Some(v.clamp(self.min, self.max));
            }
            acc = next;
            prev_bound = bound;
        }
        Some(self.max)
    }
}

/// Interior-mutable registry of named counters, gauges and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RefCell<BTreeMap<&'static str, u64>>,
    gauges: RefCell<BTreeMap<&'static str, f64>>,
    histograms: RefCell<BTreeMap<&'static str, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to counter `name` (created at 0 on first use).
    pub fn count(&self, name: &'static str, delta: u64) {
        *self.counters.borrow_mut().entry(name).or_insert(0) += delta;
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn gauge(&self, name: &'static str, value: f64) {
        self.gauges.borrow_mut().insert(name, value);
    }

    /// Records one observation into histogram `name` (created with
    /// [`DEFAULT_BOUNDS`] on first use).
    pub fn observe(&self, name: &'static str, value: f64) {
        self.histograms
            .borrow_mut()
            .entry(name)
            .or_insert_with(|| Histogram::with_bounds(DEFAULT_BOUNDS))
            .observe(value);
    }

    /// Pre-registers histogram `name` with custom bucket bounds (no-op if
    /// it already exists).
    pub fn register_histogram(&self, name: &'static str, bounds: &'static [f64]) {
        self.histograms
            .borrow_mut()
            .entry(name)
            .or_insert_with(|| Histogram::with_bounds(bounds));
    }

    /// Current value of a counter (0 when absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.borrow().get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge (`None` when never set).
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.borrow().get(name).copied()
    }

    /// Owned snapshot of everything in the registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .borrow()
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            gauges: self
                .gauges
                .borrow()
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            histograms: self
                .histograms
                .borrow()
                .iter()
                .map(|(&k, h)| (k.to_string(), h.snapshot()))
                .collect(),
        }
    }
}

/// Owned point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Folds `other` into `self`: counters add, gauges take `other`'s
    /// value (last-write-wins, matching [`MetricsRegistry::gauge`]), and
    /// histograms merge bucket-wise via [`HistogramSnapshot::merge`].
    ///
    /// Because gauges are order-sensitive, a *deterministic* combined view
    /// of many per-session snapshots must fold them in a stable order —
    /// use [`MetricsSnapshot::merge_ordered`], which the parallel sweep
    /// runner feeds in session-spec order regardless of which worker
    /// finished first.
    pub fn merge_from(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_insert_with(|| HistogramSnapshot {
                    count: 0,
                    sum: 0.0,
                    min: 0.0,
                    max: 0.0,
                    buckets: Vec::new(),
                })
                .merge(h);
        }
    }

    /// Merges a sequence of snapshots left to right into one combined
    /// snapshot. The iteration order is the determinism contract: callers
    /// pass parts in a stable order (the sweep runner uses session-spec
    /// order), so the result is independent of completion order.
    pub fn merge_ordered<'a, I: IntoIterator<Item = &'a MetricsSnapshot>>(
        parts: I,
    ) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for part in parts {
            out.merge_from(part);
        }
        out
    }

    /// Flattens the snapshot into sorted `(metric, value)` display rows —
    /// counters verbatim, gauges with 3 decimals, histograms as
    /// `count/mean/p50/p90/p99/max` sub-rows (quantiles interpolated via
    /// [`HistogramSnapshot::quantile`]). Feed these to a table renderer.
    pub fn rows(&self) -> Vec<(String, String)> {
        let mut rows = Vec::new();
        for (name, v) in &self.counters {
            rows.push((name.clone(), v.to_string()));
        }
        for (name, v) in &self.gauges {
            rows.push((name.clone(), format!("{v:.3}")));
        }
        for (name, h) in &self.histograms {
            rows.push((format!("{name}.count"), h.count.to_string()));
            rows.push((format!("{name}.mean"), format!("{:.1}", h.mean())));
            for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
                let v = h.quantile(q).unwrap_or(0.0);
                rows.push((format!("{name}.{label}"), format!("{v:.1}")));
            }
            rows.push((format!("{name}.max"), format!("{:.1}", h.max)));
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let m = MetricsRegistry::new();
        m.count("cache.hits", 2);
        m.count("cache.hits", 3);
        assert_eq!(m.counter_value("cache.hits"), 5);
        assert_eq!(m.counter_value("absent"), 0);
    }

    #[test]
    fn gauges_last_write_wins() {
        let m = MetricsRegistry::new();
        assert_eq!(m.gauge_value("depth"), None);
        m.gauge("depth", 4.0);
        m.gauge("depth", 2.0);
        assert_eq!(m.gauge_value("depth"), Some(2.0));
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::with_bounds(&[10.0, 100.0]);
        for v in [1.0, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 500.0);
        assert_eq!(s.buckets, vec![(10.0, 2), (100.0, 1), (f64::INFINITY, 1)]);
        assert_eq!(s.mean(), 139.0);
    }

    #[test]
    fn histogram_rejects_non_finite() {
        let mut h = Histogram::with_bounds(DEFAULT_BOUNDS);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.snapshot().count, 0);
        h.observe(3.0);
        assert_eq!(h.snapshot().count, 1);
        assert!(h.snapshot().sum.is_finite());
    }

    #[test]
    fn quantile_bound_is_bucket_resolution() {
        let mut h = Histogram::with_bounds(&[10.0, 100.0, 1000.0]);
        for _ in 0..90 {
            h.observe(5.0);
        }
        for _ in 0..10 {
            h.observe(500.0);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile_bound(0.5), Some(10.0));
        assert_eq!(s.quantile_bound(0.99), Some(1000.0));
        assert_eq!(
            HistogramSnapshot {
                count: 0,
                sum: 0.0,
                min: 0.0,
                max: 0.0,
                buckets: vec![]
            }
            .quantile_bound(0.5),
            None
        );
    }

    #[test]
    fn quantile_empty_is_none() {
        let s = Histogram::with_bounds(DEFAULT_BOUNDS).snapshot();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.quantile(0.0), None);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        // 100 observations uniform-ish over (10, 100]: quantiles should
        // land inside the bucket, not snap to its upper bound.
        let mut h = Histogram::with_bounds(&[10.0, 100.0, 1000.0]);
        for i in 0..100 {
            h.observe(11.0 + (i as f64) * 0.88);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5).unwrap();
        assert!((11.0..100.0).contains(&p50), "p50 = {p50}");
        assert!(p50 < s.quantile(0.9).unwrap());
        // q clamps.
        assert_eq!(s.quantile(-1.0).unwrap(), s.min);
        assert_eq!(s.quantile(2.0).unwrap(), s.max);
    }

    #[test]
    fn quantile_single_bucket_uses_min_max_span() {
        let mut h = Histogram::with_bounds(&[1000.0]);
        h.observe(40.0);
        h.observe(60.0);
        let s = h.snapshot();
        // Both observations share one bucket; interpolation is bounded by
        // the recorded extrema, not the 1000.0 bound.
        let p50 = s.quantile(0.5).unwrap();
        assert!((40.0..=60.0).contains(&p50), "p50 = {p50}");
        assert_eq!(s.quantile(1.0), Some(60.0));
        assert_eq!(s.quantile(0.0), Some(40.0));
    }

    #[test]
    fn quantile_overflow_bucket_falls_back_to_max() {
        let mut h = Histogram::with_bounds(&[10.0]);
        h.observe(5.0);
        h.observe(700.0);
        h.observe(900.0);
        let s = h.snapshot();
        // p99 lands in the +∞ bucket: interpolate toward max, never ∞.
        let p99 = s.quantile(0.99).unwrap();
        assert!(p99.is_finite());
        assert!((10.0..=900.0).contains(&p99), "p99 = {p99}");
        assert_eq!(s.quantile(1.0), Some(900.0));
        // All-overflow histogram still interpolates on [min, max].
        let mut o = Histogram::with_bounds(&[10.0]);
        o.observe(100.0);
        o.observe(300.0);
        let os = o.snapshot();
        let p50 = os.quantile(0.5).unwrap();
        assert!((100.0..=300.0).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn histogram_merge_adds_and_widens() {
        let mut a = Histogram::with_bounds(&[10.0, 100.0]);
        a.observe(5.0);
        a.observe(50.0);
        let mut b = Histogram::with_bounds(&[10.0, 100.0]);
        b.observe(1.0);
        b.observe(500.0);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 4);
        assert_eq!(merged.min, 1.0);
        assert_eq!(merged.max, 500.0);
        assert_eq!(merged.sum, 556.0);
        assert_eq!(
            merged.buckets,
            vec![(10.0, 2), (100.0, 1), (f64::INFINITY, 1)]
        );
        // Empty sides are identities on both ends.
        let empty = Histogram::with_bounds(&[10.0]).snapshot();
        let mut lhs = empty.clone();
        lhs.merge(&merged);
        assert_eq!(lhs, merged);
        let mut rhs = merged.clone();
        rhs.merge(&empty);
        assert_eq!(rhs, merged);
    }

    #[test]
    fn histogram_merge_unions_disjoint_bounds() {
        let mut a = Histogram::with_bounds(&[10.0]);
        a.observe(5.0);
        let mut b = Histogram::with_bounds(&[20.0]);
        b.observe(15.0);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(
            merged.buckets,
            vec![(10.0, 1), (20.0, 1), (f64::INFINITY, 0)]
        );
    }

    #[test]
    fn snapshot_merge_ordered_is_order_stable() {
        let mk = |hits: u64, depth: f64| {
            let m = MetricsRegistry::new();
            m.count("cache.hits", hits);
            m.gauge("queue.depth", depth);
            m.observe("bytes", hits as f64);
            m.snapshot()
        };
        let parts = [mk(1, 1.0), mk(2, 2.0), mk(3, 3.0)];
        let merged = MetricsSnapshot::merge_ordered(&parts);
        assert_eq!(merged.counters["cache.hits"], 6);
        // Gauges: last in spec order wins, whatever order parts finished.
        assert_eq!(merged.gauges["queue.depth"], 3.0);
        assert_eq!(merged.histograms["bytes"].count, 3);
        assert_eq!(merged.histograms["bytes"].sum, 6.0);
        // Same parts, same order → identical result (pure function).
        assert_eq!(merged.rows(), MetricsSnapshot::merge_ordered(&parts).rows());
    }

    #[test]
    fn snapshot_rows_are_renderable() {
        let m = MetricsRegistry::new();
        m.count("a.count", 1);
        m.gauge("b.gauge", 1.5);
        m.observe("c.hist", 10.0);
        let rows = m.snapshot().rows();
        let names: Vec<&str> = rows.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"a.count"));
        assert!(names.contains(&"b.gauge"));
        assert!(names.contains(&"c.hist.mean"));
    }
}
