//! Tracer implementations and the shared observability handle.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use abr_event::time::Instant;

use crate::event::{Event, TracedEvent};
use crate::metrics::MetricsRegistry;
use crate::profile::{Profiler, SpanGuard};

/// A monotonic host-clock stopwatch: nanoseconds elapsed since
/// [`HostStopwatch::start`].
///
/// This file is the workspace's **designated host-timing module**
/// (DESIGN.md §13): every wall-clock reader — `RecordingTracer`'s
/// `wall_ns` stamps, [`ObsHandle::time`]'s latency histograms, the span
/// profiler ([`crate::profile`]) and the sweep runner's per-worker
/// utilization meter — goes through this type, so the `ABR-L002`
/// host-clock lint allowlist stays a single file and no other module ever
/// names `std::time`. Host time measured here is *observation only*; it
/// never feeds back into simulated time or any reproducible artifact.
#[derive(Debug, Clone, Copy)]
pub struct HostStopwatch {
    started: std::time::Instant,
}

impl HostStopwatch {
    /// Starts the stopwatch now.
    #[must_use]
    pub fn start() -> HostStopwatch {
        HostStopwatch {
            started: std::time::Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the stopwatch started (saturating at
    /// `u64::MAX` — ~584 years).
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Sink for structured events.
///
/// Implementations use interior mutability (the simulator is single-
/// threaded and hands shared [`Rc`] handles to every subsystem).
pub trait Tracer {
    /// Whether this tracer wants events at all. Emitters check this before
    /// constructing an event, so a disabled tracer costs one virtual call
    /// and no allocation per site.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event stamped with the simulated clock.
    fn record(&self, at: Instant, event: Event);
}

/// A tracer that drops everything.
///
/// [`Tracer::enabled`] returns `false`, so instrumented code skips event
/// construction entirely — the default path adds only a branch per site
/// (the `obs_overhead` ablation bench in `abr-bench` keeps this honest).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _at: Instant, _event: Event) {}
}

/// A tracer that captures every event in memory, stamped with a sequence
/// number and host wall-clock nanoseconds (relative to tracer creation).
#[derive(Debug)]
pub struct RecordingTracer {
    started: HostStopwatch,
    /// When false, `wall_ns` is stamped as 0 instead of the host clock, so
    /// two runs of the same simulation capture byte-identical traces.
    stamp_wall: bool,
    seq: Cell<u64>,
    events: RefCell<Vec<TracedEvent>>,
}

impl RecordingTracer {
    /// A fresh tracer; the wall clock starts now.
    pub fn new() -> RecordingTracer {
        RecordingTracer {
            started: HostStopwatch::start(),
            stamp_wall: true,
            seq: Cell::new(0),
            events: RefCell::new(Vec::new()),
        }
    }

    /// A tracer whose captures are a pure function of the simulation:
    /// `wall_ns` is always 0. This is the mode behind reproducible trace
    /// artifacts (golden files, the parallel determinism suite) — the
    /// host clock is the one field that would otherwise differ between
    /// two runs of an identical session.
    pub fn deterministic() -> RecordingTracer {
        RecordingTracer {
            stamp_wall: false,
            ..RecordingTracer::new()
        }
    }

    /// Number of events captured so far.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// True when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    /// A copy of everything captured so far, in emission order.
    pub fn snapshot(&self) -> Vec<TracedEvent> {
        self.events.borrow().clone()
    }

    /// Drains the captured events, leaving the tracer empty (the sequence
    /// counter keeps running).
    pub fn take(&self) -> Vec<TracedEvent> {
        std::mem::take(&mut *self.events.borrow_mut())
    }
}

impl Default for RecordingTracer {
    fn default() -> Self {
        RecordingTracer::new()
    }
}

impl Tracer for RecordingTracer {
    fn record(&self, at: Instant, event: Event) {
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        let wall_ns = if self.stamp_wall {
            self.started.elapsed_ns()
        } else {
            0
        };
        self.events.borrow_mut().push(TracedEvent {
            seq,
            at,
            wall_ns,
            event,
        });
    }
}

/// The handle instrumented code holds: an optional tracer plus an optional
/// metrics registry, cheaply cloneable so one configuration fans out to the
/// link, caches, policies and the session driver.
///
/// The default handle is fully disabled; every hook degrades to a branch
/// on `Option::None`.
#[derive(Clone)]
pub struct ObsHandle {
    tracer: Option<Rc<dyn Tracer>>,
    metrics: Option<Rc<MetricsRegistry>>,
    profiler: Option<Rc<Profiler>>,
    /// When false, [`ObsHandle::time`] runs its closure untimed and records
    /// nothing: host-clock histograms (`*_ns`) are the one metrics family
    /// that cannot be deterministic, so the reproducible-artifact mode
    /// drops them at the source.
    host_timing: bool,
}

impl Default for ObsHandle {
    fn default() -> Self {
        ObsHandle {
            tracer: None,
            metrics: None,
            profiler: None,
            host_timing: true,
        }
    }
}

impl std::fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsHandle")
            .field("tracer", &self.tracer.is_some())
            .field("metrics", &self.metrics.is_some())
            .field("profiler", &self.profiler.is_some())
            .finish()
    }
}

impl ObsHandle {
    /// The disabled handle (no tracer, no metrics).
    pub fn disabled() -> ObsHandle {
        ObsHandle::default()
    }

    /// Attaches a tracer.
    pub fn with_tracer(mut self, tracer: Rc<dyn Tracer>) -> ObsHandle {
        self.tracer = Some(tracer);
        self
    }

    /// Attaches a metrics registry.
    pub fn with_metrics(mut self, metrics: Rc<MetricsRegistry>) -> ObsHandle {
        self.metrics = Some(metrics);
        self
    }

    /// Attaches a span profiler ([`crate::profile::Profiler`]). Profiling
    /// measures host-clock cost only — it writes nothing into traces,
    /// metrics or logs, so artifacts stay byte-identical with it on.
    pub fn with_profiler(mut self, profiler: Rc<Profiler>) -> ObsHandle {
        self.profiler = Some(profiler);
        self
    }

    /// A handle wired to a fresh [`RecordingTracer`] and a fresh registry;
    /// returns the handle plus direct references for reading results.
    pub fn recording() -> (ObsHandle, Rc<RecordingTracer>, Rc<MetricsRegistry>) {
        let tracer = Rc::new(RecordingTracer::new());
        let metrics = Rc::new(MetricsRegistry::new());
        let handle = ObsHandle::disabled()
            .with_tracer(tracer.clone())
            .with_metrics(metrics.clone());
        (handle, tracer, metrics)
    }

    /// Like [`ObsHandle::recording`], but everything captured is a pure
    /// function of the simulation: the tracer stamps `wall_ns = 0`
    /// ([`RecordingTracer::deterministic`]) and host-clock timing
    /// histograms are disabled. Two identical sessions observed through
    /// this handle yield byte-identical traces and metrics snapshots —
    /// the mode the parallel sweep runner and the golden-artifact tests
    /// run under (DESIGN.md §10).
    pub fn deterministic_recording() -> (ObsHandle, Rc<RecordingTracer>, Rc<MetricsRegistry>) {
        let tracer = Rc::new(RecordingTracer::deterministic());
        let metrics = Rc::new(MetricsRegistry::new());
        let mut handle = ObsHandle::disabled()
            .with_tracer(tracer.clone())
            .with_metrics(metrics.clone());
        handle.host_timing = false;
        (handle, tracer, metrics)
    }

    /// True when an active tracer is attached (a [`NullTracer`] counts as
    /// inactive).
    #[inline]
    pub fn tracing(&self) -> bool {
        self.tracer.as_ref().is_some_and(|t| t.enabled())
    }

    /// The attached metrics registry, if any.
    pub fn metrics(&self) -> Option<&Rc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// True when a span profiler is attached.
    #[inline]
    pub fn profiling(&self) -> bool {
        self.profiler.is_some()
    }

    /// The attached profiler, if any.
    pub fn profiler(&self) -> Option<&Rc<Profiler>> {
        self.profiler.as_ref()
    }

    /// Opens a profiling span named `name`; the span closes when the
    /// returned guard drops. Without an attached profiler this is one
    /// branch and an inert guard — the same zero-cost-when-off contract
    /// as [`ObsHandle::emit`] (pinned by the `obs_overhead` ablation).
    #[inline]
    #[must_use = "the span closes when the guard drops; bind it to a scope"]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        match &self.profiler {
            Some(p) => p.span(name),
            None => SpanGuard::inert(),
        }
    }

    /// Emits an event. The closure only runs when an enabled tracer is
    /// attached, so payload construction (strings, vectors) is free on the
    /// disabled path.
    #[inline]
    pub fn emit<F: FnOnce() -> Event>(&self, at: Instant, build: F) {
        if let Some(t) = &self.tracer {
            if t.enabled() {
                t.record(at, build());
            }
        }
    }

    /// Increments a counter (no-op without a registry).
    #[inline]
    pub fn count(&self, name: &'static str, delta: u64) {
        if let Some(m) = &self.metrics {
            m.count(name, delta);
        }
    }

    /// Sets a gauge (no-op without a registry).
    #[inline]
    pub fn gauge(&self, name: &'static str, value: f64) {
        if let Some(m) = &self.metrics {
            m.gauge(name, value);
        }
    }

    /// Records a histogram observation (no-op without a registry).
    #[inline]
    pub fn observe(&self, name: &'static str, value: f64) {
        if let Some(m) = &self.metrics {
            m.observe(name, value);
        }
    }

    /// Runs `f`, recording its host wall-clock duration in nanoseconds into
    /// histogram `name` when a registry is attached. Without one — or on a
    /// deterministic handle ([`ObsHandle::deterministic_recording`]) —
    /// `f` runs untimed (no clock syscalls on the disabled path).
    #[inline]
    pub fn time<T, F: FnOnce() -> T>(&self, name: &'static str, f: F) -> T {
        if !self.host_timing {
            return f();
        }
        match &self.metrics {
            Some(m) => {
                let t0 = HostStopwatch::start();
                let out = f();
                let elapsed_ns = t0.elapsed_ns();
                m.observe(name, elapsed_ns as f64);
                out
            }
            None => f(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_never_builds_events() {
        let obs = ObsHandle::disabled();
        let mut built = false;
        obs.emit(Instant::ZERO, || {
            built = true;
            Event::StallBegin
        });
        assert!(!built);
        assert!(!obs.tracing());
    }

    #[test]
    fn null_tracer_suppresses_event_construction() {
        let obs = ObsHandle::disabled().with_tracer(Rc::new(NullTracer));
        let mut built = false;
        obs.emit(Instant::ZERO, || {
            built = true;
            Event::StallBegin
        });
        assert!(!built, "NullTracer must keep the closure unevaluated");
        assert!(!obs.tracing());
    }

    #[test]
    fn recording_tracer_stamps_seq_and_sim_time() {
        let (obs, tracer, _) = ObsHandle::recording();
        assert!(obs.tracing());
        obs.emit(Instant::from_secs(1), || Event::StallBegin);
        obs.emit(Instant::from_secs(2), || Event::StallEnd);
        let events = tracer.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[0].at, Instant::from_secs(1));
        assert_eq!(events[0].event, Event::StallBegin);
        assert!(events[1].wall_ns >= events[0].wall_ns);
    }

    #[test]
    fn take_drains_but_keeps_counting() {
        let (obs, tracer, _) = ObsHandle::recording();
        obs.emit(Instant::ZERO, || Event::StallBegin);
        assert_eq!(tracer.take().len(), 1);
        assert!(tracer.is_empty());
        obs.emit(Instant::ZERO, || Event::StallEnd);
        assert_eq!(tracer.snapshot()[0].seq, 1, "sequence continues after take");
    }

    #[test]
    fn deterministic_recording_is_wall_clock_free() {
        let (obs, tracer, metrics) = ObsHandle::deterministic_recording();
        assert!(obs.tracing());
        obs.emit(Instant::from_secs(1), || Event::StallBegin);
        obs.emit(Instant::from_secs(2), || Event::StallEnd);
        let events = tracer.snapshot();
        assert!(events.iter().all(|e| e.wall_ns == 0), "wall_ns must be 0");
        assert_eq!((events[0].seq, events[1].seq), (0, 1));
        // Host timing is off, but the closure still runs and other metrics
        // still record.
        assert_eq!(obs.time("policy.decision_ns", || 9u64), 9);
        obs.count("cache.hits", 1);
        let snap = metrics.snapshot();
        assert!(!snap.histograms.contains_key("policy.decision_ns"));
        assert_eq!(snap.counters["cache.hits"], 1);
    }

    #[test]
    fn time_returns_value_and_observes() {
        let (obs, _, metrics) = ObsHandle::recording();
        let out = obs.time("policy.decision_ns", || 42u64);
        assert_eq!(out, 42);
        let snap = metrics.snapshot();
        assert_eq!(snap.histograms["policy.decision_ns"].count, 1);
        // Untimed path still runs the closure.
        assert_eq!(ObsHandle::disabled().time("x", || 7u64), 7);
    }
}
