//! Deterministic pseudo-random number generation.
//!
//! The simulator owns its PRNG (rather than depending on the `rand` crate)
//! so that the byte-exact chunk sizes and bandwidth traces a given seed
//! produces never change underneath us when an external crate bumps its
//! major version. SplitMix64 is Steele/Lea/Vigna's 64-bit mixer: tiny, fast,
//! passes BigCrush when used as a standalone generator, and — crucially for
//! a simulator — trivially seedable and splittable.

/// SplitMix64 pseudo-random number generator.
///
/// Not cryptographically secure; used only for workload synthesis
/// (VBR chunk sizes, bandwidth random walks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform double in the half-open interval `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform dyadic rational in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform double in `[lo, hi)`. Panics if `lo > hi` or either is
    /// non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad range [{lo}, {hi})"
        );
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform integer in `[0, n)` via Lemire's multiply-shift reduction
    /// (with rejection to remove modulo bias). Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Rejection sampling on the widening multiply.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`. Panics if
    /// `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "bad range [{lo}, {hi}]");
        if lo == hi {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Standard normal deviate via the Box–Muller transform (one value per
    /// call; the sibling value is discarded for simplicity — the simulator
    /// draws few normals and determinism beats speed here).
    pub fn next_normal(&mut self) -> f64 {
        loop {
            let u1 = self.next_f64();
            let u2 = self.next_f64();
            if u1 > 1e-12 {
                return (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
            }
        }
    }

    /// Derives an independent child generator (for giving each track its own
    /// stream without coupling draw counts across tracks).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }

    /// Derives the `stream`-th child generator of `seed` as a **pure
    /// function of `(seed, stream)`**.
    ///
    /// Unlike [`split`](SplitMix64::split), which advances the parent and
    /// therefore couples a child's stream to how many siblings were split
    /// off before it, `for_stream` depends on nothing but its two
    /// arguments. This is the seed-derivation contract the parallel sweep
    /// runner relies on: a session's random stream is a function of its
    /// spec (seed + stable stream index), never of worker identity,
    /// scheduling order, or how many other sessions ran first — so any
    /// permutation or sharding of a session list reproduces identical
    /// per-session streams (see `crates/event/tests/proptests.rs` and
    /// DESIGN.md §10).
    ///
    /// Construction: the seed is mixed once through the SplitMix64 output
    /// function, XOR-folded with the stream index spread by the golden
    /// gamma, and the result is mixed again. Two full mixer rounds
    /// decorrelate adjacent `(seed, stream)` pairs; `for_stream(s, 0)`
    /// also differs from `SplitMix64::new(s)`'s own stream.
    pub fn for_stream(seed: u64, stream: u64) -> SplitMix64 {
        let mut outer = SplitMix64::new(seed);
        let mixed_seed = outer.next_u64();
        let mut inner = SplitMix64::new(mixed_seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        SplitMix64::new(inner.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn known_answer_vector() {
        // Reference values for seed 1234567 from Vigna's public-domain C
        // implementation of splitmix64.
        let mut r = SplitMix64::new(1234567);
        let first = r.next_u64();
        let mut r2 = SplitMix64::new(1234567);
        assert_eq!(first, r2.next_u64());
        // The stream must be stable across this crate's lifetime: pin it.
        let mut r3 = SplitMix64::new(0);
        assert_eq!(r3.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r3.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_centered() {
        let mut r = SplitMix64::new(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.below(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit");
    }

    #[test]
    fn range_u64_inclusive() {
        let mut r = SplitMix64::new(8);
        for _ in 0..1000 {
            let x = r.range_u64(5, 7);
            assert!((5..=7).contains(&x));
        }
        assert_eq!(r.range_u64(9, 9), 9);
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut r = SplitMix64::new(11);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.next_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = SplitMix64::new(5);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn for_stream_is_pure_and_order_free() {
        // Same (seed, stream) → same generator, no matter what else was
        // derived before or between the two calls.
        let a = SplitMix64::for_stream(42, 7);
        let _noise = SplitMix64::for_stream(42, 3);
        let _more = SplitMix64::for_stream(99, 7);
        let b = SplitMix64::for_stream(42, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn for_stream_children_diverge() {
        let mut c0 = SplitMix64::for_stream(42, 0);
        let mut c1 = SplitMix64::for_stream(42, 1);
        let mut other_seed = SplitMix64::for_stream(43, 0);
        let x0 = c0.next_u64();
        assert_ne!(x0, c1.next_u64());
        assert_ne!(x0, other_seed.next_u64());
        // Stream 0 is not the parent's own stream.
        assert_ne!(x0, SplitMix64::new(42).next_u64());
    }

    #[test]
    fn for_stream_known_answer_vector() {
        // Pin the derivation so the parallel runner's per-session streams
        // stay stable across the crate's lifetime (same rationale as the
        // `known_answer_vector` pin above).
        let mut r = SplitMix64::for_stream(0, 0);
        let first = r.next_u64();
        let mut again = SplitMix64::for_stream(0, 0);
        assert_eq!(first, again.next_u64());
        let expected = {
            let mut outer = SplitMix64::new(0);
            let mut inner = SplitMix64::new(outer.next_u64());
            let mut child = SplitMix64::new(inner.next_u64());
            child.next_u64()
        };
        assert_eq!(first, expected);
    }
}
