//! Conservative time-window bookkeeping for sharded simulations.
//!
//! A fleet simulation shards its sessions into independently-clocked event
//! queues (one per link domain). Shards only exchange state at fixed window
//! boundaries: every shard drains its queue up to the boundary with
//! [`EventQueue::pop_before`](crate::queue::EventQueue::pop_before), all
//! shards rendezvous at a barrier, shared state (origin demand, cache
//! pressure) is folded **in a fixed shard order**, and the next window
//! begins. Because no event inside a window can observe another shard's
//! state until the barrier, the result is independent of how shards are
//! assigned to worker threads — the foundation of the fleet determinism
//! contract (DESIGN.md §14).
//!
//! [`WindowClock`] is the pure arithmetic half of that protocol: mapping
//! window indices to boundary instants and instants back to window indices,
//! in exact integer microseconds.

use crate::time::{Duration, Instant};

/// Maps between window indices and boundary instants for a fixed window
/// width. Window `k` covers the half-open interval
/// `[k * width, (k + 1) * width)`: an event stamped exactly on a boundary
/// belongs to the *later* window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowClock {
    width_us: u64,
}

impl WindowClock {
    /// Creates a clock with the given window width. Panics when the width
    /// is zero — a zero-width window would make every event a boundary
    /// event and the sync protocol vacuous.
    #[must_use]
    pub fn new(width: Duration) -> Self {
        assert!(width > Duration::ZERO, "window width must be positive");
        WindowClock {
            width_us: width.as_micros(),
        }
    }

    /// The configured window width.
    #[must_use]
    pub fn width(&self) -> Duration {
        Duration::from_micros(self.width_us)
    }

    /// The exclusive end boundary of window `idx`, i.e. `(idx + 1) * width`.
    /// Panics on `u64` overflow — a simulation never runs that long.
    #[must_use]
    pub fn end_of(&self, idx: u64) -> Instant {
        let end = idx
            .checked_add(1)
            .and_then(|n| n.checked_mul(self.width_us))
            .expect("window boundary overflows u64 microseconds");
        Instant::from_micros(end)
    }

    /// The window index containing instant `t`.
    #[must_use]
    pub fn window_of(&self, t: Instant) -> u64 {
        t.as_micros() / self.width_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_are_half_open() {
        let w = WindowClock::new(Duration::from_millis(250));
        assert_eq!(w.end_of(0), Instant::from_millis(250));
        assert_eq!(w.end_of(3), Instant::from_millis(1000));
        // An instant exactly on a boundary belongs to the later window.
        assert_eq!(w.window_of(Instant::from_millis(249)), 0);
        assert_eq!(w.window_of(Instant::from_millis(250)), 1);
        assert_eq!(w.window_of(Instant::ZERO), 0);
    }

    #[test]
    fn window_of_inverts_end_of() {
        let w = WindowClock::new(Duration::from_micros(7));
        for idx in [0u64, 1, 5, 1000] {
            // The boundary instant is the first microsecond of window idx+1.
            assert_eq!(w.window_of(w.end_of(idx)), idx + 1);
        }
    }

    #[test]
    #[should_panic(expected = "window width must be positive")]
    fn rejects_zero_width() {
        let _ = WindowClock::new(Duration::ZERO);
    }
}
