//! Loom-lite model checking of the workspace's two concurrency protocols
//! (DESIGN.md §17).
//!
//! The parallel sweep runner and the fleet driver are the only two places
//! in the workspace where threads share mutable state, and both rest on
//! hand-argued memory-ordering reasoning: the runner's chunked claimer
//! hands out disjoint position ranges through a `Relaxed` `fetch_add`,
//! and the fleet driver's `WindowBoard` reuses per-worker slots by round
//! parity with a single barrier per window. PR 9's development log
//! records that an earlier parity scheme (indexing by *window* instead of
//! *processed round*) was a real race, caught only dynamically as a
//! deadlock. This module pins both protocols mechanically:
//!
//! 1. **A shared protocol core.** [`parity_of_round`], [`fold_slots`],
//!    [`next_window`], [`claim_range`] and [`ranges_partition`] are the
//!    pure decision functions of the two protocols. The production
//!    runner and fleet driver call them directly — so the logic the model
//!    checker exhausts is the *same code* the threads execute, not a
//!    transcription that can drift.
//!
//! 2. **A bounded model checker.** [`WindowModel`] and [`ClaimModel`]
//!    re-express the protocols' *memory access sequences* as small-step
//!    state machines over a modeled weak memory ([store buffers for
//!    `Relaxed` stores](MemOrder)), and [`explore`] enumerates every
//!    bounded thread interleaving (DFS over [`Choice`] sequences,
//!    including nondeterministic store-buffer flushes), asserting the
//!    protocol invariants:
//!
//!    * no slot is read in a parity epoch other than the one it was
//!      written for ([`Violation::StaleSlot`]),
//!    * every worker folds identical totals
//!      ([`Violation::FoldDivergence`]),
//!    * fast-forward never skips a window with pending events
//!      ([`Violation::SkippedPending`]),
//!    * claimed position ranges partition `0..n` exactly once
//!      ([`Violation::DoubleClaim`] / [`Violation::NotPartition`]),
//!    * the protocol terminates with no worker stranded at the
//!      rendezvous ([`Violation::Deadlock`]).
//!
//! Seeded-bug modes keep the checker honest: [`ParityRule::WindowIndex`]
//! reverts the PR 9 parity fix, [`ClaimStyle::LoadThenStore`] splits the
//! claim RMW, `barrier_flushes: false` strips the rendezvous of its
//! acquire-release edge, and `ff_overshoot` jumps one window too far.
//! Each must be *found* by the exhaustive search
//! (`crates/event/tests/sync_model.rs` pins all four), which is the
//! evidence the `ABR-L007` allowlist entries in `lint.toml` cite.
//!
//! What the model does **not** cover (DESIGN.md §17): real non-x86 weak
//! memory (the store-buffer model is TSO-shaped; `Acquire`/`Relaxed`
//! loads read the same value here), compiler reorderings, and unbounded
//! thread/window counts — random-schedule runs ([`run_random`]) probe
//! beyond the exhaustive bound but do not prove it.

use std::rc::Rc;

use crate::rng::SplitMix64;
use crate::time::Instant;
use crate::window::WindowClock;

// ---------------------------------------------------------------------------
// Shared protocol core — the pure functions the production runner and fleet
// driver execute, and the model checker exhausts.
// ---------------------------------------------------------------------------

/// The redundant deterministic fold every fleet worker computes after the
/// window barrier: fleet-wide uplink demand, pending-event count, and the
/// earliest pending event time (µs; `u64::MAX` when fully drained).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowFold {
    /// Total bytes offered to the uplinks this window.
    pub demand: u128,
    /// Total pending events across all workers (the stop signal).
    pub alive: u64,
    /// Earliest pending event time in microseconds (`u64::MAX` = none).
    pub min_next_us: u64,
}

/// The parity slot a processed round writes and reads. Parity counts
/// *processed rounds* (one per barrier), not the window index —
/// fast-forward can jump the window index by an odd amount, and window
/// parity would then reuse a slot with only one barrier in between
/// (the PR 9 race; [`ParityRule::WindowIndex`] re-creates it in the
/// model, where the exhaustive search finds it).
#[must_use]
pub fn parity_of_round(round: u64) -> usize {
    (round & 1) as usize
}

/// Folds per-worker `(demand, alive, next_at_us)` slots in the order the
/// iterator yields them. Integer addition and `min` are order-blind, so
/// every worker folding the same slots reaches the bit-identical
/// [`WindowFold`] regardless of grouping — the property that lets the
/// fold be computed redundantly at every worker instead of broadcast by
/// a leader over a second barrier.
pub fn fold_slots(slots: impl IntoIterator<Item = (u64, u64, u64)>) -> WindowFold {
    let mut fold = WindowFold {
        demand: 0,
        alive: 0,
        min_next_us: u64::MAX,
    };
    for (demand, alive, next_at) in slots {
        fold.demand += u128::from(demand);
        fold.alive += alive;
        fold.min_next_us = fold.min_next_us.min(next_at);
    }
    fold
}

/// The window the driver processes after window `k`, given the folded
/// barrier data: `k + 1` normally, or a quiescent fast-forward jump to
/// the window containing the globally earliest pending event when at
/// least `ff_horizon` windows in between are provably empty
/// (`ff_horizon == 0` disables the jump — the stepwise reference).
#[must_use]
pub fn next_window(k: u64, ff_horizon: u64, fold: &WindowFold, clock: &WindowClock) -> u64 {
    if ff_horizon > 0 && fold.alive > 0 {
        let m = clock.window_of(Instant::from_micros(fold.min_next_us));
        debug_assert!(m > k, "pending event inside a drained window");
        if m - (k + 1) >= ff_horizon {
            m
        } else {
            k + 1
        }
    } else {
        k + 1
    }
}

/// The half-open position range `[p0, min(p0 + chunk, n))` a claimed
/// counter value covers, or `None` when the counter has run past the
/// work list. Every claimer maps its `fetch_add` result through this one
/// function, so the model's partition proof is about the production
/// arithmetic.
#[must_use]
pub fn claim_range(p0: usize, chunk: usize, n: usize) -> Option<(usize, usize)> {
    if p0 >= n {
        None
    } else {
        Some((p0, p0.saturating_add(chunk).min(n)))
    }
}

/// Whether `ranges` (half-open, unordered) partition `0..n` exactly:
/// non-empty, pairwise disjoint, and jointly covering. Sorts in place.
/// Shared by the model checker's final claimer invariant and the
/// `debug-invariants` claim ledger in the production runner.
#[must_use]
pub fn ranges_partition(ranges: &mut [(usize, usize)], n: usize) -> bool {
    ranges.sort_unstable();
    let mut at = 0usize;
    for &(s, e) in ranges.iter() {
        if s != at || e <= s {
            return false;
        }
        at = e;
    }
    at == n
}

// ---------------------------------------------------------------------------
// Modeled weak memory.
// ---------------------------------------------------------------------------

/// Memory orderings the model distinguishes. `Relaxed` stores enter a
/// per-thread FIFO store buffer and become globally visible only when
/// flushed (by a nondeterministic [`Choice::Flush`] step, a stronger
/// store, an RMW, or a flushing rendezvous); `Release`/`SeqCst` stores
/// drain the buffer and commit immediately. Loads read the thread's own
/// buffer first (store-to-load forwarding), then committed memory —
/// `Acquire` and `Relaxed` loads return the same value in this model
/// (happens-before *edges* are modeled by who flushed when, not by load
/// annotations), which is the TSO-shaped approximation DESIGN.md §17
/// documents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOrder {
    /// Buffered store / plain load.
    Relaxed,
    /// Flushing store (pairs with `Acquire` across a committed value).
    Release,
    /// Plain load (value-equal to `Relaxed` here; see above).
    Acquire,
    /// Flushing store and plain load.
    SeqCst,
}

/// One modeled memory cell: a value stamped with the protocol epoch
/// (round) it was written for. The stamp is the checker's oracle for the
/// parity-freshness invariant; `u64::MAX` marks a never-written cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ModCell {
    value: u64,
    epoch: u64,
}

const UNWRITTEN: u64 = u64::MAX;

/// The modeled shared memory: committed cells plus one FIFO store buffer
/// per thread.
#[derive(Debug, Clone)]
struct ModelMem {
    cells: Vec<ModCell>,
    buffers: Vec<Vec<(usize, ModCell)>>,
}

impl ModelMem {
    fn new(threads: usize, cells: usize) -> ModelMem {
        ModelMem {
            cells: vec![
                ModCell {
                    value: 0,
                    epoch: UNWRITTEN
                };
                cells
            ],
            buffers: vec![Vec::new(); threads],
        }
    }

    fn store(&mut self, t: usize, cell: usize, value: u64, epoch: u64, order: MemOrder) {
        let write = ModCell { value, epoch };
        match order {
            MemOrder::Relaxed | MemOrder::Acquire => self.buffers[t].push((cell, write)),
            MemOrder::Release | MemOrder::SeqCst => {
                self.flush_all(t);
                self.cells[cell] = write;
            }
        }
    }

    fn load(&self, t: usize, cell: usize) -> ModCell {
        self.buffers[t]
            .iter()
            .rev()
            .find(|(c, _)| *c == cell)
            .map_or(self.cells[cell], |(_, v)| *v)
    }

    /// Atomic read-modify-write. RMWs on one location always act on the
    /// latest value in its modification order — even at `Relaxed` — which
    /// is exactly what makes the chunked claimer sound; the model
    /// realizes that by committing through main memory in one step.
    fn fetch_add(&mut self, t: usize, cell: usize, delta: u64) -> u64 {
        self.flush_all(t);
        let old = self.cells[cell].value;
        self.cells[cell].value += delta;
        self.cells[cell].epoch = 0;
        old
    }

    fn flush_one(&mut self, t: usize) {
        if !self.buffers[t].is_empty() {
            let (cell, write) = self.buffers[t].remove(0);
            self.cells[cell] = write;
        }
    }

    fn flush_all(&mut self, t: usize) {
        while !self.buffers[t].is_empty() {
            self.flush_one(t);
        }
    }

    fn has_pending(&self, t: usize) -> bool {
        !self.buffers[t].is_empty()
    }
}

// ---------------------------------------------------------------------------
// Schedules, violations, and the explorer.
// ---------------------------------------------------------------------------

/// One scheduler decision: run thread `t`'s next program step, or flush
/// the oldest entry of thread `t`'s store buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// Execute the next program step of thread `t`.
    Step(usize),
    /// Commit the oldest buffered store of thread `t` to shared memory.
    Flush(usize),
}

/// A protocol invariant breach (or a scheduling dead end) found by the
/// checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A worker read a parity slot stamped with a different round than
    /// the one it is folding — the slot was rewritten (or never written)
    /// in the same parity epoch it was read.
    StaleSlot {
        /// The reading worker.
        reader: usize,
        /// The worker whose slot was read.
        slot_of: usize,
        /// The round the reader is folding.
        round: u64,
        /// The epoch stamped on the value actually read
        /// (`u64::MAX` = never written).
        found_epoch: u64,
    },
    /// Two workers folded different totals for the same round.
    FoldDivergence {
        /// The diverging round.
        round: u64,
        /// The diverging worker.
        worker: usize,
    },
    /// An event was consumed in a later window than the one containing
    /// it — fast-forward skipped a window with pending events.
    SkippedPending {
        /// The worker owning the event.
        worker: usize,
        /// The event's timestamp (µs).
        event_us: u64,
        /// The window the event belongs to.
        expected_window: u64,
        /// The window it was actually consumed in.
        processed_window: u64,
    },
    /// A work position was claimed by more than one claimer.
    DoubleClaim {
        /// The doubly-claimed position.
        position: usize,
    },
    /// The claimed ranges do not partition `0..n`.
    NotPartition,
    /// No thread can take a step but the protocol has not finished —
    /// some worker is stranded at the rendezvous (how the PR 9 race
    /// surfaced dynamically).
    Deadlock,
    /// A worker finished the protocol with events still pending.
    Unfinished {
        /// The worker left with unconsumed events.
        worker: usize,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::StaleSlot {
                reader,
                slot_of,
                round,
                found_epoch,
            } => write!(
                f,
                "worker {reader} folding round {round} read worker {slot_of}'s slot \
                 stamped epoch {found_epoch}"
            ),
            Violation::FoldDivergence { round, worker } => {
                write!(
                    f,
                    "worker {worker} folded a different total for round {round}"
                )
            }
            Violation::SkippedPending {
                worker,
                event_us,
                expected_window,
                processed_window,
            } => write!(
                f,
                "worker {worker}'s event at {event_us}us (window {expected_window}) \
                 was consumed in window {processed_window}"
            ),
            Violation::DoubleClaim { position } => {
                write!(f, "position {position} claimed twice")
            }
            Violation::NotPartition => write!(f, "claimed ranges do not partition 0..n"),
            Violation::Deadlock => write!(f, "no runnable thread but the protocol is unfinished"),
            Violation::Unfinished { worker } => {
                write!(f, "worker {worker} finished with events pending")
            }
        }
    }
}

/// A schedule that breaches an invariant: the exact [`Choice`] sequence
/// plus what it broke.
#[derive(Debug, Clone)]
pub struct CounterExample {
    /// The scheduler decisions, in order, that reach the violation.
    pub schedule: Vec<Choice>,
    /// What broke.
    pub violation: Violation,
}

impl std::fmt::Display for CounterExample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (after {} scheduler steps: {:?})",
            self.violation,
            self.schedule.len(),
            self.schedule
        )
    }
}

/// What an exhaustive exploration visited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Complete schedules (maximal interleavings) enumerated.
    pub schedules: u64,
    /// Scheduler steps applied across all schedules.
    pub steps: u64,
}

/// A schedule-driven protocol state machine the explorer can drive.
///
/// `choices` must list every enabled scheduler decision (it is the
/// deadlock oracle: an empty list with [`Model::done`] false is a
/// deadlock); `apply` advances the state by one decision, failing with
/// the violated invariant.
pub trait Model: Clone {
    /// Appends every currently-enabled scheduler decision to `out`.
    fn choices(&self, out: &mut Vec<Choice>);
    /// Applies one decision, checking invariants on the way.
    fn apply(&mut self, choice: Choice) -> Result<(), Violation>;
    /// Whether every thread has run its program to completion.
    fn done(&self) -> bool;
    /// End-of-run invariants (partition checks, liveness).
    fn finalize(&self) -> Result<(), Violation>;
}

struct Frame<M> {
    state: M,
    lead: Option<Choice>,
    choices: Vec<Choice>,
    next: usize,
}

/// Exhaustively enumerates every schedule of `initial` (DFS over
/// [`Choice`] sequences), checking invariants at every step and at every
/// terminal state. Returns the visit counts, or the first
/// counterexample. Panics if the state space exceeds `max_schedules`
/// complete schedules — the bound is the test's explicit budget, and
/// blowing it means the model (not the protocol) needs shrinking.
pub fn explore<M: Model>(
    initial: &M,
    max_schedules: u64,
) -> Result<ExploreStats, Box<CounterExample>> {
    let mut stats = ExploreStats::default();
    let mut path: Vec<Choice> = Vec::new();
    let root_choices = {
        let mut c = Vec::new();
        initial.choices(&mut c);
        c
    };
    let mut stack = vec![Frame {
        state: initial.clone(),
        lead: None,
        choices: root_choices,
        next: 0,
    }];
    while let Some(top) = stack.last_mut() {
        if top.choices.is_empty() {
            // Terminal state: a complete schedule.
            stats.schedules += 1;
            assert!(
                stats.schedules <= max_schedules,
                "state space exceeds the {max_schedules}-schedule budget; shrink the model bounds"
            );
            let outcome = if top.state.done() {
                top.state.finalize()
            } else {
                Err(Violation::Deadlock)
            };
            if let Err(violation) = outcome {
                return Err(Box::new(CounterExample {
                    schedule: path.clone(),
                    violation,
                }));
            }
            if stack.pop().expect("top exists").lead.is_some() {
                path.pop();
            }
            continue;
        }
        if top.next >= top.choices.len() {
            if stack.pop().expect("top exists").lead.is_some() {
                path.pop();
            }
            continue;
        }
        let choice = top.choices[top.next];
        top.next += 1;
        let mut child = top.state.clone();
        stats.steps += 1;
        path.push(choice);
        if let Err(violation) = child.apply(choice) {
            return Err(Box::new(CounterExample {
                schedule: path,
                violation,
            }));
        }
        let mut child_choices = Vec::new();
        child.choices(&mut child_choices);
        stack.push(Frame {
            state: child,
            lead: Some(choice),
            choices: child_choices,
            next: 0,
        });
    }
    Ok(stats)
}

/// Drives `initial` through one uniformly random schedule drawn from
/// `rng` — the probe for thread/window counts beyond the exhaustive
/// bound. `max_steps` is a liveness budget: a correct protocol at sane
/// bounds terminates far below it.
pub fn run_random<M: Model>(
    initial: &M,
    rng: &mut SplitMix64,
    max_steps: usize,
) -> Result<(), Box<CounterExample>> {
    let mut state = initial.clone();
    let mut path = Vec::new();
    let mut choices = Vec::new();
    for _ in 0..max_steps {
        choices.clear();
        state.choices(&mut choices);
        if choices.is_empty() {
            break;
        }
        #[allow(clippy::cast_possible_truncation)]
        let pick = (rng.next_u64() % choices.len() as u64) as usize;
        let choice = choices[pick];
        path.push(choice);
        if let Err(violation) = state.apply(choice) {
            return Err(Box::new(CounterExample {
                schedule: path,
                violation,
            }));
        }
    }
    let outcome = if state.done() {
        state.finalize()
    } else {
        Err(Violation::Deadlock)
    };
    outcome.map_err(|violation| {
        Box::new(CounterExample {
            schedule: path,
            violation,
        })
    })
}

// ---------------------------------------------------------------------------
// The WindowBoard protocol model.
// ---------------------------------------------------------------------------

/// Which parity indexes the double-buffered slots: the shipped protocol
/// ([`ParityRule::Round`]) or the reverted PR 9 bug
/// ([`ParityRule::WindowIndex`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParityRule {
    /// Parity of the processed-round counter — one flip per barrier, so a
    /// parity can only be reused after every reader passed the next
    /// barrier. The shipped protocol.
    Round,
    /// Parity of the window index — a fast-forward jump by an even Δk
    /// reuses a parity with only one barrier in between, racing readers
    /// of the previous round's slots. The PR 9 bug, kept as a seeded
    /// regression the exhaustive search must rediscover.
    WindowIndex,
}

/// Bounds and seeded-bug switches for one [`WindowModel`] run.
#[derive(Debug, Clone)]
pub struct WindowModelCfg {
    /// Per-worker ascending event times (µs). Each event contributes a
    /// deterministic demand weight when drained.
    pub events: Vec<Vec<u64>>,
    /// Window width (µs).
    pub window_us: u64,
    /// Fast-forward horizon (`0` = stepwise).
    pub ff_horizon: u64,
    /// Slot-parity rule (seeded bug: [`ParityRule::WindowIndex`]).
    pub parity: ParityRule,
    /// Ordering of the slot publish stores.
    pub store_order: MemOrder,
    /// Ordering of the slot fold loads.
    pub load_order: MemOrder,
    /// Real `Barrier::wait` is an acquire-release rendezvous; `false`
    /// models a hypothetical barrier with no memory semantics (seeded
    /// bug: `Relaxed` publishes then stay buffered past the rendezvous).
    pub barrier_flushes: bool,
    /// Seeded bug: jump one window past the fast-forward target, which
    /// must trip the skipped-pending invariant.
    pub ff_overshoot: bool,
}

impl WindowModelCfg {
    /// The shipped protocol at the production orderings (`Release`
    /// publishes, `Acquire` folds, flushing rendezvous), over the given
    /// per-worker event times.
    #[must_use]
    pub fn shipped(events: Vec<Vec<u64>>, window_us: u64, ff_horizon: u64) -> WindowModelCfg {
        WindowModelCfg {
            events,
            window_us,
            ff_horizon,
            parity: ParityRule::Round,
            store_order: MemOrder::Release,
            load_order: MemOrder::Acquire,
            barrier_flushes: true,
            ff_overshoot: false,
        }
    }
}

/// Per-worker program position within one round of the window protocol,
/// mirroring `fleet/driver.rs::run_worker`'s loop body step for step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WPhase {
    /// Drain events below the window boundary, pre-sum, publish the slot.
    DrainPublish,
    /// Arrive at the rendezvous (blocked until all workers arrive).
    Arrive,
    /// Fold: read worker `ww`'s parity slot.
    Read(usize),
    /// Fold complete: decide rate/stop/fast-forward.
    Decide,
    /// Left the loop.
    Done,
}

#[derive(Debug, Clone)]
struct WWorker {
    phase: WPhase,
    arrived: bool,
    k: u64,
    round: u64,
    next_event: usize,
    /// Slots read so far this round, in worker order.
    acc: Vec<(u64, u64, u64)>,
}

/// The fleet driver's window protocol as a schedule-driven state
/// machine: W workers × (drain → publish → rendezvous → redundant fold →
/// decide/fast-forward), over the modeled memory, with every protocol
/// decision delegated to the shared [`fold_slots`]/[`next_window`]/
/// [`parity_of_round`] core the production driver executes.
#[derive(Debug, Clone)]
pub struct WindowModel {
    cfg: Rc<WindowModelCfg>,
    clock: WindowClock,
    mem: ModelMem,
    workers: Vec<WWorker>,
    /// First fold recorded per round — later deciders must match it.
    round_folds: Vec<(u64, WindowFold)>,
}

/// The demand weight one drained event contributes (deterministic, and
/// distinct across nearby timestamps so folds of different event sets
/// cannot collide).
fn event_demand(t: u64) -> u64 {
    t % 997 + 1
}

impl WindowModel {
    /// Builds the model; `cfg.events` length fixes the worker count.
    #[must_use]
    pub fn new(cfg: WindowModelCfg) -> WindowModel {
        let workers = cfg.events.len();
        assert!(workers >= 1, "window model needs at least one worker");
        for evs in &cfg.events {
            assert!(
                evs.windows(2).all(|w| w[0] <= w[1]),
                "per-worker events must ascend"
            );
        }
        let clock = WindowClock::new(crate::time::Duration::from_micros(cfg.window_us));
        WindowModel {
            cfg: Rc::new(cfg),
            clock,
            mem: ModelMem::new(workers, workers * 2 * 3),
            workers: (0..workers)
                .map(|_| WWorker {
                    phase: WPhase::DrainPublish,
                    arrived: false,
                    k: 0,
                    round: 0,
                    next_event: 0,
                    acc: Vec::new(),
                })
                .collect(),
            round_folds: Vec::new(),
        }
    }

    fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Cell index of `(parity, worker, field)` — fields 0/1/2 are
    /// demand/alive/next_at, matching `WindowBoard`'s three slot arrays.
    fn cell(&self, parity: usize, w: usize, field: usize) -> usize {
        (parity * self.worker_count() + w) * 3 + field
    }

    fn parity_of(&self, worker: &WWorker) -> usize {
        match self.cfg.parity {
            ParityRule::Round => parity_of_round(worker.round),
            ParityRule::WindowIndex => (worker.k & 1) as usize,
        }
    }

    fn step_worker(&mut self, w: usize) -> Result<(), Violation> {
        let phase = self.workers[w].phase;
        match phase {
            WPhase::DrainPublish => {
                let (k, round) = (self.workers[w].k, self.workers[w].round);
                let parity = self.parity_of(&self.workers[w]);
                let end = self.clock.end_of(k).as_micros();
                let events = &self.cfg.events[w];
                let mut demand = 0u64;
                let mut idx = self.workers[w].next_event;
                while idx < events.len() && events[idx] < end {
                    let t = events[idx];
                    let expected = self.clock.window_of(Instant::from_micros(t));
                    if expected != k {
                        return Err(Violation::SkippedPending {
                            worker: w,
                            event_us: t,
                            expected_window: expected,
                            processed_window: k,
                        });
                    }
                    demand += event_demand(t);
                    idx += 1;
                }
                self.workers[w].next_event = idx;
                let alive = (events.len() - idx) as u64;
                let next = events.get(idx).copied().unwrap_or(u64::MAX);
                let order = self.cfg.store_order;
                for (field, value) in [(0, demand), (1, alive), (2, next)] {
                    let cell = self.cell(parity, w, field);
                    self.mem.store(w, cell, value, round, order);
                }
                self.workers[w].phase = WPhase::Arrive;
                Ok(())
            }
            WPhase::Arrive => {
                if self.cfg.barrier_flushes {
                    self.mem.flush_all(w);
                }
                self.workers[w].arrived = true;
                let all_in = self
                    .workers
                    .iter()
                    .all(|x| x.arrived || x.phase == WPhase::Done);
                let any_done = self.workers.iter().any(|x| x.phase == WPhase::Done);
                if all_in && !any_done {
                    for x in &mut self.workers {
                        x.arrived = false;
                        x.phase = WPhase::Read(0);
                        x.acc.clear();
                    }
                }
                // A worker arriving while another is already Done can
                // never be released: std::Barrier counts a fixed number
                // of participants. The stranding is caught as a deadlock
                // when no runnable step remains.
                Ok(())
            }
            WPhase::Read(ww) => {
                let round = self.workers[w].round;
                let parity = self.parity_of(&self.workers[w]);
                let mut triple = [0u64; 3];
                for (field, slot) in triple.iter_mut().enumerate() {
                    let got = self.mem.load(w, self.cell(parity, ww, field));
                    if got.epoch != round {
                        return Err(Violation::StaleSlot {
                            reader: w,
                            slot_of: ww,
                            round,
                            found_epoch: got.epoch,
                        });
                    }
                    *slot = got.value;
                }
                self.workers[w].acc.push((triple[0], triple[1], triple[2]));
                self.workers[w].phase = if ww + 1 < self.worker_count() {
                    WPhase::Read(ww + 1)
                } else {
                    WPhase::Decide
                };
                Ok(())
            }
            WPhase::Decide => {
                let round = self.workers[w].round;
                let fold = fold_slots(self.workers[w].acc.drain(..));
                match self.round_folds.iter().find(|(r, _)| *r == round) {
                    Some((_, first)) if *first != fold => {
                        return Err(Violation::FoldDivergence { round, worker: w });
                    }
                    Some(_) => {}
                    None => self.round_folds.push((round, fold)),
                }
                if fold.alive == 0 {
                    self.workers[w].phase = WPhase::Done;
                    return Ok(());
                }
                let k = self.workers[w].k;
                let mut nk = next_window(k, self.cfg.ff_horizon, &fold, &self.clock);
                if self.cfg.ff_overshoot {
                    nk += 1;
                }
                self.workers[w].k = nk;
                self.workers[w].round = round + 1;
                self.workers[w].phase = WPhase::DrainPublish;
                Ok(())
            }
            WPhase::Done => unreachable!("done workers are never scheduled"),
        }
    }
}

impl Model for WindowModel {
    fn choices(&self, out: &mut Vec<Choice>) {
        // Sound partial-order reduction: a `Decide` step touches no
        // modeled shared memory (the fold reads local `acc`; the
        // cross-worker fold comparison is an order-insensitive oracle),
        // and an `Arrive` with an empty store buffer only toggles the
        // rendezvous flag, which other threads' loads and stores never
        // read. Both commute with every other enabled step, so the
        // explorer schedules the first such step deterministically
        // instead of branching — every interleaving it skips is
        // equivalent (same memory-operation order) to one it keeps.
        for (w, worker) in self.workers.iter().enumerate() {
            let forced = match worker.phase {
                WPhase::Decide => true,
                WPhase::Arrive => !worker.arrived && !self.mem.has_pending(w),
                _ => false,
            };
            if forced {
                out.push(Choice::Step(w));
                return;
            }
        }
        for (w, worker) in self.workers.iter().enumerate() {
            let runnable = match worker.phase {
                WPhase::Done => false,
                // Arrived workers block until the rendezvous releases
                // them (which happens inside the last arriver's step).
                WPhase::Arrive => !worker.arrived,
                _ => true,
            };
            if runnable {
                out.push(Choice::Step(w));
            }
            if self.mem.has_pending(w) {
                out.push(Choice::Flush(w));
            }
        }
    }

    fn apply(&mut self, choice: Choice) -> Result<(), Violation> {
        match choice {
            Choice::Step(w) => self.step_worker(w),
            Choice::Flush(w) => {
                self.mem.flush_one(w);
                Ok(())
            }
        }
    }

    fn done(&self) -> bool {
        self.workers.iter().all(|w| w.phase == WPhase::Done)
    }

    fn finalize(&self) -> Result<(), Violation> {
        for (w, worker) in self.workers.iter().enumerate() {
            if worker.next_event != self.cfg.events[w].len() {
                return Err(Violation::Unfinished { worker: w });
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The chunked-claimer model.
// ---------------------------------------------------------------------------

/// How the model claims the shared position counter: the shipped
/// one-step RMW, or the seeded racy split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimStyle {
    /// `fetch_add(chunk)` — one atomic RMW per claim, the shipped
    /// protocol (`runner.rs`'s `Relaxed` claim counter).
    FetchAdd,
    /// Load the counter, then store `counter + chunk` as two separate
    /// steps — a seeded atomicity bug (two claimers can read the same
    /// `p0`) the exhaustive search must find. Note this is racy at
    /// *any* ordering: the defect is lost atomicity, not weakness.
    LoadThenStore,
}

/// Bounds for one [`ClaimModel`] run.
#[derive(Debug, Clone, Copy)]
pub struct ClaimModelCfg {
    /// Claimer threads.
    pub threads: usize,
    /// Work items (positions `0..n`).
    pub n: usize,
    /// Positions per claim.
    pub chunk: usize,
    /// Shipped RMW vs seeded split (see [`ClaimStyle`]).
    pub style: ClaimStyle,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CPhase {
    Claim,
    /// `LoadThenStore` only: the loaded counter value awaiting write-back.
    StoreBack(usize),
    Done,
}

/// The runner's chunked claiming protocol as a schedule-driven state
/// machine: T claimers looping `fetch_add(chunk)` →
/// [`claim_range`] → mark positions, with per-position claim counts as
/// the double-claim oracle and [`ranges_partition`] as the terminal
/// invariant — the same two functions the production runner's
/// `debug-invariants` ledger asserts.
#[derive(Debug, Clone)]
pub struct ClaimModel {
    cfg: ClaimModelCfg,
    mem: ModelMem,
    phases: Vec<CPhase>,
    claimed: Vec<u8>,
    ranges: Vec<(usize, usize)>,
}

impl ClaimModel {
    /// Builds the model.
    #[must_use]
    pub fn new(cfg: ClaimModelCfg) -> ClaimModel {
        assert!(cfg.threads >= 1 && cfg.chunk >= 1, "degenerate claim model");
        ClaimModel {
            cfg,
            mem: ModelMem::new(cfg.threads, 1),
            phases: vec![CPhase::Claim; cfg.threads],
            claimed: vec![0; cfg.n],
            ranges: Vec::new(),
        }
    }

    fn take(&mut self, t: usize, p0: usize) -> Result<(), Violation> {
        match claim_range(p0, self.cfg.chunk, self.cfg.n) {
            None => self.phases[t] = CPhase::Done,
            Some((s, e)) => {
                for p in s..e {
                    self.claimed[p] += 1;
                    if self.claimed[p] > 1 {
                        return Err(Violation::DoubleClaim { position: p });
                    }
                }
                self.ranges.push((s, e));
            }
        }
        Ok(())
    }
}

impl Model for ClaimModel {
    fn choices(&self, out: &mut Vec<Choice>) {
        for (t, phase) in self.phases.iter().enumerate() {
            if *phase != CPhase::Done {
                out.push(Choice::Step(t));
            }
            if self.mem.has_pending(t) {
                out.push(Choice::Flush(t));
            }
        }
    }

    fn apply(&mut self, choice: Choice) -> Result<(), Violation> {
        let Choice::Step(t) = choice else {
            let Choice::Flush(t) = choice else {
                unreachable!()
            };
            self.mem.flush_one(t);
            return Ok(());
        };
        match self.phases[t] {
            CPhase::Claim => match self.cfg.style {
                ClaimStyle::FetchAdd => {
                    #[allow(clippy::cast_possible_truncation)]
                    let p0 = self.mem.fetch_add(t, 0, self.cfg.chunk as u64) as usize;
                    self.take(t, p0)
                }
                ClaimStyle::LoadThenStore => {
                    #[allow(clippy::cast_possible_truncation)]
                    let p0 = self.mem.load(t, 0).value as usize;
                    self.phases[t] = CPhase::StoreBack(p0);
                    Ok(())
                }
            },
            CPhase::StoreBack(p0) => {
                self.mem
                    .store(t, 0, (p0 + self.cfg.chunk) as u64, 0, MemOrder::SeqCst);
                self.phases[t] = CPhase::Claim;
                self.take(t, p0)
            }
            CPhase::Done => unreachable!("done claimers are never scheduled"),
        }
    }

    fn done(&self) -> bool {
        self.phases.iter().all(|p| *p == CPhase::Done)
    }

    fn finalize(&self) -> Result<(), Violation> {
        let mut ranges = self.ranges.clone();
        if ranges_partition(&mut ranges, self.cfg.n) {
            Ok(())
        } else {
            Err(Violation::NotPartition)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn fold_is_grouping_blind() {
        let slots = [(5, 1, 30), (7, 0, u64::MAX), (11, 2, 12)];
        let all = fold_slots(slots);
        let regrouped = fold_slots([(5 + 7, 1, 30), (11, 2, 12), (0, 0, u64::MAX)]);
        assert_eq!(all, regrouped);
        assert_eq!(all.demand, 23);
        assert_eq!(all.alive, 3);
        assert_eq!(all.min_next_us, 12);
    }

    #[test]
    fn next_window_matches_the_driver_rule() {
        let clock = WindowClock::new(Duration::from_millis(250));
        let fold = |alive, min_next_us| WindowFold {
            demand: 0,
            alive,
            min_next_us,
        };
        // Stepwise when disabled, when drained, and under the horizon.
        assert_eq!(next_window(4, 0, &fold(3, 2_000_000), &clock), 5);
        assert_eq!(next_window(4, 1, &fold(0, u64::MAX), &clock), 5);
        assert_eq!(next_window(4, 1, &fold(3, 1_300_000), &clock), 5);
        // Jumps to the window containing the earliest pending event.
        assert_eq!(next_window(4, 1, &fold(3, 2_100_000), &clock), 8);
        assert_eq!(next_window(4, 4, &fold(3, 2_100_000), &clock), 5);
    }

    #[test]
    fn claim_range_clips_and_ends() {
        assert_eq!(claim_range(0, 4, 10), Some((0, 4)));
        assert_eq!(claim_range(8, 4, 10), Some((8, 10)));
        assert_eq!(claim_range(10, 4, 10), None);
        assert_eq!(
            claim_range(usize::MAX - 1, 4, usize::MAX),
            Some((usize::MAX - 1, usize::MAX))
        );
    }

    #[test]
    fn ranges_partition_checks_disjoint_cover() {
        assert!(ranges_partition(&mut [(4, 10), (0, 4)], 10));
        assert!(ranges_partition(&mut [], 0));
        assert!(!ranges_partition(&mut [(0, 4), (4, 9)], 10), "gap at end");
        assert!(!ranges_partition(&mut [(0, 5), (4, 10)], 10), "overlap");
        assert!(!ranges_partition(&mut [(1, 10)], 10), "gap at start");
        assert!(
            !ranges_partition(&mut [(0, 10), (10, 10)], 10),
            "empty range"
        );
    }

    #[test]
    fn store_buffer_forwards_to_owner_only() {
        let mut mem = ModelMem::new(2, 1);
        mem.store(0, 0, 42, 7, MemOrder::Relaxed);
        assert_eq!(mem.load(0, 0).value, 42, "owner sees its buffered store");
        assert_eq!(mem.load(1, 0).epoch, UNWRITTEN, "other thread does not");
        mem.flush_one(0);
        assert_eq!(mem.load(1, 0).value, 42, "visible after flush");
        assert_eq!(mem.load(1, 0).epoch, 7);
    }

    #[test]
    fn release_store_commits_immediately() {
        let mut mem = ModelMem::new(2, 2);
        mem.store(0, 0, 1, 0, MemOrder::Relaxed);
        mem.store(0, 1, 2, 0, MemOrder::Release);
        assert_eq!(mem.load(1, 0).value, 1, "release drains earlier stores");
        assert_eq!(mem.load(1, 1).value, 2);
    }
}
