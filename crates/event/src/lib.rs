//! # abr-event — deterministic discrete-event simulation foundation
//!
//! This crate provides the time base, pseudo-random number generator and
//! event queue used by every other crate in the `abr-unmuxed` workspace.
//!
//! Design follows the smoltcp school of simulation-friendly networking code:
//!
//! * **Integer time.** [`Instant`] and [`Duration`] are `u64` microsecond
//!   newtypes. The simulation clock never touches floating point, so runs
//!   are bit-reproducible across platforms and optimization levels.
//! * **Owned randomness.** [`rng::SplitMix64`] is a tiny, well-known PRNG
//!   embedded here so that simulation results do not depend on the major
//!   version of an external `rand` crate.
//! * **Deterministic ordering.** [`queue::EventQueue`] breaks timestamp ties
//!   by insertion sequence number, so two events scheduled for the same
//!   instant always fire in the order they were scheduled.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arena;
pub mod queue;
pub mod rng;
pub mod sync_model;
pub mod time;
pub mod window;

pub use arena::{Arena, SlotId};
pub use queue::{EventKey, EventQueue};
pub use rng::SplitMix64;
pub use time::{busy_union, Duration, Instant};
pub use window::WindowClock;
