//! A generational slot arena for dense, churning collections.
//!
//! Fleet drivers keep tens of thousands of concurrently active sessions,
//! each inserted at arrival and removed at completion. A `BTreeMap<usize,
//! T>` pays pointer-chasing and node allocation on every wake; this arena
//! stores values in a flat `Vec`, reuses freed slots through a free list,
//! and guards against stale handles with a per-slot generation counter.
//!
//! Determinism contract (DESIGN.md §10/§15): slot assignment is a pure
//! function of the insert/remove sequence, so identical schedules produce
//! identical [`SlotId`]s. The arena deliberately exposes **no keyed
//! iteration order** — `values_mut` visits slots in storage order, which
//! tracks allocation history, not any artifact-relevant key. Dispatch
//! paths must therefore never fold observable results out of arena
//! iteration (abr-lint ABR-L005 flags `.values()` in those modules);
//! they address sessions individually by the [`SlotId`] carried in their
//! scheduled events.

use core::fmt;

/// A generational handle into an [`Arena`].
///
/// Stale handles (the slot was freed, or freed and reused) are detected
/// by the generation counter: `get_mut`/`remove` return `None` instead of
/// aliasing the new occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId {
    index: u32,
    generation: u32,
}

impl SlotId {
    /// The raw slot index (stable while this handle is live).
    pub fn index(self) -> usize {
        self.index as usize
    }
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot {}v{}", self.index, self.generation)
    }
}

#[derive(Debug)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// A flat, generation-checked slot arena.
#[derive(Debug)]
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    /// Freed slot indices; `insert` pops the most recently freed first
    /// (LIFO keeps the live region dense and the reuse order
    /// deterministic).
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena::new()
    }
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Arena<T> {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// An empty arena with room for `capacity` values before reallocating.
    pub fn with_capacity(capacity: usize) -> Arena<T> {
        Arena {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the arena holds no live values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a value, reusing the most recently freed slot if any, and
    /// returns its generational handle.
    pub fn insert(&mut self, value: T) -> SlotId {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.value.is_none(), "free list pointed at a live slot");
            slot.value = Some(value);
            return SlotId {
                index,
                generation: slot.generation,
            };
        }
        let index = u32::try_from(self.slots.len()).expect("arena exceeds u32 slots");
        self.slots.push(Slot {
            generation: 0,
            value: Some(value),
        });
        SlotId {
            index,
            generation: 0,
        }
    }

    /// Removes and returns the value behind `id`, or `None` if the handle
    /// is stale (already removed, or its slot was reused).
    pub fn remove(&mut self, id: SlotId) -> Option<T> {
        let slot = self.slots.get_mut(id.index as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        let value = slot.value.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(id.index);
        self.len -= 1;
        Some(value)
    }

    /// Mutable access to the value behind `id`, or `None` for stale
    /// handles.
    pub fn get_mut(&mut self, id: SlotId) -> Option<&mut T> {
        let slot = self.slots.get_mut(id.index as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        slot.value.as_mut()
    }

    /// Shared access to the value behind `id`, or `None` for stale
    /// handles.
    pub fn get(&self, id: SlotId) -> Option<&T> {
        let slot = self.slots.get(id.index as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        slot.value.as_ref()
    }

    /// Iterates live values in **storage order** — allocation history, not
    /// a key order. Never fold artifact-relevant results out of this in a
    /// dispatch path (ABR-L005); it exists for teardown sweeps and
    /// diagnostics.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(|s| s.value.as_ref())
    }

    /// Heap footprint of the arena's backing storage in bytes.
    pub fn backing_bytes(&self) -> u64 {
        (self.slots.capacity() * core::mem::size_of::<Slot<T>>()
            + self.free.capacity() * core::mem::size_of::<u32>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut arena = Arena::new();
        let a = arena.insert("a");
        let b = arena.insert("b");
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a), Some(&"a"));
        *arena.get_mut(b).unwrap() = "b2";
        assert_eq!(arena.remove(b), Some("b2"));
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.get(b), None, "removed handle is stale");
    }

    #[test]
    fn slots_are_reused_lifo_with_fresh_generations() {
        let mut arena = Arena::new();
        let a = arena.insert(1);
        let b = arena.insert(2);
        arena.remove(a);
        arena.remove(b);
        // LIFO: b's slot first.
        let c = arena.insert(3);
        assert_eq!(c.index(), b.index());
        assert_ne!(c, b, "reused slot carries a new generation");
        assert_eq!(arena.get(b), None, "old handle must not alias");
        assert_eq!(arena.get(c), Some(&3));
    }

    #[test]
    fn slot_assignment_is_schedule_deterministic() {
        let run = || {
            let mut arena = Arena::new();
            let mut ids = Vec::new();
            for i in 0..100 {
                ids.push(arena.insert(i));
                if i % 3 == 0 {
                    arena.remove(ids[i / 2]);
                }
            }
            ids
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn values_iterates_live_slots_only() {
        let mut arena = Arena::new();
        let a = arena.insert(10);
        arena.insert(20);
        arena.remove(a);
        let live: Vec<i32> = arena.values().copied().collect();
        assert_eq!(live, vec![20]);
        assert!(arena.backing_bytes() > 0);
    }
}
