//! Deterministic event queue.
//!
//! A thin wrapper over `BinaryHeap` that orders events by `(time, seq)`,
//! where `seq` is a monotonically increasing insertion counter. Two events
//! scheduled for the same instant therefore always pop in the order they
//! were pushed — the property that keeps multi-flow simulations (several
//! downloads completing at the same microsecond) reproducible.

use crate::time::Instant;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry: reversed ordering so the `BinaryHeap` max-heap pops
/// the *earliest* event first.
struct Entry<E> {
    at: Instant,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: earliest time (then lowest seq) is the "greatest" entry.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timestamped events with deterministic tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Instant,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at `t = 0`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Instant::ZERO,
        }
    }

    /// The current virtual time: the timestamp of the most recently popped
    /// event (or zero before any pop).
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Schedules `event` to fire at `at`. Panics if `at` is in the past —
    /// scheduling backwards in time is always a logic error.
    pub fn schedule(&mut self, at: Instant, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(Instant, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Instant> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_secs(3), "c");
        q.schedule(Instant::from_secs(1), "a");
        q.schedule(Instant::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Instant::from_secs(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_secs(2), ());
        q.schedule(Instant::from_secs(7), ());
        assert_eq!(q.now(), Instant::ZERO);
        q.pop();
        assert_eq!(q.now(), Instant::from_secs(2));
        q.pop();
        assert_eq!(q.now(), Instant::from_secs(7));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_schedule() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_secs(5), ());
        q.pop();
        q.schedule(Instant::from_secs(4), ());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Instant::from_millis(10), 1);
        q.schedule(Instant::from_millis(5), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Instant::from_millis(5)));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_secs(1), "first");
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (Instant::from_secs(1), "first"));
        // Scheduling relative to the advanced clock works.
        q.schedule(q.now() + Duration::from_secs(1), "second");
        assert_eq!(q.pop().unwrap().1, "second");
    }
}
