//! Deterministic event queue.
//!
//! A thin wrapper over `BinaryHeap` that orders events by `(time, seq)`,
//! where `seq` is a monotonically increasing insertion counter. Two events
//! scheduled for the same instant therefore always pop in the order they
//! were pushed — the property that keeps multi-flow simulations (several
//! downloads completing at the same microsecond) reproducible.
//!
//! # Tie-break semantics
//!
//! The queue is a strict priority queue over `(at, seq)`:
//!
//! 1. **Earlier timestamps pop first.** Time never runs backwards: popping
//!    advances [`EventQueue::now`], and scheduling before `now` panics.
//! 2. **Within one timestamp, insertion order wins (FIFO).** The `seq`
//!    counter is assigned at [`EventQueue::schedule`] time and never reused,
//!    including across cancellations — cancelling an entry does not renumber
//!    or reorder anything else.
//! 3. **Cancellation is exact.** [`EventQueue::cancel`] removes exactly the
//!    entry whose [`EventKey`] it is handed; a key is invalidated once its
//!    entry pops or is cancelled, and cancelling it again is a no-op that
//!    returns `false`.
//!
//! These three rules make a simulation's event order a pure function of the
//! schedule/cancel call sequence — the foundation of the workspace's
//! bit-reproducibility contract (DESIGN.md §10).

use crate::time::Instant;
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

/// One scheduled entry: reversed ordering so the `BinaryHeap` max-heap pops
/// the *earliest* event first.
struct Entry<E> {
    at: Instant,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: earliest time (then lowest seq) is the "greatest" entry.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// Handle to one scheduled entry, returned by [`EventQueue::schedule`] and
/// consumed by [`EventQueue::cancel`]. Keys are unique for the lifetime of
/// the queue (never reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey(u64);

/// A priority queue of timestamped events with deterministic tie-breaking
/// (see the module docs for the exact semantics).
///
/// Cancellation is lazy: cancelled entries stay in the heap as tombstones
/// and are skipped on pop, so both `schedule` and `cancel` stay `O(log n)`.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Seqs of live (scheduled, not popped, not cancelled) entries.
    live: BTreeSet<u64>,
    /// Seqs of cancelled-but-not-yet-popped entries (tombstones).
    cancelled: BTreeSet<u64>,
    next_seq: u64,
    now: Instant,
    /// `(at, seq)` of the most recent pop — the FIFO tie-break witness
    /// (runtime invariant checking; see DESIGN.md §12).
    #[cfg(feature = "debug-invariants")]
    last_popped: Option<(Instant, u64)>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at `t = 0`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: BTreeSet::new(),
            cancelled: BTreeSet::new(),
            next_seq: 0,
            now: Instant::ZERO,
            #[cfg(feature = "debug-invariants")]
            last_popped: None,
        }
    }

    /// Structural invariants, checked after every mutation when built with
    /// `debug-invariants`: the live and tombstone sets partition the heap,
    /// and every tracked seq was actually handed out.
    fn debug_check(&self) {
        #[cfg(feature = "debug-invariants")]
        {
            debug_assert_eq!(
                self.live.len() + self.cancelled.len(),
                self.heap.len(),
                "live + tombstones must partition the heap"
            );
            debug_assert!(
                self.live.intersection(&self.cancelled).next().is_none(),
                "an entry cannot be both live and cancelled"
            );
            debug_assert!(
                self.live
                    .iter()
                    .chain(self.cancelled.iter())
                    .all(|&s| s < self.next_seq),
                "tracked seq beyond the allocation counter"
            );
        }
    }

    /// The current virtual time: the timestamp of the most recently popped
    /// event (or zero before any pop).
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Schedules `event` to fire at `at` and returns a key that can later
    /// [`cancel`](EventQueue::cancel) it. Panics if `at` is in the past —
    /// scheduling backwards in time is always a logic error.
    pub fn schedule(&mut self, at: Instant, event: E) -> EventKey {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        self.live.insert(seq);
        self.debug_check();
        EventKey(seq)
    }

    /// Cancels the entry behind `key`. Returns `true` if the entry was
    /// still pending; `false` if it already popped or was already
    /// cancelled. Cancellation never disturbs the ordering of other
    /// entries.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if self.live.remove(&key.0) {
            self.cancelled.insert(key.0);
            self.debug_check();
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest live event, advancing the clock to
    /// its timestamp. Cancelled entries are skipped (and dropped). Returns
    /// `None` when no live events remain.
    pub fn pop(&mut self) -> Option<(Instant, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue; // tombstone: discard and keep looking
            }
            debug_assert!(entry.at >= self.now);
            // FIFO tie-break stability: pops must strictly ascend in
            // `(at, seq)` — equal-time events leave in insertion order.
            #[cfg(feature = "debug-invariants")]
            {
                if let Some(last) = self.last_popped {
                    debug_assert!(
                        (entry.at, entry.seq) > last,
                        "pop order regressed: {:?} after {last:?}",
                        (entry.at, entry.seq)
                    );
                }
                self.last_popped = Some((entry.at, entry.seq));
            }
            self.now = entry.at;
            self.live.remove(&entry.seq);
            self.debug_check();
            return Some((entry.at, entry.event));
        }
        None
    }

    /// Removes and returns the earliest live event **strictly before**
    /// `limit`, advancing the clock to its timestamp. When the next live
    /// event is at or after `limit` (or the queue is empty) the clock is
    /// left untouched and `None` is returned; tombstones ahead of the
    /// boundary are discarded along the way.
    ///
    /// This is the primitive behind conservative time-window sharding
    /// (DESIGN.md §14): a shard drains its queue up to the window boundary,
    /// synchronises with its peers, and resumes — events at exactly the
    /// boundary belong to the *next* window so that boundary-time state
    /// exchanged at the barrier is complete.
    pub fn pop_before(&mut self, limit: Instant) -> Option<(Instant, E)> {
        loop {
            let head = self.heap.peek()?;
            if self.cancelled.contains(&head.seq) {
                // Tombstone: discard and keep looking.
                let entry = self.heap.pop().expect("peeked entry must pop");
                self.cancelled.remove(&entry.seq);
                self.debug_check();
                continue;
            }
            if head.at >= limit {
                return None;
            }
            return self.pop();
        }
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&self) -> Option<Instant> {
        self.heap
            .iter()
            .filter(|e| !self.cancelled.contains(&e.seq))
            .map(|e| e.at)
            .min()
    }

    /// Timestamp of the next live event, pruning any leading tombstones.
    ///
    /// Behaves exactly like [`peek_time`](EventQueue::peek_time) but takes
    /// `&mut self` so cancelled entries at the head of the heap can be
    /// discarded instead of filtered around. Each tombstone is removed at
    /// most once, so the cost is amortized `O(log n)` versus `peek_time`'s
    /// `O(n)` full-heap scan — the difference that makes per-window
    /// quiescence checks affordable in the fleet driver (DESIGN.md §16).
    pub fn next_time(&mut self) -> Option<Instant> {
        loop {
            let head = self.heap.peek()?;
            if self.cancelled.contains(&head.seq) {
                let entry = self.heap.pop().expect("peeked entry must pop");
                self.cancelled.remove(&entry.seq);
                self.debug_check();
                continue;
            }
            return Some(head.at);
        }
    }

    /// Number of pending (live) events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True if no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_secs(3), "c");
        q.schedule(Instant::from_secs(1), "a");
        q.schedule(Instant::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Instant::from_secs(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_secs(2), ());
        q.schedule(Instant::from_secs(7), ());
        assert_eq!(q.now(), Instant::ZERO);
        q.pop();
        assert_eq!(q.now(), Instant::from_secs(2));
        q.pop();
        assert_eq!(q.now(), Instant::from_secs(7));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_schedule() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_secs(5), ());
        q.pop();
        q.schedule(Instant::from_secs(4), ());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Instant::from_millis(10), 1);
        q.schedule(Instant::from_millis(5), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Instant::from_millis(5)));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_secs(1), "first");
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (Instant::from_secs(1), "first"));
        // Scheduling relative to the advanced clock works.
        q.schedule(q.now() + Duration::from_secs(1), "second");
        assert_eq!(q.pop().unwrap().1, "second");
    }

    #[test]
    fn cancelled_events_never_pop() {
        let mut q = EventQueue::new();
        let _a = q.schedule(Instant::from_secs(1), "a");
        let b = q.schedule(Instant::from_secs(2), "b");
        let _c = q.schedule(Instant::from_secs(3), "c");
        assert!(q.cancel(b));
        assert_eq!(q.len(), 2);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "c"]);
    }

    #[test]
    fn cancel_is_exact_and_idempotent() {
        let mut q = EventQueue::new();
        let a = q.schedule(Instant::from_secs(1), "a");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "second cancel is a no-op");
        assert!(q.pop().is_none());
        // A popped key can no longer be cancelled.
        let b = q.schedule(Instant::from_secs(2), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(!q.cancel(b));
    }

    #[test]
    fn cancelling_one_tie_preserves_fifo_of_the_rest() {
        let mut q = EventQueue::new();
        let t = Instant::from_secs(4);
        let keys: Vec<EventKey> = (0..5).map(|i| q.schedule(t, i)).collect();
        assert!(q.cancel(keys[2]));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![0, 1, 3, 4]);
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(Instant::from_secs(1), "a");
        q.schedule(Instant::from_secs(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.peek_time(), Some(Instant::from_secs(2)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn pop_before_respects_the_boundary() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_secs(1), "a");
        q.schedule(Instant::from_secs(2), "b");
        q.schedule(Instant::from_secs(3), "c");
        // Boundary events belong to the next window: `b` at t=2 is NOT
        // popped by a limit of 2.
        assert_eq!(q.pop_before(Instant::from_secs(2)).unwrap().1, "a");
        assert_eq!(q.pop_before(Instant::from_secs(2)), None);
        assert_eq!(q.now(), Instant::from_secs(1), "clock untouched by refusal");
        assert_eq!(q.pop_before(Instant::from_secs(10)).unwrap().1, "b");
        assert_eq!(q.pop_before(Instant::from_secs(10)).unwrap().1, "c");
        assert_eq!(q.pop_before(Instant::from_secs(10)), None);
    }

    #[test]
    fn pop_before_discards_tombstones_past_the_boundary() {
        let mut q = EventQueue::new();
        let a = q.schedule(Instant::from_secs(1), "a");
        q.schedule(Instant::from_secs(5), "b");
        assert!(q.cancel(a));
        // The cancelled head is discarded even though the live head is
        // beyond the limit.
        assert_eq!(q.pop_before(Instant::from_secs(2)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_before(Instant::from_secs(6)).unwrap().1, "b");
    }

    #[test]
    fn pop_before_matches_pop_order() {
        let mut q1 = EventQueue::new();
        let mut q2 = EventQueue::new();
        let t = Instant::from_secs(4);
        for i in 0..6 {
            q1.schedule(t, i);
            q2.schedule(t, i);
        }
        let via_pop: Vec<_> = std::iter::from_fn(|| q1.pop()).map(|(_, e)| e).collect();
        let via_window: Vec<_> = std::iter::from_fn(|| q2.pop_before(Instant::from_secs(5)))
            .map(|(_, e)| e)
            .collect();
        assert_eq!(via_pop, via_window);
    }

    #[test]
    fn next_time_agrees_with_peek_time() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None::<Instant>);
        q.schedule(Instant::from_millis(10), 1);
        q.schedule(Instant::from_millis(5), 2);
        assert_eq!(q.next_time(), q.peek_time());
        assert_eq!(q.next_time(), Some(Instant::from_millis(5)));
    }

    #[test]
    fn next_time_prunes_cancelled_heads_without_losing_live_entries() {
        let mut q = EventQueue::new();
        let a = q.schedule(Instant::from_secs(1), "a");
        let b = q.schedule(Instant::from_secs(2), "b");
        q.schedule(Instant::from_secs(3), "c");
        assert!(q.cancel(a));
        assert!(q.cancel(b));
        assert_eq!(q.next_time(), Some(Instant::from_secs(3)));
        assert_eq!(q.len(), 1);
        // The pruned tombstones are gone for good; popping still yields
        // exactly the live entries in order.
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.next_time(), None);
    }

    #[test]
    fn cancel_rejects_unknown_key() {
        let mut q: EventQueue<()> = EventQueue::new();
        // A key that was never handed out (seq beyond next_seq).
        assert!(!q.cancel(EventKey(42)));
    }
}
