//! Microsecond-resolution virtual time.
//!
//! The simulation clock is a `u64` count of microseconds since the start of
//! the run. One microsecond is fine enough to resolve sub-millisecond
//! throughput-sampling windows (Shaka samples every 125 ms; a 16 KB/interval
//! filter boundary at 1 Mbps falls on an exact microsecond grid) while a
//! `u64` still covers ~584,000 years of virtual time — overflow is treated
//! as a logic bug and panics in debug builds via the standard checked
//! arithmetic of the underlying integer ops.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// A point in virtual time, measured in microseconds from the start of the
/// simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant {
    micros: u64,
}

impl Instant {
    /// The origin of virtual time (t = 0).
    pub const ZERO: Instant = Instant { micros: 0 };

    /// Creates an instant from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Instant { micros }
    }

    /// Creates an instant from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Instant {
            micros: millis * 1_000,
        }
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Instant {
            micros: secs * MICROS_PER_SEC,
        }
    }

    /// Creates an instant from fractional seconds, rounding to the nearest
    /// microsecond. Panics on negative or non-finite input.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time {secs}");
        Instant {
            micros: (secs * MICROS_PER_SEC as f64).round() as u64,
        }
    }

    /// This instant as a whole number of microseconds.
    pub const fn as_micros(self) -> u64 {
        self.micros
    }

    /// This instant in fractional seconds (for reporting only; the
    /// simulation itself never consumes this).
    pub fn as_secs_f64(self) -> f64 {
        self.micros as f64 / MICROS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`. Panics if `earlier` is later than
    /// `self` (time never flows backwards in the simulator).
    pub fn duration_since(self, earlier: Instant) -> Duration {
        Duration::from_micros(
            self.micros
                .checked_sub(earlier.micros)
                .expect("duration_since: earlier instant is in the future"),
        )
    }

    /// Saturating difference: zero if `earlier` is later than `self`.
    pub fn saturating_duration_since(self, earlier: Instant) -> Duration {
        Duration::from_micros(self.micros.saturating_sub(earlier.micros))
    }

    /// The earlier of two instants.
    pub fn min(self, other: Instant) -> Instant {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two instants.
    pub fn max(self, other: Instant) -> Instant {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant {
            micros: self
                .micros
                .checked_add(rhs.as_micros())
                .expect("Instant overflow"),
        }
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, rhs: Duration) -> Instant {
        Instant {
            micros: self
                .micros
                .checked_sub(rhs.as_micros())
                .expect("Instant underflow"),
        }
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// A span of virtual time, measured in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration {
    micros: u64,
}

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration { micros: 0 };

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Duration { micros }
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Duration {
            micros: millis * 1_000,
        }
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration {
            micros: secs * MICROS_PER_SEC,
        }
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond. Panics on negative or non-finite input.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration {secs}");
        Duration {
            micros: (secs * MICROS_PER_SEC as f64).round() as u64,
        }
    }

    /// This duration as a whole number of microseconds.
    pub const fn as_micros(self) -> u64 {
        self.micros
    }

    /// This duration as whole milliseconds, truncating.
    pub const fn as_millis(self) -> u64 {
        self.micros / 1_000
    }

    /// This duration in fractional seconds (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.micros as f64 / MICROS_PER_SEC as f64
    }

    /// True if this duration is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.micros == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration {
            micros: self.micros.saturating_sub(rhs.micros),
        }
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Duration) -> Option<Duration> {
        self.micros
            .checked_sub(rhs.micros)
            .map(Duration::from_micros)
    }

    /// The smaller of two durations.
    pub fn min(self, other: Duration) -> Duration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two durations.
    pub fn max(self, other: Duration) -> Duration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Multiplies by a rational factor `num/den`, rounding to the nearest
    /// microsecond, using 128-bit intermediates so no realistic simulation
    /// duration can overflow.
    pub fn mul_ratio(self, num: u64, den: u64) -> Duration {
        assert!(den != 0, "mul_ratio division by zero");
        let micros = (self.micros as u128 * num as u128 + den as u128 / 2) / den as u128;
        Duration {
            micros: u64::try_from(micros).expect("mul_ratio overflow"),
        }
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration {
            micros: self
                .micros
                .checked_add(rhs.micros)
                .expect("Duration overflow"),
        }
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration {
            micros: self
                .micros
                .checked_sub(rhs.micros)
                .expect("Duration underflow"),
        }
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration {
            micros: self.micros.checked_mul(rhs).expect("Duration overflow"),
        }
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration {
            micros: self.micros / rhs,
        }
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl core::iter::Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

/// Total length of the union of (possibly overlapping, possibly unsorted)
/// `[start, end)` intervals — the "busy time" of a resource given the spans
/// it was occupied. Intervals with `end <= start` contribute nothing.
///
/// Used by the player's bandwidth meter (union of concurrent delivery
/// segments in a measurement window) and by report code deriving link busy
/// time from transfer logs.
pub fn busy_union(mut intervals: Vec<(Instant, Instant)>) -> Duration {
    busy_union_in_place(&mut intervals)
}

/// [`busy_union`] over a caller-owned scratch buffer: sorts `intervals` in
/// place and leaves the sorted contents behind, so hot paths (the player's
/// bandwidth meter runs once per engine round) can reuse one allocation
/// forever — clear, refill, and call this again.
pub fn busy_union_in_place(intervals: &mut [(Instant, Instant)]) -> Duration {
    intervals.sort();
    let mut total = Duration::ZERO;
    let mut cur: Option<(Instant, Instant)> = None;
    for &(lo, hi) in intervals.iter() {
        if hi <= lo {
            continue;
        }
        match cur {
            Some((clo, chi)) if lo <= chi => cur = Some((clo, chi.max(hi))),
            Some((clo, chi)) => {
                total += chi - clo;
                cur = Some((lo, hi));
            }
            None => cur = Some((lo, hi)),
        }
    }
    if let Some((clo, chi)) = cur {
        total += chi - clo;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_roundtrip_units() {
        assert_eq!(Instant::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(Instant::from_millis(1500).as_micros(), 1_500_000);
        assert_eq!(Instant::from_micros(7).as_micros(), 7);
        assert_eq!(Instant::from_secs_f64(0.125).as_micros(), 125_000);
    }

    #[test]
    fn instant_arithmetic() {
        let t = Instant::from_secs(10);
        assert_eq!(t + Duration::from_secs(5), Instant::from_secs(15));
        assert_eq!(t - Duration::from_secs(4), Instant::from_secs(6));
        assert_eq!(Instant::from_secs(15) - t, Duration::from_secs(5));
    }

    #[test]
    fn instant_ordering_and_minmax() {
        let a = Instant::from_millis(100);
        let b = Instant::from_millis(200);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let a = Instant::from_secs(1);
        let b = Instant::from_secs(2);
        assert_eq!(a.saturating_duration_since(b), Duration::ZERO);
        assert_eq!(b.saturating_duration_since(a), Duration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "earlier instant is in the future")]
    fn duration_since_panics_backwards() {
        let _ = Instant::from_secs(1).duration_since(Instant::from_secs(2));
    }

    #[test]
    fn duration_arithmetic() {
        let d = Duration::from_millis(250);
        assert_eq!(d + d, Duration::from_millis(500));
        assert_eq!(d * 4, Duration::from_secs(1));
        assert_eq!(Duration::from_secs(1) / 8, Duration::from_millis(125));
        assert_eq!(
            Duration::from_secs(3) - Duration::from_secs(1),
            Duration::from_secs(2)
        );
    }

    #[test]
    fn duration_mul_ratio_rounds() {
        // 1 s * 1/3 = 333333.33 µs → rounds to 333333
        assert_eq!(Duration::from_secs(1).mul_ratio(1, 3).as_micros(), 333_333);
        // 1 s * 2/3 = 666666.67 µs → rounds to 666667
        assert_eq!(Duration::from_secs(1).mul_ratio(2, 3).as_micros(), 666_667);
    }

    #[test]
    fn duration_saturating_and_checked() {
        let a = Duration::from_secs(1);
        let b = Duration::from_secs(2);
        assert_eq!(a.saturating_sub(b), Duration::ZERO);
        assert_eq!(b.checked_sub(a), Some(Duration::from_secs(1)));
        assert_eq!(a.checked_sub(b), None);
    }

    #[test]
    fn duration_sum() {
        let total: Duration = [Duration::from_secs(1), Duration::from_millis(500)]
            .into_iter()
            .sum();
        assert_eq!(total, Duration::from_millis(1500));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(Instant::from_millis(1250).to_string(), "1.250s");
        assert_eq!(Duration::from_micros(1_000).to_string(), "0.001s");
    }

    fn iv(lo: u64, hi: u64) -> (Instant, Instant) {
        (Instant::from_secs(lo), Instant::from_secs(hi))
    }

    #[test]
    fn busy_union_empty_and_single() {
        assert_eq!(busy_union(vec![]), Duration::ZERO);
        assert_eq!(busy_union(vec![iv(2, 5)]), Duration::from_secs(3));
    }

    #[test]
    fn busy_union_merges_overlaps() {
        // [0,4) ∪ [2,6) ∪ [5,7) = [0,7).
        assert_eq!(
            busy_union(vec![iv(0, 4), iv(2, 6), iv(5, 7)]),
            Duration::from_secs(7)
        );
        // Containment: [1,9) swallows [2,3).
        assert_eq!(busy_union(vec![iv(2, 3), iv(1, 9)]), Duration::from_secs(8));
    }

    #[test]
    fn busy_union_counts_gaps_once() {
        // [0,2) and [5,6): total 3, not 6.
        assert_eq!(busy_union(vec![iv(5, 6), iv(0, 2)]), Duration::from_secs(3));
    }

    #[test]
    fn busy_union_touching_intervals_merge() {
        // [0,2) ∪ [2,4): adjacent, union is 4 with no double-count.
        assert_eq!(busy_union(vec![iv(0, 2), iv(2, 4)]), Duration::from_secs(4));
    }

    #[test]
    fn busy_union_ignores_degenerate_intervals() {
        assert_eq!(
            busy_union(vec![iv(3, 3), iv(1, 2), iv(9, 4)]),
            Duration::from_secs(1)
        );
    }

    #[test]
    fn busy_union_is_order_independent() {
        let a = vec![iv(0, 3), iv(7, 9), iv(2, 5)];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(busy_union(a), busy_union(b));
    }
}

/// Serialization as raw microsecond counts (enabled by the `serde`
/// feature): an [`Instant`] or [`Duration`] is a single JSON number.
#[cfg(feature = "serde")]
mod serde_impls {
    use super::{Duration, Instant};
    use serde::{Deserialize, FromValueError, Serialize, Value};

    impl Serialize for Instant {
        fn to_value(&self) -> Value {
            self.as_micros().to_value()
        }
    }

    impl Deserialize for Instant {
        fn from_value(v: &Value) -> Result<Self, FromValueError> {
            u64::from_value(v).map(Instant::from_micros)
        }
    }

    impl Serialize for Duration {
        fn to_value(&self) -> Value {
            self.as_micros().to_value()
        }
    }

    impl Deserialize for Duration {
        fn from_value(v: &Value) -> Result<Self, FromValueError> {
            u64::from_value(v).map(Duration::from_micros)
        }
    }
}
