//! Exhaustive and randomized model checks of the two concurrency
//! protocols (DESIGN.md §17): the fleet driver's single-barrier
//! round-parity `WindowBoard` and the runner's chunked claimer.
//!
//! The exhaustive tests are the evidence cited by the `ABR-L007`
//! allowlist entries in `lint.toml`: the shipped protocol passes every
//! bounded interleaving at the production memory orderings, while each
//! seeded bug (the PR 9 window-index parity, a rendezvous with no memory
//! semantics, a fast-forward overshoot, a torn claim RMW) is rediscovered
//! as a concrete counterexample schedule.

use abr_event::rng::SplitMix64;
use abr_event::sync_model::{
    explore, run_random, ClaimModel, ClaimModelCfg, ClaimStyle, MemOrder, ParityRule, Violation,
    WindowModel, WindowModelCfg,
};
use proptest::prelude::*;

/// One million complete schedules: generous for every bounded workload
/// below (the largest needs ~200k), tight enough to scream if a model
/// change blows up the state space.
const BUDGET: u64 = 1_000_000;

/// The fast-forward workload: worker 0 drains in window 0; worker 1 has
/// a second event in window 2, so with `ff_horizon = 1` both workers
/// jump `k = 0 → 2` — an even Δk, which is exactly the parity-reuse
/// trigger for the reverted PR 9 window-index scheme.
fn jump_workload() -> WindowModelCfg {
    WindowModelCfg::shipped(vec![vec![100_000], vec![150_000, 2_100_000]], 1_000_000, 1)
}

/// A two-window stepwise workload (no fast-forward) for the parity
/// variants at the production orderings.
fn stepwise_workload() -> WindowModelCfg {
    WindowModelCfg::shipped(vec![vec![100_000], vec![150_000, 1_100_000]], 1_000_000, 0)
}

/// A single-window workload for the store-buffer (`Relaxed`) variants:
/// modeled flush nondeterminism multiplies the state space by ~90,000×
/// across a second round (measured: 22M schedules vs 3,156), and the
/// publish→fold visibility being probed is already fully exercised by
/// one round.
fn single_window_workload() -> WindowModelCfg {
    WindowModelCfg::shipped(vec![vec![100_000], vec![150_000]], 1_000_000, 0)
}

#[test]
fn shipped_window_protocol_passes_exhaustively() {
    let stats = explore(&WindowModel::new(jump_workload()), BUDGET)
        .unwrap_or_else(|cex| panic!("shipped protocol violated: {cex}"));
    // The bound is real work, not a vacuous pass.
    assert!(
        stats.schedules > 100,
        "suspiciously small state space: {stats:?}"
    );
}

#[test]
fn shipped_window_protocol_passes_at_seqcst() {
    let cfg = WindowModelCfg {
        store_order: MemOrder::SeqCst,
        load_order: MemOrder::SeqCst,
        ..jump_workload()
    };
    explore(&WindowModel::new(cfg), BUDGET)
        .unwrap_or_else(|cex| panic!("SeqCst variant violated: {cex}"));
}

/// `Relaxed` publishes with a flushing rendezvous pass: the barrier's
/// acquire-release edge alone is enough to order publish before fold.
/// (The production driver still uses `Release`/`Acquire` slot accesses —
/// belt and braces — but this pins which edge is load-bearing.)
#[test]
fn relaxed_publish_with_flushing_rendezvous_is_safe() {
    let cfg = WindowModelCfg {
        store_order: MemOrder::Relaxed,
        load_order: MemOrder::Relaxed,
        ..single_window_workload()
    };
    let stats = explore(&WindowModel::new(cfg), BUDGET)
        .unwrap_or_else(|cex| panic!("relaxed+rendezvous violated: {cex}"));
    assert!(
        stats.schedules > 100,
        "store-buffer choices missing: {stats:?}"
    );
}

/// Strip the rendezvous of its memory semantics and `Relaxed` publishes
/// stay in the writer's store buffer past the barrier: a reader folds an
/// unwritten (or stale) slot. This is the happens-before edge named by
/// the `ABR-L007` justifications — without it, weak publishes are racy.
#[test]
fn relaxed_publish_without_rendezvous_edge_is_found_unsafe() {
    let cfg = WindowModelCfg {
        store_order: MemOrder::Relaxed,
        load_order: MemOrder::Relaxed,
        barrier_flushes: false,
        ..single_window_workload()
    };
    let cex = explore(&WindowModel::new(cfg), BUDGET)
        .expect_err("a rendezvous with no memory semantics must leak a stale slot");
    assert!(
        matches!(cex.violation, Violation::StaleSlot { .. }),
        "expected a stale-slot read, got: {cex}"
    );
}

/// Regression pin for the PR 9 race: parity keyed on the *window index*
/// deadlocked the fleet driver when fast-forward jumped an even Δk. The
/// exhaustive search must rediscover it from the protocol rules alone —
/// worker 0, one round ahead after the jump, republishes the same parity
/// slots that worker 1 is still folding.
#[test]
fn window_index_parity_bug_is_rediscovered() {
    let cfg = WindowModelCfg {
        parity: ParityRule::WindowIndex,
        ..jump_workload()
    };
    let cex = explore(&WindowModel::new(cfg), BUDGET)
        .expect_err("window-index parity must race on an even-Δk fast-forward");
    assert!(
        matches!(
            cex.violation,
            Violation::StaleSlot { .. } | Violation::FoldDivergence { .. }
        ),
        "expected the parity race, got: {cex}"
    );
}

/// The same window-index parity passes when fast-forward is disabled —
/// which is exactly why the bug survived until PR 9 wired `ff_horizon`
/// up: stepwise advance flips window parity every round.
#[test]
fn window_index_parity_is_safe_without_fast_forward() {
    let cfg = WindowModelCfg {
        parity: ParityRule::WindowIndex,
        ..stepwise_workload()
    };
    explore(&WindowModel::new(cfg), BUDGET)
        .unwrap_or_else(|cex| panic!("stepwise window-index parity violated: {cex}"));
}

/// A fast-forward that jumps one window past the earliest pending event
/// consumes that event in the wrong window — the skipped-pending
/// invariant (the production driver's `debug_assert!(m > k)` guard plus
/// the quiescence proof) must catch it.
#[test]
fn fast_forward_overshoot_is_found() {
    let cfg = WindowModelCfg {
        ff_overshoot: true,
        ..jump_workload()
    };
    let cex = explore(&WindowModel::new(cfg), BUDGET)
        .expect_err("overshooting fast-forward must skip a pending window");
    assert!(
        matches!(cex.violation, Violation::SkippedPending { .. }),
        "expected a skipped pending event, got: {cex}"
    );
}

/// Three workers over one window (10,080 schedules; a second round
/// pushes past 50M — the exhaustive worker bound is 3, with larger
/// counts covered by the random-schedule proptests below).
#[test]
fn three_worker_window_protocol_passes_exhaustively() {
    let cfg = WindowModelCfg::shipped(
        vec![vec![100_000], vec![150_000], vec![200_000]],
        1_000_000,
        0,
    );
    explore(&WindowModel::new(cfg), BUDGET)
        .unwrap_or_else(|cex| panic!("three-worker protocol violated: {cex}"));
}

#[test]
fn fetch_add_claimer_partitions_exhaustively() {
    for (threads, n, chunk) in [(2, 5, 2), (3, 7, 2), (2, 4, 3), (3, 3, 1)] {
        let cfg = ClaimModelCfg {
            threads,
            n,
            chunk,
            style: ClaimStyle::FetchAdd,
        };
        let stats = explore(&ClaimModel::new(cfg), BUDGET).unwrap_or_else(|cex| {
            panic!("claimer T={threads} n={n} chunk={chunk} violated: {cex}")
        });
        assert!(stats.schedules >= 1);
    }
}

/// Split the claim RMW into a separate load and store-back and two
/// claimers read the same counter value: the search finds the double
/// claim. This is the atomicity the `Relaxed` `fetch_add` provides even
/// without ordering — RMWs on one location have a total modification
/// order — and the reason `runner.rs`'s claim counters are safe at
/// `Relaxed` (cited in `lint.toml`).
#[test]
fn load_then_store_claimer_double_claims() {
    let cfg = ClaimModelCfg {
        threads: 2,
        n: 4,
        chunk: 2,
        style: ClaimStyle::LoadThenStore,
    };
    let cex =
        explore(&ClaimModel::new(cfg), BUDGET).expect_err("a torn claim RMW must double-claim");
    assert!(
        matches!(cex.violation, Violation::DoubleClaim { .. }),
        "expected a double claim, got: {cex}"
    );
}

proptest! {
    /// Random schedules over random workloads at larger thread/window
    /// counts than the exhaustive bound covers: the shipped protocol
    /// (round parity, production orderings) never violates an invariant.
    #[test]
    fn random_schedules_pass_on_shipped_protocol(
        seed in any::<u64>(),
        worker_events in proptest::collection::vec(
            proptest::collection::vec(0u64..4_000_000, 0..5),
            1..5,
        ),
        window_ms in (0u64..2).prop_map(|i| if i == 0 { 250u64 } else { 1000 }),
        ff_horizon in 0u64..3,
    ) {
        let events: Vec<Vec<u64>> = worker_events
            .into_iter()
            .map(|mut evs| { evs.sort_unstable(); evs })
            .collect();
        let cfg = WindowModelCfg::shipped(events, window_ms * 1000, ff_horizon);
        let model = WindowModel::new(cfg);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..8 {
            if let Err(cex) = run_random(&model, &mut rng, 100_000) {
                return Err(format!("shipped protocol violated: {cex}"));
            }
        }
    }

    /// Random schedules over random claimer bounds beyond the exhaustive
    /// sizes: `fetch_add` claiming always partitions `0..n`.
    #[test]
    fn random_schedules_partition_on_fetch_add_claimer(
        seed in any::<u64>(),
        threads in 1usize..6,
        n in 0usize..64,
        chunk in 1usize..9,
    ) {
        let cfg = ClaimModelCfg { threads, n, chunk, style: ClaimStyle::FetchAdd };
        let model = ClaimModel::new(cfg);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..8 {
            if let Err(cex) = run_random(&model, &mut rng, 100_000) {
                return Err(format!("claimer violated: {cex}"));
            }
        }
    }
}
