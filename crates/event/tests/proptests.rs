//! Property-based tests for the time base, RNG and event queue.

use abr_event::queue::EventQueue;
use abr_event::rng::SplitMix64;
use abr_event::time::{Duration, Instant};
use proptest::prelude::*;

proptest! {
    /// Instant/Duration arithmetic round-trips: (t + d) − d == t and
    /// (t + d) − t == d for any values that don't overflow.
    #[test]
    fn instant_duration_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = Instant::from_micros(t);
        let d = Duration::from_micros(d);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d).saturating_duration_since(t), d);
    }

    /// mul_ratio(n, d) never differs from exact rational arithmetic by more
    /// than half a microsecond (round-to-nearest).
    #[test]
    fn duration_mul_ratio_rounds_to_nearest(
        micros in 0u64..1_000_000_000_000,
        num in 1u64..1000,
        den in 1u64..1000,
    ) {
        let d = Duration::from_micros(micros);
        let got = d.mul_ratio(num, den).as_micros() as i128;
        let exact_twice = micros as i128 * num as i128 * 2; // 2·exact·den⁻¹
        // |got − exact| ≤ 1/2  ⇔  |2·got·den − 2·exact| ≤ den
        prop_assert!((got * 2 * den as i128 - exact_twice).abs() <= den as i128);
    }

    /// Ordering of instants matches ordering of their raw microsecond
    /// values, and min/max agree with it.
    #[test]
    fn instant_ordering_total(a in any::<u64>(), b in any::<u64>()) {
        let (ia, ib) = (Instant::from_micros(a), Instant::from_micros(b));
        prop_assert_eq!(ia < ib, a < b);
        prop_assert_eq!(ia.min(ib).as_micros(), a.min(b));
        prop_assert_eq!(ia.max(ib).as_micros(), a.max(b));
    }

    /// The RNG's bounded generators stay in bounds for arbitrary ranges.
    #[test]
    fn rng_bounds(seed in any::<u64>(), lo in 0u64..1_000_000, span in 1u64..1_000_000) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..50 {
            let x = rng.range_u64(lo, lo + span);
            prop_assert!((lo..=lo + span).contains(&x));
            let f = rng.range_f64(lo as f64, (lo + span) as f64);
            prop_assert!(f >= lo as f64 && f < (lo + span) as f64);
        }
    }

    /// Equal seeds yield equal streams; the stream is stateless with
    /// respect to call pattern (next_u64 sequence is the only state).
    #[test]
    fn rng_determinism(seed in any::<u64>()) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        let va: Vec<u64> = (0..20).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..20).map(|_| b.next_u64()).collect();
        prop_assert_eq!(va, vb);
    }

    /// Seed-splitting is order-independent: deriving the per-session
    /// streams of a session list in **any permutation** yields exactly the
    /// same stream for every session. This is the determinism contract the
    /// parallel sweep runner (abr-bench `runner`) builds on — a worker pool
    /// visits specs in a scheduling-dependent order, so per-session
    /// randomness must be a pure function of the spec's (seed, stream)
    /// identity, never of derivation order.
    #[test]
    fn seed_splitting_is_permutation_invariant(
        seed in any::<u64>(),
        // A "session list": stable stream ids, possibly with gaps.
        streams in proptest::collection::vec(any::<u64>(), 1..40),
        // An arbitrary visit order over that list.
        perm in proptest::collection::vec(any::<usize>(), 1..40),
    ) {
        // Reference derivation: spec-list order.
        let reference: Vec<Vec<u64>> = streams
            .iter()
            .map(|&s| {
                let mut rng = SplitMix64::for_stream(seed, s);
                (0..8).map(|_| rng.next_u64()).collect()
            })
            .collect();
        // Shuffled derivation order (a fake "scheduling order"), with
        // interleaved draws from other sessions' generators in between.
        let mut shuffled: Vec<Option<Vec<u64>>> = vec![None; streams.len()];
        for &p in &perm {
            let i = p % streams.len();
            let mut rng = SplitMix64::for_stream(seed, streams[i]);
            let draws: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
            shuffled[i] = Some(draws);
        }
        for (i, got) in shuffled.into_iter().enumerate() {
            if let Some(draws) = got {
                prop_assert_eq!(&draws, &reference[i], "stream {} diverged", streams[i]);
            }
        }
    }

    /// Distinct stream ids under one seed yield distinct streams (no
    /// accidental collapse of sibling sessions onto one random stream).
    #[test]
    fn seed_splitting_separates_siblings(seed in any::<u64>(), a in any::<u64>(), delta in 1u64..1_000_000) {
        let b = a.wrapping_add(delta);
        let mut ra = SplitMix64::for_stream(seed, a);
        let mut rb = SplitMix64::for_stream(seed, b);
        let va: Vec<u64> = (0..4).map(|_| ra.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| rb.next_u64()).collect();
        prop_assert_ne!(va, vb);
    }

    /// The event queue pops every scheduled event exactly once, in
    /// non-decreasing time order, with FIFO order within equal timestamps.
    #[test]
    fn queue_pops_sorted_and_stable(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Instant::from_micros(t), i);
        }
        let mut popped: Vec<(Instant, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time-ordered");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO among ties");
            }
        }
        // Every payload appears exactly once.
        let mut ids: Vec<usize> = popped.iter().map(|&(_, i)| i).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..times.len()).collect::<Vec<_>>());
    }

    /// Cancellation removes exactly the cancelled entries and nothing else:
    /// the surviving pop order equals the full pop order with the cancelled
    /// payloads filtered out, and `peek_time`/`len` agree with the live set
    /// at every step.
    #[test]
    fn queue_cancel_removes_exactly_the_cancelled(
        times in proptest::collection::vec(0u64..1000, 1..150),
        cancel_picks in proptest::collection::vec(any::<usize>(), 0..60),
    ) {
        // Reference: schedule everything, pop everything.
        let mut reference = EventQueue::new();
        let mut victim = EventQueue::new();
        let mut keys = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            reference.schedule(Instant::from_micros(t), i);
            keys.push(victim.schedule(Instant::from_micros(t), i));
        }
        // Cancel an arbitrary subset (with repeats, exercising idempotence).
        let mut cancelled = std::collections::BTreeSet::new();
        for &p in &cancel_picks {
            let i = p % times.len();
            let newly = victim.cancel(keys[i]);
            prop_assert_eq!(newly, cancelled.insert(i), "cancel return tracks liveness");
        }
        prop_assert_eq!(victim.len(), times.len() - cancelled.len());

        let expected: Vec<(Instant, usize)> = std::iter::from_fn(|| reference.pop())
            .filter(|&(_, i)| !cancelled.contains(&i))
            .collect();
        let mut got = Vec::new();
        loop {
            prop_assert_eq!(victim.peek_time(), expected.get(got.len()).map(|&(t, _)| t));
            match victim.pop() {
                Some(e) => got.push(e),
                None => break,
            }
        }
        prop_assert_eq!(got, expected);
        prop_assert!(victim.is_empty());
    }

    /// A popped or cancelled key can never cancel again, even after many
    /// further schedules reuse the queue.
    #[test]
    fn queue_keys_are_single_use(times in proptest::collection::vec(0u64..100, 1..50)) {
        let mut q = EventQueue::new();
        let keys: Vec<_> = times
            .iter()
            .map(|&t| q.schedule(Instant::from_micros(t), t))
            .collect();
        // Cancel the first half, pop the rest.
        for k in &keys[..keys.len() / 2] {
            q.cancel(*k);
        }
        while q.pop().is_some() {}
        for k in keys {
            prop_assert!(!q.cancel(k), "spent keys never cancel");
        }
    }

    /// busy_union equals a brute-force microsecond-marking computation.
    #[test]
    fn busy_union_matches_brute_force(
        spans in proptest::collection::vec((0u64..200, 0u64..60), 0..20),
    ) {
        let intervals: Vec<(Instant, Instant)> = spans
            .iter()
            .map(|&(lo, len)| (Instant::from_micros(lo), Instant::from_micros(lo + len)))
            .collect();
        let mut marked = vec![false; 300];
        for &(lo, len) in &spans {
            for m in marked.iter_mut().take((lo + len) as usize).skip(lo as usize) {
                *m = true;
            }
        }
        let expect = marked.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(
            abr_event::time::busy_union(intervals),
            Duration::from_micros(expect)
        );
    }
}
