//! Criterion benches for the parallel sweep runner: the same work at
//! `jobs = 1` vs `jobs = cores`, so `cargo bench` tracks the speedup the
//! worker pool buys (and its overhead on single-core hosts). The
//! correctness half — byte-identical output at every jobs value — lives
//! in `tests/parallel_determinism.rs`; this file only times it.

use abr_bench::experiments::{all_ids, run_jobs};
use abr_bench::runner;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn sweep_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("runner");
    group.sample_size(10);
    let cores = runner::available_cores();
    // Always bench the threaded path, even on one core (overhead check).
    let levels = if cores > 1 { [1, cores] } else { [1, 2] };
    for jobs in levels {
        let name = format!("exp-all-jobs{jobs}");
        group.bench_function(&name, |b| {
            b.iter(|| {
                let ids = all_ids();
                let lens = runner::run_indexed(ids.len(), jobs, |i| {
                    run_jobs(black_box(ids[i]), 1)
                        .expect("known experiment id")
                        .text
                        .len()
                });
                black_box(lens.iter().sum::<usize>())
            });
        });
        let name = format!("bp1-sweep-jobs{jobs}");
        group.bench_function(&name, |b| {
            b.iter(|| {
                let result = run_jobs(black_box("bp1"), jobs).expect("bp1 exists");
                black_box(result.text.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, sweep_scaling);
criterion_main!(benches);
