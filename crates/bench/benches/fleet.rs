//! Criterion benches for the shared-fate fleet engine: one fixed small
//! fleet at `jobs = 1` vs `jobs = cores`, so `cargo bench` tracks the
//! per-session cost of the windowed driver and the speedup (or 1-core
//! overhead) of sharded execution. The correctness half — byte-identical
//! artifacts at every jobs value and shard count — lives in
//! `tests/fleet_determinism.rs`; this file only times it.

use abr_bench::fleet::{run_fleet, FleetSpec};
use abr_bench::runner;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fleet_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);
    let spec = FleetSpec {
        arrival_secs: 60,
        ..FleetSpec::small(60)
    };
    let cores = runner::available_cores();
    // Always bench the threaded path, even on one core (overhead check).
    let levels = if cores > 1 { [1, cores] } else { [1, 2] };
    for jobs in levels {
        let name = format!("small60-jobs{jobs}");
        group.bench_function(&name, |b| {
            b.iter(|| {
                let result = run_fleet(black_box(&spec), jobs);
                black_box(result.text.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fleet_scaling);
criterion_main!(benches);
