//! Criterion benches: one target per paper table/figure.
//!
//! Each bench regenerates the corresponding artifact end-to-end (content
//! synthesis → manifest round-trip → full streaming simulation → rendered
//! table/figure), so `cargo bench` both re-derives every number in
//! EXPERIMENTS.md and tracks the simulator's own performance.

use abr_bench::experiments::{all_ids, run};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn paper_artifacts(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper");
    // Whole-session simulations per iteration: keep sampling modest.
    group.sample_size(10);
    for id in all_ids() {
        group.bench_function(id, |b| {
            b.iter(|| {
                let result = run(black_box(id)).expect("known experiment id");
                black_box(result.text.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, paper_artifacts);
criterion_main!(benches);
