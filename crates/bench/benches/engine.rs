//! Simulator-engine microbenches: the fluid link solver, content
//! synthesis, manifest round-trips and a full streaming session.

use abr_bench::setup::{dash_policy, drama, run_session, PlayerKind};
use abr_event::time::{Duration, Instant};
use abr_manifest::build::{build_master_playlist, build_mpd};
use abr_manifest::{MasterPlaylist, Mpd};
use abr_media::combo::all_combos;
use abr_media::content::Content;
use abr_media::units::{BitsPerSec, Bytes};
use abr_net::link::Link;
use abr_net::trace::Trace;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fluid_link(c: &mut Criterion) {
    let mut group = c.benchmark_group("fluid_link");
    group.bench_function("solo_flow_1000_completions", |b| {
        b.iter(|| {
            let mut link = Link::new(Trace::constant(BitsPerSec::from_kbps(5000)));
            let mut done = 0;
            for _ in 0..1000 {
                let _ = link.open_flow(Bytes(10_000));
                let t = link.next_completion().expect("completes");
                done += link.advance_to(t).len();
            }
            black_box(done)
        });
    });
    group.bench_function("eight_concurrent_flows_over_square_wave", |b| {
        let trace = Trace::square_wave(
            BitsPerSec::from_kbps(4000),
            BitsPerSec::from_kbps(1000),
            Duration::from_millis(500),
            Duration::from_secs(600),
        );
        b.iter(|| {
            let mut link = Link::new(trace.clone());
            for _ in 0..8 {
                let _ = link.open_flow(Bytes(1_000_000));
            }
            let done = link.advance_to(Instant::from_secs(600));
            black_box(done.len())
        });
    });
    group.finish();
}

fn content_and_manifests(c: &mut Criterion) {
    let mut group = c.benchmark_group("content");
    group.bench_function("synthesize_drama_show", |b| {
        b.iter(|| black_box(Content::drama_show(black_box(7))));
    });
    let content = drama();
    group.bench_function("mpd_roundtrip", |b| {
        b.iter(|| {
            let text = build_mpd(&content).to_text();
            black_box(Mpd::parse(&text).expect("parses"))
        });
    });
    let combos = all_combos(content.video(), content.audio());
    group.bench_function("hls_master_roundtrip", |b| {
        b.iter(|| {
            let text = build_master_playlist(&content, &combos, &[0, 1, 2]).to_text();
            black_box(MasterPlaylist::parse(&text).expect("parses"))
        });
    });
    group.finish();
}

fn full_session(c: &mut Criterion) {
    let content = drama();
    let mut group = c.benchmark_group("session");
    group.sample_size(10);
    group.bench_function("bestpractice_300s_clip", |b| {
        b.iter(|| {
            let log = run_session(
                &content,
                PlayerKind::BestPractice,
                dash_policy(PlayerKind::BestPractice, &content),
                Trace::constant(BitsPerSec::from_kbps(1500)),
            );
            black_box(log.transfers.len())
        });
    });
    group.finish();
}

criterion_group!(benches, fluid_link, content_and_manifests, full_session);
criterion_main!(benches);
