//! LinkSim hot-path benches: `advance_to` over a dense trace,
//! `next_completion` hammered the way the session engine calls it (once
//! per event), and a full session run on top. These are the benchmarks
//! `scripts/bench_sim.sh` snapshots into `BENCH_sim.json`.

use abr_bench::setup::{dash_policy, drama, run_session, PlayerKind};
use abr_event::time::{Duration, Instant};
use abr_media::units::{BitsPerSec, Bytes};
use abr_net::link::Link;
use abr_net::trace::Trace;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A 600-changepoint bounded random walk around 5 Mbps.
fn dense_trace() -> Trace {
    Trace::random_walk(
        BitsPerSec::from_kbps(5_000),
        BitsPerSec::from_kbps(1_000),
        BitsPerSec::from_kbps(10_000),
        0.5,
        Duration::from_secs(1),
        Duration::from_secs(600),
        42,
    )
}

fn link_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("link");

    // One long flow pushed across ~600 trace changepoints in 2400 small
    // advance_to steps: stresses the per-span boundary scan and the
    // rate-trace lookup path.
    let dense = dense_trace();
    group.bench_function("advance_to_dense_trace", |b| {
        b.iter(|| {
            let mut link = Link::new(dense.clone());
            let _ = link.open_flow(Bytes(200_000_000));
            let mut done = 0;
            for ms in (0..600_000u64).step_by(250) {
                done += link.advance_to(Instant::from_millis(ms + 250)).len();
            }
            black_box(done)
        });
    });

    // The session-engine pattern: `next_completion` before every event,
    // small time steps, a steady population of four concurrent flows over
    // a fast square wave. 5000 next_completion calls per iteration.
    let wave = Trace::square_wave(
        BitsPerSec::from_kbps(4_000),
        BitsPerSec::from_kbps(1_500),
        Duration::from_millis(250),
        Duration::from_secs(120),
    );
    group.bench_function("next_completion_engine_loop", |b| {
        b.iter(|| {
            let mut link = Link::new(wave.clone());
            let mut opened = 0u32;
            let mut done = 0usize;
            for step in 0..5_000u64 {
                while link.pending_count() < 4 && opened < 400 {
                    let _ = link.open_flow(Bytes(50_000));
                    opened += 1;
                }
                black_box(link.next_completion());
                done += link.advance_to(Instant::from_millis((step + 1) * 20)).len();
            }
            black_box(done)
        });
    });
    group.finish();

    let content = drama();
    let mut group = c.benchmark_group("session");
    group.sample_size(10);
    // End-to-end: everything above plus the player loop, on the paper's
    // Fig 4(b) varying trace.
    group.bench_function("bestpractice_fig4b_600s", |b| {
        b.iter(|| {
            let log = run_session(
                &content,
                PlayerKind::BestPractice,
                dash_policy(PlayerKind::BestPractice, &content),
                Trace::fig4b_varying_600k(Duration::from_secs(600)),
            );
            black_box(log.transfers.len())
        });
    });
    group.finish();
}

criterion_group!(benches, link_hot_path);
criterion_main!(benches);
