//! Ablation benches for the design choices DESIGN.md §8 calls out.
//!
//! * `estimators/*` — the same bursty trace through the four bandwidth
//!   estimators: interval-filtered EWMA (Shaka), aggregate sliding
//!   percentile (ExoPlayer), per-media harmonic mean (dash.js) and the
//!   concurrency-aware joint EWMA (§4). The reported throughput numbers
//!   differ exactly the way §3 describes.
//! * `combo_rule/*` — combination-set construction: ExoPlayer's
//!   log-staircase vs the full M×N set vs the curated subset.
//! * `sync_mode/*` — a full best-practice session with chunk-level vs
//!   independent prefetching (the BP2 ablation).
//! * `obs_overhead/*` — a full session with no observability handle vs a
//!   `NullTracer` handle threaded through every instrumented site, vs a
//!   live span profiler. The disabled path must cost within noise of the
//!   uninstrumented one (<2%): `emit` closures are never evaluated and
//!   `span()` is one branch when no profiler is attached. The
//!   `span_profiler` case pins what turning profiling *on* costs — it is
//!   allowed to be visible, because `--profile` is opt-in.

use abr_bench::setup::{drama, hls_sub_view, player_config, PlayerKind};
use abr_core::bestpractice::BestPracticePolicy;
use abr_core::estimators::{ExoMeter, HarmonicMean, JointEwma, ShakaEstimator};
use abr_event::time::{Duration, Instant};
use abr_httpsim::origin::Origin;
use abr_media::combo::{all_combos, curated_subset, log_staircase};
use abr_media::track::{MediaType, TrackId};
use abr_media::units::{BitsPerSec, Bytes};
use abr_net::link::Link;
use abr_net::profile::{DeliveryProfile, Segment};
use abr_net::trace::Trace;
use abr_obs::{NullTracer, ObsHandle, Profiler};
use abr_player::config::SyncMode;
use abr_player::policy::TransferRecord;
use abr_player::Session;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::rc::Rc;

fn synthetic_transfers() -> Vec<TransferRecord> {
    // Alternating slow/fast transfers like the Fig 4(b) trace.
    let mut out = Vec::new();
    let mut t = Instant::ZERO;
    for i in 0..50u64 {
        let kbps = if i % 5 == 0 { 1100 } else { 480 };
        let secs = 2;
        let rate = BitsPerSec::from_kbps(kbps);
        let end = t + Duration::from_secs(secs);
        let mut profile = DeliveryProfile::new();
        profile.push(Segment {
            start: t,
            end,
            rate,
        });
        let size = rate.bytes_in_micros(secs * 1_000_000);
        out.push(TransferRecord {
            media: if i % 2 == 0 {
                MediaType::Video
            } else {
                MediaType::Audio
            },
            track: TrackId::video(0),
            chunk: i as usize,
            size,
            opened_at: t,
            completed_at: end,
            profile,
            window_bytes: size,
            window_busy: Duration::from_secs(secs),
        });
        t = end;
    }
    out
}

fn estimators(c: &mut Criterion) {
    let transfers = synthetic_transfers();
    let mut group = c.benchmark_group("estimators");
    group.bench_function("shaka_interval_ewma", |b| {
        b.iter(|| {
            let mut e = ShakaEstimator::new();
            for t in &transfers {
                e.on_transfer(black_box(t));
            }
            black_box(e.estimate())
        });
    });
    group.bench_function("exoplayer_sliding_percentile", |b| {
        b.iter(|| {
            let mut e = ExoMeter::new();
            for t in &transfers {
                e.on_transfer(black_box(t));
            }
            black_box(e.estimate())
        });
    });
    group.bench_function("dashjs_harmonic_mean", |b| {
        b.iter(|| {
            let mut e = HarmonicMean::new(4);
            for t in &transfers {
                if let Some(tput) = t.throughput() {
                    e.add(tput.bps() as f64);
                }
            }
            black_box(e.estimate())
        });
    });
    group.bench_function("joint_ewma", |b| {
        b.iter(|| {
            let mut e = JointEwma::new(3.0);
            for t in &transfers {
                e.on_transfer(black_box(t));
            }
            black_box(e.estimate())
        });
    });
    group.finish();
}

fn combo_rule(c: &mut Criterion) {
    let content = drama();
    let mut group = c.benchmark_group("combo_rule");
    group.bench_function("exoplayer_log_staircase", |b| {
        b.iter(|| black_box(log_staircase(content.video(), content.audio())));
    });
    group.bench_function("all_mxn", |b| {
        b.iter(|| black_box(all_combos(content.video(), content.audio())));
    });
    group.bench_function("curated_subset", |b| {
        b.iter(|| black_box(curated_subset(content.video(), content.audio())));
    });
    group.finish();
}

fn sync_mode(c: &mut Criterion) {
    let content = drama();
    let view = hls_sub_view(&content, &[0, 1, 2]);
    let mut group = c.benchmark_group("sync_mode");
    group.sample_size(10);
    for (label, sync) in [
        (
            "chunk_level",
            SyncMode::ChunkLevel {
                tolerance: content.chunk_duration(),
            },
        ),
        ("independent", SyncMode::Independent),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let policy = Box::new(BestPracticePolicy::from_hls(&view));
                let origin = Origin::with_overhead(content.clone(), Bytes::ZERO);
                let link = Link::with_latency(
                    Trace::fig3_varying_600k(Duration::from_secs(3600)),
                    Duration::from_millis(20),
                );
                let mut config = player_config(PlayerKind::BestPractice, content.chunk_duration());
                config.sync = sync;
                let log = Session::new(origin, link, policy, config).run();
                black_box(log.max_buffer_imbalance())
            });
        });
    }
    group.finish();
}

fn obs_overhead(c: &mut Criterion) {
    let content = drama();
    let view = hls_sub_view(&content, &[0, 1, 2]);
    let session = |obs: Option<ObsHandle>| {
        let policy = Box::new(BestPracticePolicy::from_hls(&view));
        let origin = Origin::with_overhead(content.clone(), Bytes::ZERO);
        let link = Link::with_latency(
            Trace::fig3_varying_600k(Duration::from_secs(3600)),
            Duration::from_millis(20),
        );
        let config = player_config(PlayerKind::BestPractice, content.chunk_duration());
        let mut s = Session::new(origin, link, policy, config);
        if let Some(obs) = obs {
            s = s.with_obs(obs);
        }
        s.run()
    };
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);
    group.bench_function("uninstrumented", |b| b.iter(|| black_box(session(None))));
    group.bench_function("null_tracer", |b| {
        b.iter(|| {
            black_box(session(Some(
                ObsHandle::disabled().with_tracer(Rc::new(NullTracer)),
            )))
        });
    });
    group.bench_function("span_profiler", |b| {
        b.iter(|| {
            let profiler = Rc::new(Profiler::new());
            let log = session(Some(
                ObsHandle::disabled().with_profiler(Rc::clone(&profiler)),
            ));
            black_box((log, profiler.report()))
        });
    });
    group.finish();
}

criterion_group!(benches, estimators, combo_rule, sync_mode, obs_overhead);
criterion_main!(benches);
