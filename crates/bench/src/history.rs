//! Append-only bench history and the regression gate behind
//! `scripts/bench_check`.
//!
//! `BENCH_sim.json` and `BENCH_runner.json` hold an `entries` list in
//! recording order (format [`FORMAT`]). Each entry is one measurement
//! session: its `host_cores`, optional `criterion_medians_us` map, and
//! free-form wall-clock fields. Entries are never rewritten — a new
//! measurement appends (`bench_check append`), so the files accumulate
//! the performance story the ROADMAP's "10× the hot path" work needs.
//!
//! The gate ([`check`]) compares the **latest** entry's criterion medians
//! against the best (minimum) median among **prior** entries recorded on
//! a host with the same core count — cross-host numbers are not
//! comparable, and the 1-core CI runner must not be judged against a
//! 16-core workstation. A benchmark regresses when
//! `current > baseline * tolerance`; tolerances are per-benchmark with a
//! document default, because criterion medians on shared CI runners are
//! noisy in the ±20–40% range.
//!
//! Parallel "speedup" fields are *recorded*, never gated on a 1-core
//! host: there they measure scheduler noise, which is why entries carry a
//! `speedup_reliable` flag (false when `host_cores == 1`) instead of
//! pretending 0.91× is signal.
//!
//! On a genuinely multi-core host the story flips: an entry carrying a
//! `scaling` matrix (recorded by `scripts/bench_scale.sh` — per-workload
//! wall seconds keyed by jobs level) **is** gated. The scaling gate
//! (DESIGN.md §16) requires the mc sweep's jobs-2 speedup to reach
//! [`MIN_JOBS2_SPEEDUP`] and the fleet's best parallel wall to beat its
//! serial wall, considering only jobs levels the host can actually run
//! (`jobs <= host_cores`). When `host_cores == 1` the gate is skipped
//! with a visible note — recorded, not judged.

use serde_json::Value;

/// Version tag every history document carries.
pub const FORMAT: &str = "abr-bench-history-v1";

/// Default tolerance multiplier when a document does not set one: the
/// current median may be up to 50% above the recorded baseline before
/// the gate fails.
pub const DEFAULT_TOLERANCE: f64 = 1.5;

/// Default scaling-efficiency floor: on a `host_cores >= 2` host, the mc
/// sweep at `--jobs 2` must be at least this much faster than `--jobs 1`.
/// Overridable per document via `scaling_gate.min_jobs2_speedup`.
pub const MIN_JOBS2_SPEEDUP: f64 = 1.5;

/// One benchmark whose latest median exceeded its tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Criterion benchmark id.
    pub benchmark: String,
    /// Best prior median on a same-core-count host (µs).
    pub baseline_us: f64,
    /// Latest entry's median (µs).
    pub current_us: f64,
    /// `current / baseline`.
    pub ratio: f64,
    /// The tolerance the ratio was held against.
    pub tolerance: f64,
}

/// The result of gating one history document.
#[derive(Debug, Clone, Default)]
pub struct CheckOutcome {
    /// Benchmarks compared against a baseline.
    pub checked: usize,
    /// Benchmarks skipped (no prior same-host entry to compare against).
    pub skipped: usize,
    /// Benchmarks over tolerance.
    pub regressions: Vec<Regression>,
    /// Scaling-gate violations (multi-core hosts only; DESIGN.md §16).
    pub scaling_failures: Vec<String>,
    /// Human-readable observations (skips, unreliable speedups, …).
    pub notes: Vec<String>,
}

impl CheckOutcome {
    /// True when nothing regressed and the scaling gate held.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.scaling_failures.is_empty()
    }

    /// One-line-per-fact rendering for CI logs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.regressions {
            out.push_str(&format!(
                "REGRESSION {}: {:.2} µs vs baseline {:.2} µs ({:.2}x > {:.2}x allowed)\n",
                r.benchmark, r.current_us, r.baseline_us, r.ratio, r.tolerance
            ));
        }
        for f in &self.scaling_failures {
            out.push_str(&format!("SCALING {f}\n"));
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out.push_str(&format!(
            "bench_check: {} checked, {} skipped, {} regression(s), {} scaling failure(s)\n",
            self.checked,
            self.skipped,
            self.regressions.len(),
            self.scaling_failures.len()
        ));
        out
    }
}

fn entries(doc: &Value) -> Result<&Vec<Value>, String> {
    if doc.get("format").and_then(Value::as_str) != Some(FORMAT) {
        return Err(format!(
            "not a {FORMAT} document (run the conversion or re-record)"
        ));
    }
    doc.get("entries")
        .and_then(Value::as_array)
        .ok_or_else(|| "document has no entries array".to_string())
}

fn medians(entry: &Value) -> Vec<(&str, f64)> {
    entry
        .get("criterion_medians_us")
        .and_then(Value::as_object)
        .map(|m| {
            m.iter()
                .filter_map(|(k, v)| v.as_f64().map(|f| (k.as_str(), f)))
                .collect()
        })
        .unwrap_or_default()
}

fn tolerance_for(doc: &Value, benchmark: &str) -> f64 {
    let table = doc.get("tolerances");
    table
        .and_then(|t| t.get(benchmark))
        .or_else(|| table.and_then(|t| t.get("default")))
        .and_then(Value::as_f64)
        .unwrap_or(DEFAULT_TOLERANCE)
}

/// Appends a measurement entry to a history document, validating the
/// format tag. Entries are append-only by construction — this is the only
/// mutation `bench_check` performs.
pub fn append_entry(doc: &mut Value, entry: Value) -> Result<(), String> {
    entries(doc)?; // format + shape validation
    if !entry.is_object() {
        return Err("entry must be a JSON object".to_string());
    }
    if let Value::Object(map) = doc {
        if let Some(Value::Array(list)) = map.get_mut("entries") {
            list.push(entry);
            return Ok(());
        }
    }
    unreachable!("entries() validated the document shape")
}

/// Gates the latest entry of a history document against its recorded
/// past. See the module docs for the comparison rules.
pub fn check(doc: &Value) -> Result<CheckOutcome, String> {
    let entries = entries(doc)?;
    let mut outcome = CheckOutcome::default();
    let Some((latest, prior)) = entries.split_last() else {
        outcome
            .notes
            .push("history is empty; nothing to gate".into());
        return Ok(outcome);
    };
    let cores = latest.get("host_cores").and_then(Value::as_u64);
    if cores.is_none() {
        outcome
            .notes
            .push("latest entry records no host_cores; comparing against all prior entries".into());
    }
    if latest.get("speedup_reliable").and_then(Value::as_bool) == Some(false) {
        outcome.notes.push(
            "parallel speedup fields in the latest entry are marked unreliable (1-core host)"
                .into(),
        );
    }
    let comparable: Vec<&Value> = prior
        .iter()
        .filter(|e| cores.is_none() || e.get("host_cores").and_then(Value::as_u64) == cores)
        .collect();
    for (benchmark, current_us) in medians(latest) {
        let baseline_us = comparable
            .iter()
            .flat_map(|e| medians(e))
            .filter(|(name, _)| *name == benchmark)
            .map(|(_, v)| v)
            .fold(None::<f64>, |acc, v| Some(acc.map_or(v, |a| a.min(v))));
        let Some(baseline_us) = baseline_us else {
            outcome.skipped += 1;
            outcome.notes.push(format!(
                "{benchmark}: no prior entry on a {}-core host; recorded, not gated",
                cores.map_or_else(|| "?".to_string(), |c| c.to_string())
            ));
            continue;
        };
        outcome.checked += 1;
        let tolerance = tolerance_for(doc, benchmark);
        let ratio = if baseline_us > 0.0 {
            current_us / baseline_us
        } else {
            1.0
        };
        if ratio > tolerance {
            outcome.regressions.push(Regression {
                benchmark: benchmark.to_string(),
                baseline_us,
                current_us,
                ratio,
                tolerance,
            });
        }
    }
    scaling_gate(doc, latest, &mut outcome);
    Ok(outcome)
}

/// The latest entry's `scaling` matrix as `(workload, [(jobs, wall_s)])`
/// rows, jobs ascending. Missing or malformed sections yield no rows.
fn scaling_walls(entry: &Value) -> Vec<(String, Vec<(u64, f64)>)> {
    let Some(scaling) = entry.get("scaling").and_then(Value::as_object) else {
        return Vec::new();
    };
    scaling
        .iter()
        .filter_map(|(workload, section)| {
            let walls = section.get("wall_s").and_then(Value::as_object)?;
            let mut rows: Vec<(u64, f64)> = walls
                .iter()
                .filter_map(|(jobs, wall)| {
                    Some((
                        jobs.parse::<u64>().ok()?,
                        wall.as_f64().filter(|w| *w > 0.0)?,
                    ))
                })
                .collect();
            rows.sort_unstable_by_key(|(jobs, _)| *jobs);
            Some((workload.clone(), rows))
        })
        .collect()
}

/// Enforces the scaling-efficiency gate (DESIGN.md §16) on the latest
/// entry when it carries a `scaling` matrix. Multi-core hosts are gated:
/// the mc jobs-2 speedup must reach the configured floor, and every
/// workload's best parallel wall must beat its serial wall. Only jobs
/// levels the host can genuinely run in parallel (`jobs <= host_cores`)
/// are judged. One-core hosts get a visible skip note instead — their
/// curve is scheduler noise by definition.
fn scaling_gate(doc: &Value, latest: &Value, outcome: &mut CheckOutcome) {
    let walls = scaling_walls(latest);
    if walls.is_empty() {
        return;
    }
    let cores = latest
        .get("host_cores")
        .and_then(Value::as_u64)
        .unwrap_or(1);
    if cores < 2 {
        outcome.skipped += walls.len();
        outcome.notes.push(format!(
            "SCALING GATE SKIPPED: host_cores = {cores} — the speedup matrix is \
             recorded but parallel efficiency cannot be judged on a 1-core host"
        ));
        return;
    }
    let min_jobs2 = doc
        .get("scaling_gate")
        .and_then(|g| g.get("min_jobs2_speedup"))
        .and_then(Value::as_f64)
        .unwrap_or(MIN_JOBS2_SPEEDUP);
    for (workload, rows) in walls {
        let serial = rows.iter().find(|(jobs, _)| *jobs == 1).map(|(_, w)| *w);
        let Some(serial) = serial else {
            outcome.skipped += 1;
            outcome.notes.push(format!(
                "scaling/{workload}: no jobs-1 wall recorded; not gated"
            ));
            continue;
        };
        outcome.checked += 1;
        if workload == "mc" {
            match rows.iter().find(|(jobs, _)| *jobs == 2) {
                Some((_, wall2)) => {
                    let speedup = serial / wall2;
                    if speedup < min_jobs2 {
                        outcome.scaling_failures.push(format!(
                            "mc jobs-2 speedup {speedup:.2}x < {min_jobs2:.2}x floor \
                             (jobs-1 {serial:.2}s, jobs-2 {wall2:.2}s, {cores} cores)"
                        ));
                    }
                }
                None => outcome
                    .notes
                    .push("scaling/mc: no jobs-2 wall recorded; speedup floor not gated".into()),
            }
        }
        let best_parallel = rows
            .iter()
            .filter(|(jobs, _)| *jobs >= 2 && *jobs <= cores)
            .map(|(_, w)| *w)
            .fold(None::<f64>, |acc, w| Some(acc.map_or(w, |a| a.min(w))));
        match best_parallel {
            Some(best) if best >= serial => outcome.scaling_failures.push(format!(
                "{workload} best parallel wall {best:.2}s is not below jobs-1 wall \
                 {serial:.2}s ({cores} cores)"
            )),
            Some(_) => {}
            None => outcome.notes.push(format!(
                "scaling/{workload}: no parallel jobs level within {cores} cores; not gated"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn doc(entries: Vec<Value>) -> Value {
        json!({
            "format": FORMAT,
            "benchmark": "test",
            "tolerances": json!({ "default": 1.5, "tight/bench": 1.1 }),
            "entries": entries,
        })
    }

    fn entry(cores: u64, medians: Value) -> Value {
        json!({ "host_cores": cores, "criterion_medians_us": medians })
    }

    #[test]
    fn rejects_wrong_format() {
        assert!(check(&json!({"benchmark": "old-shape"})).is_err());
        let mut old = json!({"format": "something-else", "entries": Vec::<Value>::new()});
        assert!(append_entry(&mut old, json!({})).is_err());
    }

    #[test]
    fn empty_and_first_entry_pass() {
        let outcome = check(&doc(vec![])).unwrap();
        assert!(outcome.passed());
        // A lone entry has no baseline: skipped, not failed.
        let outcome = check(&doc(vec![entry(1, json!({"a/b": 100.0}))])).unwrap();
        assert!(outcome.passed());
        assert_eq!(outcome.skipped, 1);
        assert_eq!(outcome.checked, 0);
    }

    #[test]
    fn seeded_synthetic_regression_fails() {
        // Baseline 100 µs, "current" run seeded at 2x: must fail the
        // default 1.5x tolerance — this is the CI self-test scenario.
        let d = doc(vec![
            entry(1, json!({"a/b": 100.0})),
            entry(1, json!({"a/b": 200.0})),
        ]);
        let outcome = check(&d).unwrap();
        assert!(!outcome.passed());
        assert_eq!(outcome.regressions.len(), 1);
        let r = &outcome.regressions[0];
        assert_eq!(r.benchmark, "a/b");
        assert_eq!(r.baseline_us, 100.0);
        assert_eq!(r.current_us, 200.0);
        assert!((r.ratio - 2.0).abs() < 1e-9);
        assert!(outcome.render().contains("REGRESSION a/b"));
    }

    #[test]
    fn within_tolerance_passes_and_uses_best_prior() {
        let d = doc(vec![
            entry(1, json!({"a/b": 100.0})),
            entry(1, json!({"a/b": 90.0})), // best prior: 90
            entry(1, json!({"a/b": 130.0})),
        ]);
        let outcome = check(&d).unwrap();
        assert!(outcome.passed(), "130/90 = 1.44 < 1.5");
        let d = doc(vec![
            entry(1, json!({"a/b": 100.0})),
            entry(1, json!({"a/b": 90.0})),
            entry(1, json!({"a/b": 140.0})),
        ]);
        assert!(!check(&d).unwrap().passed(), "140/90 = 1.56 > 1.5");
    }

    #[test]
    fn per_benchmark_tolerance_overrides_default() {
        let d = doc(vec![
            entry(1, json!({"tight/bench": 100.0})),
            entry(1, json!({"tight/bench": 120.0})),
        ]);
        let outcome = check(&d).unwrap();
        assert!(!outcome.passed(), "1.2x > 1.1x tight tolerance");
        assert_eq!(outcome.regressions[0].tolerance, 1.1);
    }

    #[test]
    fn cross_core_count_entries_do_not_gate() {
        let d = doc(vec![
            entry(16, json!({"a/b": 10.0})),
            entry(1, json!({"a/b": 100.0})),
        ]);
        let outcome = check(&d).unwrap();
        assert!(outcome.passed());
        assert_eq!(outcome.skipped, 1);
        assert!(outcome.notes.iter().any(|n| n.contains("1-core")));
    }

    #[test]
    fn unreliable_speedup_is_noted_not_fatal() {
        let e = json!({
            "host_cores": 1u64,
            "criterion_medians_us": json!({}),
            "speedup_reliable": false,
        });
        let outcome = check(&doc(vec![e])).unwrap();
        assert!(outcome.passed());
        assert!(outcome.notes.iter().any(|n| n.contains("unreliable")));
    }

    fn scaling_entry(cores: u64, mc_walls: Value, fleet_walls: Value) -> Value {
        let mc = json!({ "seeds": 25, "wall_s": mc_walls });
        let fleet = json!({ "sessions": 2000, "wall_s": fleet_walls });
        let scaling = json!({ "mc": mc, "fleet": fleet });
        json!({
            "host_cores": cores,
            "speedup_reliable": cores >= 2,
            "scaling": scaling,
        })
    }

    #[test]
    fn scaling_gate_passes_a_healthy_curve() {
        let e = scaling_entry(
            4,
            json!({"1": 4.0, "2": 2.2, "4": 1.4, "8": 1.3}),
            json!({"1": 10.0, "2": 6.0, "4": 4.0, "8": 3.9}),
        );
        let outcome = check(&doc(vec![e])).unwrap();
        assert!(outcome.passed(), "{}", outcome.render());
        assert_eq!(outcome.checked, 2, "mc and fleet both gated");
        assert!(outcome.scaling_failures.is_empty());
    }

    #[test]
    fn scaling_gate_fails_a_flat_mc_curve() {
        // jobs-2 speedup 4.0/3.0 = 1.33x < 1.5x floor.
        let e = scaling_entry(4, json!({"1": 4.0, "2": 3.0}), json!({"1": 10.0, "2": 6.0}));
        let outcome = check(&doc(vec![e])).unwrap();
        assert!(!outcome.passed());
        assert_eq!(outcome.scaling_failures.len(), 1);
        assert!(outcome.scaling_failures[0].contains("mc jobs-2 speedup"));
        assert!(outcome.render().contains("SCALING mc jobs-2"));
    }

    #[test]
    fn scaling_gate_fails_fleet_that_never_beats_serial() {
        let e = scaling_entry(
            4,
            json!({"1": 4.0, "2": 2.0}),
            json!({"1": 10.0, "2": 11.0, "4": 10.5}),
        );
        let outcome = check(&doc(vec![e])).unwrap();
        assert!(!outcome.passed());
        assert!(outcome
            .scaling_failures
            .iter()
            .any(|f| f.contains("fleet best parallel wall")));
    }

    #[test]
    fn scaling_gate_ignores_jobs_beyond_host_cores() {
        // On a 2-core host the jobs-4/8 walls are oversubscription noise:
        // they may be slower than serial without failing the gate.
        let e = scaling_entry(
            2,
            json!({"1": 4.0, "2": 2.2, "4": 4.5, "8": 5.0}),
            json!({"1": 10.0, "2": 6.0, "4": 12.0}),
        );
        let outcome = check(&doc(vec![e])).unwrap();
        assert!(outcome.passed(), "{}", outcome.render());
    }

    #[test]
    fn scaling_gate_skips_visibly_on_one_core() {
        // The terrible 1-core curve must be recorded, noted, never fatal.
        let e = scaling_entry(
            1,
            json!({"1": 4.0, "2": 4.4}),
            json!({"1": 10.0, "2": 11.0}),
        );
        let outcome = check(&doc(vec![e])).unwrap();
        assert!(outcome.passed());
        assert_eq!(outcome.skipped, 2);
        assert!(outcome
            .notes
            .iter()
            .any(|n| n.contains("SCALING GATE SKIPPED: host_cores = 1")));
        assert!(outcome.render().contains("SCALING GATE SKIPPED"));
    }

    #[test]
    fn scaling_gate_floor_is_configurable() {
        let e = scaling_entry(
            4,
            json!({"1": 4.0, "2": 3.0}), // 1.33x: under the default floor
            json!({"1": 10.0, "2": 6.0}),
        );
        let entries = Value::from(vec![e]);
        let gate = json!({ "min_jobs2_speedup": 1.2 });
        // Relax the floor below 1.33x: the same entry now passes.
        let d = json!({
            "format": FORMAT,
            "benchmark": "test",
            "scaling_gate": gate,
            "entries": entries,
        });
        assert!(check(&d).unwrap().passed());
    }

    #[test]
    fn entries_without_scaling_are_untouched_by_the_gate() {
        let outcome = check(&doc(vec![entry(1, json!({"a/b": 100.0}))])).unwrap();
        assert!(outcome.scaling_failures.is_empty());
        assert!(!outcome.render().contains("SCALING"));
    }

    #[test]
    fn append_grows_entries_in_order() {
        let mut d = doc(vec![entry(1, json!({"a/b": 100.0}))]);
        append_entry(&mut d, entry(1, json!({"a/b": 110.0}))).unwrap();
        assert_eq!(d["entries"].as_array().unwrap().len(), 2);
        assert!(append_entry(&mut d, json!("not an object")).is_err());
        let outcome = check(&d).unwrap();
        assert_eq!(outcome.checked, 1);
        assert!(outcome.passed());
    }
}
