//! The shared-fate fleet engine behind `exp fleet`.
//!
//! Many [`abr_player::Session`]s run over a two-tier topology: every
//! session keeps a private access link (its own trace draw from the
//! corpus), but all sessions of one *link domain* share a CDN point of
//! presence — one title-namespaced [`abr_httpsim::CdnCache`] in front of
//! one FIFO origin [`abr_net::UplinkQueue`]. Cache hit rates are not an
//! input: they *emerge* from cross-session chunk popularity under a Zipf
//! session-arrival model over a catalog of titles. A conservative
//! window-sync rule couples the domains to a finite origin: every
//! `window_ms`, fleet-wide miss bytes are folded and, when demand exceeds
//! the origin capacity, every domain's uplink is throttled
//! proportionally for the next window.
//!
//! Determinism (DESIGN.md §14): the arrival plan is a pure per-session
//! function of the spec ([`PlanSource`]), recomputed on demand from
//! per-session RNG streams and scheduled in session-index order — the
//! plan vector itself is never materialized; domains are atomic
//! single-threaded units; cross-domain state moves only at window
//! barriers, folded in domain order; results merge in session/domain
//! order. The artifact is therefore byte-identical at every `--jobs`
//! value and every shard count — `tests/fleet_determinism.rs` proves it,
//! and the fleet-of-1 lockstep test pins the composition layer to the
//! single-session engine.

mod driver;
mod report;

pub use driver::FleetSchedKnobs;

use crate::setup::PlayerKind;
use abr_event::rng::SplitMix64;
use abr_event::time::Duration;
use abr_player::session::DeliveryMode;
use abr_player::SessionLog;
use serde_json::Value;

/// The policy mix cycled through arrivals (deterministically, from each
/// session's RNG stream): the §4 best-practice player plus the three
/// emulated production players — fleet distributions are only meaningful
/// over the heterogeneous player population a real CDN serves.
pub const POLICY_MIX: [PlayerKind; 4] = [
    PlayerKind::BestPractice,
    PlayerKind::ExoPlayer,
    PlayerKind::Shaka,
    PlayerKind::DashJs,
];

/// Trace length for per-session access-link draws (same horizon as the
/// `exp mc` corpus realizations).
pub(crate) const TRACE_SECS: u64 = 900;

/// Everything that defines one fleet run. The spec is the *only* input:
/// two equal specs produce byte-identical artifacts at any `--jobs` and
/// shard count.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Number of sessions in the fleet.
    pub sessions: usize,
    /// Number of link domains (one shared cache + uplink each).
    pub domains: usize,
    /// Shard count: domain `d` belongs to shard `d % shards`. Shards are
    /// the unit of worker assignment; the artifact must not depend on
    /// this value (the determinism suite sweeps it).
    pub shards: usize,
    /// Catalog size: sessions pick one of this many titles.
    pub titles: usize,
    /// Zipf skew of title popularity (0 = uniform; ~1 = typical VoD).
    pub zipf_alpha: f64,
    /// Arrival window: sessions arrive uniformly in `[0, arrival_secs)`.
    pub arrival_secs: u64,
    /// Audio/video packaging for every session.
    pub delivery: DeliveryMode,
    /// Per-domain origin-uplink rate, Kbps.
    pub uplink_kbps: u64,
    /// Total origin egress capacity, Kbps (the window-sync throttle
    /// engages when fleet-wide miss demand exceeds it).
    pub origin_kbps: u64,
    /// Per-domain cache capacity, MB.
    pub cache_mb: u64,
    /// Extra origin round-trip paid by every cache miss, ms.
    pub miss_rtt_ms: u64,
    /// Window-sync period, ms: domains exchange state only this often.
    pub window_ms: u64,
    /// Per-session simulation deadline, seconds (bounds starved runs).
    pub deadline_secs: u64,
    /// Master seed for arrival realization and content synthesis.
    pub seed: u64,
}

impl FleetSpec {
    /// A small default topology: `sessions` sessions over 4 domains and
    /// a 12-title catalog with typical VoD skew. CLI flags and tests
    /// override fields from here.
    #[must_use]
    pub fn small(sessions: usize) -> FleetSpec {
        FleetSpec {
            sessions,
            domains: 4,
            shards: 4,
            titles: 12,
            zipf_alpha: 1.0,
            arrival_secs: 120,
            delivery: DeliveryMode::Demuxed,
            uplink_kbps: 40_000,
            origin_kbps: 100_000,
            cache_mb: 256,
            miss_rtt_ms: 60,
            window_ms: 250,
            deadline_secs: 1_800,
            seed: crate::setup::SEED,
        }
    }

    /// Panics on structurally impossible topologies.
    pub fn validate(&self) {
        assert!(self.sessions > 0, "fleet needs at least one session");
        assert!(self.domains > 0, "fleet needs at least one domain");
        assert!(self.shards > 0, "fleet needs at least one shard");
        assert!(self.titles > 0, "catalog needs at least one title");
        assert!(
            self.zipf_alpha.is_finite() && self.zipf_alpha >= 0.0,
            "zipf alpha must be a finite non-negative number"
        );
        assert!(self.window_ms > 0, "window must be positive");
        assert!(self.uplink_kbps > 0 && self.origin_kbps > 0, "dead origin");
        assert!(self.cache_mb > 0, "zero-capacity cache");
        assert!(self.deadline_secs > 0, "zero deadline");
    }
}

/// One realized arrival: everything a worker needs to construct the
/// session, with no RNG left to draw. Plans are `Send`; the `!Send`
/// session parts (origin, link, policy, stepper) are built inside the
/// owning worker thread.
#[derive(Debug, Clone)]
pub struct SessionPlan {
    /// Fleet-wide session index (also the result merge key).
    pub index: usize,
    /// Owning link domain.
    pub domain: usize,
    /// Catalog title (content seed offset and cache namespace).
    pub title: usize,
    /// Player emulation for this session.
    pub kind: PlayerKind,
    /// Arrival offset into fleet time.
    pub arrival: Duration,
    /// Index into [`abr_net::corpus::all`] for the access-link trace.
    pub trace_index: usize,
    /// Seed for the trace realization.
    pub trace_seed: u64,
}

/// Cumulative Zipf distribution over `titles` ranks with skew `alpha`:
/// `cdf[k]` is the unnormalized mass of ranks `0..=k`.
fn zipf_cdf(titles: usize, alpha: f64) -> Vec<f64> {
    let mut acc = 0.0;
    (0..titles)
        .map(|k| {
            acc += 1.0 / ((k + 1) as f64).powf(alpha);
            acc
        })
        .collect()
}

/// Streamed plan realization (DESIGN.md §15): the Zipf CDF and trace
/// corpus length are precomputed once; any session's plan is then
/// recomputed on demand from its own scheduling-blind RNG stream
/// ([`SplitMix64::for_stream`]) in O(log titles). The driver pulls plans
/// through this instead of an upfront `Vec<SessionPlan>`, so a
/// 100k-session fleet never materializes O(fleet) plan memory.
///
/// [`realize`] remains as the materialized view (tests, external
/// callers); `plan_source_matches_realize` pins them equal field for
/// field.
pub struct PlanSource {
    sessions: usize,
    domains: usize,
    titles: usize,
    arrival_secs: u64,
    seed: u64,
    cdf: Vec<f64>,
    total: f64,
    corpus_len: usize,
}

impl PlanSource {
    /// Precomputes the per-fleet draw tables from a validated spec.
    #[must_use]
    pub fn new(spec: &FleetSpec) -> PlanSource {
        spec.validate();
        let cdf = zipf_cdf(spec.titles, spec.zipf_alpha);
        let total = *cdf.last().expect("at least one title");
        PlanSource {
            sessions: spec.sessions,
            domains: spec.domains,
            titles: spec.titles,
            arrival_secs: spec.arrival_secs,
            seed: spec.seed,
            cdf,
            total,
            corpus_len: abr_net::corpus::LEN,
        }
    }

    /// Number of sessions in the fleet.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sessions
    }

    /// Whether the fleet is empty (it never is: `validate` rejects it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sessions == 0
    }

    /// Recomputes session `i`'s plan: title popularity is Zipf over the
    /// catalog; arrivals are uniform over the window; the player kind
    /// cycles through [`POLICY_MIX`] by draw; domains assign round-robin
    /// by index so every domain sees the same arrival intensity. A pure
    /// function of `(spec, i)` — the draw order is part of the artifact
    /// contract.
    #[must_use]
    pub fn plan(&self, i: usize) -> SessionPlan {
        assert!(i < self.sessions, "plan index out of range");
        let mut rng = SplitMix64::for_stream(self.seed, i as u64);
        let u = rng.next_f64() * self.total;
        let title = self.cdf.partition_point(|&c| c < u).min(self.titles - 1);
        let arrival = Duration::from_micros(rng.below(self.arrival_secs.max(1) * 1_000_000));
        let kind = POLICY_MIX[rng.below(POLICY_MIX.len() as u64) as usize];
        let trace_index = rng.below(self.corpus_len as u64) as usize;
        let trace_seed = rng.next_u64();
        SessionPlan {
            index: i,
            domain: i % self.domains,
            title,
            kind,
            arrival,
            trace_index,
            trace_seed,
        }
    }

    /// All plans in index order, computed lazily.
    pub fn iter(&self) -> impl Iterator<Item = SessionPlan> + '_ {
        (0..self.sessions).map(|i| self.plan(i))
    }

    /// Sessions per title, in one O(sessions) pass — the only whole-plan
    /// aggregate the report layer needs.
    #[must_use]
    pub fn title_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.titles];
        for plan in self.iter() {
            counts[plan.title] += 1;
        }
        counts
    }
}

/// Realizes the arrival plan as a vector, one RNG stream per session in
/// session-index order — the materialized view of [`PlanSource`].
#[must_use]
pub fn realize(spec: &FleetSpec) -> Vec<SessionPlan> {
    PlanSource::new(spec).iter().collect()
}

/// The result of one fleet run: the rendered report, the structured JSON
/// artifact, and (in test mode) the raw per-session logs.
pub struct FleetResult {
    /// Human-readable fleet report (the `exp fleet` stdout artifact).
    pub text: String,
    /// Structured report for `--json`.
    pub json: Value,
    /// Sessions run.
    pub sessions: usize,
    /// Per-session logs in session-index order, only when requested via
    /// [`run_fleet_with_logs`] (memory: a 10k-session fleet does not keep
    /// 10k logs alive by default).
    pub logs: Option<Vec<SessionLog>>,
}

/// Runs one fleet over `min(jobs, shards)` workers. Deterministic at
/// every `jobs` value and shard count.
#[must_use]
pub fn run_fleet(spec: &FleetSpec, jobs: usize) -> FleetResult {
    run_inner(spec, jobs, false)
}

/// [`run_fleet`] keeping every per-session [`SessionLog`] (the lockstep
/// parity and determinism tests compare them field-by-field).
#[must_use]
pub fn run_fleet_with_logs(spec: &FleetSpec, jobs: usize) -> FleetResult {
    run_inner(spec, jobs, true)
}

/// [`run_fleet_with_logs`] with explicit scheduling knobs — the entry
/// point the fast-forward differential tests use to sweep
/// [`FleetSchedKnobs::ff_horizon`] (including 0 = stepwise) and assert
/// the artifact never moves.
#[must_use]
pub fn run_fleet_sched(spec: &FleetSpec, jobs: usize, knobs: FleetSchedKnobs) -> FleetResult {
    run_sched_inner(spec, jobs, true, knobs)
}

fn run_inner(spec: &FleetSpec, jobs: usize, keep_logs: bool) -> FleetResult {
    run_sched_inner(spec, jobs, keep_logs, FleetSchedKnobs::default())
}

fn run_sched_inner(
    spec: &FleetSpec,
    jobs: usize,
    keep_logs: bool,
    knobs: FleetSchedKnobs,
) -> FleetResult {
    let source = PlanSource::new(spec);
    let out = driver::run_with_knobs(spec, &source, jobs, keep_logs, knobs);
    let (text, json) = report::render(spec, &source.title_counts(), &out);
    let logs = keep_logs.then(|| {
        out.outputs
            .into_iter()
            .map(|o| o.log.expect("keep_logs retains every log"))
            .collect()
    });
    FleetResult {
        text,
        json,
        sessions: spec.sessions,
        logs,
    }
}

/// [`run_fleet`] with the self-profiling layer on (`exp fleet --profile`):
/// phase-level host-time accounting — plan realization, the windowed
/// driver, report rendering — in the standard [`WorkloadProfile`] shape.
/// Profiling observes host time only; the returned [`FleetResult`] is
/// byte-identical to [`run_fleet`] at the same `(spec, jobs)`.
#[must_use]
pub fn run_fleet_profiled(
    spec: &FleetSpec,
    jobs: usize,
) -> (FleetResult, crate::profiling::WorkloadProfile) {
    let setup = abr_obs::HostStopwatch::start();
    let source = PlanSource::new(spec);
    let setup_ns = setup.elapsed_ns();
    let wall = abr_obs::HostStopwatch::start();
    let run = abr_obs::HostStopwatch::start();
    let out = driver::run(spec, &source, jobs, false);
    let run_ns = run.elapsed_ns();
    let merge = abr_obs::HostStopwatch::start();
    let (text, json) = report::render(spec, &source.title_counts(), &out);
    let pool = crate::runner::RunnerProfile {
        jobs: driver::effective_workers(spec, jobs, spec.sessions),
        items: spec.sessions as u64,
        run_ns,
        merge_ns: merge.elapsed_ns(),
        wall_ns: wall.elapsed_ns(),
        ..crate::runner::RunnerProfile::default()
    };
    // The peak-memory estimate (DESIGN.md §15): deterministic byte
    // counts, not allocator telemetry — per-session log footprints are a
    // pure function of the artifact, peak-active is a driver counter, and
    // the shared corpus is sized from the content tables. Rendered as a
    // profile note so the fleet report artifact itself stays untouched.
    let sessions = spec.sessions.max(1) as u64;
    let mean_session = out.session_bytes / sessions;
    let peak_active: u64 = out.domains.iter().map(|d| d.peak_active as u64).sum();
    let peak_estimate = out.corpus_bytes + peak_active * mean_session;
    let memory_note = format!(
        "memory: ~{}/session (max {}) | shared corpus {} ({} titles) | \
         est peak {} @ {} peak-active sessions",
        crate::profiling::fmt_bytes(mean_session),
        crate::profiling::fmt_bytes(out.session_bytes_max),
        crate::profiling::fmt_bytes(out.corpus_bytes),
        spec.titles,
        crate::profiling::fmt_bytes(peak_estimate),
        peak_active,
    );
    let result = FleetResult {
        text,
        json,
        sessions: spec.sessions,
        logs: None,
    };
    let mut profile = crate::profiling::WorkloadProfile::from_pool("fleet", setup_ns, pool);
    profile.notes.push(memory_note);
    (result, profile)
}

/// The fleet-of-1 parity comparator: builds session `index` of the plan
/// exactly as the fleet driver would — same content cut, same trace draw,
/// same [`abr_httpsim::SharedEdge`] onto a fresh per-domain hub — but
/// drives it with plain [`abr_player::Session::run`] instead of the
/// windowed stepper loop. With the origin throttle disengaged (set
/// `origin_kbps` high enough that the window-sync rule never fires) a
/// 1-session fleet must produce a byte-identical [`SessionLog`]; the
/// differential test in `tests/fleet_determinism.rs` holds this.
#[must_use]
pub fn standalone_log(spec: &FleetSpec, index: usize) -> SessionLog {
    let plan = PlanSource::new(spec).plan(index);
    let scenario = crate::corpus::TitleScenario::build(spec.seed, plan.title);
    let hub = std::rc::Rc::new(std::cell::RefCell::new(driver::build_hub(spec)));
    driver::build_session(spec, &plan, &scenario, hub).run()
}

/// Runs the same topology under demuxed and muxed packaging and renders
/// the head-to-head comparison — the paper's §1 CDN argument at fleet
/// scale: demuxed tracks let sessions with different audio choices share
/// video bytes, so the same cache yields a higher hit rate, a lighter
/// origin, and fewer contention stalls.
#[must_use]
pub fn run_fleet_comparison(spec: &FleetSpec, jobs: usize) -> FleetResult {
    let demuxed_spec = FleetSpec {
        delivery: DeliveryMode::Demuxed,
        ..spec.clone()
    };
    let muxed_spec = FleetSpec {
        delivery: DeliveryMode::Muxed,
        ..spec.clone()
    };
    let demuxed = run_fleet(&demuxed_spec, jobs);
    let muxed = run_fleet(&muxed_spec, jobs);
    let (text, json) = report::render_comparison(spec, &demuxed, &muxed);
    FleetResult {
        text,
        json,
        sessions: spec.sessions * 2,
        logs: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_source_matches_realize() {
        let spec = FleetSpec {
            zipf_alpha: 0.8,
            ..FleetSpec::small(300)
        };
        let source = PlanSource::new(&spec);
        let plans = realize(&spec);
        assert_eq!(source.len(), plans.len());
        for (i, p) in plans.iter().enumerate() {
            let q = source.plan(i);
            assert_eq!(q.index, p.index);
            assert_eq!(q.domain, p.domain);
            assert_eq!(q.title, p.title);
            assert_eq!(q.kind, p.kind);
            assert_eq!(q.arrival, p.arrival);
            assert_eq!(q.trace_index, p.trace_index);
            assert_eq!(q.trace_seed, p.trace_seed);
        }
        let counts = source.title_counts();
        assert_eq!(counts.iter().sum::<usize>(), spec.sessions);
        assert_eq!(counts[0], plans.iter().filter(|p| p.title == 0).count());
    }

    #[test]
    fn realization_is_a_pure_function_of_the_spec() {
        let spec = FleetSpec::small(50);
        let a = realize(&spec);
        let b = realize(&spec);
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.title, y.title);
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.trace_seed, y.trace_seed);
        }
    }

    #[test]
    fn zipf_skew_concentrates_popularity() {
        let flat = FleetSpec {
            zipf_alpha: 0.0,
            ..FleetSpec::small(2_000)
        };
        let skewed = FleetSpec {
            zipf_alpha: 1.4,
            ..FleetSpec::small(2_000)
        };
        let head_share = |spec: &FleetSpec| {
            let plans = realize(spec);
            plans.iter().filter(|p| p.title == 0).count() as f64 / plans.len() as f64
        };
        let flat_share = head_share(&flat);
        let skewed_share = head_share(&skewed);
        assert!(
            skewed_share > flat_share + 0.1,
            "skew must concentrate the head title: {flat_share} vs {skewed_share}"
        );
    }

    #[test]
    fn tiny_fleet_runs_and_reports() {
        let spec = FleetSpec {
            arrival_secs: 10,
            ..FleetSpec::small(6)
        };
        let r = run_fleet(&spec, 1);
        assert_eq!(r.sessions, 6);
        assert!(r.logs.is_none());
        assert!(r.text.contains("fleet: 6 sessions"));
        assert_eq!(r.json["totals"]["sessions"], 6);
        let domains = r.json["domains"].as_array().unwrap();
        assert_eq!(domains.len(), spec.domains);
        let total_requests: u64 = domains
            .iter()
            .map(|d| d["hits"].as_u64().unwrap() + d["misses"].as_u64().unwrap())
            .sum();
        assert!(total_requests > 0, "sessions must exercise the caches");
    }

    #[test]
    fn arrivals_stay_inside_the_window() {
        let spec = FleetSpec::small(200);
        for p in realize(&spec) {
            assert!(p.arrival < Duration::from_secs(spec.arrival_secs));
            assert!(p.domain < spec.domains);
            assert!(p.title < spec.titles);
        }
    }
}
