//! Fleet-level reporting: per-session QoE distributions, per-domain
//! shared-infrastructure counters, and the demuxed-vs-muxed comparison.
//!
//! Everything rendered here is a pure function of the driver output (and
//! the spec/plans), so the `exp fleet` stdout and `--json` artifacts are
//! byte-identical at every `--jobs` value — the property
//! `tests/fleet_determinism.rs` asserts against these exact strings.

use super::driver::DriverOutput;
use super::{FleetResult, FleetSpec};
use crate::report::table;
use serde_json::{json, Value};

/// Five-number summary over one per-session metric.
struct Dist {
    p50: f64,
    p90: f64,
    p99: f64,
    mean: f64,
    max: f64,
}

/// Nearest-rank percentiles over finite samples. Deterministic: total
/// order on finite floats, index arithmetic only.
fn dist(mut values: Vec<f64>) -> Dist {
    assert!(!values.is_empty(), "distribution over zero sessions");
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite metric"));
    let n = values.len();
    let pick = |p: f64| values[((p * (n - 1) as f64).round() as usize).min(n - 1)];
    Dist {
        p50: pick(0.50),
        p90: pick(0.90),
        p99: pick(0.99),
        mean: values.iter().sum::<f64>() / n as f64,
        max: values[n - 1],
    }
}

impl Dist {
    fn row(&self, label: &str) -> Vec<String> {
        vec![
            label.to_string(),
            format!("{:.2}", self.p50),
            format!("{:.2}", self.p90),
            format!("{:.2}", self.p99),
            format!("{:.2}", self.mean),
            format!("{:.2}", self.max),
        ]
    }

    fn json(&self) -> Value {
        json!({
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "mean": self.mean,
            "max": self.max,
        })
    }
}

/// Renders the full fleet report: header, QoE distributions, per-domain
/// table, fleet totals. `title_counts` is the only whole-plan aggregate
/// needed (computed in one streamed pass — the plan vector itself is
/// never materialized). Returns `(text, json)`.
pub(super) fn render(
    spec: &FleetSpec,
    title_counts: &[usize],
    out: &DriverOutput,
) -> (String, Value) {
    let summaries: Vec<_> = out.outputs.iter().map(|o| &o.summary).collect();
    let n = summaries.len();

    // Sessions that never reached playback report their deadline as the
    // startup delay — the pessimistic cap keeps the distribution total.
    let startup = dist(
        summaries
            .iter()
            .map(|q| {
                q.startup_delay.map_or(
                    spec.deadline_secs as f64,
                    abr_event::time::Duration::as_secs_f64,
                )
            })
            .collect(),
    );
    let stalls = dist(summaries.iter().map(|q| q.stall_count as f64).collect());
    let stall_s = dist(
        summaries
            .iter()
            .map(|q| q.total_stall.as_secs_f64())
            .collect(),
    );
    let video_kbps = dist(summaries.iter().map(|q| q.mean_video_kbps as f64).collect());
    let switches = dist(
        summaries
            .iter()
            .map(|q| (q.video_switches + q.audio_switches) as f64)
            .collect(),
    );
    let score = dist(summaries.iter().map(|q| q.score).collect());
    let completed = summaries.iter().filter(|q| q.completed).count();

    let dist_table = table(
        &["Metric", "p50", "p90", "p99", "mean", "max"],
        &[
            startup.row("Startup s"),
            stalls.row("Stalls"),
            stall_s.row("Stall s"),
            video_kbps.row("Video Kbps"),
            switches.row("Switches"),
            score.row("QoE score"),
        ],
    );

    // Per-domain shared-infrastructure counters. Uplink utilization is
    // busy time over the whole fleet horizon (windows × window width).
    let horizon_us = out.windows * spec.window_ms * 1_000;
    let mut domain_rows = Vec::new();
    let mut jdomains = Vec::new();
    let mut fleet_hits = 0u64;
    let mut fleet_misses = 0u64;
    let mut fleet_origin_bytes = 0u64;
    let mut fleet_evictions = 0u64;
    for d in &out.domains {
        let hit_ratio = d.cache.hit_ratio();
        let util = if horizon_us == 0 {
            0.0
        } else {
            d.uplink.busy_us as f64 / horizon_us as f64
        };
        fleet_hits += d.cache.hits;
        fleet_misses += d.cache.misses;
        fleet_origin_bytes += d.cache.bytes_from_origin.get();
        fleet_evictions += d.cache.evictions;
        domain_rows.push(vec![
            d.domain.to_string(),
            d.sessions.to_string(),
            d.peak_active.to_string(),
            format!("{:.1}", hit_ratio * 100.0),
            format!("{:.1}", d.cache.bytes_from_origin.get() as f64 / 1e6),
            d.cache.evictions.to_string(),
            format!("{:.1}", util * 100.0),
            format!("{:.1}", d.uplink.max_delay.as_secs_f64() * 1_000.0),
        ]);
        jdomains.push(json!({
            "domain": d.domain,
            "sessions": d.sessions,
            "peak_active": d.peak_active,
            "hits": d.cache.hits,
            "misses": d.cache.misses,
            "hit_ratio": hit_ratio,
            "origin_bytes": d.cache.bytes_from_origin.get(),
            "evictions": d.cache.evictions,
            "uplink_bytes": d.uplink.bytes,
            "uplink_busy_us": d.uplink.busy_us,
            "uplink_utilization": util,
            "uplink_max_delay_ms": d.uplink.max_delay.as_secs_f64() * 1_000.0,
        }));
    }
    let domain_table = table(
        &[
            "Domain",
            "Sessions",
            "Peak",
            "Hit %",
            "Origin MB",
            "Evict",
            "Uplink %",
            "MaxDelay ms",
        ],
        &domain_rows,
    );

    let fleet_requests = fleet_hits + fleet_misses;
    let fleet_hit_ratio = if fleet_requests == 0 {
        0.0
    } else {
        fleet_hits as f64 / fleet_requests as f64
    };
    let head_share = title_counts[0] as f64 / n as f64;

    let delivery = format!("{:?}", spec.delivery);
    let header = format!(
        "fleet: {} sessions | {} domains | {} shards | {} titles (zipf a={}) | {} delivery\n\
         window {} ms | uplink {} Kbps/domain | origin {} Kbps | cache {} MB/domain\n",
        spec.sessions,
        spec.domains,
        spec.shards,
        spec.titles,
        spec.zipf_alpha,
        delivery,
        spec.window_ms,
        spec.uplink_kbps,
        spec.origin_kbps,
        spec.cache_mb,
    );
    let totals = format!(
        "completed {completed}/{n} | cache hit {:.1}% | origin {:.1} MB | \
         throttled {}/{} windows | head title {:.1}%\n",
        fleet_hit_ratio * 100.0,
        fleet_origin_bytes as f64 / 1e6,
        out.throttled_windows,
        out.windows,
        head_share * 100.0,
    );
    let text = format!("{header}{dist_table}{domain_table}{totals}");

    let jtotals = json!({
        "completed": completed,
        "sessions": n,
        "hits": fleet_hits,
        "misses": fleet_misses,
        "hit_ratio": fleet_hit_ratio,
        "origin_bytes": fleet_origin_bytes,
        "evictions": fleet_evictions,
        "windows": out.windows,
        "throttled_windows": out.throttled_windows,
        "head_title_share": head_share,
        "stall_s_mean": stall_s.mean,
        "stalls_mean": stalls.mean,
        "video_kbps_mean": video_kbps.mean,
        "startup_s_mean": startup.mean,
        "score_mean": score.mean,
    });
    let jspec = json!({
        "sessions": spec.sessions,
        "domains": spec.domains,
        "shards": spec.shards,
        "titles": spec.titles,
        "zipf_alpha": spec.zipf_alpha,
        "arrival_secs": spec.arrival_secs,
        "delivery": delivery,
        "uplink_kbps": spec.uplink_kbps,
        "origin_kbps": spec.origin_kbps,
        "cache_mb": spec.cache_mb,
        "miss_rtt_ms": spec.miss_rtt_ms,
        "window_ms": spec.window_ms,
        "deadline_secs": spec.deadline_secs,
        "seed": spec.seed,
    });
    let jdists = json!({
        "startup_s": startup.json(),
        "stalls": stalls.json(),
        "stall_s": stall_s.json(),
        "video_kbps": video_kbps.json(),
        "switches": switches.json(),
        "score": score.json(),
    });
    let jvalue = json!({
        "spec": jspec,
        "distributions": jdists,
        "domains": jdomains,
        "title_counts": title_counts,
        "totals": jtotals,
    });
    (text, jvalue)
}

/// Renders the demuxed-vs-muxed head-to-head (the headline artifact):
/// under identical arrivals and topology, demuxed packaging shares video
/// bytes across sessions with different audio choices, so its cache-hit
/// ratio is higher and its origin load lower.
pub(super) fn render_comparison(
    spec: &FleetSpec,
    demuxed: &FleetResult,
    muxed: &FleetResult,
) -> (String, Value) {
    let pick =
        |r: &FleetResult, key: &str| -> f64 { r.json["totals"][key].as_f64().unwrap_or(0.0) };
    let row = |label: &str, key: &str, scale: f64, precision: usize| -> Vec<String> {
        let d = pick(demuxed, key) * scale;
        let m = pick(muxed, key) * scale;
        vec![
            label.to_string(),
            format!("{d:.precision$}"),
            format!("{m:.precision$}"),
            format!("{:+.precision$}", d - m),
        ]
    };
    let comparison = table(
        &["Metric", "Demuxed", "Muxed", "Delta"],
        &[
            row("Cache hit %", "hit_ratio", 100.0, 1),
            row("Origin MB", "origin_bytes", 1e-6, 1),
            row("Throttled windows", "throttled_windows", 1.0, 0),
            row("Stalls/session", "stalls_mean", 1.0, 2),
            row("Stall s/session", "stall_s_mean", 1.0, 2),
            row("Video Kbps", "video_kbps_mean", 1.0, 0),
            row("Startup s", "startup_s_mean", 1.0, 2),
            row("QoE score", "score_mean", 1.0, 2),
        ],
    );
    let text = format!(
        "fleet comparison: {} sessions x 2 deliveries | {} domains | seed {}\n\
         {comparison}\n\
         === demuxed fleet ===\n{}\n=== muxed fleet ===\n{}",
        spec.sessions, spec.domains, spec.seed, demuxed.text, muxed.text,
    );
    let jdeltas = json!({
        "hit_ratio": pick(demuxed, "hit_ratio") - pick(muxed, "hit_ratio"),
        "origin_bytes": pick(demuxed, "origin_bytes") - pick(muxed, "origin_bytes"),
        "stall_s_mean": pick(demuxed, "stall_s_mean") - pick(muxed, "stall_s_mean"),
        "video_kbps_mean": pick(demuxed, "video_kbps_mean") - pick(muxed, "video_kbps_mean"),
    });
    let jvalue = json!({
        "sessions": spec.sessions,
        "demuxed": demuxed.json,
        "muxed": muxed.json,
        "deltas": jdeltas,
    });
    (text, jvalue)
}
