//! The windowed, sharded fleet driver.
//!
//! Topology and schedule (DESIGN.md §14):
//!
//! * **Domains are atomic.** Each link domain owns one
//!   [`FleetHub`] (shared cache + origin uplink) and one
//!   [`EventQueue`] interleaving its sessions' arrivals and wakes on the
//!   fleet clock. Everything inside a domain is single-threaded.
//! * **Shards group domains; workers own shards.** Domain `d` lives in
//!   shard `d % shards`; shard `s` is driven by worker `s % workers`,
//!   where `workers` is `jobs` clamped to the shard count *and* the
//!   live-domain count ([`effective_workers`]) — a worker with nothing
//!   but empty domains would only pad the barriers. Sessions are `!Send`,
//!   so each worker *constructs* its sessions at arrival time and owns
//!   them until they finish; only `Send` results cross threads, merged in
//!   index order.
//! * **Cross-domain coupling happens only at window barriers.** Workers
//!   drain their domains strictly below each window boundary
//!   ([`EventQueue::pop_before`]), pre-sum their own domains' uplink
//!   demand, publish it to a per-worker slot, and meet at **one** barrier
//!   per window. After the barrier every worker redundantly folds the
//!   slots in fixed worker order and reaches the same decision: when
//!   fleet demand exceeds the origin's egress capacity, every uplink is
//!   throttled by the same `origin/demand` factor (the window-sync rule —
//!   conservative, one window of lag, identical at every worker count by
//!   construction). Slots are double-buffered by round parity, which is
//!   what makes a single barrier sound (see [`WindowBoard`]).
//! * **Quiescent windows are skipped in one step.** Workers also publish
//!   their earliest pending event time; when the global minimum lands
//!   beyond the next window, every intervening window is provably empty —
//!   zero demand, throttle disengaged, no state change anywhere — so the
//!   drivers jump the window clock straight to the first non-empty window
//!   ([`FleetSchedKnobs::ff_horizon`]). The skip is a scheduling decision
//!   computed identically by every worker from barrier-published data.
//!
//! Byte-stability at any `jobs`/`shards` value follows: per-domain event
//! order is a pure function of the domain's own queue, the demand fold
//! reads fixed per-worker slots in a fixed order (integer addition is
//! order-blind anyway), and the only shared mutable signal (the uplink
//! rate) changes exclusively between windows.

use super::{FleetSpec, PlanSource, SessionPlan, TRACE_SECS};
use crate::corpus::{TitleCorpus, TitleScenario};
use crate::setup::{dash_policy_over, player_config};
use abr_event::arena::{Arena, SlotId};
use abr_event::sync_model::{fold_slots, next_window, parity_of_round};
use abr_event::time::{Duration, Instant};
use abr_event::{EventQueue, WindowClock};
use abr_httpsim::cache::{CacheStats, CdnCache};
use abr_httpsim::origin::Origin;
use abr_httpsim::shared::{FleetHub, SharedEdge};
use abr_media::content::SharedContent;
use abr_media::units::Bytes;
use abr_net::link::Link;
use abr_net::uplink::{UplinkQueue, UplinkStats};
use abr_player::{Session, SessionLog, SessionStepper};
use abr_qoe::QoeSummary;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

/// Scheduling knobs for the fleet driver. Everything here is *outside*
/// the artifact contract (DESIGN.md §16): every knob setting produces
/// byte-identical artifacts, which the fast-forward differential
/// proptest in `tests/fleet_determinism.rs` sweeps directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetSchedKnobs {
    /// Minimum run of globally-empty windows required before the driver
    /// fast-forwards the window clock over them in one step. `0`
    /// disables fast-forward entirely (the stepwise reference path the
    /// differential tests compare against).
    pub ff_horizon: u64,
}

impl Default for FleetSchedKnobs {
    fn default() -> Self {
        FleetSchedKnobs { ff_horizon: 1 }
    }
}

/// What one session sends back across the worker boundary.
pub(super) struct SessionOutput {
    /// QoE summary of the finished session.
    pub summary: QoeSummary,
    /// Deterministic estimate of the session's log heap footprint at
    /// finish (feeds the `--profile` memory note, never the artifact).
    pub approx_bytes: u64,
    /// The raw log, kept only when the caller asked for it.
    pub log: Option<SessionLog>,
}

/// Per-domain shared-infrastructure counters at end of run.
pub(super) struct DomainReport {
    /// Domain index.
    pub domain: usize,
    /// Sessions that ran in this domain.
    pub sessions: usize,
    /// Peak concurrently-active sessions.
    pub peak_active: usize,
    /// Shared-cache counters.
    pub cache: CacheStats,
    /// Origin-uplink counters.
    pub uplink: UplinkStats,
}

/// Everything the driver hands to the report layer.
pub(super) struct DriverOutput {
    /// Per-session outputs in session-index order.
    pub outputs: Vec<SessionOutput>,
    /// Per-domain reports in domain-index order.
    pub domains: Vec<DomainReport>,
    /// Sync windows elapsed.
    pub windows: u64,
    /// Windows in which the origin throttle engaged.
    pub throttled_windows: u64,
    /// Shared title-corpus footprint (deterministic estimate, bytes).
    pub corpus_bytes: u64,
    /// Summed per-session log footprints (deterministic estimate, bytes).
    pub session_bytes: u64,
    /// Largest single-session log footprint (deterministic estimate).
    pub session_bytes_max: u64,
}

/// What one worker returns: its sessions' outputs (keyed by session
/// index) and the end-of-run reports of the domains it owned.
type WorkerResult = (Vec<(usize, SessionOutput)>, Vec<DomainReport>);

/// One entry on a domain's fleet-time queue.
enum Slot {
    /// Construct and start session `i` (pops at its arrival instant).
    Arrival(usize),
    /// Dispatch the next engine event of the live session in this arena
    /// slot. Queue order never reads the payload, so swapping the session
    /// index for an arena handle cannot reorder dispatch (DESIGN.md §15).
    Wake(SlotId),
}

/// A live session: its stepper, its fleet-wide index (the result merge
/// key, carried because wakes address the arena slot, not the index),
/// and the arrival offset translating its local clock onto fleet time.
struct ActiveSession {
    index: usize,
    stepper: SessionStepper,
    offset: Duration,
}

/// One link domain owned by a worker. Live sessions sit in a
/// generational [`Arena`]: wake slots carry O(1) handles and freed slots
/// recycle, so long-running fleets churn a bounded pool instead of
/// a tree keyed by session index (the index order was never read —
/// dispatch order is the event queue's alone).
struct Domain {
    index: usize,
    queue: EventQueue<Slot>,
    hub: Rc<RefCell<FleetHub>>,
    active: Arena<ActiveSession>,
    peak_active: usize,
    finished: usize,
}

/// Builds a domain's shared hub from the spec.
pub(super) fn build_hub(spec: &FleetSpec) -> FleetHub {
    FleetHub::new(
        CdnCache::new(Bytes(spec.cache_mb * 1_000_000)),
        UplinkQueue::new(spec.uplink_kbps),
        Duration::from_millis(spec.miss_rtt_ms),
    )
}

/// Builds the session a plan describes, wired onto `hub`. Shared by the
/// fleet driver and the fleet-of-1 parity comparator so that "the same
/// session" means the same construction code, not a re-implementation.
pub(super) fn build_session(
    spec: &FleetSpec,
    plan: &SessionPlan,
    scenario: &TitleScenario,
    hub: Rc<RefCell<FleetHub>>,
) -> Session {
    let origin = Origin::with_overhead(SharedContent::clone(&scenario.content), Bytes::ZERO);
    let trace = abr_net::corpus::nth(
        Duration::from_secs(TRACE_SECS),
        plan.trace_seed,
        plan.trace_index,
    )
    .1;
    let link = Link::with_latency(trace, Duration::from_millis(20));
    let policy = dash_policy_over(plan.kind, &scenario.content, &scenario.dash);
    let config = player_config(plan.kind, scenario.content.chunk_duration());
    Session::new(origin, link, policy, config)
        .with_delivery(spec.delivery)
        .with_deadline(Instant::from_secs(spec.deadline_secs))
        .with_transfer_path(Box::new(SharedEdge::new(
            hub,
            plan.title as u64,
            plan.arrival,
        )))
}

/// Workers the driver actually spawns: `jobs`, clamped to the shard
/// count and to the number of *live* domains. Sessions land in domain
/// `i % domains`, so exactly `min(sessions, domains)` domains ever see
/// an arrival; spinning more workers than that would march idle threads
/// through every per-window barrier for nothing. Because live domains
/// are the contiguous prefix `0..live`, every spawned worker owns at
/// least one live domain.
pub(super) fn effective_workers(spec: &FleetSpec, jobs: usize, sessions: usize) -> usize {
    let live_domains = spec.domains.min(sessions.max(1));
    jobs.max(1).min(spec.shards).min(live_domains)
}

/// Double-buffered per-worker barrier slots. Processed round `r` writes
/// and reads parity `r & 1` ([`parity_of_round`] — the *round* counter,
/// not the window index: fast-forward can jump the window index by an
/// odd amount): a worker can only *reuse* a parity after passing the
/// next round's barrier, which requires every reader of that parity to
/// have arrived there — i.e. to have finished reading. That
/// sense-reversing scheme is what lets one barrier per window replace
/// the old publish/fold/apply pair of waits.
///
/// The protocol is model-checked: `abr_event::sync_model::WindowModel`
/// exhausts every bounded interleaving of publish → barrier → fold →
/// parity flip over the same decision functions this driver calls
/// ([`parity_of_round`], [`fold_slots`], [`next_window`]), and the
/// window-index parity it replaces is pinned as a rediscovered
/// counterexample (`crates/event/tests/sync_model.rs`). All access goes
/// through [`WindowBoard::publish`] / [`WindowBoard::read`] — raw slot
/// indexing outside this module is flagged by lint rule `ABR-L009`.
struct WindowBoard {
    /// Bytes each worker's domains offered their uplinks this window,
    /// pre-summed by the owning worker so the fold is off the barrier's
    /// critical section. (Integer addition is order-blind, so the
    /// per-worker grouping cannot perturb the fleet total.)
    demand: [Vec<AtomicU64>; 2],
    /// Pending events per worker (the stop signal's input).
    alive: [Vec<AtomicU64>; 2],
    /// Earliest pending event time per worker, in microseconds
    /// (`u64::MAX` when the worker's domains are drained dry) — the
    /// quiescent fast-forward's input.
    next_at: [Vec<AtomicU64>; 2],
    /// The round each slot was last published for — the dynamic half of
    /// the model checker's parity-freshness invariant, stamped last on
    /// publish and checked on every read.
    #[cfg(feature = "debug-invariants")]
    epoch: [Vec<AtomicU64>; 2],
}

impl WindowBoard {
    fn new(workers: usize) -> WindowBoard {
        let mk = || (0..workers).map(|_| AtomicU64::new(0)).collect();
        WindowBoard {
            demand: [mk(), mk()],
            alive: [mk(), mk()],
            next_at: [mk(), mk()],
            #[cfg(feature = "debug-invariants")]
            epoch: [
                (0..workers).map(|_| AtomicU64::new(u64::MAX)).collect(),
                (0..workers).map(|_| AtomicU64::new(u64::MAX)).collect(),
            ],
        }
    }

    /// Publishes worker `w`'s pre-summed window data into its parity
    /// slot. `Release` suffices here (downgraded from `SeqCst`, with the
    /// model as evidence — see `lint.toml`): the stores only need to be
    /// visible to the post-barrier folds, and `Barrier::wait` is itself
    /// an acquire-release rendezvous, so even `Relaxed` publishes pass
    /// the model (`relaxed_publish_with_flushing_rendezvous_is_safe`);
    /// `Release` keeps the slots' own publish edge independent of that
    /// barrier detail.
    fn publish(&self, parity: usize, w: usize, round: u64, demand: u64, alive: u64, next_at: u64) {
        self.demand[parity][w].store(demand, Ordering::Release);
        self.alive[parity][w].store(alive, Ordering::Release);
        self.next_at[parity][w].store(next_at, Ordering::Release);
        #[cfg(feature = "debug-invariants")]
        self.epoch[parity][w].store(round, Ordering::Release);
        #[cfg(not(feature = "debug-invariants"))]
        let _ = round;
    }

    /// Reads worker `ww`'s parity slot for the fold. `Acquire` pairs
    /// with the `Release` publish; under `debug-invariants` the read
    /// also asserts the slot was published for exactly the round being
    /// folded — the parity-epoch freshness invariant the model checker
    /// proves statically, cross-checked dynamically.
    fn read(&self, parity: usize, ww: usize, round: u64) -> (u64, u64, u64) {
        #[cfg(feature = "debug-invariants")]
        debug_assert_eq!(
            self.epoch[parity][ww].load(Ordering::Acquire),
            round,
            "worker {ww}'s parity-{parity} slot is stale for round {round}"
        );
        #[cfg(not(feature = "debug-invariants"))]
        let _ = round;
        (
            self.demand[parity][ww].load(Ordering::Acquire),
            self.alive[parity][ww].load(Ordering::Acquire),
            self.next_at[parity][ww].load(Ordering::Acquire),
        )
    }
}

/// Runs the fleet with default scheduling knobs. Returns per-session
/// outputs in index order and per-domain reports in domain order —
/// byte-identical at every `jobs` and shard count.
pub(super) fn run(
    spec: &FleetSpec,
    source: &PlanSource,
    jobs: usize,
    keep_logs: bool,
) -> DriverOutput {
    run_with_knobs(spec, source, jobs, keep_logs, FleetSchedKnobs::default())
}

/// [`run`] with explicit scheduling knobs (differential tests sweep the
/// fast-forward horizon through here).
pub(super) fn run_with_knobs(
    spec: &FleetSpec,
    source: &PlanSource,
    jobs: usize,
    keep_logs: bool,
    knobs: FleetSchedKnobs,
) -> DriverOutput {
    let workers = effective_workers(spec, jobs, source.len());
    let barrier = Barrier::new(workers);
    // The shared title catalog: every content cut and manifest view is
    // built exactly once here and read by reference from every worker —
    // the per-worker lazily-filled caches this replaces built each title
    // up to `workers` times over.
    let corpus = TitleCorpus::build(spec.seed, spec.titles);
    let board = WindowBoard::new(workers);
    let windows = AtomicU64::new(0);
    let throttled = AtomicU64::new(0);

    let mut worker_results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let corpus = &corpus;
                let barrier = &barrier;
                let board = &board;
                let windows = &windows;
                let throttled = &throttled;
                scope.spawn(move || {
                    run_worker(
                        spec, source, corpus, w, workers, keep_logs, knobs, barrier, board,
                        windows, throttled,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fleet worker panicked"))
            .collect()
    });

    // Merge in index order: session outputs by session index, domain
    // reports by domain index. Sort keys are unique, so the merged order
    // is independent of which worker produced what.
    let mut outputs: Vec<(usize, SessionOutput)> = Vec::with_capacity(source.len());
    let mut domains: Vec<DomainReport> = Vec::with_capacity(spec.domains);
    for (outs, doms) in &mut worker_results {
        outputs.append(outs);
        domains.append(doms);
    }
    outputs.sort_by_key(|(i, _)| *i);
    domains.sort_by_key(|d| d.domain);
    assert_eq!(outputs.len(), source.len(), "every session must finish");
    assert_eq!(domains.len(), spec.domains, "every domain must report");

    let session_bytes: u64 = outputs.iter().map(|(_, o)| o.approx_bytes).sum();
    let session_bytes_max = outputs
        .iter()
        .map(|(_, o)| o.approx_bytes)
        .max()
        .unwrap_or(0);
    DriverOutput {
        outputs: outputs.into_iter().map(|(_, o)| o).collect(),
        domains,
        // `Relaxed` loads: `thread::scope` joined every worker above, and
        // the joins synchronize-with worker completion (see `lint.toml`).
        windows: windows.load(Ordering::Relaxed),
        throttled_windows: throttled.load(Ordering::Relaxed),
        corpus_bytes: corpus.approx_bytes(),
        session_bytes,
        session_bytes_max,
    }
}

/// The window-sync fold: fleet-wide demand (bytes over one window) versus
/// the origin's egress capacity. Exact integer arithmetic: bytes × 8 over
/// a window of `window_ms` milliseconds is bits-per-millisecond, which
/// *is* Kbps.
fn throttle_rate(spec: &FleetSpec, total_bytes: u128) -> (u64, bool) {
    let demand_kbps = total_bytes * 8 / u128::from(spec.window_ms);
    if demand_kbps > u128::from(spec.origin_kbps) {
        let scaled = u128::from(spec.uplink_kbps) * u128::from(spec.origin_kbps) / demand_kbps;
        (u64::try_from(scaled.max(1)).expect("rate fits"), true)
    } else {
        (spec.uplink_kbps, false)
    }
}

#[allow(clippy::too_many_arguments)]
fn run_worker(
    spec: &FleetSpec,
    source: &PlanSource,
    corpus: &TitleCorpus,
    w: usize,
    workers: usize,
    keep_logs: bool,
    knobs: FleetSchedKnobs,
    barrier: &Barrier,
    board: &WindowBoard,
    windows: &AtomicU64,
    throttled: &AtomicU64,
) -> WorkerResult {
    // This worker's domains, ascending: domain d → shard d % shards →
    // worker (d % shards) % workers.
    let mut domains: Vec<Domain> = (0..spec.domains)
        .filter(|d| (d % spec.shards) % workers == w)
        .map(|index| Domain {
            index,
            queue: EventQueue::new(),
            hub: Rc::new(RefCell::new(build_hub(spec))),
            active: Arena::new(),
            peak_active: 0,
            finished: 0,
        })
        .collect();

    // Pre-schedule arrivals in plan-index order, streamed straight off
    // the plan source: within each domain's queue the schedule order is
    // still ascending in session index, so FIFO tie-breaking makes
    // same-instant arrivals pop in index order, a pure function of the
    // plan. Domain membership (`i % domains`) is positional, so plans of
    // other workers' domains are never even computed.
    let mut owned_pos = vec![usize::MAX; spec.domains];
    for (pos, domain) in domains.iter().enumerate() {
        owned_pos[domain.index] = pos;
    }
    for i in 0..source.len() {
        let pos = owned_pos[i % spec.domains];
        if pos == usize::MAX {
            continue;
        }
        let arrival = source.plan(i).arrival;
        domains[pos]
            .queue
            .schedule(Instant::ZERO + arrival, Slot::Arrival(i));
    }

    let mut outputs: Vec<(usize, SessionOutput)> = Vec::new();
    let clock = WindowClock::new(Duration::from_millis(spec.window_ms));

    let mut k = 0u64;
    // Board parity counts *processed* rounds (one per barrier), not the
    // window index — see [`WindowBoard`] and `sync_model::ParityRule`.
    let mut round = 0u64;
    loop {
        let parity = parity_of_round(round);
        let end = clock.end_of(k);
        let mut my_demand: u64 = 0;
        let mut my_alive: u64 = 0;
        let mut my_next = u64::MAX;
        for domain in &mut domains {
            drain_window(spec, source, corpus, domain, end, keep_logs, &mut outputs);
            my_demand += domain.hub.borrow_mut().uplink_mut().take_window_bytes();
            my_alive += domain.queue.len() as u64;
            if let Some(t) = domain.queue.next_time() {
                my_next = my_next.min(t.as_micros());
            }
        }
        board.publish(parity, w, round, my_demand, my_alive, my_next);

        barrier.wait();

        // Redundant deterministic fold: every worker reads the same
        // parity slots in the same fixed order and reaches the same
        // rate / stop / fast-forward decision — no second barrier needed
        // to publish a leader's verdict. `fold_slots` is the model
        // checker's fold, which proves the totals identical across
        // workers under every bounded interleaving.
        let fold = fold_slots((0..workers).map(|ww| board.read(parity, ww, round)));
        let (next_rate, engaged) = throttle_rate(spec, fold.demand);

        // Quiescent-window fast-forward: everything before the fold's
        // `min_next_us` is drained, so every window strictly between `k`
        // and the window containing it is globally empty — zero demand,
        // throttle disengaged, no uplink traffic, no state change of any
        // kind. The stepwise run would grind through them only to count
        // windows and reset the rate to full; `next_window` (the
        // model-checked jump rule) does both in one step instead.
        let next_k = next_window(k, knobs.ff_horizon, &fold, &clock);
        let skipped = next_k - (k + 1);
        if w == 0 {
            // `Relaxed` suffices for the run counters: worker 0 is the
            // only writer, and the driver reads them only after
            // `thread::scope`'s join edge (see `lint.toml`).
            windows.fetch_add(1 + skipped, Ordering::Relaxed);
            if engaged {
                throttled.fetch_add(1, Ordering::Relaxed);
            }
        }
        // The rate entering window `next_k`: this window's fold when
        // stepping; when windows were skipped, the last fold before
        // `next_k` is an empty window's — full uplink, throttle off.
        let applied = if skipped > 0 {
            spec.uplink_kbps
        } else {
            next_rate
        };
        for domain in &mut domains {
            domain.hub.borrow_mut().uplink_mut().set_rate_kbps(applied);
        }
        if fold.alive == 0 {
            break;
        }
        k = next_k;
        round += 1;
    }

    let reports = domains
        .into_iter()
        .map(|domain| {
            assert!(domain.queue.is_empty(), "domain queue drained");
            assert!(domain.active.is_empty(), "all sessions finished");
            let hub = domain.hub.borrow();
            let cache = hub.cache_stats().expect("fleet domains have caches");
            let uplink = hub.uplink().stats();
            // Cross-session byte conservation (DESIGN.md §12): every byte
            // the cache pulled from the origin was serialized through the
            // uplink, and nothing else was.
            #[cfg(feature = "debug-invariants")]
            debug_assert_eq!(
                cache.bytes_from_origin.get(),
                uplink.bytes,
                "domain {} origin bytes must equal uplink bytes",
                domain.index
            );
            DomainReport {
                domain: domain.index,
                sessions: domain.finished,
                peak_active: domain.peak_active,
                cache,
                uplink,
            }
        })
        .collect();
    (outputs, reports)
}

/// Drains one domain strictly below the window boundary: arrivals
/// construct their session and schedule its first wake; wakes dispatch
/// one engine event and re-schedule (or finalize). New events landing
/// inside the current window are popped in the same drain, so a window
/// is fully settled before the barrier.
fn drain_window(
    spec: &FleetSpec,
    source: &PlanSource,
    corpus: &TitleCorpus,
    domain: &mut Domain,
    end: Instant,
    keep_logs: bool,
    outputs: &mut Vec<(usize, SessionOutput)>,
) {
    while let Some((_, slot)) = domain.queue.pop_before(end) {
        match slot {
            Slot::Arrival(i) => {
                let plan = source.plan(i);
                let scenario = corpus.title(plan.title);
                let mut stepper =
                    build_session(spec, &plan, scenario, Rc::clone(&domain.hub)).into_stepper();
                match stepper.next_wake() {
                    Some(local) => {
                        let id = domain.active.insert(ActiveSession {
                            index: i,
                            stepper,
                            offset: plan.arrival,
                        });
                        domain.queue.schedule(local + plan.arrival, Slot::Wake(id));
                        domain.peak_active = domain.peak_active.max(domain.active.len());
                    }
                    None => finalize(domain, i, stepper, keep_logs, outputs),
                }
            }
            Slot::Wake(id) => {
                let session = domain.active.get_mut(id).expect("wake for live session");
                let more = session.stepper.dispatch_next();
                let next = if more {
                    session.stepper.next_wake()
                } else {
                    None
                };
                match next {
                    Some(local) => {
                        let offset = session.offset;
                        domain.queue.schedule(local + offset, Slot::Wake(id));
                    }
                    None => {
                        let session = domain.active.remove(id).expect("just present");
                        finalize(domain, session.index, session.stepper, keep_logs, outputs);
                    }
                }
            }
        }
    }
}

/// Finishes a session: summarize, keep the log only when asked.
fn finalize(
    domain: &mut Domain,
    index: usize,
    stepper: SessionStepper,
    keep_logs: bool,
    outputs: &mut Vec<(usize, SessionOutput)>,
) {
    let log = stepper.finish();
    let summary = abr_qoe::summarize(&log);
    let approx_bytes = log.approx_heap_bytes();
    domain.finished += 1;
    outputs.push((
        index,
        SessionOutput {
            summary,
            approx_bytes,
            log: keep_logs.then_some(log),
        },
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throttle_engages_only_above_origin_capacity() {
        let spec = FleetSpec::small(1); // uplink 40 Mbps, origin 100 Mbps, 250 ms windows
                                        // 1 MB over 250 ms = 32 Mbps of demand: below origin capacity.
        assert_eq!(throttle_rate(&spec, 1_000_000), (spec.uplink_kbps, false));
        // 10 MB over 250 ms = 320 Mbps: throttle scales by origin/demand.
        let (rate, engaged) = throttle_rate(&spec, 10_000_000);
        assert!(engaged);
        assert_eq!(rate, 40_000 * 100_000 / 320_000);
    }

    #[test]
    fn throttle_never_drops_to_zero() {
        let spec = FleetSpec::small(1);
        let (rate, engaged) = throttle_rate(&spec, u64::MAX as u128);
        assert!(engaged);
        assert!(rate >= 1);
    }

    #[test]
    fn effective_workers_clamps_to_live_domains() {
        let spec = FleetSpec::small(100); // 4 domains, 4 shards
        assert_eq!(effective_workers(&spec, 8, 100), 4, "shards cap");
        assert_eq!(effective_workers(&spec, 2, 100), 2, "jobs respected");
        assert_eq!(effective_workers(&spec, 0, 100), 1, "floor of one");
        // Fewer sessions than domains: only the contiguous prefix of
        // domains ever sees an arrival, so workers clamp to it.
        assert_eq!(effective_workers(&spec, 8, 2), 2);
        assert_eq!(effective_workers(&spec, 8, 1), 1);
        assert_eq!(effective_workers(&spec, 8, 0), 1, "degenerate fleet");
    }

    #[test]
    fn sched_knobs_default_enables_fast_forward() {
        assert_eq!(FleetSchedKnobs::default().ff_horizon, 1);
    }

    #[test]
    fn domain_to_worker_assignment_partitions_domains() {
        // Every domain is owned by exactly one worker at any (shards,
        // workers) combination — the invariant the merge asserts.
        for shards in 1..=5usize {
            for workers in 1..=4usize {
                let mut owned = [0u32; 12];
                for w in 0..workers {
                    for (d, count) in owned.iter_mut().enumerate() {
                        if (d % shards) % workers == w {
                            *count += 1;
                        }
                    }
                }
                assert!(
                    owned.iter().all(|&c| c == 1),
                    "shards={shards} workers={workers}"
                );
            }
        }
    }
}
