//! Canonical experiment setup: content, manifests, player configs,
//! session runners.
//!
//! Every manifest used by an experiment is round-tripped through its
//! textual form (build → serialize → parse → bind), so the experiments
//! exercise the same information pipeline a real player would.

use abr_core::{
    BbaPolicy, BestPracticePolicy, DashJsPolicy, ExoPlayerPolicy, MpcPolicy, ShakaPolicy,
};
use abr_event::time::{Duration, Instant};
use abr_httpsim::origin::Origin;
use abr_manifest::build::{build_master_playlist, build_mpd};
use abr_manifest::hls::MasterPlaylist;
use abr_manifest::view::{BoundDash, BoundHls};
use abr_manifest::Mpd;
use abr_media::combo::{all_combos, curated_subset, Combo};
use abr_media::content::{Content, SharedContent};
use abr_media::units::Bytes;
use abr_net::link::Link;
use abr_net::trace::Trace;
use abr_obs::{MetricsSnapshot, ObsHandle, TracedEvent};
use abr_player::config::{PlayerConfig, SyncMode};
use abr_player::policy::AbrPolicy;
use abr_player::{Session, SessionLog};

/// The deterministic seed every experiment uses for content synthesis.
pub const SEED: u64 = 2019;

/// The Table 1 drama show, behind a shared handle (DESIGN.md §15):
/// sessions clone the `Arc`, never the size tables.
pub fn drama() -> SharedContent {
    Content::drama_show(SEED).into()
}

/// §3.2 variant with the low-bitrate "B" audio set.
pub fn drama_low_audio() -> SharedContent {
    Content::drama_show_low_audio(SEED).into()
}

/// §3.2 variant with the high-bitrate "C" audio set.
pub fn drama_high_audio() -> SharedContent {
    Content::drama_show_high_audio(SEED).into()
}

/// DASH manifest view, round-tripped through MPD text.
pub fn dash_view(content: &Content) -> BoundDash {
    let text = build_mpd(content).to_text();
    BoundDash::from_mpd(&Mpd::parse(&text).expect("self-built MPD parses")).expect("binds")
}

/// HLS `H_all` view (all 18 combinations, Table 2 order), audio listed
/// A1, A2, A3.
pub fn hls_all_view(content: &Content) -> BoundHls {
    hls_view(
        content,
        &all_combos(content.video(), content.audio()),
        &[0, 1, 2],
    )
}

/// HLS `H_sub` view (the Table 3 curation) with an explicit audio listing
/// order — Fig 3's experiments hinge on which rendition is listed first.
pub fn hls_sub_view(content: &Content, audio_order: &[usize]) -> BoundHls {
    hls_view(
        content,
        &curated_subset(content.video(), content.audio()),
        audio_order,
    )
}

/// Arbitrary-combination HLS view, round-tripped through playlist text.
pub fn hls_view(content: &Content, combos: &[Combo], audio_order: &[usize]) -> BoundHls {
    let text = build_master_playlist(content, combos, audio_order).to_text();
    BoundHls::from_master(&MasterPlaylist::parse(&text).expect("self-built playlist parses"))
        .expect("binds")
}

/// Which real player a session emulates (determines buffering targets and
/// pipeline coupling, per each player's defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlayerKind {
    /// ExoPlayer: deep buffer, chunk-level-synchronized pipelines.
    ExoPlayer,
    /// Shaka: shallow 10 s buffering goal, independent pipelines.
    Shaka,
    /// dash.js: deep buffer, fully independent pipelines (§3.4).
    DashJs,
    /// Best-practice: deep buffer, chunk-level synchronization (§4.2).
    BestPractice,
    /// BBA baseline (buffer-only; paper reference \[12\]).
    Bba,
    /// RobustMPC baseline (horizon search; paper reference \[25\]).
    Mpc,
}

/// The player-level configuration for a kind.
pub fn player_config(kind: PlayerKind, chunk: Duration) -> PlayerConfig {
    let chunked = SyncMode::ChunkLevel { tolerance: chunk };
    match kind {
        PlayerKind::ExoPlayer => PlayerConfig {
            startup_threshold: chunk,
            resume_threshold: chunk * 2,
            max_buffer: Duration::from_secs(30),
            sync: chunked,
        },
        PlayerKind::Shaka => PlayerConfig {
            startup_threshold: chunk,
            resume_threshold: chunk,
            max_buffer: Duration::from_secs(10),
            sync: SyncMode::Independent,
        },
        PlayerKind::DashJs => PlayerConfig {
            startup_threshold: chunk,
            resume_threshold: chunk,
            max_buffer: Duration::from_secs(30),
            sync: SyncMode::Independent,
        },
        PlayerKind::BestPractice | PlayerKind::Bba | PlayerKind::Mpc => PlayerConfig {
            startup_threshold: chunk,
            resume_threshold: chunk * 2,
            max_buffer: Duration::from_secs(30),
            sync: chunked,
        },
    }
}

/// Runs one streaming session: `content` over `trace` with `policy`,
/// using `kind`'s player configuration. Zero header overhead keeps the
/// byte arithmetic aligned with the paper's bitrate tables.
pub fn run_session(
    content: &SharedContent,
    kind: PlayerKind,
    policy: Box<dyn AbrPolicy>,
    trace: Trace,
) -> SessionLog {
    run_session_with_obs(content, kind, policy, trace, ObsHandle::disabled())
}

/// [`run_session`] with an explicit [`ObsHandle`]. A disabled handle is
/// exactly what a bare `Session` starts with, so `run_session` and this
/// function are the same code path; `exp mc --profile`
/// passes a handle that carries only a span profiler, which observes
/// host time and never touches the log (the byte-identity the
/// `profile_determinism` suite pins).
pub fn run_session_with_obs(
    content: &SharedContent,
    kind: PlayerKind,
    policy: Box<dyn AbrPolicy>,
    trace: Trace,
    obs: ObsHandle,
) -> SessionLog {
    session_for(content, kind, policy, trace)
        .with_obs(obs)
        .run()
}

/// [`run_session_with_obs`] building the log's event vectors out of a
/// worker-local [`abr_player::SessionScratch`] pool — the sweep hot path.
/// Logs are byte-identical to the unpooled runner; hand the log back to
/// [`abr_player::SessionScratch::reclaim`] once summarized.
pub fn run_session_pooled(
    content: &SharedContent,
    kind: PlayerKind,
    policy: Box<dyn AbrPolicy>,
    trace: Trace,
    obs: ObsHandle,
    scratch: &mut abr_player::SessionScratch,
) -> SessionLog {
    session_for(content, kind, policy, trace)
        .with_obs(obs)
        .run_with_scratch(scratch)
}

/// The canonical session builder every runner variant shares: shared
/// content handle into a zero-overhead origin (keeps the byte arithmetic
/// aligned with the paper's bitrate tables), 20 ms link latency, `kind`'s
/// player configuration.
fn session_for(
    content: &SharedContent,
    kind: PlayerKind,
    policy: Box<dyn AbrPolicy>,
    trace: Trace,
) -> Session {
    let origin = Origin::with_overhead(SharedContent::clone(content), Bytes::ZERO);
    let link = Link::with_latency(trace, Duration::from_millis(20));
    let config = player_config(kind, content.chunk_duration());
    Session::new(origin, link, policy, config)
}

/// Like [`run_session`], but with a recording tracer and metrics registry
/// attached: returns the directly-recorded log alongside the captured
/// event stream and a metrics snapshot. This is the runner behind the
/// `exp --trace/--chrome/--metrics` flags and the trace-replay
/// integration test.
///
/// Observation is *deterministic* ([`ObsHandle::deterministic_recording`]):
/// `wall_ns` stamps are 0 and host-clock timing histograms are disabled,
/// so the returned events and snapshot are a pure function of the session
/// — the property the golden-artifact and parallel-determinism suites
/// assert. Wall-clock profiling remains available by wiring
/// [`ObsHandle::recording`] manually (the `obs_overhead` ablation does).
pub fn run_session_obs(
    content: &SharedContent,
    kind: PlayerKind,
    policy: Box<dyn AbrPolicy>,
    trace: Trace,
) -> (SessionLog, Vec<TracedEvent>, MetricsSnapshot) {
    run_session_obs_profiled(content, kind, policy, trace, None)
}

/// [`run_session_obs`] with an optional span profiler attached to the
/// deterministic recording handle. Profiling observes host time only: the
/// returned log, events and metrics are byte-identical with or without a
/// profiler (the `profile_determinism` suite holds this), and the spans
/// land in the caller's [`abr_obs::Profiler`] for a later
/// [`abr_obs::ProfileReport`].
pub fn run_session_obs_profiled(
    content: &SharedContent,
    kind: PlayerKind,
    policy: Box<dyn AbrPolicy>,
    trace: Trace,
    profiler: Option<&std::rc::Rc<abr_obs::Profiler>>,
) -> (SessionLog, Vec<TracedEvent>, MetricsSnapshot) {
    let (mut obs, tracer, metrics) = ObsHandle::deterministic_recording();
    if let Some(p) = profiler {
        obs = obs.with_profiler(std::rc::Rc::clone(p));
    }
    let log = session_for(content, kind, policy, trace)
        .with_obs(obs)
        .run();
    (log, tracer.take(), metrics.snapshot())
}

/// Builds the standard policy for a kind over DASH manifests (used by the
/// BP1 shootout; the best-practice player gets the §4.1 server-curated
/// combination list out-of-band).
pub fn dash_policy(kind: PlayerKind, content: &Content) -> Box<dyn AbrPolicy> {
    dash_policy_over(kind, content, &dash_view(content))
}

/// [`dash_policy`] over an already-bound view — the corpus hot path: the
/// round trip through MPD text happens once per shared scenario, not once
/// per session. `view` must be the bound view of `content` (the corpus
/// builds them together).
pub fn dash_policy_over(
    kind: PlayerKind,
    content: &Content,
    view: &BoundDash,
) -> Box<dyn AbrPolicy> {
    match kind {
        PlayerKind::ExoPlayer => Box::new(ExoPlayerPolicy::dash(view)),
        PlayerKind::Shaka => Box::new(ShakaPolicy::dash(view)),
        PlayerKind::DashJs => Box::new(DashJsPolicy::new(view)),
        PlayerKind::BestPractice => {
            let allowed = curated_subset(content.video(), content.audio());
            Box::new(BestPracticePolicy::from_dash(view, &allowed))
        }
        PlayerKind::Bba => {
            let allowed = curated_subset(content.video(), content.audio());
            Box::new(BbaPolicy::from_dash(view, &allowed))
        }
        PlayerKind::Mpc => {
            let allowed = curated_subset(content.video(), content.audio());
            Box::new(MpcPolicy::from_dash(view, &allowed))
        }
    }
}

/// Selection time-series for plotting: (seconds, selected declared Kbps)
/// for one media type.
pub fn selection_series(log: &SessionLog, media: abr_media::track::MediaType) -> Vec<(f64, f64)> {
    log.selections_for(media)
        .map(|s| (s.at.as_secs_f64(), s.declared.kbps() as f64))
        .collect()
}

/// Buffer-level time-series: (seconds, level-seconds) for one media type.
pub fn buffer_series(log: &SessionLog, media: abr_media::track::MediaType) -> Vec<(f64, f64)> {
    log.buffer_samples
        .iter()
        .map(|b| {
            let level = match media {
                abr_media::track::MediaType::Audio => b.audio,
                abr_media::track::MediaType::Video => b.video,
            };
            (b.at.as_secs_f64(), level.as_secs_f64())
        })
        .collect()
}

/// Bandwidth-estimate time-series from the transfer log.
pub fn estimate_series(log: &SessionLog) -> Vec<(f64, f64)> {
    log.transfers
        .iter()
        .filter_map(|t| {
            t.estimate_after
                .map(|e| (t.at.as_secs_f64(), e.kbps() as f64))
        })
        .collect()
}

/// Downsamples a series to at most `max_points` (keeps endpoints).
pub fn downsample(series: &[(f64, f64)], max_points: usize) -> Vec<(f64, f64)> {
    assert!(max_points >= 2);
    if series.len() <= max_points {
        return series.to_vec();
    }
    let step = (series.len() - 1) as f64 / (max_points - 1) as f64;
    (0..max_points)
        .map(|i| series[(i as f64 * step).round() as usize])
        .collect()
}

/// Stall windows as (start_secs, end_secs) pairs, open stalls closing at
/// the session end.
pub fn stall_windows(log: &SessionLog) -> Vec<(f64, f64)> {
    log.stalls
        .iter()
        .map(|s| {
            (
                s.start.as_secs_f64(),
                s.end.unwrap_or(log.finished_at).as_secs_f64(),
            )
        })
        .collect()
}

/// A generous deadline for pathological sessions (keeps starved runs
/// bounded while letting heavy rebuffering play out).
pub fn far_deadline() -> Instant {
    Instant::from_secs(3_600)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_media::track::MediaType;
    use abr_media::units::BitsPerSec;

    #[test]
    fn views_roundtrip_and_bind() {
        let c = drama();
        let d = dash_view(&c);
        assert_eq!(d.video_declared.len(), 6);
        let h = hls_all_view(&c);
        assert_eq!(h.variants.len(), 18);
        let s = hls_sub_view(&c, &[2, 0, 1]);
        assert_eq!(s.variants.len(), 6);
        assert_eq!(s.audio_listing[0], 2);
    }

    #[test]
    fn configs_match_kind_semantics() {
        let chunk = Duration::from_secs(4);
        assert_eq!(
            player_config(PlayerKind::DashJs, chunk).sync,
            SyncMode::Independent
        );
        assert_eq!(
            player_config(PlayerKind::ExoPlayer, chunk).sync,
            SyncMode::ChunkLevel { tolerance: chunk }
        );
        assert_eq!(
            player_config(PlayerKind::Shaka, chunk).max_buffer,
            Duration::from_secs(10)
        );
    }

    #[test]
    fn full_session_smoke_bestpractice() {
        let c = drama();
        let log = run_session(
            &c,
            PlayerKind::BestPractice,
            dash_policy(PlayerKind::BestPractice, &c),
            Trace::constant(BitsPerSec::from_kbps(2000)),
        );
        assert!(log.completed(), "session must complete");
        assert_eq!(log.stall_count(), 0);
        assert!(!selection_series(&log, MediaType::Video).is_empty());
        assert!(!buffer_series(&log, MediaType::Audio).is_empty());
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let s: Vec<(f64, f64)> = (0..1000).map(|i| (i as f64, i as f64)).collect();
        let d = downsample(&s, 50);
        assert_eq!(d.len(), 50);
        assert_eq!(d[0], s[0]);
        assert_eq!(*d.last().unwrap(), *s.last().unwrap());
        // Short series pass through.
        assert_eq!(downsample(&s[..10], 50).len(), 10);
    }
}
