//! Rendering the self-profiling layer: one [`WorkloadProfile`] per
//! profiled CLI run (`exp --id <id> --profile`, `exp mc --profile`),
//! combining the sweep pool's phase/worker accounting
//! ([`crate::runner::RunnerProfile`]) with the merged per-session span
//! tree ([`abr_obs::ProfileReport`]). Two renderings: a human-readable
//! self/total-time table ([`WorkloadProfile::text`]) and a JSON artifact
//! ([`WorkloadProfile::json`]) the CI bench matrix uploads.
//!
//! Everything here is host-time telemetry. None of it feeds simulation
//! artifacts, so numbers vary run to run while the accompanying session
//! outputs stay byte-identical (DESIGN.md §13).

use abr_obs::metrics::HistogramSnapshot;
use abr_obs::profile::fmt_ns;
use abr_obs::{ProfileReport, SpanNode};

use crate::runner::{RunnerProfile, WorkerStats};

/// Where a profiled workload's host time went: pool phases, per-worker
/// utilization, the per-session wall-time distribution, and the merged
/// span call tree.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    /// Workload label (`mc`, or the experiment id).
    pub workload: String,
    /// Workers the pool used.
    pub jobs: usize,
    /// Sessions dispatched.
    pub sessions: u64,
    /// End-to-end host time of the profiled run (spec build + pool).
    pub wall_ns: u64,
    /// Spec/grid construction time before the pool started.
    pub setup_ns: u64,
    /// Pool spawn time.
    pub spawn_ns: u64,
    /// Pool run time (claim + job execution, bounded by slowest worker).
    pub run_ns: u64,
    /// Index-order reassembly + span/metrics merge time.
    pub merge_ns: u64,
    /// Per-worker accounting, in worker order.
    pub workers: Vec<WorkerStats>,
    /// Per-session host wall time distribution.
    pub session_wall: HistogramSnapshot,
    /// Merged span tree across all sessions (spec order).
    pub spans: ProfileReport,
    /// Workload-specific annotation lines (e.g. the fleet peak-memory
    /// estimate), rendered verbatim after the session-wall line.
    pub notes: Vec<String>,
}

/// Human-readable byte count: `B`/`KB`/`MB`/`GB` with one decimal above
/// bytes. Deterministic formatting for deterministic estimates.
#[must_use]
pub fn fmt_bytes(n: u64) -> String {
    if n < 1_000 {
        format!("{n} B")
    } else if n < 1_000_000 {
        format!("{:.1} KB", n as f64 / 1e3)
    } else if n < 1_000_000_000 {
        format!("{:.1} MB", n as f64 / 1e6)
    } else {
        format!("{:.1} GB", n as f64 / 1e9)
    }
}

impl WorkloadProfile {
    /// Assembles a workload profile from the pool's accounting plus the
    /// caller-measured spec-construction time.
    pub fn from_pool(
        workload: impl Into<String>,
        setup_ns: u64,
        pool: RunnerProfile,
    ) -> WorkloadProfile {
        WorkloadProfile {
            workload: workload.into(),
            jobs: pool.jobs,
            sessions: pool.items,
            wall_ns: setup_ns + pool.wall_ns,
            setup_ns,
            spawn_ns: pool.spawn_ns,
            run_ns: pool.run_ns,
            merge_ns: pool.merge_ns,
            workers: pool.workers,
            session_wall: pool.item_wall,
            spans: pool.spans,
            notes: Vec::new(),
        }
    }

    /// Fraction of summed per-session host time attributed to named
    /// spans. The acceptance bar for the instrumented workloads is
    /// ≥ 0.95 (DESIGN.md §13).
    pub fn attributed(&self) -> f64 {
        self.spans.attributed()
    }

    /// The human-readable rendering: phase summary, worker utilization,
    /// per-session wall quantiles, then the span self/total-time table
    /// with the hottest spans.
    pub fn text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "profile: {} ({} sessions, {} jobs)\n",
            self.workload, self.sessions, self.jobs
        ));
        out.push_str(&format!(
            "phases: setup {} | spawn {} | run {} | merge {} | wall {}\n",
            fmt_ns(self.setup_ns),
            fmt_ns(self.spawn_ns),
            fmt_ns(self.run_ns),
            fmt_ns(self.merge_ns),
            fmt_ns(self.wall_ns),
        ));
        out.push_str(&format!(
            "{:<8} {:>6} {:>10} {:>10} {:>10} {:>6}\n",
            "worker", "items", "busy", "claim", "alive", "util%"
        ));
        for w in &self.workers {
            let util = if w.alive_ns == 0 {
                0.0
            } else {
                100.0 * w.busy_ns as f64 / w.alive_ns as f64
            };
            out.push_str(&format!(
                "{:<8} {:>6} {:>10} {:>10} {:>10} {:>5.1}%\n",
                w.worker,
                w.items,
                fmt_ns(w.busy_ns),
                fmt_ns(w.claim_ns),
                fmt_ns(w.alive_ns),
                util,
            ));
        }
        let q = |p: f64| {
            self.session_wall
                .quantile(p)
                .map_or_else(|| "-".to_string(), |v| fmt_ns(v as u64))
        };
        out.push_str(&format!(
            "session wall: p50 {} | p90 {} | p99 {} (n = {})\n",
            q(0.50),
            q(0.90),
            q(0.99),
            self.session_wall.count,
        ));
        for note in &self.notes {
            out.push_str(note);
            out.push('\n');
        }
        out.push('\n');
        out.push_str(&self.spans.table());
        out
    }

    /// The JSON artifact (`exp ... --profile-json`): every field of the
    /// text rendering, machine-readable, spans as a recursive tree.
    pub fn json(&self) -> serde_json::Value {
        fn span_json(node: &SpanNode) -> serde_json::Value {
            serde_json::json!({
                "name": node.name,
                "count": node.count,
                "total_ns": node.total_ns,
                "self_ns": node.self_ns,
                "p50_ns": node.durations.quantile(0.50),
                "p90_ns": node.durations.quantile(0.90),
                "p99_ns": node.durations.quantile(0.99),
                "children": node.children.iter().map(span_json).collect::<Vec<_>>(),
            })
        }
        serde_json::json!({
            "format": "abr-profile-v1",
            "workload": self.workload,
            "jobs": self.jobs,
            "sessions": self.sessions,
            "wall_ns": self.wall_ns,
            "phases": serde_json::json!({
                "setup_ns": self.setup_ns,
                "spawn_ns": self.spawn_ns,
                "run_ns": self.run_ns,
                "merge_ns": self.merge_ns,
            }),
            "workers": self.workers.iter().map(|w| serde_json::json!({
                "worker": w.worker,
                "items": w.items,
                "claim_ns": w.claim_ns,
                "busy_ns": w.busy_ns,
                "alive_ns": w.alive_ns,
            })).collect::<Vec<_>>(),
            "session_wall_ns": serde_json::json!({
                "count": self.session_wall.count,
                "p50": self.session_wall.quantile(0.50),
                "p90": self.session_wall.quantile(0.90),
                "p99": self.session_wall.quantile(0.99),
                "max": self.session_wall.max,
            }),
            "notes": self.notes,
            "attributed": self.attributed(),
            "span_wall_ns": self.spans.wall_ns,
            "spans": self.spans.roots.iter().map(span_json).collect::<Vec<_>>(),
            "hot": self.spans.hot(5).iter().map(|(path, self_ns)| serde_json::json!({
                "path": path,
                "self_ns": self_ns,
            })).collect::<Vec<_>>(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_indexed_profiled;
    use abr_obs::Profiler;
    use std::rc::Rc;

    fn sample() -> WorkloadProfile {
        let (_, pool) = run_indexed_profiled(4, 2, |i| {
            let prof = Rc::new(Profiler::new());
            {
                let _s = prof.span("session.run");
                let _d = prof.span("dispatch.transfer_complete");
            }
            (i, prof.report())
        });
        WorkloadProfile::from_pool("test", 123, pool)
    }

    #[test]
    fn text_names_phases_workers_and_spans() {
        let p = sample();
        let text = p.text();
        assert!(text.contains("profile: test (4 sessions, 2 jobs)"));
        assert!(text.contains("phases: setup"));
        assert!(text.contains("session.run"));
        assert!(text.contains("dispatch.transfer_complete"));
        assert!(text.contains("hot spans by self time:"));
        assert!(text.contains("session wall: p50"));
    }

    #[test]
    fn json_is_versioned_and_recursive() {
        let p = sample();
        let v = p.json();
        assert_eq!(v["format"], "abr-profile-v1");
        assert_eq!(v["sessions"], 4);
        assert_eq!(v["spans"][0]["name"], "session.run");
        assert_eq!(
            v["spans"][0]["children"][0]["name"],
            "dispatch.transfer_complete"
        );
        assert!(v["hot"].as_array().is_some_and(|h| !h.is_empty()));
    }
}
