//! The shared scenario corpus: build once, `Arc` everywhere (DESIGN.md
//! §15).
//!
//! Before this module existed every sweep cell re-synthesized its content
//! realization, re-built and re-parsed its manifest, and re-drew its
//! whole trace corpus — per *session*. All of that data is immutable once
//! built and identical across the hundreds of sessions that share a
//! realization, so the corpus hoists it: one [`McScenario`] per Monte
//! Carlo realization and one [`TitleScenario`] per fleet title, each
//! holding `Arc`'d content plus the round-tripped manifest view, cloned
//! by handle into every session. The shared data never feeds back into
//! session state, so sharing is observationally identical to per-spec
//! construction — `tests/corpus_parity.rs` and the `arc_sharing`
//! proptests pin that equivalence byte for byte.

use crate::setup::{dash_view, SEED};
use abr_event::time::Duration;
use abr_manifest::view::SharedDash;
use abr_media::content::{Content, SharedContent};
use abr_net::trace::Trace;

/// Everything one Monte Carlo realization shares across its sessions:
/// the content cut, its bound DASH view (round-tripped through MPD text
/// exactly as the per-session path did), and the full named trace
/// corpus drawn from the realization seed.
pub struct McScenario {
    /// The realization's content seed (`SEED + realization`).
    pub seed: u64,
    /// The content cut, shared by handle.
    pub content: SharedContent,
    /// The bound DASH manifest view over `content`, shared by handle.
    pub dash: SharedDash,
    /// The named trace corpus for this realization, in
    /// [`abr_net::corpus::all`] order. Sessions clone the one they need.
    pub traces: Vec<(&'static str, Trace)>,
}

/// The Monte Carlo sweep's scenario corpus, keyed by realization index.
pub struct ScenarioCorpus {
    scenarios: Vec<McScenario>,
}

impl ScenarioCorpus {
    /// Builds the corpus for `seeds` realizations of trace length
    /// `trace_len`: each realization's content, DASH view and trace
    /// corpus, built exactly once. Realization `r` uses content seed
    /// `SEED + r`, matching the historical per-cell construction.
    pub fn build_mc(seeds: u64, trace_len: Duration) -> ScenarioCorpus {
        let scenarios = (0..seeds)
            .map(|r| {
                let seed = SEED.wrapping_add(r);
                let content: SharedContent = Content::drama_show(seed).into();
                let dash = SharedDash::new(dash_view(&content));
                let traces = abr_net::corpus::all(trace_len, seed);
                McScenario {
                    seed,
                    content,
                    dash,
                    traces,
                }
            })
            .collect();
        ScenarioCorpus { scenarios }
    }

    /// Number of realizations.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the corpus holds no realizations.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// The shared scenario for one realization index.
    pub fn scenario(&self, realization: u64) -> &McScenario {
        &self.scenarios[realization as usize]
    }

    /// The trace names, in corpus order (identical for every
    /// realization).
    pub fn trace_names(&self) -> Vec<&'static str> {
        self.scenarios
            .first()
            .map(|s| s.traces.iter().map(|(n, _)| *n).collect())
            .unwrap_or_default()
    }
}

/// One fleet title's shared data: the content cut and its DASH view.
/// Traces stay per-session (each plan draws its own trace seed).
pub struct TitleScenario {
    /// The title's content cut, shared by handle.
    pub content: SharedContent,
    /// The bound DASH manifest view over `content`, shared by handle.
    pub dash: SharedDash,
}

impl TitleScenario {
    /// Builds one title's shared data: content seed `seed + title` (the
    /// same derivation the per-worker caches used, and the one
    /// [`TitleCorpus::build`] applies to every catalog entry).
    #[must_use]
    pub fn build(seed: u64, title: usize) -> TitleScenario {
        let content: SharedContent = Content::drama_show(seed.wrapping_add(title as u64)).into();
        let dash = SharedDash::new(dash_view(&content));
        TitleScenario { content, dash }
    }
}

/// A fleet's title catalog: every title's content and manifest view,
/// built once up front and shared read-only across all fleet workers
/// (replacing the per-worker lazily-filled content caches).
pub struct TitleCorpus {
    titles: Vec<TitleScenario>,
}

impl TitleCorpus {
    /// Builds all `titles` catalog entries for a fleet seeded with
    /// `seed`. Title `t` uses content seed `seed + t` — the same
    /// derivation the per-worker caches used.
    pub fn build(seed: u64, titles: usize) -> TitleCorpus {
        let titles = (0..titles).map(|t| TitleScenario::build(seed, t)).collect();
        TitleCorpus { titles }
    }

    /// Number of titles in the catalog.
    pub fn len(&self) -> usize {
        self.titles.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.titles.is_empty()
    }

    /// The shared scenario for one title.
    pub fn title(&self, title: usize) -> &TitleScenario {
        &self.titles[title]
    }

    /// Approximate heap bytes of the shared catalog (content size tables
    /// plus manifest views) — the numerator of the fleet's shared-data
    /// footprint in `exp fleet --profile`.
    pub fn approx_bytes(&self) -> u64 {
        self.titles
            .iter()
            .map(|t| content_approx_bytes(&t.content))
            .sum()
    }
}

/// Deterministic estimate of one content realization's heap footprint:
/// the per-chunk size tables dominate (`tracks × chunks × 8 B`), plus
/// the id/total side tables.
pub fn content_approx_bytes(content: &Content) -> u64 {
    let tracks = content.track_ids().len() as u64;
    let chunks = content.num_chunks() as u64;
    let word = core::mem::size_of::<u64>() as u64;
    tracks * chunks * word // size tables
        + tracks * 2 * word // totals + id list
        + core::mem::size_of::<Content>() as u64
}

/// Compile-time proof the shared corpus types may be captured by
/// reference from sweep worker closures (the `Sync` half of the sharing
/// contract; `runner::static_send_sync_assertions` covers the owned
/// types).
#[allow(dead_code)]
fn static_sync_assertions() {
    fn sync<T: Sync>() {}
    sync::<ScenarioCorpus>();
    sync::<TitleCorpus>();
    sync::<SharedContent>();
    sync::<SharedDash>();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mc_corpus_matches_per_cell_construction() {
        let corpus = ScenarioCorpus::build_mc(2, Duration::from_secs(60));
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus.trace_names().len(), abr_net::corpus::LEN);
        for r in 0..2u64 {
            let sc = corpus.scenario(r);
            let seed = SEED.wrapping_add(r);
            assert_eq!(sc.seed, seed);
            let legacy = Content::drama_show(seed);
            let id = abr_media::track::TrackId::video(3);
            assert_eq!(sc.content.chunk_size(id, 10), legacy.chunk_size(id, 10));
            let legacy_traces = abr_net::corpus::all(Duration::from_secs(60), seed);
            assert_eq!(sc.traces, legacy_traces);
            assert_eq!(sc.dash.video_declared.len(), 6);
        }
    }

    #[test]
    fn title_corpus_matches_fleet_derivation() {
        let corpus = TitleCorpus::build(77, 3);
        assert_eq!(corpus.len(), 3);
        let legacy = Content::drama_show(77u64.wrapping_add(2));
        let id = abr_media::track::TrackId::audio(1);
        assert_eq!(
            corpus.title(2).content.chunk_size(id, 5),
            legacy.chunk_size(id, 5)
        );
        assert!(corpus.approx_bytes() > 0);
    }
}
