//! Bench-history regression gate CLI (`scripts/bench_check`).
//!
//! ```text
//! bench_check check --file BENCH_sim.json [--file BENCH_runner.json ...]
//!     Gate the latest entry of each history document against its own
//!     recorded past (abr-bench-history-v1; see abr_bench::history).
//!     Exit 1 if any benchmark regressed beyond tolerance.
//!
//! bench_check append --file BENCH_sim.json --entry new_entry.json
//!     Append a measurement entry (a JSON object) to a history document
//!     in place. Entries are append-only; nothing is ever rewritten.
//!     `--entry -` reads the entry from stdin (what bench_sim.sh and
//!     bench_runner.sh pipe in).
//! ```

use std::io::Read as _;
use std::process::ExitCode;

use abr_bench::history;
use serde_json::Value;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_check check --file F [--file F2 ...]\n       bench_check append --file F --entry E.json|-"
    );
    ExitCode::from(2)
}

fn read_doc(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: {e:?}"))
}

fn cmd_check(files: &[String]) -> ExitCode {
    let mut failed = false;
    for path in files {
        let doc = match read_doc(path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("bench_check: {e}");
                return ExitCode::FAILURE;
            }
        };
        match history::check(&doc) {
            Ok(outcome) => {
                print!("{path}:\n{}", outcome.render());
                failed |= !outcome.passed();
            }
            Err(e) => {
                eprintln!("bench_check: {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_append(file: &str, entry_src: &str) -> ExitCode {
    let entry_text = if entry_src == "-" {
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            eprintln!("bench_check: stdin: {e}");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(entry_src) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench_check: {entry_src}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let entry: Value = match serde_json::from_str(&entry_text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench_check: entry: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    let mut doc = match read_doc(file) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("bench_check: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = history::append_entry(&mut doc, entry) {
        eprintln!("bench_check: {file}: {e}");
        return ExitCode::FAILURE;
    }
    let rendered = match serde_json::to_string_pretty(&doc) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_check: serialize: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(file, rendered + "\n") {
        eprintln!("bench_check: write {file}: {e}");
        return ExitCode::FAILURE;
    }
    println!("bench_check: appended entry to {file}");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let mut files: Vec<String> = Vec::new();
    let mut entry: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--file" => {
                i += 1;
                match args.get(i) {
                    Some(f) => files.push(f.clone()),
                    None => return usage(),
                }
            }
            "--entry" => {
                i += 1;
                match args.get(i) {
                    Some(e) => entry = Some(e.clone()),
                    None => return usage(),
                }
            }
            _ => return usage(),
        }
        i += 1;
    }
    match cmd.as_str() {
        "check" if !files.is_empty() && entry.is_none() => cmd_check(&files),
        "append" => match (files.as_slice(), entry) {
            ([file], Some(entry)) => cmd_append(file, &entry),
            _ => usage(),
        },
        _ => usage(),
    }
}
