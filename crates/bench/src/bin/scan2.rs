//! Fluctuation-regime scan (calibration helper).
//!
//! `scan2 [--jobs N]` shards the seed sweep across workers via the
//! deterministic runner; output lines stay in seed order at any N.
use abr_bench::runner;
use abr_bench::setup::*;
use abr_core::{BestPracticePolicy, ShakaPolicy};
use abr_event::time::Duration;
use abr_media::track::MediaType;
use abr_media::units::BitsPerSec;
use abr_net::trace::Trace;

fn main() {
    let jobs = runner::jobs_from_args_or_env();
    let content = drama();
    let seeds = [1u64, 2, 3, 4, 5];
    let lines = runner::run_indexed(seeds.len(), jobs, |i| {
        let seed = seeds[i];
        let trace = Trace::random_walk(
            BitsPerSec::from_kbps(2200),
            BitsPerSec::from_kbps(1200),
            BitsPerSec::from_kbps(3500),
            0.35,
            Duration::from_secs(4),
            Duration::from_secs(3600),
            seed,
        );
        let view = hls_all_view(&content);
        let shaka = run_session(
            &content,
            PlayerKind::Shaka,
            Box::new(ShakaPolicy::hls(&view)),
            trace.clone(),
        );
        let bp = run_session(
            &content,
            PlayerKind::BestPractice,
            Box::new(BestPracticePolicy::from_hls(&view)),
            trace,
        );
        let sw = |l: &abr_player::SessionLog| {
            l.switch_count(MediaType::Video) + l.switch_count(MediaType::Audio)
        };
        format!("seed {seed}: shaka sw={} stalls={} rebuf={:.1} | bp sw={} stalls={} rebuf={:.1} | qoe {:.2} vs {:.2}",
            sw(&shaka), shaka.stall_count(), shaka.total_stall().as_secs_f64(),
            sw(&bp), bp.stall_count(), bp.total_stall().as_secs_f64(),
            abr_qoe::summarize(&shaka).score, abr_qoe::summarize(&bp).score)
    });
    for line in lines {
        println!("{line}");
    }
}
