//! BBA tail-behavior debug (calibration helper).
use abr_bench::setup::*;
use abr_core::BbaPolicy;
use abr_media::track::MediaType;
use abr_media::units::BitsPerSec;
use abr_net::trace::Trace;

fn main() {
    let content = drama();
    let view = hls_sub_view(&content, &[0, 1, 2]);
    let log = run_session(
        &content,
        PlayerKind::BestPractice,
        Box::new(BbaPolicy::from_hls(&view)),
        Trace::constant(BitsPerSec::from_kbps(8000)),
    );
    let v = log.selected_tracks(MediaType::Video);
    println!("video tail: {:?}", &v[60..]);
    for s in log.buffer_samples.iter().rev().take(8) {
        println!("t={} a={} v={}", s.at, s.audio, s.video);
    }
}
