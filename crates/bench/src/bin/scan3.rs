//! BBA tail-behavior debug (calibration helper).
//!
//! Accepts `--jobs N` like the other scan binaries (a single session, so
//! the runner degenerates to the serial path).
use abr_bench::runner;
use abr_bench::setup::*;
use abr_core::BbaPolicy;
use abr_media::track::MediaType;
use abr_media::units::BitsPerSec;
use abr_net::trace::Trace;

fn main() {
    let jobs = runner::jobs_from_args_or_env();
    let content = drama();
    let logs = runner::run_indexed(1, jobs, |_| {
        let view = hls_sub_view(&content, &[0, 1, 2]);
        run_session(
            &content,
            PlayerKind::BestPractice,
            Box::new(BbaPolicy::from_hls(&view)),
            Trace::constant(BitsPerSec::from_kbps(8000)),
        )
    });
    let log = &logs[0];
    let v = log.selected_tracks(MediaType::Video);
    println!("video tail: {:?}", &v[60..]);
    for s in log.buffer_samples.iter().rev().take(8) {
        println!("t={} a={} v={}", s.at, s.audio, s.video);
    }
}
