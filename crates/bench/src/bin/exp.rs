//! Experiment runner CLI.
//!
//! ```text
//! exp --list            list experiment ids
//! exp --id f4a          run one experiment, print the regenerated figure
//! exp --all [--json D]  run everything; optionally write JSON to dir D
//! ```

use abr_bench::experiments::{all_ids, run};
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut id: Option<String> = None;
    let mut run_all = false;
    let mut list = false;
    let mut json_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => list = true,
            "--all" => run_all = true,
            "--id" => {
                i += 1;
                id = Some(args.get(i).unwrap_or_else(|| usage("--id needs a value")).clone());
            }
            "--json" => {
                i += 1;
                json_dir =
                    Some(args.get(i).unwrap_or_else(|| usage("--json needs a value")).clone());
            }
            other => usage(&format!("unknown flag `{other}`")),
        }
        i += 1;
    }

    if list {
        for id in all_ids() {
            println!("{id}");
        }
        return;
    }

    let ids: Vec<&str> = if run_all {
        all_ids()
    } else if let Some(ref id) = id {
        vec![id.as_str()]
    } else {
        usage("pass --id <id>, --all or --list");
    };

    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
    }

    for id in ids {
        let Some(result) = run(id) else {
            eprintln!("unknown experiment `{id}`; try --list");
            std::process::exit(2);
        };
        println!("=== {} — {} ===", result.id, result.title);
        println!("{}", result.text);
        if let Some(dir) = &json_dir {
            let path = format!("{dir}/{}.json", result.id);
            let mut f = std::fs::File::create(&path).expect("create json file");
            f.write_all(serde_json::to_string_pretty(&result.json).expect("serialize").as_bytes())
                .expect("write json");
            println!("[json written to {path}]\n");
        }
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: exp (--list | --id <experiment> | --all) [--json <dir>]");
    std::process::exit(2);
}
