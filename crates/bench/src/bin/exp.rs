//! Experiment runner CLI.
//!
//! ```text
//! exp --list            list experiment ids
//! exp --id f4a          run one experiment, print the regenerated figure
//! exp --all [--json D]  run everything; optionally write JSON to dir D
//!
//! Observability (single-session experiments only, with --id):
//! exp --id f4b --trace out.jsonl    write the event trace as JSONL
//! exp --id f4b --chrome out.json    write a Chrome trace_event document
//! exp --id f4b --metrics            print the metrics registry summary
//! ```

use abr_bench::experiments::{all_ids, run, traced_session};
use abr_bench::report::table;
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut id: Option<String> = None;
    let mut run_all = false;
    let mut list = false;
    let mut json_dir: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut chrome_path: Option<String> = None;
    let mut metrics = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => list = true,
            "--all" => run_all = true,
            "--id" => {
                i += 1;
                id = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage("--id needs a value"))
                        .clone(),
                );
            }
            "--json" => {
                i += 1;
                json_dir = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage("--json needs a value"))
                        .clone(),
                );
            }
            "--trace" => {
                i += 1;
                trace_path = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage("--trace needs a value"))
                        .clone(),
                );
            }
            "--chrome" => {
                i += 1;
                chrome_path = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage("--chrome needs a value"))
                        .clone(),
                );
            }
            "--metrics" => metrics = true,
            other => usage(&format!("unknown flag `{other}`")),
        }
        i += 1;
    }

    if list {
        for id in all_ids() {
            println!("{id}");
        }
        return;
    }

    let wants_obs = trace_path.is_some() || chrome_path.is_some() || metrics;
    if wants_obs && (run_all || id.is_none()) {
        usage("--trace/--chrome/--metrics need a single experiment (--id)");
    }

    let ids: Vec<&str> = if run_all {
        all_ids()
    } else if let Some(ref id) = id {
        vec![id.as_str()]
    } else {
        usage("pass --id <id>, --all or --list");
    };

    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
    }

    for id in ids {
        let Some(result) = run(id) else {
            eprintln!("unknown experiment `{id}`; try --list");
            std::process::exit(2);
        };
        println!("=== {} — {} ===", result.id, result.title);
        println!("{}", result.text);
        if let Some(dir) = &json_dir {
            let path = format!("{dir}/{}.json", result.id);
            let mut f = std::fs::File::create(&path).expect("create json file");
            f.write_all(
                serde_json::to_string_pretty(&result.json)
                    .expect("serialize")
                    .as_bytes(),
            )
            .expect("write json");
            println!("[json written to {path}]\n");
        }
        if wants_obs {
            let Some((_log, events, snapshot)) = traced_session(id) else {
                eprintln!(
                    "experiment `{id}` is a table or multi-session sweep; \
                     no single session to trace"
                );
                std::process::exit(2);
            };
            if let Some(path) = &trace_path {
                if let Err(e) = std::fs::write(path, abr_obs::export::to_jsonl(&events)) {
                    eprintln!("error: cannot write trace to `{path}`: {e}");
                    std::process::exit(1);
                }
                println!("[{} events written to {path}]", events.len());
            }
            if let Some(path) = &chrome_path {
                if let Err(e) = std::fs::write(path, abr_obs::export::to_chrome_trace(&events)) {
                    eprintln!("error: cannot write chrome trace to `{path}`: {e}");
                    std::process::exit(1);
                }
                println!("[chrome trace written to {path}]");
            }
            if metrics {
                let rows: Vec<Vec<String>> = snapshot
                    .rows()
                    .into_iter()
                    .map(|(k, v)| vec![k, v])
                    .collect();
                println!("{}", table(&["Metric", "Value"], &rows));
            }
        }
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: exp (--list | --id <experiment> | --all) [--json <dir>]\n\
         \x20      [--trace <file.jsonl>] [--chrome <file.json>] [--metrics]  (with --id)"
    );
    std::process::exit(2);
}
