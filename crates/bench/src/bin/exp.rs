//! Experiment runner CLI.
//!
//! ```text
//! exp --list                     list experiment ids
//! exp --id f4a                   run one experiment, print the figure
//! exp --all [--json D]           run everything; optionally write JSON to D
//! exp --all --jobs 4             ... sharded over 4 workers (same bytes)
//! exp mc --seeds 25 --jobs 4     Monte Carlo fleet sweep (corpus x policies
//!                                x seeds); --json F writes the aggregate
//!
//! Observability (with --id):
//! exp --id f4b --trace out.jsonl    write the event trace as JSONL
//! exp --id f4b --chrome out.json    write a Chrome trace_event document
//! exp --id f4b --metrics            print the metrics registry summary
//!
//! Self-profiling (--id or mc; DESIGN.md §13):
//! exp --id bp1 --profile            print the span self/total-time table
//! exp mc --profile --profile-json p.json
//!                                   ... and write the JSON profile artifact
//!     Profiling measures host time only; the table goes to stderr and
//!     stdout stays byte-identical with or without it (CI diffs this).
//! exp --id bp1 --trace bp1.trace.jsonl --jobs 4
//!     sweeps write one file per session: bp1.0.trace.jsonl, bp1.1... —
//!     identical at every --jobs value (runner determinism contract)
//! ```
//!
//! `--jobs N` shards work across `min(N, cores)` workers. The default
//! comes from the `ABR_JOBS` environment variable (else 1, fully serial).
//! Output is byte-identical regardless of the worker count; the
//! `parallel_determinism` integration suite holds that contract.

use abr_bench::experiments::{
    all_ids, profiled_sessions, run_jobs, traced_sessions, ExperimentResult,
};
use abr_bench::profiling::WorkloadProfile;
use abr_bench::report::table;
use abr_bench::runner;
use std::io::Write as _;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--assert-release` (used by scripts/bench_sim.sh and
    // scripts/bench_fleet.sh): refuse to time a debug build. Accepted in
    // any position and stripped before normal flag parsing.
    if let Some(pos) = args.iter().position(|a| a == "--assert-release") {
        args.remove(pos);
        if cfg!(debug_assertions) {
            eprintln!(
                "error: exp was built without --release (debug_assertions on); \
                 bench timings from a debug build are meaningless. \
                 Rebuild with `cargo build --release`."
            );
            std::process::exit(3);
        }
    }
    if args.first().map(String::as_str) == Some("mc") {
        return run_mc_cli(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("fleet") {
        return run_fleet_cli(&args[1..]);
    }
    let mut id: Option<String> = None;
    let mut run_all = false;
    let mut list = false;
    let mut json_dir: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut chrome_path: Option<String> = None;
    let mut metrics = false;
    let mut profile = false;
    let mut profile_json: Option<String> = None;
    let mut jobs = runner::jobs_from_env();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => list = true,
            "--all" => run_all = true,
            "--id" => {
                i += 1;
                id = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage("--id needs a value"))
                        .clone(),
                );
            }
            "--json" => {
                i += 1;
                json_dir = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage("--json needs a value"))
                        .clone(),
                );
            }
            "--trace" => {
                i += 1;
                trace_path = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage("--trace needs a value"))
                        .clone(),
                );
            }
            "--chrome" => {
                i += 1;
                chrome_path = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage("--chrome needs a value"))
                        .clone(),
                );
            }
            "--metrics" => metrics = true,
            "--profile" => profile = true,
            "--profile-json" => {
                i += 1;
                profile_json = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage("--profile-json needs a value"))
                        .clone(),
                );
            }
            "--jobs" => {
                i += 1;
                jobs =
                    parse_jobs_flag(args.get(i).unwrap_or_else(|| usage("--jobs needs a value")));
            }
            other => usage(&format!("unknown flag `{other}`")),
        }
        i += 1;
    }

    if list {
        for id in all_ids() {
            println!("{id}");
        }
        return;
    }

    let wants_obs = trace_path.is_some() || chrome_path.is_some() || metrics;
    if wants_obs && (run_all || id.is_none()) {
        usage("--trace/--chrome/--metrics need a single experiment (--id)");
    }
    let wants_profile = profile || profile_json.is_some();
    if wants_profile && (run_all || id.is_none()) {
        usage("--profile/--profile-json need a single experiment (--id) or the mc subcommand");
    }

    let ids: Vec<&str> = if run_all {
        all_ids()
    } else if let Some(ref id) = id {
        vec![id.as_str()]
    } else {
        usage("pass --id <id>, --all or --list");
    };

    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
    }

    // `--all` shards across experiment ids (each internally serial, to
    // avoid nested pools); `--id` shards within the experiment's own
    // sweep. Results come back in id order either way.
    let results: Vec<Option<ExperimentResult>> = if run_all {
        runner::run_indexed(ids.len(), jobs, |i| run_jobs(ids[i], 1))
    } else {
        ids.iter().map(|id| run_jobs(id, jobs)).collect()
    };

    for (id, result) in ids.iter().zip(results) {
        let Some(result) = result else {
            eprintln!("unknown experiment `{id}`; try --list");
            std::process::exit(2);
        };
        println!("=== {} — {} ===", result.id, result.title);
        println!("{}", result.text);
        if let Some(dir) = &json_dir {
            let path = format!("{dir}/{}.json", result.id);
            let mut f = std::fs::File::create(&path).expect("create json file");
            f.write_all(
                serde_json::to_string_pretty(&result.json)
                    .expect("serialize")
                    .as_bytes(),
            )
            .expect("write json");
            println!("[json written to {path}]\n");
        }
        if wants_obs || wants_profile {
            // Profiled runs reuse the profiled outcomes for --trace/
            // --chrome/--metrics too: the artifacts are byte-identical
            // (profile_determinism suite), so the sessions run once.
            let (outcomes, workload) = if wants_profile {
                match profiled_sessions(id, jobs) {
                    Some((outcomes, workload)) => (Some(outcomes), Some(workload)),
                    None => (None, None),
                }
            } else {
                (traced_sessions(id, jobs), None)
            };
            let Some(outcomes) = outcomes else {
                eprintln!(
                    "experiment `{id}` is a pure table or shares state across \
                     sessions; nothing to trace or profile"
                );
                std::process::exit(2);
            };
            if let Some(workload) = &workload {
                emit_profile(
                    workload,
                    profile || profile_json.is_none(),
                    profile_json.as_deref(),
                );
            }
            let multi = outcomes.len() > 1;
            for (n, outcome) in outcomes.iter().enumerate() {
                if let Some(path) = &trace_path {
                    let path = session_path(path, n, multi);
                    if let Err(e) =
                        write_streamed(&path, |w| abr_obs::export::write_jsonl(&outcome.events, w))
                    {
                        eprintln!("error: cannot write trace to `{path}`: {e}");
                        std::process::exit(1);
                    }
                    println!(
                        "[{} events ({}) written to {path}]",
                        outcome.events.len(),
                        outcome.label
                    );
                }
                if let Some(path) = &chrome_path {
                    let path = session_path(path, n, multi);
                    if let Err(e) = write_streamed(&path, |w| {
                        abr_obs::export::write_chrome_trace(&outcome.events, w)
                    }) {
                        eprintln!("error: cannot write chrome trace to `{path}`: {e}");
                        std::process::exit(1);
                    }
                    println!("[chrome trace ({}) written to {path}]", outcome.label);
                }
            }
            if metrics {
                let merged = runner::merged_metrics(&outcomes);
                let rows: Vec<Vec<String>> =
                    merged.rows().into_iter().map(|(k, v)| vec![k, v]).collect();
                println!("{}", table(&["Metric", "Value"], &rows));
            }
        }
    }
}

/// `exp mc [--seeds N] [--jobs J] [--json FILE]` — the Monte Carlo fleet
/// sweep: full trace corpus × every policy × N seeds on the deterministic
/// runner. The default seed count yields a four-digit session total; the
/// aggregate is byte-identical at every `--jobs` value.
fn run_mc_cli(args: &[String]) {
    let mut seeds: u64 = 25;
    let mut jobs = runner::jobs_from_env();
    let mut json_path: Option<String> = None;
    let mut profile = false;
    let mut profile_json: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--profile" => profile = true,
            "--profile-json" => {
                i += 1;
                profile_json = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage("--profile-json needs a value"))
                        .clone(),
                );
            }
            "--seeds" => {
                i += 1;
                seeds = args
                    .get(i)
                    .unwrap_or_else(|| usage("--seeds needs a value"))
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--seeds needs a positive integer"));
            }
            "--jobs" => {
                i += 1;
                jobs =
                    parse_jobs_flag(args.get(i).unwrap_or_else(|| usage("--jobs needs a value")));
            }
            "--json" => {
                i += 1;
                json_path = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage("--json needs a value"))
                        .clone(),
                );
            }
            other => usage(&format!("unknown `mc` flag `{other}`")),
        }
        i += 1;
    }
    let wants_profile = profile || profile_json.is_some();
    let (result, workload) = if wants_profile {
        let (result, workload) = abr_bench::mc::run_mc_profiled(seeds, jobs);
        (result, Some(workload))
    } else {
        (abr_bench::mc::run_mc(seeds, jobs), None)
    };
    println!("=== mc — Monte Carlo fleet sweep ===");
    println!("{}", result.text);
    if let Some(workload) = &workload {
        emit_profile(
            workload,
            profile || profile_json.is_none(),
            profile_json.as_deref(),
        );
    }
    if let Some(path) = json_path {
        let mut f = std::fs::File::create(&path).expect("create mc json file");
        f.write_all(
            serde_json::to_string_pretty(&result.json)
                .expect("serialize")
                .as_bytes(),
        )
        .expect("write mc json");
        println!("[json written to {path}]");
    }
}

/// `exp fleet [--sessions N] [--domains D] [--shards S] [--jobs J] ...` —
/// the shared-fate fleet engine (DESIGN.md §14): N sessions over D
/// contended link domains (shared title-namespaced CDN cache + FIFO
/// origin uplink each), Zipf arrivals over a title catalog, window-synced
/// origin throttling. `--delivery both` runs the demuxed-vs-muxed
/// head-to-head. Stdout is the deterministic artifact: byte-identical at
/// every `--jobs` value and shard count.
fn run_fleet_cli(args: &[String]) {
    use abr_bench::fleet::{run_fleet, run_fleet_comparison, run_fleet_profiled, FleetSpec};
    use abr_player::session::DeliveryMode;

    let mut spec = FleetSpec::small(500);
    let mut both = false;
    let mut jobs = runner::jobs_from_env();
    let mut json_path: Option<String> = None;
    let mut profile = false;
    let mut profile_json: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = |name: &str| -> String {
            i += 1;
            args.get(i)
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
                .clone()
        };
        fn parse<T: std::str::FromStr>(name: &str, raw: &str) -> T {
            raw.parse::<T>()
                .unwrap_or_else(|_| usage(&format!("{name} got unparsable value `{raw}`")))
        }
        match flag {
            "--sessions" => spec.sessions = parse(flag, &value(flag)),
            "--domains" => spec.domains = parse(flag, &value(flag)),
            "--shards" => spec.shards = parse(flag, &value(flag)),
            "--titles" => spec.titles = parse(flag, &value(flag)),
            "--alpha" => spec.zipf_alpha = parse(flag, &value(flag)),
            "--arrival-secs" => spec.arrival_secs = parse(flag, &value(flag)),
            "--uplink-kbps" => spec.uplink_kbps = parse(flag, &value(flag)),
            "--origin-kbps" => spec.origin_kbps = parse(flag, &value(flag)),
            "--cache-mb" => spec.cache_mb = parse(flag, &value(flag)),
            "--window-ms" => spec.window_ms = parse(flag, &value(flag)),
            "--seed" => spec.seed = parse(flag, &value(flag)),
            "--jobs" => jobs = parse_jobs_flag(&value(flag)),
            "--delivery" => match value(flag).as_str() {
                "demuxed" => spec.delivery = DeliveryMode::Demuxed,
                "muxed" => spec.delivery = DeliveryMode::Muxed,
                "both" => both = true,
                other => usage(&format!(
                    "--delivery must be demuxed|muxed|both, got `{other}`"
                )),
            },
            "--json" => json_path = Some(value(flag)),
            "--profile" => profile = true,
            "--profile-json" => profile_json = Some(value(flag)),
            other => usage(&format!("unknown `fleet` flag `{other}`")),
        }
        i += 1;
    }
    spec.validate();
    let wants_profile = profile || profile_json.is_some();
    if both && wants_profile {
        usage("--profile needs a single delivery mode, not --delivery both");
    }
    let (result, workload) = if both {
        (run_fleet_comparison(&spec, jobs), None)
    } else if wants_profile {
        let (result, workload) = run_fleet_profiled(&spec, jobs);
        (result, Some(workload))
    } else {
        (run_fleet(&spec, jobs), None)
    };
    println!("=== fleet — shared-fate fleet engine ===");
    println!("{}", result.text);
    if let Some(workload) = &workload {
        emit_profile(
            workload,
            profile || profile_json.is_none(),
            profile_json.as_deref(),
        );
    }
    if let Some(path) = json_path {
        let mut f = std::fs::File::create(&path).expect("create fleet json file");
        f.write_all(
            serde_json::to_string_pretty(&result.json)
                .expect("serialize")
                .as_bytes(),
        )
        .expect("write fleet json");
        println!("[json written to {path}]");
    }
}

/// Prints the profile table and/or writes the JSON profile artifact.
///
/// Both go to stderr/file, never stdout: stdout carries the experiment
/// artifact, which must stay byte-identical with and without `--profile`
/// (the CI profile matrix diffs it).
fn emit_profile(workload: &WorkloadProfile, print_table: bool, json_path: Option<&str>) {
    if print_table {
        eprintln!("{}", workload.text());
    }
    if let Some(path) = json_path {
        let mut f = std::fs::File::create(path).expect("create profile json file");
        f.write_all(
            serde_json::to_string_pretty(&workload.json())
                .expect("serialize")
                .as_bytes(),
        )
        .expect("write profile json");
        eprintln!("[profile json written to {path}]");
    }
}

/// Streams an exporter into a buffered file writer and flushes it, so
/// large traces never materialize a second in-memory copy.
fn write_streamed(
    path: &str,
    emit: impl FnOnce(&mut std::io::BufWriter<std::fs::File>) -> std::io::Result<()>,
) -> std::io::Result<()> {
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    emit(&mut w)?;
    w.flush()
}

/// Per-session artifact path for sweeps: inserts the session index after
/// the file stem, `results/bp1.trace.jsonl` → `results/bp1.0.trace.jsonl`.
/// Single-session experiments keep the path exactly as given.
fn session_path(path: &str, n: usize, multi: bool) -> String {
    if !multi {
        return path.to_string();
    }
    let (dir, file) = match path.rfind('/') {
        Some(cut) => (&path[..=cut], &path[cut + 1..]),
        None => ("", path),
    };
    match file.find('.') {
        Some(dot) => format!("{dir}{}.{n}{}", &file[..dot], &file[dot..]),
        None => format!("{dir}{file}.{n}"),
    }
}

/// Parses a `--jobs` value: a positive integer, or `auto` for the host
/// core count ([`runner::parse_jobs`]). The resolution is echoed on the
/// profile channel (stderr) only — stdout artifacts must stay
/// jobs-invariant, and "how many workers" is host state, not artifact.
fn parse_jobs_flag(raw: &str) -> usize {
    let jobs = runner::parse_jobs(raw)
        .unwrap_or_else(|| usage("--jobs needs a positive integer or `auto`"));
    if raw == "auto" {
        eprintln!("[jobs auto -> {jobs} (host cores)]");
    }
    jobs
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: exp (--list | --id <experiment> | --all) [--json <dir>] [--jobs <n|auto>]\n\
         \x20      [--trace <file.jsonl>] [--chrome <file.json>] [--metrics]\n\
         \x20      [--profile] [--profile-json <file>]             (with --id)\n\
         \x20  exp mc [--seeds <n>] [--jobs <n|auto>] [--json <file>]\n\
         \x20      [--profile] [--profile-json <file>]   Monte Carlo fleet sweep\n\
         \x20  exp fleet [--sessions <n>] [--domains <n>] [--shards <n>] [--titles <n>]\n\
         \x20      [--alpha <f>] [--arrival-secs <n>] [--delivery demuxed|muxed|both]\n\
         \x20      [--uplink-kbps <n>] [--origin-kbps <n>] [--cache-mb <n>] [--window-ms <n>]\n\
         \x20      [--seed <n>] [--jobs <n|auto>] [--json <file>] [--profile] [--profile-json <file>]\n\
         \x20                                             shared-fate fleet engine"
    );
    std::process::exit(2);
}
