//! Seed scan helper for trace calibration (not part of the experiment set).
//!
//! `scan [--jobs N]` shards the seed sweep across workers via the
//! deterministic runner; output lines stay in seed order at any N.
use abr_bench::runner;
use abr_bench::setup::*;
use abr_core::ExoPlayerPolicy;
use abr_event::time::Duration;
use abr_media::units::BitsPerSec;
use abr_net::trace::Trace;

fn main() {
    let jobs = runner::jobs_from_args_or_env();
    let content = drama();
    let seeds = [0xF163u64, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12];
    let lines = runner::run_indexed(seeds.len(), jobs, |i| {
        let seed = seeds[i];
        let trace = Trace::random_walk(
            BitsPerSec::from_kbps(600),
            BitsPerSec::from_kbps(150),
            BitsPerSec::from_kbps(1100),
            0.45,
            Duration::from_secs(5),
            Duration::from_secs(3600),
            seed,
        );
        let mean = trace.mean_over(
            abr_event::time::Instant::ZERO,
            abr_event::time::Instant::from_secs(400),
        );
        let view = hls_sub_view(&content, &[2, 0, 1]);
        let policy = ExoPlayerPolicy::hls(&view);
        let log = run_session(&content, PlayerKind::ExoPlayer, Box::new(policy), trace);
        format!(
            "seed {seed:#x}: mean(0-400s)={} stalls={} rebuf={:.1}s finished={:.0}s completed={}",
            mean.kbps(),
            log.stall_count(),
            log.total_stall().as_secs_f64(),
            log.finished_at.as_secs_f64(),
            log.completed()
        )
    });
    for line in lines {
        println!("{line}");
    }
}
