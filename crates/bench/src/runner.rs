//! Deterministic parallel sweep engine.
//!
//! Every multi-session artifact in this repo (the `exp --all` set, the
//! BP sweeps, the scan binaries, the Criterion groups) is a pure function
//! of its session specs: content synthesis, traces and policies all seed
//! their own RNG streams, and the simulated clock never observes the host.
//! That makes wall-clock parallelism safe *if and only if* two rules hold,
//! and this module is the one place they are enforced (DESIGN.md §10):
//!
//! 1. **Seed derivation is scheduling-blind.** A session's random stream
//!    is [`SplitMix64::for_stream`]`(spec.seed, spec.stream)` — a pure
//!    function of the spec, never of worker identity, pool size or the
//!    order in which workers claim work.
//! 2. **Results merge in spec order.** Workers return `(index, outcome)`
//!    through a channel; the pool re-assembles the output vector by index,
//!    so downstream tables, JSON artifacts and merged metrics are
//!    byte-identical at any `--jobs` value.
//!
//! The pool is `std::thread::scope` over `min(jobs, n)` workers claiming
//! *chunks* of indices from an atomic counter — no dependencies, no work
//! stealing, no ordering hazards. Chunk size and claim order are
//! scheduling knobs **outside** the artifact contract (DESIGN.md §16):
//! callers may pass an LPT-style longest-first hint
//! ([`run_indexed_sched`]) and the pool may batch claims however it
//! likes, because results are always re-assembled in index order. The
//! merge itself is streamed: the main thread places batches into a
//! pre-sized slot vector *while workers run*, so merge cost no longer
//! grows with session count after the pool drains.
//! `tests/parallel_determinism.rs` holds the contract: representative
//! experiments run at `--jobs 1/2/8` (and random chunk sizes / claim
//! orders) must produce identical `SessionLog`s, JSON artifacts and
//! merged metrics.

use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use abr_event::rng::SplitMix64;
use abr_event::sync_model::claim_range;
use abr_obs::metrics::{Histogram, HistogramSnapshot};
use abr_obs::profile::SPAN_BOUNDS_NS;
use abr_obs::{HostStopwatch, MetricsSnapshot, ProfileReport, Profiler, TracedEvent};
use abr_player::SessionLog;

/// Number of cores the host exposes (at least 1).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1)
}

/// Clamps a requested worker count to `min(jobs, cores)`, floor 1. Use
/// this when *defaulting* a jobs value; [`run_indexed`] honors an
/// explicit request above the core count (the OS time-slices, and by the
/// determinism contract the output cannot depend on worker count — that
/// is also what lets the differential suite exercise real thread
/// interleavings on single-core CI runners).
pub fn effective_jobs(requested: usize) -> usize {
    requested.clamp(1, available_cores())
}

/// The default worker count: the `ABR_JOBS` environment variable when set
/// to a positive integer, else 1 (serial). This is how CI runs the whole
/// existing test suite under parallelism without every call site growing
/// a flag.
pub fn jobs_from_env() -> usize {
    std::env::var("ABR_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Parses a `--jobs` value: a positive integer, or the literal `auto`
/// which resolves to [`available_cores`]. Returns `None` for anything
/// else (zero, negatives, junk) so callers can fall through to their
/// default. This is the one place "auto" is defined; `exp`, `exp mc` and
/// `exp fleet` all route through it.
pub fn parse_jobs(value: &str) -> Option<usize> {
    if value == "auto" {
        return Some(available_cores());
    }
    value.parse::<usize>().ok().filter(|&n| n > 0)
}

/// Jobs for the small calibration binaries: a `--jobs N` argument when
/// present (including `--jobs auto`), else [`jobs_from_env`]. (The `exp`
/// CLI does its own argument parsing and only uses the env fallback.)
pub fn jobs_from_args_or_env() -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for pair in args.windows(2) {
        if pair[0] == "--jobs" {
            if let Some(n) = parse_jobs(&pair[1]) {
                return n;
            }
        }
    }
    jobs_from_env()
}

/// Chunk size used when the caller does not fix one: aim for roughly
/// eight claim rounds per worker — enough that the shared counter and
/// channel are off the per-item path, few enough that a heavy tail can't
/// strand more than a sliver of the sweep on one worker — capped at 64
/// items per claim. Like claim order, the chunk size is outside the
/// artifact contract (DESIGN.md §16).
pub fn adaptive_chunk(n: usize, jobs: usize) -> usize {
    (n / (jobs.max(1) * 8)).clamp(1, 64)
}

/// Debug-mode check that a claim-order hint is a permutation of `0..n`.
fn debug_check_permutation(order: &[usize], n: usize) {
    debug_assert_eq!(order.len(), n, "claim hint length must equal item count");
    #[cfg(debug_assertions)]
    {
        let mut seen = vec![false; n];
        for &i in order {
            assert!(
                i < n && !seen[i],
                "claim hint must be a permutation of 0..n"
            );
            seen[i] = true;
        }
    }
}

/// Runs `f(0..n)` across `min(jobs, n)` scoped workers and returns the
/// results **in index order**, regardless of completion order. With
/// `jobs <= 1` (or a single item) it degenerates to the serial loop, so
/// the serial path and the parallel path are the same code shape and any
/// divergence between them is a bug in `f`, not in scheduling.
///
/// `f` must be a pure function of its index (plus captured immutable
/// state); the differential suite exists to catch violations. A panic in
/// any worker propagates out of the scope — a sweep never silently drops
/// a session.
pub fn run_indexed<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_chunked(n, jobs, adaptive_chunk(n, jobs), None, || (), |(), i| f(i))
}

/// [`run_indexed`] with every scheduling knob exposed: a fixed claim
/// chunk size and an optional claim-order hint (a permutation of `0..n`;
/// pass the heaviest items first for LPT-style scheduling). Both knobs
/// are outside the artifact contract — the result vector is index-ordered
/// and byte-identical for *any* `(jobs, chunk, order)` combination, which
/// the determinism proptests sweep directly through this entry point.
pub fn run_indexed_sched<T, F>(
    n: usize,
    jobs: usize,
    chunk: usize,
    order: Option<&[usize]>,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_chunked(n, jobs, chunk, order, || (), |(), i| f(i))
}

/// [`run_indexed`] with per-worker scratch state: each worker (or the
/// serial loop) builds one `S` via `init` and threads it mutably through
/// every item it claims. The state is *scratch only* — reusable
/// allocations like [`abr_player::SessionScratch`] — and must never
/// influence an item's result: outputs remain a pure function of the
/// index, which the determinism suite checks by comparing jobs values.
pub fn run_indexed_with<S, T, I, F>(n: usize, jobs: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    run_chunked(n, jobs, adaptive_chunk(n, jobs), None, init, f)
}

/// [`run_indexed_with`] plus a claim-order hint (see
/// [`run_indexed_sched`]). This is the entry point for heavy-tailed
/// sweeps with per-worker scratch — `exp mc` passes its MPC-first order
/// here.
pub fn run_indexed_with_hinted<S, T, I, F>(
    n: usize,
    jobs: usize,
    order: &[usize],
    init: I,
    f: F,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    run_chunked(n, jobs, adaptive_chunk(n, jobs), Some(order), init, f)
}

/// The shared pool core: `min(jobs, n)` scoped workers claim chunks of
/// claim *positions* from an atomic counter, map each position through
/// the optional claim-order hint, and send completed batches back over a
/// channel. The main thread streams batches into a pre-sized slot vector
/// while workers are still running (the "streamed merge"), so the only
/// post-scope work is the index-ordered unwrap walk.
///
/// With `jobs <= 1` (or a single item) this degenerates to the serial
/// loop in natural index order — the hint is a scheduling concern and
/// scheduling is the identity when there is one lane.
fn run_chunked<S, T, I, F>(
    n: usize,
    jobs: usize,
    chunk: usize,
    order: Option<&[usize]>,
    init: I,
    f: F,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if let Some(order) = order {
        debug_check_permutation(order, n);
    }
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }
    let chunk = chunk.max(1);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<Vec<(usize, T)>>();
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    // Dynamic half of the model checker's partition invariant: record
    // every claimed range and assert they tile `0..n` exactly once.
    #[cfg(feature = "debug-invariants")]
    let claim_ledger = std::sync::Mutex::new(Vec::<(usize, usize)>::new());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let init = &init;
            let f = &f;
            #[cfg(feature = "debug-invariants")]
            let claim_ledger = &claim_ledger;
            scope.spawn(move || {
                let mut state = init();
                loop {
                    // `Relaxed` claim: RMWs on one location have a total
                    // modification order even at `Relaxed`, so every
                    // counter value — hence every `claim_range` — is
                    // handed out exactly once; results synchronize via
                    // the mpsc channel. Model-checked as
                    // `sync_model::ClaimModel` (see `lint.toml`).
                    let claimed = claim_range(next.fetch_add(chunk, Ordering::Relaxed), chunk, n);
                    let Some((p0, p1)) = claimed else {
                        break;
                    };
                    #[cfg(feature = "debug-invariants")]
                    claim_ledger.lock().expect("claim ledger").push((p0, p1));
                    let batch: Vec<(usize, T)> = (p0..p1)
                        .map(|p| {
                            let i = order.map_or(p, |o| o[p]);
                            (i, f(&mut state, i))
                        })
                        .collect();
                    if tx.send(batch).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        // Streamed merge: place batches while workers run. The loop ends
        // when every worker has dropped its sender; a worker panic also
        // drops its sender, and the scope re-raises the panic before the
        // unwrap walk below can observe the hole.
        for batch in rx {
            for (i, value) in batch {
                debug_assert!(slots[i].is_none(), "index {i} produced twice");
                slots[i] = Some(value);
            }
        }
    });
    #[cfg(feature = "debug-invariants")]
    {
        let mut ranges = claim_ledger.into_inner().expect("claim ledger");
        debug_assert!(
            abr_event::sync_model::ranges_partition(&mut ranges, n),
            "claimed ranges must partition 0..{n}"
        );
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, v)| v.unwrap_or_else(|| panic!("worker dropped index {i}")))
        .collect()
}

/// Host-time accounting for one pool worker (or the serial pseudo-worker
/// with `jobs <= 1`): how many items it ran, how long it spent claiming
/// indices vs. running jobs, and its total lifetime. `busy_ns /
/// alive_ns` is the worker's utilization — the signal that distinguishes
/// "the pool starves on work" from "the work itself is slow".
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// Worker index within the pool (0-based spawn order).
    pub worker: usize,
    /// Items this worker claimed and ran.
    pub items: u64,
    /// Host time spent in the claim phase. Under chunked claiming this is
    /// the per-*chunk* fetch-add rounds only — item execution is timed
    /// separately in `busy_ns`, so `claim_ns + busy_ns <= alive_ns` holds
    /// per worker (asserted in `profile_determinism`).
    pub claim_ns: u64,
    /// Host time spent inside job closures.
    pub busy_ns: u64,
    /// Worker lifetime from spawn-side entry to loop exit.
    pub alive_ns: u64,
}

/// Where a profiled sweep's host time went: pool phases (spawn / run /
/// merge), per-worker utilization, per-item wall-time distribution, and
/// the merged span tree from the items themselves (in spec order, per the
/// determinism contract).
#[derive(Debug, Clone, Default)]
pub struct RunnerProfile {
    /// Workers the pool actually used (1 = serial path).
    pub jobs: usize,
    /// Items dispatched.
    pub items: u64,
    /// End-to-end host time of the profiled call.
    pub wall_ns: u64,
    /// Time to set up the pool and spawn workers.
    pub spawn_ns: u64,
    /// Time inside the worker scope (claim + run + the streamed placement
    /// of result batches, bounded by the slowest worker).
    pub run_ns: u64,
    /// Post-scope merge remainder. Placement and the index-ordered span
    /// merge are streamed while workers run, so this is only the final
    /// unwrap walk plus whatever span merging the stream had not yet
    /// caught up on — it no longer grows with session count.
    pub merge_ns: u64,
    /// Per-worker accounting, in worker order.
    pub workers: Vec<WorkerStats>,
    /// Per-item host wall time (ns, [`SPAN_BOUNDS_NS`] buckets).
    pub item_wall: HistogramSnapshot,
    /// Per-item span trees merged in index (= spec) order.
    pub spans: ProfileReport,
}

/// [`run_indexed`] with host-time accounting: `f` additionally returns
/// the item's [`ProfileReport`], and the pool reports where its own time
/// went. Ordering semantics are identical to [`run_indexed`] — results
/// and span merges happen in index order, so profiled artifacts stay
/// byte-identical at any `jobs` value. Only the `RunnerProfile` (which
/// never feeds artifacts) varies run to run.
pub fn run_indexed_profiled<T, F>(n: usize, jobs: usize, f: F) -> (Vec<T>, RunnerProfile)
where
    T: Send,
    F: Fn(usize) -> (T, ProfileReport) + Sync,
{
    run_profiled_sched(n, jobs, adaptive_chunk(n, jobs), None, f)
}

/// [`run_indexed_profiled`] with the scheduling knobs exposed (fixed
/// chunk size, optional claim-order hint) — the profiled twin of
/// [`run_indexed_sched`]. `exp mc --profile` routes here with its
/// MPC-first hint so profiled and unprofiled runs schedule identically.
pub fn run_profiled_sched<T, F>(
    n: usize,
    jobs: usize,
    chunk: usize,
    order: Option<&[usize]>,
    f: F,
) -> (Vec<T>, RunnerProfile)
where
    T: Send,
    F: Fn(usize) -> (T, ProfileReport) + Sync,
{
    if let Some(order) = order {
        debug_check_permutation(order, n);
    }
    let wall = HostStopwatch::start();
    let jobs = jobs.max(1).min(n.max(1));
    let mut profile = RunnerProfile {
        jobs,
        items: n as u64,
        ..RunnerProfile::default()
    };
    let mut item_wall = Histogram::with_bounds(SPAN_BOUNDS_NS);
    if jobs <= 1 {
        let mut out = Vec::with_capacity(n);
        let mut reports = Vec::with_capacity(n);
        let mut stats = WorkerStats::default();
        let run = HostStopwatch::start();
        for i in 0..n {
            let item = HostStopwatch::start();
            let (value, report) = f(i);
            stats.items += 1;
            stats.busy_ns += item.elapsed_ns();
            out.push(value);
            reports.push(report);
        }
        profile.run_ns = run.elapsed_ns();
        stats.alive_ns = profile.run_ns;
        profile.workers.push(stats);
        let merge = HostStopwatch::start();
        for report in &reports {
            item_wall.observe(report.wall_ns as f64);
            profile.spans.merge(report);
        }
        profile.merge_ns = merge.elapsed_ns();
        profile.item_wall = item_wall.snapshot();
        profile.wall_ns = wall.elapsed_ns();
        return (out, profile);
    }
    let chunk = chunk.max(1);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<Vec<(usize, T, ProfileReport)>>();
    let (stx, srx) = mpsc::channel::<WorkerStats>();
    // Dynamic half of the model checker's partition invariant, as in
    // `run_chunked`.
    #[cfg(feature = "debug-invariants")]
    let claim_ledger = std::sync::Mutex::new(Vec::<(usize, usize)>::new());
    let spawn = HostStopwatch::start();
    let run = HostStopwatch::start();
    let mut slots: Vec<Option<(T, ProfileReport)>> = (0..n).map(|_| None).collect();
    // Index of the first slot whose span report has not been merged yet.
    // The stream loop advances it in index order while workers run, so
    // span merging (which must be index-ordered — the merged tree is
    // reported to the user) overlaps execution instead of trailing it.
    let mut frontier = 0usize;
    std::thread::scope(|scope| {
        for w in 0..jobs {
            let tx = tx.clone();
            let stx = stx.clone();
            let next = &next;
            let f = &f;
            #[cfg(feature = "debug-invariants")]
            let claim_ledger = &claim_ledger;
            scope.spawn(move || {
                let alive = HostStopwatch::start();
                let mut stats = WorkerStats {
                    worker: w,
                    ..WorkerStats::default()
                };
                loop {
                    let claim = HostStopwatch::start();
                    // `Relaxed` claim — same protocol and model evidence
                    // as `run_chunked` (see `lint.toml`).
                    let claimed = claim_range(next.fetch_add(chunk, Ordering::Relaxed), chunk, n);
                    stats.claim_ns += claim.elapsed_ns();
                    let Some((p0, p1)) = claimed else {
                        break;
                    };
                    #[cfg(feature = "debug-invariants")]
                    claim_ledger.lock().expect("claim ledger").push((p0, p1));
                    let mut batch = Vec::with_capacity(p1 - p0);
                    for p in p0..p1 {
                        let i = order.map_or(p, |o| o[p]);
                        let item = HostStopwatch::start();
                        let (value, report) = f(i);
                        stats.items += 1;
                        stats.busy_ns += item.elapsed_ns();
                        batch.push((i, value, report));
                    }
                    if tx.send(batch).is_err() {
                        break;
                    }
                }
                stats.alive_ns = alive.elapsed_ns();
                let _ = stx.send(stats);
            });
        }
        profile.spawn_ns = spawn.elapsed_ns();
        drop(tx);
        for batch in rx {
            for (i, value, report) in batch {
                debug_assert!(slots[i].is_none(), "index {i} produced twice");
                slots[i] = Some((value, report));
            }
            while let Some(Some((_, report))) = slots.get(frontier) {
                item_wall.observe(report.wall_ns as f64);
                profile.spans.merge(report);
                frontier += 1;
            }
        }
    });
    #[cfg(feature = "debug-invariants")]
    {
        let mut ranges = claim_ledger.into_inner().expect("claim ledger");
        debug_assert!(
            abr_event::sync_model::ranges_partition(&mut ranges, n),
            "claimed ranges must partition 0..{n}"
        );
    }
    profile.run_ns = run.elapsed_ns();
    drop(stx);
    let merge = HostStopwatch::start();
    let mut out = Vec::with_capacity(n);
    for (i, slot) in slots.into_iter().enumerate() {
        let (value, report) = slot.unwrap_or_else(|| panic!("worker dropped index {i}"));
        if i >= frontier {
            item_wall.observe(report.wall_ns as f64);
            profile.spans.merge(&report);
        }
        out.push(value);
    }
    profile.workers = srx.iter().collect();
    profile.workers.sort_by_key(|s| s.worker);
    profile.merge_ns = merge.elapsed_ns();
    profile.item_wall = item_wall.snapshot();
    profile.wall_ns = wall.elapsed_ns();
    (out, profile)
}

/// Everything a session run sends back across the worker boundary. All
/// fields are plain owned data (`Send`); nothing here aliases worker
/// state.
pub struct SessionOutcome {
    /// The spec's label, `<experiment>/<session>` by convention.
    pub label: String,
    /// The session's directly-recorded log.
    pub log: SessionLog,
    /// The captured event trace (deterministic stamping — `wall_ns` 0).
    pub events: Vec<TracedEvent>,
    /// The session's private metrics registry, snapshotted.
    pub metrics: MetricsSnapshot,
}

impl SessionOutcome {
    /// Wraps the `(log, events, metrics)` triple a
    /// `run_session_obs`-style runner returns. The label is left empty;
    /// [`SessionSpec::run`] stamps the spec's own label on, so a job
    /// closure never has to repeat its spec's identity.
    pub fn from_obs(parts: (SessionLog, Vec<TracedEvent>, MetricsSnapshot)) -> SessionOutcome {
        SessionOutcome {
            label: String::new(),
            log: parts.0,
            events: parts.1,
            metrics: parts.2,
        }
    }
}

/// One session of a sweep: a stable identity (label, seed, stream) plus
/// the job that realises it. The job receives the spec's derived RNG —
/// [`SplitMix64::for_stream`]`(seed, stream)` — as its only source of
/// randomness, so the stream a session sees is fixed at spec-construction
/// time, not at scheduling time.
pub struct SessionSpec {
    /// Human-readable identity, `<experiment>/<session>` by convention.
    pub label: String,
    /// Base seed (usually the experiment-wide content seed).
    pub seed: u64,
    /// Stable stream index within the sweep (position in the spec list at
    /// construction time — *not* any runtime ordering).
    pub stream: u64,
    /// The job takes the derived RNG plus an optional span profiler. The
    /// profiler argument is `None` on unprofiled runs and must never
    /// influence the outcome — profiling observes, artifacts stay
    /// byte-identical (`tests/profile_determinism.rs`).
    job: SessionJob,
}

/// The boxed closure a [`SessionSpec`] realises: derived RNG in, session
/// outcome out, with an optional span profiler to observe (never steer)
/// the run.
type SessionJob =
    Box<dyn Fn(&mut SplitMix64, Option<&Rc<Profiler>>) -> SessionOutcome + Send + Sync>;

impl SessionSpec {
    /// A new spec. `stream` must be stable across runs (use the spec's
    /// position in the authored sweep, or any other value derived from
    /// the sweep definition alone).
    pub fn new<F>(label: impl Into<String>, seed: u64, stream: u64, job: F) -> SessionSpec
    where
        F: Fn(&mut SplitMix64) -> SessionOutcome + Send + Sync + 'static,
    {
        SessionSpec {
            label: label.into(),
            seed,
            stream,
            job: Box::new(move |rng, _prof| job(rng)),
        }
    }

    /// A new spec whose job is profiler-aware: under `--profile` it
    /// receives the per-session span profiler to wire into its
    /// `ObsHandle`, otherwise `None`.
    pub fn new_profiled<F>(label: impl Into<String>, seed: u64, stream: u64, job: F) -> SessionSpec
    where
        F: Fn(&mut SplitMix64, Option<&Rc<Profiler>>) -> SessionOutcome + Send + Sync + 'static,
    {
        SessionSpec {
            label: label.into(),
            seed,
            stream,
            job: Box::new(job),
        }
    }

    /// The spec's derived RNG stream (order-independent; see
    /// `crates/event/tests/proptests.rs`).
    pub fn rng(&self) -> SplitMix64 {
        SplitMix64::for_stream(self.seed, self.stream)
    }

    /// Runs the session serially, in the calling thread. The outcome's
    /// label is stamped from the spec.
    pub fn run(&self) -> SessionOutcome {
        let mut outcome = (self.job)(&mut self.rng(), None);
        outcome.label = self.label.clone();
        outcome
    }

    /// Runs the session with a span profiler attached. Must produce the
    /// exact same outcome as [`SessionSpec::run`].
    pub fn run_profiled(&self, profiler: &Rc<Profiler>) -> SessionOutcome {
        let mut outcome = (self.job)(&mut self.rng(), Some(profiler));
        outcome.label = self.label.clone();
        outcome
    }
}

impl std::fmt::Debug for SessionSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionSpec")
            .field("label", &self.label)
            .field("seed", &self.seed)
            .field("stream", &self.stream)
            .finish_non_exhaustive()
    }
}

/// Shards `specs` across `min(jobs, cores)` workers and returns outcomes
/// **in spec order**.
pub fn run_specs(specs: &[SessionSpec], jobs: usize) -> Vec<SessionOutcome> {
    run_indexed(specs.len(), jobs, |i| specs[i].run())
}

/// [`run_specs`] with profiling: each worker builds a session-private
/// [`Profiler`] (profilers are `Rc`-shared and never cross threads —
/// only the owned [`ProfileReport`] does), and the pool merges the
/// per-session span trees in spec order.
pub fn run_specs_profiled(
    specs: &[SessionSpec],
    jobs: usize,
) -> (Vec<SessionOutcome>, RunnerProfile) {
    run_indexed_profiled(specs.len(), jobs, |i| {
        let profiler = Rc::new(Profiler::new());
        let outcome = specs[i].run_profiled(&profiler);
        (outcome, profiler.report())
    })
}

/// Merges per-session metrics snapshots in spec order (the deterministic
/// ordered merge behind `exp --metrics` on sweeps).
pub fn merged_metrics(outcomes: &[SessionOutcome]) -> MetricsSnapshot {
    MetricsSnapshot::merge_ordered(outcomes.iter().map(|o| &o.metrics))
}

/// Compile-time proof that everything crossing the worker boundary is
/// `Send`, and that the shared inputs job closures capture by reference
/// are `Sync` — the "no hidden shared state" half of the determinism
/// contract. If a future change threads an `Rc` or raw pointer through
/// any of these types, this module stops compiling instead of the pool
/// going racy.
#[allow(dead_code)]
fn static_send_sync_assertions() {
    fn send<T: Send>() {}
    fn sync<T: Sync>() {}
    // Crosses the channel:
    send::<SessionOutcome>();
    send::<SessionLog>();
    send::<Vec<TracedEvent>>();
    send::<MetricsSnapshot>();
    // Captured by job closures:
    sync::<abr_media::content::Content>();
    sync::<abr_net::trace::Trace>();
    sync::<abr_manifest::view::BoundDash>();
    sync::<abr_manifest::view::BoundHls>();
    sync::<abr_player::config::PlayerConfig>();
    // NOT asserted Send: Origin, Link, Session, ObsHandle — they hold
    // session-private `Rc` state and are constructed inside the worker
    // that runs them, never transported across threads.
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn run_indexed_preserves_index_order() {
        for jobs in [1, 2, 8] {
            let out = run_indexed(37, jobs, |i| i * i);
            assert_eq!(
                out,
                (0..37).map(|i| i * i).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
        assert!(run_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn run_indexed_runs_every_index_exactly_once() {
        let seen = Mutex::new(Vec::new());
        let out = run_indexed(100, 8, |i| {
            seen.lock().unwrap().push(i);
            i
        });
        assert_eq!(out.len(), 100);
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 100);
        assert_eq!(seen.iter().copied().collect::<HashSet<_>>().len(), 100);
    }

    #[test]
    fn run_indexed_with_matches_run_indexed() {
        for jobs in [1, 2, 8] {
            let out = run_indexed_with(37, jobs, Vec::<usize>::new, |scratch, i| {
                scratch.push(i); // worker-local scratch, result ignores it
                i * i
            });
            assert_eq!(
                out,
                (0..37).map(|i| i * i).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
        assert!(run_indexed_with(0, 4, || (), |_, i| i).is_empty());
    }

    #[test]
    fn effective_jobs_clamps() {
        assert_eq!(effective_jobs(0), 1);
        assert!(effective_jobs(usize::MAX) <= available_cores());
        assert!(available_cores() >= 1);
    }

    #[test]
    fn run_indexed_profiled_matches_plain_results() {
        for jobs in [1, 2, 8] {
            let (out, profile) = run_indexed_profiled(23, jobs, |i| {
                let prof = Rc::new(Profiler::new());
                {
                    let _g = prof.span("item");
                }
                (i * 3, prof.report())
            });
            assert_eq!(
                out,
                (0..23).map(|i| i * 3).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
            assert_eq!(profile.items, 23);
            assert_eq!(profile.jobs, jobs);
            assert_eq!(
                profile.workers.iter().map(|w| w.items).sum::<u64>(),
                23,
                "jobs={jobs}"
            );
            // 23 per-item reports each closed one "item" span.
            assert_eq!(profile.spans.roots.len(), 1);
            assert_eq!(profile.spans.roots[0].count, 23);
            assert_eq!(profile.item_wall.count, 23);
            assert!(profile.wall_ns >= profile.run_ns);
        }
        let (out, profile) = run_indexed_profiled(0, 4, |_| unreachable!());
        let _: Vec<usize> = out;
        assert_eq!(profile.items, 0);
    }

    #[test]
    fn spec_run_profiled_equals_run() {
        fn empty_log(policy: String) -> SessionLog {
            SessionLog {
                policy,
                selections: Vec::new(),
                transfers: Vec::new(),
                buffer_samples: Vec::new(),
                stalls: Vec::new(),
                playlist_fetches: Vec::new(),
                seeks: Vec::new(),
                startup_at: None,
                ended_at: None,
                finished_at: abr_event::time::Instant::ZERO,
                chunk_duration: abr_event::time::Duration::from_secs(4),
                num_chunks: 0,
            }
        }
        let spec = SessionSpec::new_profiled("p/x", 2019, 3, |rng, prof| {
            if let Some(p) = prof {
                let _g = p.span("job");
            }
            SessionOutcome::from_obs((
                empty_log(format!("rng:{}", rng.next_u64())),
                Vec::new(),
                MetricsSnapshot::default(),
            ))
        });
        let plain = spec.run();
        let profiler = Rc::new(Profiler::new());
        let profiled = spec.run_profiled(&profiler);
        // Same derived RNG, same outcome, profiler only observed.
        assert_eq!(plain.log.policy, profiled.log.policy);
        assert_eq!(plain.label, profiled.label);
        assert_eq!(profiler.report().roots[0].name, "job");
    }

    #[test]
    fn spec_rng_ignores_execution_order() {
        let mk = |stream: u64| {
            SessionSpec::new(format!("s{stream}"), 2019, stream, |_rng| unreachable!())
        };
        let forward: Vec<u64> = (0..8).map(|s| mk(s).rng().next_u64()).collect();
        let backward: Vec<u64> = (0..8).rev().map(|s| mk(s).rng().next_u64()).collect();
        let reversed: Vec<u64> = backward.into_iter().rev().collect();
        assert_eq!(forward, reversed);
        // Sibling streams are distinct.
        assert_eq!(forward.iter().collect::<HashSet<_>>().len(), forward.len());
    }
}
