//! One function per paper artifact. See DESIGN.md §7 for the index and
//! EXPERIMENTS.md for recorded paper-vs-measured outcomes.

use crate::report::{ascii_plot, table, Series};
use crate::runner::{self, SessionOutcome, SessionSpec};
use crate::setup::*;
use abr_core::{BestPracticePolicy, DashJsPolicy, ExoPlayerPolicy, ShakaPolicy};
use abr_event::time::Duration;
use abr_httpsim::cache::CdnCache;
use abr_httpsim::origin::Origin;
use abr_httpsim::request::{ObjectId, Request};
use abr_httpsim::storage::StorageComparison;
use abr_media::combo::{all_combos, combo_bitrate, curated_subset, log_staircase, Combo};
use abr_media::track::{MediaType, TrackId};
use abr_media::units::{BitsPerSec, Bytes};
use abr_media::vbr::measure;
use abr_net::trace::Trace;
use abr_player::config::SyncMode;
use abr_player::SessionLog;
use serde_json::{json, Value};

/// A rendered experiment: the regenerated table/figure plus structured
/// data.
pub struct ExperimentResult {
    /// Experiment id (DESIGN.md §7).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// The regenerated table/figure as text.
    pub text: String,
    /// Structured results for EXPERIMENTS.md bookkeeping.
    pub json: Value,
}

/// All experiment ids in DESIGN.md §7 order.
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "t1", "t2", "t3", "f2a", "f2b", "f3a", "f3b", "f3x", "f3fix", "f4a", "f4b", "f4x", "f5a",
        "f5b", "bp1", "bp2", "bp3", "bp4", "bp5", "m1", "m2", "m3",
    ]
}

/// Runs one experiment by id, with the worker count taken from the
/// `ABR_JOBS` environment variable (default 1 — fully serial). CI runs
/// the whole suite a second time under `ABR_JOBS=2`; results are
/// byte-identical by the runner's determinism contract.
pub fn run(id: &str) -> Option<ExperimentResult> {
    run_jobs(id, runner::jobs_from_env())
}

/// Runs one experiment by id, sharding its internal session sweep (if it
/// has one) across `min(jobs, cores)` workers. Output is byte-identical
/// at every `jobs` value — `tests/parallel_determinism.rs` holds this.
pub fn run_jobs(id: &str, jobs: usize) -> Option<ExperimentResult> {
    Some(match id {
        "t1" => t1(),
        "t2" => t2(),
        "t3" => t3(),
        "f2a" => f2(false),
        "f2b" => f2(true),
        "f3a" => f3a(),
        "f3b" => f3b(),
        "f3x" => f3x(),
        "f3fix" => f3fix(jobs),
        "f4a" => f4a(),
        "f4b" => f4b(),
        "f4x" => f4x(),
        "f5a" => f5a(),
        "f5b" => f5b(),
        "bp1" => bp1(jobs),
        "bp2" => bp2(jobs),
        "bp3" => bp3(),
        "bp4" => bp4(jobs),
        "bp5" => bp5(jobs),
        "m1" => m1(),
        "m2" => m2(jobs),
        "m3" => m3(),
        _ => return None,
    })
}

/// One observed session of the canonical-figure set: runs the session
/// named by `(id, arm)` under a deterministic recording `ObsHandle`.
/// Everything is rebuilt inside the call (content, views, policy), so
/// the function is a pure closure body for a [`SessionSpec`] job.
fn observed_session(
    id: &str,
    arm: usize,
    profiler: Option<&std::rc::Rc<abr_obs::Profiler>>,
) -> SessionOutcome {
    SessionOutcome::from_obs(match (id, arm) {
        ("f2a", _) | ("f2b", _) => {
            let content = if id == "f2b" {
                drama_high_audio()
            } else {
                drama_low_audio()
            };
            let view = dash_view(&content);
            let policy = ExoPlayerPolicy::dash(&view);
            run_session_obs_profiled(
                &content,
                PlayerKind::ExoPlayer,
                Box::new(policy),
                Trace::constant(BitsPerSec::from_kbps(900)),
                profiler,
            )
        }
        ("f3a", _) | ("f3b", _) => {
            let content = drama();
            let view = hls_sub_view(&content, &[2, 0, 1]);
            let policy = ExoPlayerPolicy::hls(&view);
            run_session_obs_profiled(
                &content,
                PlayerKind::ExoPlayer,
                Box::new(policy),
                Trace::fig3_varying_600k(Duration::from_secs(3600)),
                profiler,
            )
        }
        ("f3x", _) => {
            let content = drama();
            let view = hls_sub_view(&content, &[0, 1, 2]);
            let policy = ExoPlayerPolicy::hls(&view);
            run_session_obs_profiled(
                &content,
                PlayerKind::ExoPlayer,
                Box::new(policy),
                Trace::constant(BitsPerSec::from_kbps(5000)),
                profiler,
            )
        }
        ("f3fix", arm) => {
            use abr_manifest::build::build_master_playlist_ext;
            use abr_manifest::view::BoundHls;
            use abr_manifest::MasterPlaylist;
            use abr_player::policy::AbrPolicy;

            let content = drama();
            let trace = Trace::fig3_varying_600k(Duration::from_secs(3600));
            let stock_view = hls_sub_view(&content, &[2, 0, 1]);
            let (kind, policy): (PlayerKind, Box<dyn AbrPolicy>) = match arm {
                0 => (
                    PlayerKind::ExoPlayer,
                    Box::new(ExoPlayerPolicy::hls(&stock_view)),
                ),
                1 => {
                    let combos = curated_subset(content.video(), content.audio());
                    let ext_master = build_master_playlist_ext(&content, &combos, &[2, 0, 1]);
                    let ext_view = BoundHls::from_master(
                        &MasterPlaylist::parse(&ext_master.to_text()).expect("parses"),
                    )
                    .expect("binds");
                    (
                        PlayerKind::ExoPlayer,
                        Box::new(ExoPlayerPolicy::hls_fixed(&ext_view).expect("extension present")),
                    )
                }
                _ => (
                    PlayerKind::BestPractice,
                    Box::new(BestPracticePolicy::from_hls(&stock_view)),
                ),
            };
            run_session_obs_profiled(&content, kind, policy, trace, profiler)
        }
        ("f4a", _) => {
            let content = drama();
            let view = hls_all_view(&content);
            let policy = ShakaPolicy::hls(&view);
            run_session_obs_profiled(
                &content,
                PlayerKind::Shaka,
                Box::new(policy),
                Trace::constant(BitsPerSec::from_kbps(1000)),
                profiler,
            )
        }
        ("f4b", _) => {
            let content = drama();
            let view = hls_all_view(&content);
            let policy = ShakaPolicy::hls(&view);
            run_session_obs_profiled(
                &content,
                PlayerKind::Shaka,
                Box::new(policy),
                Trace::fig4b_varying_600k(Duration::from_secs(3600)),
                profiler,
            )
        }
        ("f5a", _) | ("f5b", _) => {
            let content = drama();
            let view = dash_view(&content);
            let policy = DashJsPolicy::new(&view);
            run_session_obs_profiled(
                &content,
                PlayerKind::DashJs,
                Box::new(policy),
                Trace::constant(BitsPerSec::from_kbps(700)),
                profiler,
            )
        }
        ("bp1", arm) => {
            let (_, trace, kind) = bp1_grid().swap_remove(arm);
            let content = drama();
            let policy = dash_policy(kind, &content);
            run_session_obs_profiled(&content, kind, policy, trace, profiler)
        }
        ("bp5", arm) => {
            let (_, trace, kind) = bp5_grid().swap_remove(arm);
            let content = drama();
            let policy = dash_policy(kind, &content);
            run_session_obs_profiled(&content, kind, policy, trace, profiler)
        }
        _ => unreachable!("observed_session called with untraceable id {id}"),
    })
}

/// The per-session specs behind an experiment's `--trace/--chrome/
/// --metrics` path, in a stable authored order. Single-session figures
/// yield one spec; the sweep experiments (`f3fix`, `bp1`, `bp5`) yield
/// one spec per grid cell so tracing a sweep writes per-session files.
/// Returns `None` for pure tables and for the stateful experiments
/// (`bp3`, `m1`, `m3`) whose sessions share cache/storage state and
/// cannot be observed independently.
pub fn session_specs(id: &str) -> Option<Vec<SessionSpec>> {
    fn single(id: &'static str, label: &str) -> Vec<SessionSpec> {
        vec![SessionSpec::new_profiled(
            format!("{id}/{label}"),
            SEED,
            0,
            move |_rng, prof| observed_session(id, 0, prof),
        )]
    }
    Some(match id {
        "f2a" => single("f2a", "exoplayer-dash-900k"),
        "f2b" => single("f2b", "exoplayer-dash-900k"),
        "f3a" => single("f3a", "exoplayer-hls-varying600k"),
        "f3b" => single("f3b", "exoplayer-hls-varying600k"),
        "f3x" => single("f3x", "exoplayer-hls-5m"),
        "f4a" => single("f4a", "shaka-hls-1m"),
        "f4b" => single("f4b", "shaka-hls-varying600k"),
        "f5a" => single("f5a", "dashjs-700k"),
        "f5b" => single("f5b", "dashjs-700k"),
        "f3fix" => ["stock-exoplayer-hls", "exoplayer-hls-fixed", "bestpractice"]
            .iter()
            .enumerate()
            .map(|(arm, name)| {
                SessionSpec::new_profiled(
                    format!("f3fix/{name}"),
                    SEED,
                    arm as u64,
                    move |_rng, prof| observed_session("f3fix", arm, prof),
                )
            })
            .collect(),
        "bp1" => bp1_grid()
            .into_iter()
            .enumerate()
            .map(|(arm, (tname, _, kind))| {
                SessionSpec::new_profiled(
                    format!("bp1/{tname}/{kind:?}"),
                    SEED,
                    arm as u64,
                    move |_rng, prof| observed_session("bp1", arm, prof),
                )
            })
            .collect(),
        "bp5" => bp5_grid()
            .into_iter()
            .enumerate()
            .map(|(arm, (tname, _, kind))| {
                SessionSpec::new_profiled(
                    format!("bp5/{tname}/{kind:?}"),
                    SEED,
                    arm as u64,
                    move |_rng, prof| observed_session("bp5", arm, prof),
                )
            })
            .collect(),
        _ => return None,
    })
}

/// Runs an experiment's traceable sessions (see [`session_specs`]) across
/// `min(jobs, cores)` workers; outcomes come back in spec order, so the
/// emitted per-session artifacts are identical at every `jobs` value.
pub fn traced_sessions(id: &str, jobs: usize) -> Option<Vec<SessionOutcome>> {
    let specs = session_specs(id)?;
    Some(runner::run_specs(&specs, jobs))
}

/// [`traced_sessions`] with span profiling (`exp --id <id> --profile`):
/// every session runs with a private profiler wired into its `ObsHandle`,
/// and the pool reports the merged span tree plus its own phase/worker
/// accounting. Outcomes are byte-identical to [`traced_sessions`].
pub fn profiled_sessions(
    id: &str,
    jobs: usize,
) -> Option<(Vec<SessionOutcome>, crate::profiling::WorkloadProfile)> {
    let setup = abr_obs::HostStopwatch::start();
    let specs = session_specs(id)?;
    let setup_ns = setup.elapsed_ns();
    let (outcomes, pool) = runner::run_specs_profiled(&specs, jobs);
    Some((
        outcomes,
        crate::profiling::WorkloadProfile::from_pool(id, setup_ns, pool),
    ))
}

/// Re-runs the single canonical session underlying an experiment with a
/// recording tracer and metrics attached. Returns `None` for experiments
/// that are pure tables or multi-session sweeps — for those, use
/// [`traced_sessions`], which traces every session of the sweep.
pub fn traced_session(
    id: &str,
) -> Option<(
    SessionLog,
    Vec<abr_obs::TracedEvent>,
    abr_obs::MetricsSnapshot,
)> {
    let specs = session_specs(id)?;
    if specs.len() != 1 {
        return None;
    }
    let outcome = specs[0].run();
    Some((outcome.log, outcome.events, outcome.metrics))
}

// ---------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------

/// Table 1: the drama-show ladder, with the synthetic content's measured
/// average/peak bitrates shown next to the declared targets (calibration
/// check for the content substitution).
fn t1() -> ExperimentResult {
    let c = drama();
    let mut rows = Vec::new();
    let mut json_tracks = Vec::new();
    for &id in c.track_ids() {
        let t = c.track(id);
        let sizes: Vec<Bytes> = (0..c.num_chunks()).map(|i| c.chunk_size(id, i)).collect();
        let m = measure(&sizes, c.chunk_duration());
        rows.push(vec![
            t.name(),
            t.avg.kbps().to_string(),
            t.peak.kbps().to_string(),
            t.declared.kbps().to_string(),
            t.detail.label(),
            m.avg.kbps().to_string(),
            m.peak.kbps().to_string(),
        ]);
        json_tracks.push(json!({
            "track": t.name(),
            "avg_kbps": t.avg.kbps(),
            "peak_kbps": t.peak.kbps(),
            "declared_kbps": t.declared.kbps(),
            "measured_avg_kbps": m.avg.kbps(),
            "measured_peak_kbps": m.peak.kbps(),
        }));
    }
    let text = table(
        &[
            "Track",
            "Avg (paper)",
            "Peak (paper)",
            "Declared",
            "Detail",
            "Avg (measured)",
            "Peak (measured)",
        ],
        &rows,
    );
    ExperimentResult {
        id: "t1",
        title: "Table 1: video and audio of a YouTube drama show",
        text,
        json: json!({ "tracks": json_tracks }),
    }
}

fn combo_table(combos: &[Combo]) -> (String, Value) {
    let c = drama();
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for &combo in combos {
        let b = combo_bitrate(c.video(), c.audio(), combo);
        rows.push(vec![
            combo.to_string(),
            b.avg.kbps().to_string(),
            b.peak.kbps().to_string(),
        ]);
        jrows.push(json!({
            "combo": combo.to_string(),
            "avg_kbps": b.avg.kbps(),
            "peak_kbps": b.peak.kbps(),
        }));
    }
    (
        table(
            &[
                "Video/Audio Combination",
                "Average Bitrate (Kbps)",
                "Peak Bitrate (Kbps)",
            ],
            &rows,
        ),
        json!({ "combos": jrows }),
    )
}

/// Table 2: the full 18-combination set (`H_all`).
fn t2() -> ExperimentResult {
    let c = drama();
    let (text, json) = combo_table(&all_combos(c.video(), c.audio()));
    ExperimentResult {
        id: "t2",
        title: "Table 2: bitrates of the full combination set (H_all)",
        text,
        json,
    }
}

/// Table 3: the curated 6-combination subset (`H_sub`).
fn t3() -> ExperimentResult {
    let c = drama();
    let (text, json) = combo_table(&curated_subset(c.video(), c.audio()));
    ExperimentResult {
        id: "t3",
        title: "Table 3: bitrates of the curated subset (H_sub)",
        text,
        json,
    }
}

// ---------------------------------------------------------------------
// Fig 2 — ExoPlayer DASH
// ---------------------------------------------------------------------

fn log_summary_json(log: &SessionLog) -> Value {
    let q = abr_qoe::summarize(log);
    json!({
        "policy": q.policy,
        "completed": q.completed,
        "stalls": q.stall_count,
        "total_stall_s": q.total_stall.as_secs_f64(),
        "mean_video_kbps": q.mean_video_kbps,
        "mean_audio_kbps": q.mean_audio_kbps,
        "video_switches": q.video_switches,
        "audio_switches": q.audio_switches,
        "mean_imbalance_s": q.mean_imbalance.as_secs_f64(),
        "max_imbalance_s": q.max_imbalance.as_secs_f64(),
        "score": q.score,
        "combos": abr_qoe::combos_used(log)
            .iter()
            .map(|(c, n)| json!({"combo": c.to_string(), "chunks": n}))
            .collect::<Vec<_>>(),
    })
}

/// Fig 2(a)/(b): ExoPlayer DASH with the low "B" (or high "C") audio set
/// at a fixed 900 Kbps.
fn f2(high_audio: bool) -> ExperimentResult {
    let content = if high_audio {
        drama_high_audio()
    } else {
        drama_low_audio()
    };
    let view = dash_view(&content);
    let policy = ExoPlayerPolicy::dash(&view);
    let staircase: Vec<String> = policy
        .combinations()
        .iter()
        .map(ToString::to_string)
        .collect();
    let log = run_session(
        &content,
        PlayerKind::ExoPlayer,
        Box::new(policy),
        Trace::constant(BitsPerSec::from_kbps(900)),
    );
    let dominant = abr_qoe::combos_used(&log)
        .into_iter()
        .max_by_key(|&(_, n)| n)
        .expect("non-empty session");

    // The better combination the paper points out is excluded.
    let (better, better_bw) = if high_audio {
        // V3+C1: 473 + 196 declared.
        (Combo::new(2, 0), 669)
    } else {
        // V3+B3: 473 + 128 declared.
        (Combo::new(2, 2), 601)
    };
    let excluded = !log_staircase(content.video(), content.audio()).contains(&better);

    let v_series = downsample(&selection_series(&log, MediaType::Video), 70);
    let a_series = downsample(&selection_series(&log, MediaType::Audio), 70);
    let mut text = ascii_plot(
        "Selected declared bitrate over time (Kbps)",
        &[
            Series {
                glyph: 'v',
                label: "video",
                points: &v_series,
            },
            Series {
                glyph: 'a',
                label: "audio",
                points: &a_series,
            },
        ],
        72,
        14,
    );
    text.push_str(&format!(
        "\npredetermined staircase: {}\n\
         dominant combination:    {} ({} of {} chunks)\n\
         paper's better choice:   {} ({} Kbps declared) — excluded from staircase: {}\n\
         stalls: {}  total rebuffering: {:.1}s\n",
        staircase.join(", "),
        dominant.0,
        dominant.1,
        log.num_chunks,
        better,
        better_bw,
        excluded,
        log.stall_count(),
        log.total_stall().as_secs_f64(),
    ));
    ExperimentResult {
        id: if high_audio { "f2b" } else { "f2a" },
        title: if high_audio {
            "Fig 2(b): ExoPlayer DASH, high-bitrate audio set C, 900 Kbps"
        } else {
            "Fig 2(a): ExoPlayer DASH, low-bitrate audio set B, 900 Kbps"
        },
        text,
        json: json!({
            "staircase": staircase,
            "dominant_combo": dominant.0.to_string(),
            "dominant_chunks": dominant.1,
            "better_choice": better.to_string(),
            "better_excluded": excluded,
            "session": log_summary_json(&log),
        }),
    }
}

// ---------------------------------------------------------------------
// Fig 3 — ExoPlayer HLS
// ---------------------------------------------------------------------

fn f3_session() -> SessionLog {
    let content = drama();
    // H_sub with A3 listed first; time-varying trace averaging 600 Kbps.
    let view = hls_sub_view(&content, &[2, 0, 1]);
    let policy = ExoPlayerPolicy::hls(&view);
    run_session(
        &content,
        PlayerKind::ExoPlayer,
        Box::new(policy),
        Trace::fig3_varying_600k(Duration::from_secs(3600)),
    )
}

/// Fig 3(a): selection timeline — audio pinned at A3, off-manifest combos.
fn f3a() -> ExperimentResult {
    let content = drama();
    let log = f3_session();
    let allowed = curated_subset(content.video(), content.audio());
    let audio_tracks = log.distinct_tracks(MediaType::Audio);
    let off = abr_qoe::off_manifest_chunks(&log, &allowed);
    let combos: Vec<String> = abr_qoe::distinct_combos(&log)
        .iter()
        .map(ToString::to_string)
        .collect();

    let v_series = downsample(&selection_series(&log, MediaType::Video), 70);
    let a_series = downsample(&selection_series(&log, MediaType::Audio), 70);
    let mut text = ascii_plot(
        "Selected declared bitrate over time (Kbps)",
        &[
            Series {
                glyph: 'v',
                label: "video",
                points: &v_series,
            },
            Series {
                glyph: 'a',
                label: "audio (pinned)",
                points: &a_series,
            },
        ],
        72,
        14,
    );
    text.push_str(&format!(
        "\naudio tracks used: {:?} (A3 pinned = first listed)\n\
         combinations used: {}\n\
         off-manifest chunks: {} of {}\n\
         stalls: {}  total rebuffering: {:.1}s  (paper: 5 stalls, 36.9s)\n",
        audio_tracks
            .iter()
            .map(|i| format!("A{}", i + 1))
            .collect::<Vec<_>>(),
        combos.join(", "),
        off,
        log.num_chunks,
        log.stall_count(),
        log.total_stall().as_secs_f64(),
    ));
    ExperimentResult {
        id: "f3a",
        title: "Fig 3(a): ExoPlayer HLS (H_sub, A3 first), varying ~600 Kbps",
        text,
        json: json!({
            "audio_tracks_used": audio_tracks,
            "off_manifest_chunks": off,
            "session": log_summary_json(&log),
        }),
    }
}

/// Fig 3(b): audio/video buffer levels with stall windows.
fn f3b() -> ExperimentResult {
    let log = f3_session();
    let a = downsample(&buffer_series(&log, MediaType::Audio), 140);
    let v = downsample(&buffer_series(&log, MediaType::Video), 140);
    let mut text = ascii_plot(
        "Buffer level over time (seconds)",
        &[
            Series {
                glyph: 'a',
                label: "audio buffer",
                points: &a,
            },
            Series {
                glyph: 'v',
                label: "video buffer",
                points: &v,
            },
        ],
        72,
        14,
    );
    let stalls = stall_windows(&log);
    text.push_str("\nstall windows (s): ");
    text.push_str(
        &stalls
            .iter()
            .map(|(s, e)| format!("[{s:.1}–{e:.1}]"))
            .collect::<Vec<_>>()
            .join(" "),
    );
    text.push_str(&format!(
        "\nmax buffer imbalance: {:.1}s (chunk-level sync keeps buffers close)\n",
        log.max_buffer_imbalance().as_secs_f64()
    ));
    ExperimentResult {
        id: "f3b",
        title: "Fig 3(b): ExoPlayer HLS buffer levels (same run as Fig 3a)",
        text,
        json: json!({
            "stall_windows": stalls,
            "max_imbalance_s": log.max_buffer_imbalance().as_secs_f64(),
            "session": log_summary_json(&log),
        }),
    }
}

/// §3.2's second HLS experiment (no figure): A1 listed first, 5 Mbps —
/// audio stays pinned at A1 despite ample headroom.
fn f3x() -> ExperimentResult {
    let content = drama();
    let view = hls_sub_view(&content, &[0, 1, 2]);
    let policy = ExoPlayerPolicy::hls(&view);
    let log = run_session(
        &content,
        PlayerKind::ExoPlayer,
        Box::new(policy),
        Trace::constant(BitsPerSec::from_kbps(5000)),
    );
    let audio_tracks = log.distinct_tracks(MediaType::Audio);
    let text = format!(
        "link: 5 Mbps fixed; H_sub with A1 listed first\n\
         audio tracks used: {:?}  (paper: A1 throughout despite headroom)\n\
         mean video: {} Kbps  mean audio: {} Kbps\n\
         stalls: {}\n",
        audio_tracks
            .iter()
            .map(|i| format!("A{}", i + 1))
            .collect::<Vec<_>>(),
        abr_qoe::summarize(&log).mean_video_kbps,
        abr_qoe::summarize(&log).mean_audio_kbps,
        log.stall_count(),
    );
    ExperimentResult {
        id: "f3x",
        title: "§3.2 ExoPlayer HLS experiment 2: A1 first at 5 Mbps",
        text,
        json: json!({
            "audio_tracks_used": audio_tracks,
            "session": log_summary_json(&log),
        }),
    }
}

/// The §4.1 repairs, evaluated on the exact Fig 3 setup: stock ExoPlayer
/// HLS (pinned audio) versus (a) the repaired HLS path fed per-track
/// bitrates via the proposed master-playlist extension and (b) the
/// best-practice player on the same manifest.
fn f3fix(jobs: usize) -> ExperimentResult {
    use abr_manifest::build::build_master_playlist_ext;
    use abr_manifest::view::BoundHls;
    use abr_manifest::MasterPlaylist;
    use abr_player::policy::AbrPolicy;

    let content = drama();
    let trace = Trace::fig3_varying_600k(Duration::from_secs(3600));
    let combos = curated_subset(content.video(), content.audio());

    // Stock manifest (A3 first) and extended manifest (same listing).
    let stock_view = hls_sub_view(&content, &[2, 0, 1]);
    let ext_master = build_master_playlist_ext(&content, &combos, &[2, 0, 1]);
    let ext_view =
        BoundHls::from_master(&MasterPlaylist::parse(&ext_master.to_text()).expect("parses"))
            .expect("binds");

    type PolicyThunk<'a> = Box<dyn Fn() -> Box<dyn AbrPolicy> + Send + Sync + 'a>;
    let arms: Vec<(&'static str, PlayerKind, PolicyThunk<'_>)> = vec![
        (
            "stock exoplayer-hls",
            PlayerKind::ExoPlayer,
            Box::new(|| Box::new(ExoPlayerPolicy::hls(&stock_view)) as Box<dyn AbrPolicy>),
        ),
        (
            "exoplayer-hls-fixed (§4.1 ext)",
            PlayerKind::ExoPlayer,
            Box::new(|| {
                Box::new(ExoPlayerPolicy::hls_fixed(&ext_view).expect("extension present"))
                    as Box<dyn AbrPolicy>
            }),
        ),
        (
            "bestpractice (same manifest)",
            PlayerKind::BestPractice,
            Box::new(|| Box::new(BestPracticePolicy::from_hls(&stock_view)) as Box<dyn AbrPolicy>),
        ),
    ];
    let logs = runner::run_indexed(arms.len(), jobs, |i| {
        run_session(&content, arms[i].1, (arms[i].2)(), trace.clone())
    });
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for ((label, _, _), log) in arms.iter().zip(&logs) {
        let q = abr_qoe::summarize(log);
        let audio_used: Vec<String> = log
            .distinct_tracks(MediaType::Audio)
            .iter()
            .map(|i| format!("A{}", i + 1))
            .collect();
        rows.push(vec![
            label.to_string(),
            audio_used.join("/"),
            q.stall_count.to_string(),
            format!("{:.1}", q.total_stall.as_secs_f64()),
            q.mean_video_kbps.to_string(),
            q.mean_audio_kbps.to_string(),
            format!("{:.2}", q.score),
        ]);
        jrows.push(json!({
            "player": label,
            "audio_tracks": audio_used,
            "stalls": q.stall_count,
            "total_stall_s": q.total_stall.as_secs_f64(),
            "score": q.score,
        }));
    }
    let mut text = table(
        &[
            "Player",
            "Audio used",
            "Stalls",
            "Stall s",
            "Video Kbps",
            "Audio Kbps",
            "QoE",
        ],
        &rows,
    );
    text.push_str(concat!(
        "\nthe stock player pins A3 and rebuffers; giving it the §4.1 per-track\n",
        "bitrate extension restores audio adaptation and removes (nearly) all\n",
        "rebuffering on the same trace and listing order.\n",
    ));
    ExperimentResult {
        id: "f3fix",
        title: "F3-fix: §4.1 repairs evaluated on the Fig 3 setup",
        text,
        json: json!({ "rows": jrows }),
    }
}

// ---------------------------------------------------------------------
// Fig 4 — Shaka
// ---------------------------------------------------------------------

/// Fig 4(a): Shaka over `H_all` at a fixed 1 Mbps — the 16 KB filter
/// rejects every sample and the estimate stays at the 500 Kbps default.
fn f4a() -> ExperimentResult {
    let content = drama();
    let view = hls_all_view(&content);
    let policy = ShakaPolicy::hls(&view);
    let log = run_session(
        &content,
        PlayerKind::Shaka,
        Box::new(policy),
        Trace::constant(BitsPerSec::from_kbps(1000)),
    );
    let est = estimate_series(&log);
    let est_plot = downsample(&est, 70);
    let mut text = ascii_plot(
        "Shaka bandwidth estimate over time (Kbps); actual link = 1000",
        &[Series {
            glyph: 'e',
            label: "estimate",
            points: &est_plot,
        }],
        72,
        10,
    );
    let dominant = abr_qoe::combos_used(&log)
        .into_iter()
        .max_by_key(|&(_, n)| n)
        .expect("non-empty");
    let flat_500 = est.iter().all(|&(_, e)| (e - 500.0).abs() < 1.0);
    text.push_str(&format!(
        "\nestimate flat at 500 Kbps default: {}\n\
         dominant combination: {} ({} of {} chunks)  (paper: V2+A2 at 460 Kbps)\n",
        flat_500, dominant.0, dominant.1, log.num_chunks
    ));
    ExperimentResult {
        id: "f4a",
        title: "Fig 4(a): Shaka HLS (H_all) at fixed 1 Mbps",
        text,
        json: json!({
            "estimate_flat_500": flat_500,
            "dominant_combo": dominant.0.to_string(),
            "session": log_summary_json(&log),
        }),
    }
}

/// Fig 4(b): Shaka over a dynamic mean-600 Kbps trace — under- then
/// over-estimation.
fn f4b() -> ExperimentResult {
    let content = drama();
    let view = hls_all_view(&content);
    let policy = ShakaPolicy::hls(&view);
    let log = run_session(
        &content,
        PlayerKind::Shaka,
        Box::new(policy),
        Trace::fig4b_varying_600k(Duration::from_secs(3600)),
    );
    let est = estimate_series(&log);
    let est_plot = downsample(&est, 70);
    let mut text = ascii_plot(
        "Shaka bandwidth estimate over time (Kbps); link mean = 600",
        &[Series {
            glyph: 'e',
            label: "estimate",
            points: &est_plot,
        }],
        72,
        12,
    );
    let early_max = est
        .iter()
        .filter(|&&(t, _)| t < 50.0)
        .map(|&(_, e)| e)
        .fold(0.0f64, f64::max);
    let late_max = est.iter().map(|&(_, e)| e).fold(0.0f64, f64::max);
    let combos: Vec<String> = abr_qoe::distinct_combos(&log)
        .iter()
        .map(ToString::to_string)
        .collect();
    text.push_str(&format!(
        "\nestimate before t=50s: ≤{early_max:.0} Kbps (stuck at default; link is 400)\n\
         peak estimate after bursts: {late_max:.0} Kbps (true mean 600)\n\
         combinations used: {}\n\
         stalls: {}  total rebuffering: {:.1}s  (paper: 39s)\n",
        combos.join(", "),
        log.stall_count(),
        log.total_stall().as_secs_f64(),
    ));
    ExperimentResult {
        id: "f4b",
        title: "Fig 4(b): Shaka HLS (H_all), dynamic mean-600 Kbps trace",
        text,
        json: json!({
            "early_max_estimate_kbps": early_max,
            "late_max_estimate_kbps": late_max,
            "session": log_summary_json(&log),
        }),
    }
}

/// §3.3 fluctuation example (no figure): sweeping the estimate across
/// 300–700 Kbps flips the rate-based choice among five nearby
/// combinations.
fn f4x() -> ExperimentResult {
    let content = drama();
    let view = hls_all_view(&content);
    let policy = ShakaPolicy::hls(&view);
    let mut rows = Vec::new();
    let mut picks = Vec::new();
    for kbps in (300..=700).step_by(25) {
        let pick = policy.choice_for_estimate(BitsPerSec::from_kbps(kbps));
        let bw = combo_bitrate(content.video(), content.audio(), pick)
            .peak
            .kbps();
        rows.push(vec![kbps.to_string(), pick.to_string(), bw.to_string()]);
        picks.push(pick);
    }
    let mut distinct: Vec<String> = picks.iter().map(ToString::to_string).collect();
    distinct.dedup();
    let mut text = table(
        &[
            "Estimate (Kbps)",
            "Selected combination",
            "Combo BANDWIDTH (Kbps)",
        ],
        &rows,
    );
    text.push_str(&format!(
        "\ndistinct selections across the sweep: {} — {}\n\
         (paper: fluctuation among V1+A2, V2+A1, V2+A2, V1+A3, V2+A3 at 318/395/460/510/652)\n",
        distinct.len(),
        distinct.join(" → "),
    ));
    ExperimentResult {
        id: "f4x",
        title: "§3.3 Shaka fluctuation: selection vs estimate, 300-700 Kbps",
        text,
        json: json!({
            "distinct_selections": distinct,
        }),
    }
}

// ---------------------------------------------------------------------
// Fig 5 — dash.js
// ---------------------------------------------------------------------

fn f5_session() -> SessionLog {
    let content = drama();
    let view = dash_view(&content);
    let policy = DashJsPolicy::new(&view);
    run_session(
        &content,
        PlayerKind::DashJs,
        Box::new(policy),
        Trace::constant(BitsPerSec::from_kbps(700)),
    )
}

/// Fig 5(a): dash.js independent adaptation at 700 Kbps — undesirable
/// combinations.
fn f5a() -> ExperimentResult {
    let log = f5_session();
    let combos_rle = abr_qoe::combos_used(&log);
    let combos: Vec<String> = abr_qoe::distinct_combos(&log)
        .iter()
        .map(ToString::to_string)
        .collect();
    // The paper's better alternative: V3+A2 (declared 669) fits 700 Kbps.
    let undesirable = combos_rle
        .iter()
        .filter(|(c, _)| *c == Combo::new(1, 2))
        .map(|(_, n)| n)
        .sum::<usize>();
    let v_series = downsample(&selection_series(&log, MediaType::Video), 70);
    let a_series = downsample(&selection_series(&log, MediaType::Audio), 70);
    let mut text = ascii_plot(
        "Selected declared bitrate over time (Kbps); link = 700",
        &[
            Series {
                glyph: 'v',
                label: "video",
                points: &v_series,
            },
            Series {
                glyph: 'a',
                label: "audio",
                points: &a_series,
            },
        ],
        72,
        14,
    );
    text.push_str(&format!(
        "\ncombinations used: {}\n\
         chunks on V2+A3 (the paper's 'clearly undesirable' pick): {}\n\
         V3+A2 (declared 669 ≤ 700, better video) available but requires joint reasoning\n\
         stalls: {}  total rebuffering: {:.1}s\n",
        combos.join(", "),
        undesirable,
        log.stall_count(),
        log.total_stall().as_secs_f64(),
    ));
    ExperimentResult {
        id: "f5a",
        title: "Fig 5(a): dash.js DASH at fixed 700 Kbps — track selection",
        text,
        json: json!({
            "chunks_on_v2a3": undesirable,
            "session": log_summary_json(&log),
        }),
    }
}

/// Fig 5(b): dash.js audio/video buffer imbalance.
fn f5b() -> ExperimentResult {
    let log = f5_session();
    let a = downsample(&buffer_series(&log, MediaType::Audio), 140);
    let v = downsample(&buffer_series(&log, MediaType::Video), 140);
    let mut text = ascii_plot(
        "Buffer level over time (seconds); independent pipelines",
        &[
            Series {
                glyph: 'a',
                label: "audio buffer",
                points: &a,
            },
            Series {
                glyph: 'v',
                label: "video buffer",
                points: &v,
            },
        ],
        72,
        14,
    );
    text.push_str(&format!(
        "\nmean |audio − video| imbalance: {:.1}s   max: {:.1}s\n\
         (paper: unbalanced buffers; stalls possible with content left in the other buffer)\n",
        log.mean_buffer_imbalance().as_secs_f64(),
        log.max_buffer_imbalance().as_secs_f64(),
    ));
    ExperimentResult {
        id: "f5b",
        title: "Fig 5(b): dash.js buffer levels (same run as Fig 5a)",
        text,
        json: json!({
            "mean_imbalance_s": log.mean_buffer_imbalance().as_secs_f64(),
            "max_imbalance_s": log.max_buffer_imbalance().as_secs_f64(),
            "session": log_summary_json(&log),
        }),
    }
}

// ---------------------------------------------------------------------
// Best practices (§4) — the paper's future work, evaluated
// ---------------------------------------------------------------------

/// The BP1 sweep grid — `(trace name, trace, player kind)` in row order.
/// Shared by the table generator and the traced-session path so both
/// enumerate exactly the same sessions.
fn bp1_grid() -> Vec<(&'static str, Trace, PlayerKind)> {
    let traces: Vec<(&'static str, Trace)> = vec![
        ("700k fixed", Trace::constant(BitsPerSec::from_kbps(700))),
        ("900k fixed", Trace::constant(BitsPerSec::from_kbps(900))),
        ("1M fixed", Trace::constant(BitsPerSec::from_kbps(1000))),
        (
            "varying-600k",
            Trace::fig3_varying_600k(Duration::from_secs(3600)),
        ),
    ];
    let kinds = [
        PlayerKind::ExoPlayer,
        PlayerKind::Shaka,
        PlayerKind::DashJs,
        PlayerKind::Bba,
        PlayerKind::Mpc,
        PlayerKind::BestPractice,
    ];
    let mut grid = Vec::new();
    for (tname, trace) in &traces {
        for kind in kinds {
            grid.push((*tname, trace.clone(), kind));
        }
    }
    grid
}

/// BP1: the four policies over DASH on four traces; QoE table.
fn bp1(jobs: usize) -> ExperimentResult {
    let content = drama();
    let grid = bp1_grid();
    let logs = runner::run_indexed(grid.len(), jobs, |i| {
        let (_, trace, kind) = &grid[i];
        run_session(&content, *kind, dash_policy(*kind, &content), trace.clone())
    });
    let allowed = curated_subset(content.video(), content.audio());
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for ((tname, _, _), log) in grid.iter().zip(&logs) {
        {
            let tname = *tname;
            let q = abr_qoe::summarize(log);
            let off = abr_qoe::off_manifest_chunks(log, &allowed);
            rows.push(vec![
                tname.to_string(),
                q.policy.clone(),
                format!("{:.2}", q.score),
                q.stall_count.to_string(),
                format!("{:.1}", q.total_stall.as_secs_f64()),
                q.mean_video_kbps.to_string(),
                q.mean_audio_kbps.to_string(),
                (q.video_switches + q.audio_switches).to_string(),
                format!("{:.1}", q.max_imbalance.as_secs_f64()),
                off.to_string(),
            ]);
            jrows.push(json!({
                "trace": tname,
                "policy": q.policy,
                "score": q.score,
                "stalls": q.stall_count,
                "total_stall_s": q.total_stall.as_secs_f64(),
                "mean_video_kbps": q.mean_video_kbps,
                "mean_audio_kbps": q.mean_audio_kbps,
                "switches": q.video_switches + q.audio_switches,
                "max_imbalance_s": q.max_imbalance.as_secs_f64(),
                "off_curated_chunks": off,
            }));
        }
    }
    let text = table(
        &[
            "Trace",
            "Policy",
            "QoE",
            "Stalls",
            "Stall s",
            "Video Kbps",
            "Audio Kbps",
            "Switches",
            "Max imbal s",
            "Off-curated",
        ],
        &rows,
    );
    ExperimentResult {
        id: "bp1",
        title: "BP1: policy shootout over DASH (QoE per §4 recommendations)",
        text,
        json: json!({ "rows": jrows }),
    }
}

/// BP2: ablation of §4.2 chunk-level prefetch balancing — the
/// best-practice policy with synchronized vs independent pipelines.
fn bp2(jobs: usize) -> ExperimentResult {
    let content = drama();
    let view = hls_sub_view(&content, &[0, 1, 2]);
    let trace = Trace::fig3_varying_600k(Duration::from_secs(3600));
    let modes = [
        (
            "chunk-level sync",
            SyncMode::ChunkLevel {
                tolerance: content.chunk_duration(),
            },
        ),
        ("independent", SyncMode::Independent),
    ];
    let logs = runner::run_indexed(modes.len(), jobs, |i| {
        let policy = Box::new(BestPracticePolicy::from_hls(&view));
        let origin = Origin::with_overhead(content.clone(), Bytes::ZERO);
        let link = abr_net::link::Link::with_latency(trace.clone(), Duration::from_millis(20));
        let mut config = player_config(PlayerKind::BestPractice, content.chunk_duration());
        config.sync = modes[i].1;
        abr_player::Session::new(origin, link, policy, config).run()
    });
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for ((label, _), log) in modes.iter().zip(&logs) {
        let q = abr_qoe::summarize(log);
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", q.score),
            q.stall_count.to_string(),
            format!("{:.1}", q.total_stall.as_secs_f64()),
            format!("{:.1}", q.mean_imbalance.as_secs_f64()),
            format!("{:.1}", q.max_imbalance.as_secs_f64()),
        ]);
        jrows.push(json!({
            "mode": label,
            "score": q.score,
            "stalls": q.stall_count,
            "total_stall_s": q.total_stall.as_secs_f64(),
            "mean_imbalance_s": q.mean_imbalance.as_secs_f64(),
            "max_imbalance_s": q.max_imbalance.as_secs_f64(),
        }));
    }
    let text = table(
        &[
            "Prefetch mode",
            "QoE",
            "Stalls",
            "Stall s",
            "Mean imbal s",
            "Max imbal s",
        ],
        &rows,
    );
    ExperimentResult {
        id: "bp2",
        title: "BP2: §4.2 prefetch-balance ablation (best-practice policy)",
        text,
        json: json!({ "rows": jrows }),
    }
}

/// BP3: the §4.1 DASH allowed-combinations extension end-to-end — the MPD
/// itself carries the curation; the best-practice player consumes it with
/// no out-of-band channel and stays inside it on a hostile trace.
fn bp3() -> ExperimentResult {
    use abr_manifest::build::build_mpd_with_combos;
    use abr_manifest::view::BoundDash;
    use abr_manifest::Mpd;

    let content = drama();
    let combos = curated_subset(content.video(), content.audio());
    let mpd_text = build_mpd_with_combos(&content, &combos).to_text();
    let view = BoundDash::from_mpd(&Mpd::parse(&mpd_text).expect("parses")).expect("binds");
    let policy = BestPracticePolicy::from_dash_extension(&view).expect("extension present");
    let log = run_session(
        &content,
        PlayerKind::BestPractice,
        Box::new(policy),
        Trace::fig3_varying_600k(Duration::from_secs(3600)),
    );
    let q = abr_qoe::summarize(&log);
    let off = abr_qoe::off_manifest_chunks(&log, &combos);
    let text = format!(
        concat!(
            "MPD SupplementalProperty scheme: {}\n",
            "combinations carried in the manifest: {}\n",
            "session over the varying-600k trace:\n",
            "completed {}  stalls {}  rebuffering {:.1}s  off-manifest chunks {}\n",
            "mean video {} Kbps  mean audio {} Kbps  QoE {:.2}\n",
        ),
        abr_manifest::dash::COMBINATIONS_SCHEME,
        combos
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        q.completed,
        q.stall_count,
        q.total_stall.as_secs_f64(),
        off,
        q.mean_video_kbps,
        q.mean_audio_kbps,
        q.score,
    );
    ExperimentResult {
        id: "bp3",
        title: "BP3: §4.1 DASH allowed-combinations extension, end to end",
        text,
        json: json!({
            "off_manifest_chunks": off,
            "session": log_summary_json(&log),
        }),
    }
}

/// BP4: §4.1 footnote 2 — "we suggest avoiding the practice of 'lazy'
/// fetching". Preloaded vs eager vs lazy playlist fetching, same policy,
/// same trace, on a high-latency (200 ms) link where round trips matter.
fn bp4(jobs: usize) -> ExperimentResult {
    use abr_player::session::PlaylistFetch;

    let content = drama();
    let view = hls_sub_view(&content, &[0, 1, 2]);
    let trace = Trace::fig3_varying_600k(Duration::from_secs(3600));
    let modes = [
        ("preloaded (out-of-band)", PlaylistFetch::Preloaded),
        ("eager (§4.1 suggestion)", PlaylistFetch::Eager),
        ("lazy (§4.1 warns against)", PlaylistFetch::Lazy),
    ];
    let logs = runner::run_indexed(modes.len(), jobs, |i| {
        let policy = Box::new(BestPracticePolicy::from_hls(&view));
        let origin = Origin::with_overhead(content.clone(), Bytes(320));
        let link = abr_net::link::Link::with_latency(trace.clone(), Duration::from_millis(200));
        let config = player_config(PlayerKind::BestPractice, content.chunk_duration());
        abr_player::Session::new(origin, link, policy, config)
            .with_playlist_fetch(modes[i].1, abr_manifest::build::Packaging::SingleFile)
            .run()
    });
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for ((label, _), log) in modes.iter().zip(&logs) {
        let q = abr_qoe::summarize(log);
        rows.push(vec![
            label.to_string(),
            log.playlist_fetches.len().to_string(),
            format!(
                "{:.2}",
                q.startup_delay
                    .map_or(f64::NAN, abr_event::Duration::as_secs_f64)
            ),
            q.stall_count.to_string(),
            format!("{:.1}", q.total_stall.as_secs_f64()),
            format!("{:.2}", q.score),
        ]);
        jrows.push(json!({
            "mode": label,
            "playlist_fetches": log.playlist_fetches.len(),
            "startup_s": q.startup_delay.map(abr_event::Duration::as_secs_f64),
            "stalls": q.stall_count,
            "total_stall_s": q.total_stall.as_secs_f64(),
            "score": q.score,
        }));
    }
    let mut text = table(
        &[
            "Playlist fetching",
            "Fetches",
            "Startup s",
            "Stalls",
            "Stall s",
            "QoE",
        ],
        &rows,
    );
    text.push_str(concat!(
        "
lazy fetching pays a playlist round trip at every first use of a
",
        "track (and the adaptation logic is blind to per-track bitrates until
",
        "then); eager fetching front-loads the cost into startup, once.
",
    ));
    ExperimentResult {
        id: "bp4",
        title: "BP4: §4.1 footnote — lazy vs eager playlist fetching",
        text,
        json: json!({ "rows": jrows }),
    }
}

// ---------------------------------------------------------------------
// M1 — §1 motivation: storage and CDN cache
// ---------------------------------------------------------------------

/// M1: demuxed M+N vs muxed M×N origin storage, and the two-user CDN
/// cache-hit scenario.
fn m1() -> ExperimentResult {
    use abr_httpsim::storage::{demuxed_storage_multilang, muxed_storage_multilang};

    let content = drama();
    let cmp = StorageComparison::compute(&content);

    // Two-user scenario: A streams V1+A2, then B streams V1+A1.
    let origin = Origin::with_overhead(content.clone(), Bytes::ZERO);
    let n = content.num_chunks();

    let mut demux = CdnCache::new(Bytes(1 << 32));
    for chunk in 0..n {
        demux
            .fetch(&origin, &Origin::segment_request(TrackId::video(0), chunk))
            .unwrap();
        demux
            .fetch(&origin, &Origin::segment_request(TrackId::audio(1), chunk))
            .unwrap();
    }
    let a_stats = demux.stats();
    for chunk in 0..n {
        demux
            .fetch(&origin, &Origin::segment_request(TrackId::video(0), chunk))
            .unwrap();
        demux
            .fetch(&origin, &Origin::segment_request(TrackId::audio(0), chunk))
            .unwrap();
    }
    let b_hits = demux.stats().hits - a_stats.hits;

    let mut mux = CdnCache::new(Bytes(1 << 32));
    for chunk in 0..n {
        mux.fetch(
            &origin,
            &Request::whole(ObjectId::MuxedSegment {
                combo: Combo::new(0, 1),
                chunk,
            }),
        )
        .unwrap();
    }
    for chunk in 0..n {
        mux.fetch(
            &origin,
            &Request::whole(ObjectId::MuxedSegment {
                combo: Combo::new(0, 0),
                chunk,
            }),
        )
        .unwrap();
    }
    let mux_b_hits = mux.stats().hits;

    let mut lang_rows = Vec::new();
    for l in 1..=5usize {
        let d = demuxed_storage_multilang(&content, l);
        let m = muxed_storage_multilang(&content, l);
        lang_rows.push(vec![
            l.to_string(),
            format!("{:.1}", d.get() as f64 / 1e6),
            format!("{:.1}", m.get() as f64 / 1e6),
            format!("x{:.2}", m.get() as f64 / d.get() as f64),
        ]);
    }
    let lang_table = table(
        &["Languages", "Demuxed MB", "Muxed MB", "Expansion"],
        &lang_rows,
    );
    let text = format!(
        concat!(
            "Origin storage (Table 1 content, 6 video × 3 audio):\n",
            "demuxed (M+N tracks): {:>12} bytes\n",
            "muxed  (M×N tracks):  {:>12} bytes   expansion ×{:.2}\n\n",
            "…and with multiple audio languages (§1's motivating case):\n{}\n",
            "Two-user CDN scenario (A: V1+A2, then B: V1+A1), {} chunks each:\n",
            "demuxed: B hits cache on {} of {} requests (all video chunks)\n",
            "muxed:   B hits cache on {} of {} requests\n",
        ),
        cmp.demuxed.get(),
        cmp.muxed.get(),
        cmp.expansion_factor(),
        lang_table,
        n,
        b_hits,
        2 * n,
        mux_b_hits,
        n,
    );
    ExperimentResult {
        id: "m1",
        title: "M1: §1 motivation — storage and CDN cache effects of demuxing",
        text,
        json: json!({
            "demuxed_bytes": cmp.demuxed.get(),
            "muxed_bytes": cmp.muxed.get(),
            "expansion_factor": cmp.expansion_factor(),
            "demuxed_user_b_hits": b_hits,
            "muxed_user_b_hits": mux_b_hits,
        }),
    }
}

/// M2: the other side of the §1 trade-off — muxed delivery eliminates the
/// coordination problem entirely: one flow per position, buffers in
/// lockstep, whole-link visibility for per-flow estimators. Same Shaka
/// policy, same 2 Mbps link, both delivery modes.
fn m2(jobs: usize) -> ExperimentResult {
    use abr_player::session::DeliveryMode;

    let content = drama();
    let view = hls_all_view(&content);
    let trace = Trace::constant(BitsPerSec::from_kbps(2_000));
    let modes = [
        ("demuxed", DeliveryMode::Demuxed),
        ("muxed", DeliveryMode::Muxed),
    ];
    let logs = runner::run_indexed(modes.len(), jobs, |i| {
        let policy = Box::new(ShakaPolicy::hls(&view));
        let origin = Origin::with_overhead(content.clone(), Bytes::ZERO);
        let link = abr_net::link::Link::with_latency(trace.clone(), Duration::from_millis(20));
        let config = player_config(PlayerKind::Shaka, content.chunk_duration());
        abr_player::Session::new(origin, link, policy, config)
            .with_delivery(modes[i].1)
            .run()
    });
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for ((label, _), log) in modes.iter().zip(&logs) {
        let q = abr_qoe::summarize(log);
        let final_estimate = log
            .transfers
            .last()
            .and_then(|t| t.estimate_after)
            .map_or(0, abr_media::BitsPerSec::kbps);
        rows.push(vec![
            label.to_string(),
            final_estimate.to_string(),
            q.mean_video_kbps.to_string(),
            q.mean_audio_kbps.to_string(),
            format!("{:.1}", q.max_imbalance.as_secs_f64()),
            q.stall_count.to_string(),
        ]);
        jrows.push(json!({
            "mode": label,
            "final_estimate_kbps": final_estimate,
            "mean_video_kbps": q.mean_video_kbps,
            "mean_audio_kbps": q.mean_audio_kbps,
            "max_imbalance_s": q.max_imbalance.as_secs_f64(),
        }));
    }
    let mut text = table(
        &[
            "Delivery",
            "Final estimate Kbps",
            "Video Kbps",
            "Audio Kbps",
            "Max imbal s",
            "Stalls",
        ],
        &rows,
    );
    text.push_str(concat!(
        "
Shaka's per-flow estimator on a 2 Mbps link: demuxed, the two
",
        "concurrent flows each sample ~1 Mbps — under the 16 KB filter — so
",
        "the estimate never leaves 500 Kbps and quality stays at V2+A2.
",
        "Muxed, the single flow samples the full 2 Mbps and quality climbs.
",
        "The §1 price: the origin stores every M×N pairing (see M1).
",
    ));
    ExperimentResult {
        id: "m2",
        title: "M2: muxed delivery dissolves the coordination problem (at M×N cost)",
        text,
        json: json!({ "rows": jrows }),
    }
}

/// M3: the §1 CDN argument at the *session* level. Viewer A (V4+A2) warms
/// an edge cache; viewer B (same video, different audio: V4+A1) then
/// streams through it. Under demuxed delivery B's video is already cached;
/// under muxed delivery every chunk is a distinct M×N object and misses.
fn m3() -> ExperimentResult {
    use abr_player::policy::FixedPolicy;
    use abr_player::session::{DeliveryMode, EdgeCache};

    let content = drama();
    let miss_penalty = Duration::from_millis(120);
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for (label, mode) in [
        ("demuxed", DeliveryMode::Demuxed),
        ("muxed", DeliveryMode::Muxed),
    ] {
        let session = |edge: EdgeCache, audio: usize| {
            let origin = Origin::with_overhead(content.clone(), Bytes::ZERO);
            let link = abr_net::link::Link::with_latency(
                Trace::constant(BitsPerSec::from_kbps(1_600)),
                Duration::from_millis(20),
            );
            let config = player_config(PlayerKind::BestPractice, content.chunk_duration());
            abr_player::Session::new(
                origin,
                link,
                Box::new(FixedPolicy { video: 3, audio }),
                config,
            )
            .with_delivery(mode)
            .with_edge_cache(edge)
            .run_with_edge()
        };
        let cold = EdgeCache {
            cache: abr_httpsim::cache::CdnCache::new(Bytes(1 << 32)),
            miss_penalty,
        };
        let (_a_log, warmed) = session(cold, 1); // viewer A: V4+A2
        let warmed = warmed.expect("edge returned");
        let before = warmed.cache.stats();
        let (b_log, after) = session(warmed, 0); // viewer B: V4+A1
        let stats = after.expect("edge returned").cache.stats();
        let b_hits = stats.hits - before.hits;
        let b_misses = stats.misses - before.misses;
        let qb = abr_qoe::summarize(&b_log);
        rows.push(vec![
            label.to_string(),
            b_hits.to_string(),
            b_misses.to_string(),
            format!(
                "{:.2}",
                qb.startup_delay
                    .map_or(f64::NAN, abr_event::Duration::as_secs_f64)
            ),
            qb.stall_count.to_string(),
            format!(
                "{:.1}",
                (stats.bytes_from_origin.get() - before.bytes_from_origin.get()) as f64 / 1e6
            ),
        ]);
        jrows.push(json!({
            "mode": label,
            "viewer_b_hits": b_hits,
            "viewer_b_misses": b_misses,
            "viewer_b_startup_s": qb.startup_delay.map(abr_event::Duration::as_secs_f64),
            "viewer_b_origin_mb": (stats.bytes_from_origin.get() - before.bytes_from_origin.get()) as f64 / 1e6,
        }));
    }
    let mut text = table(
        &[
            "Delivery",
            "B hits",
            "B misses",
            "B startup s",
            "B stalls",
            "B origin MB",
        ],
        &rows,
    );
    text.push_str(concat!(
        "\nviewer A watched V4+A2; viewer B watches V4+A1 through the same\n",
        "edge. Demuxed, all of B's video chunks hit the warmed cache (only\n",
        "audio goes to the origin); muxed, V4+A1 is a different object from\n",
        "V4+A2 and every chunk pays the origin round trip — the §1 cache\n",
        "argument, measured end to end.\n",
    ));
    ExperimentResult {
        id: "m3",
        title: "M3: two viewers through one edge cache — demuxed vs muxed",
        text,
        json: json!({ "rows": jrows }),
    }
}

/// BP5: the corpus sweep — every policy over every named network profile
/// (DSL, LTE walk, congested HSPA, bus commute, elevator outage, and the
/// two paper profiles). One row per (profile, policy); the compact score
/// column is what a regression dashboard would track.
/// The BP5 sweep grid — every named corpus profile × every policy, in row
/// order. Shared by the table generator and the traced-session path.
fn bp5_grid() -> Vec<(&'static str, Trace, PlayerKind)> {
    let kinds = [
        PlayerKind::ExoPlayer,
        PlayerKind::Shaka,
        PlayerKind::DashJs,
        PlayerKind::Bba,
        PlayerKind::Mpc,
        PlayerKind::BestPractice,
    ];
    let mut grid = Vec::new();
    for (name, trace) in abr_net::corpus::all(Duration::from_secs(3600), SEED) {
        for kind in kinds {
            grid.push((name, trace.clone(), kind));
        }
    }
    grid
}

fn bp5(jobs: usize) -> ExperimentResult {
    let content = drama();
    let grid = bp5_grid();
    let logs = runner::run_indexed(grid.len(), jobs, |i| {
        let (_, trace, kind) = &grid[i];
        run_session(&content, *kind, dash_policy(*kind, &content), trace.clone())
    });
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for ((name, _, _), log) in grid.iter().zip(&logs) {
        let name = *name;
        let q = abr_qoe::summarize(log);
        rows.push(vec![
            name.to_string(),
            q.policy.clone(),
            format!("{:.2}", q.score),
            q.stall_count.to_string(),
            format!("{:.1}", q.total_stall.as_secs_f64()),
            q.mean_video_kbps.to_string(),
            q.mean_audio_kbps.to_string(),
            (q.video_switches + q.audio_switches).to_string(),
        ]);
        jrows.push(json!({
            "trace": name,
            "policy": q.policy,
            "score": q.score,
            "stalls": q.stall_count,
            "total_stall_s": q.total_stall.as_secs_f64(),
        }));
    }
    let text = table(
        &[
            "Trace",
            "Policy",
            "QoE",
            "Stalls",
            "Stall s",
            "Video Kbps",
            "Audio Kbps",
            "Switches",
        ],
        &rows,
    );
    ExperimentResult {
        id: "bp5",
        title: "BP5: corpus sweep — every policy over every named network profile",
        text,
        json: json!({ "rows": jrows }),
    }
}
