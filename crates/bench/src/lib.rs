//! # abr-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper (see DESIGN.md §7 for
//! the experiment index and EXPERIMENTS.md for paper-vs-measured results).
//!
//! * [`setup`] — canonical content, manifests (round-tripped through their
//!   textual forms, so every experiment exercises the full
//!   build→serialize→parse→bind pipeline), player configurations and
//!   session runners.
//! * [`corpus`] — the shared scenario corpus (DESIGN.md §15): per-
//!   realization content cuts, round-tripped manifest views and trace
//!   corpora built once and `Arc`-shared across every session, worker
//!   and origin that streams them.
//! * [`report`] — fixed-width tables and ASCII time-series plots.
//! * [`experiments`] — one function per experiment id (`t1`…`m1`);
//!   [`experiments::run`] dispatches by id, the `exp` binary is the CLI.
//! * [`runner`] — the deterministic parallel sweep engine: a scoped-thread
//!   worker pool that shards session specs across `min(jobs, cores)`
//!   workers and merges results in spec order, proven bit-identical to
//!   serial by `tests/parallel_determinism.rs`.
//! * [`profiling`] — the self-profiling surface behind `exp --profile`:
//!   merges per-session span trees with the pool's phase/worker
//!   accounting into a [`profiling::WorkloadProfile`] (text table + JSON
//!   artifact). Host-time telemetry only; never feeds artifacts.
//! * [`history`] — the append-only bench-history format behind
//!   `BENCH_sim.json`/`BENCH_runner.json` and the `scripts/bench_check`
//!   regression gate over criterion medians.
//! * [`fleet`] — the shared-fate fleet engine behind `exp fleet`: many
//!   sessions over contended link domains (shared CDN cache + origin
//!   uplink), sharded over workers with conservative window sync, byte-
//!   identical at every `--jobs` and shard count (DESIGN.md §14).

#![forbid(unsafe_code)]

pub mod corpus;
pub mod experiments;
pub mod fleet;
pub mod history;
pub mod mc;
pub mod profiling;
pub mod report;
pub mod runner;
pub mod setup;
