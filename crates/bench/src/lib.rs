//! # abr-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper (see DESIGN.md §7 for
//! the experiment index and EXPERIMENTS.md for paper-vs-measured results).
//!
//! * [`setup`] — canonical content, manifests (round-tripped through their
//!   textual forms, so every experiment exercises the full
//!   build→serialize→parse→bind pipeline), player configurations and
//!   session runners.
//! * [`report`] — fixed-width tables and ASCII time-series plots.
//! * [`experiments`] — one function per experiment id (`t1`…`m1`);
//!   [`experiments::run`] dispatches by id, the `exp` binary is the CLI.
//! * [`runner`] — the deterministic parallel sweep engine: a scoped-thread
//!   worker pool that shards session specs across `min(jobs, cores)`
//!   workers and merges results in spec order, proven bit-identical to
//!   serial by `tests/parallel_determinism.rs`.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod mc;
pub mod report;
pub mod runner;
pub mod setup;
