//! Plain-text rendering: fixed-width tables and ASCII time-series plots,
//! plus small derived metrics (link busy time / utilization) for report
//! rows.

use abr_event::time::{busy_union, Duration, Instant};
use abr_player::log::SessionLog;

/// Wall-clock time the link spent delivering at least one transfer: the
/// union of every transfer's `[issue, completion]` interval, so
/// overlapping concurrent transfers are not double-counted. The
/// complement over `finished_at` is link idle time.
pub fn link_busy_time(log: &SessionLog) -> Duration {
    busy_union(
        log.transfers
            .iter()
            .map(|t| (t.at - t.duration, t.at))
            .collect(),
    )
}

/// Fraction of session wall time with at least one transfer in flight,
/// in `[0, 1]`. Zero for an empty session.
pub fn link_utilization(log: &SessionLog) -> f64 {
    if log.finished_at == Instant::ZERO {
        return 0.0;
    }
    link_busy_time(log).as_micros() as f64 / log.finished_at.as_micros() as f64
}

/// Renders a fixed-width table with a header row.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:w$} |"));
        }
        line.push('\n');
        line
    };
    let sep = {
        let mut line = String::from("+");
        for w in &widths {
            line.push_str(&"-".repeat(w + 2));
            line.push('+');
        }
        line.push('\n');
        line
    };
    out.push_str(&sep);
    out.push_str(&fmt_row(
        &headers.iter().map(ToString::to_string).collect::<Vec<_>>(),
        &widths,
    ));
    out.push_str(&sep);
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out.push_str(&sep);
    out
}

/// One plotted series: a glyph and its (x, y) points.
pub struct Series<'a> {
    /// Single-character marker.
    pub glyph: char,
    /// Legend label.
    pub label: &'a str,
    /// Data points (x ascending not required; NaNs rejected).
    pub points: &'a [(f64, f64)],
}

/// Renders series into a `width`×`height` ASCII grid with axis labels.
/// Later series overdraw earlier ones where they collide.
pub fn ascii_plot(title: &str, series: &[Series<'_>], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4, "plot too small");
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    let mut out = format!("{title}\n");
    if all.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    for (x, y) in &all {
        assert!(x.is_finite() && y.is_finite(), "non-finite data point");
    }
    let (mut x0, mut x1) = all.iter().fold((f64::MAX, f64::MIN), |(lo, hi), p| {
        (lo.min(p.0), hi.max(p.0))
    });
    let (mut y0, mut y1) = all.iter().fold((f64::MAX, f64::MIN), |(lo, hi), p| {
        (lo.min(p.1), hi.max(p.1))
    });
    if x1 <= x0 {
        x1 = x0 + 1.0;
    }
    if y1 <= y0 {
        y1 = y0 + 1.0;
    }
    // A little headroom on y so the top row isn't glued to the frame.
    let pad = (y1 - y0) * 0.05;
    y0 -= pad;
    y1 += pad;
    if x0 > 0.0 && x0 < (x1 - x0) * 0.1 {
        x0 = 0.0; // start time axes at zero when they nearly do
    }

    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        for &(x, y) in s.points {
            let cx = (((x - x0) / (x1 - x0)) * (width - 1) as f64).round() as usize;
            let cy = (((y - y0) / (y1 - y0)) * (height - 1) as f64).round() as usize;
            let cx = cx.min(width - 1);
            let cy = (height - 1) - cy.min(height - 1);
            grid[cy][cx] = s.glyph;
        }
    }

    let ylab_hi = format!("{y1:>9.1}");
    let ylab_lo = format!("{y0:>9.1}");
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            ylab_hi.clone()
        } else if i == height - 1 {
            ylab_lo.clone()
        } else {
            " ".repeat(9)
        };
        out.push_str(&format!("{label} |{}|\n", row.iter().collect::<String>()));
    }
    out.push_str(&format!(
        "{} +{}+\n{} {:<w$.1}{:>r$.1}\n",
        " ".repeat(9),
        "-".repeat(width),
        " ".repeat(10),
        x0,
        x1,
        w = width / 2,
        r = width - width / 2,
    ));
    let legend: Vec<String> = series
        .iter()
        .map(|s| format!("{} = {}", s.glyph, s.label))
        .collect();
    out.push_str(&format!("{} {}\n", " ".repeat(10), legend.join(", ")));
    out
}

/// Formats seconds with one decimal.
pub fn secs(s: f64) -> String {
    format!("{s:.1}s")
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_media::track::TrackId;
    use abr_media::units::Bytes;
    use abr_player::log::TransferEvent;

    /// A minimal log whose transfers span the given second intervals.
    fn log_with_transfers(intervals: &[(u64, u64)], finished_secs: u64) -> SessionLog {
        SessionLog {
            policy: "test".into(),
            selections: Vec::new(),
            transfers: intervals
                .iter()
                .map(|&(lo, hi)| TransferEvent {
                    at: Instant::from_secs(hi),
                    chunk: 0,
                    track: TrackId::video(0),
                    size: Bytes(1),
                    duration: Duration::from_secs(hi - lo),
                    estimate_after: None,
                })
                .collect(),
            buffer_samples: Vec::new(),
            stalls: Vec::new(),
            playlist_fetches: Vec::new(),
            seeks: Vec::new(),
            startup_at: None,
            ended_at: None,
            finished_at: Instant::from_secs(finished_secs),
            chunk_duration: Duration::from_secs(4),
            num_chunks: 1,
        }
    }

    #[test]
    fn busy_time_counts_overlaps_once() {
        // [0,4] and [2,6] overlap: 6 s busy, not 8.
        let log = log_with_transfers(&[(0, 4), (2, 6)], 10);
        assert_eq!(link_busy_time(&log), Duration::from_secs(6));
        assert!((link_utilization(&log) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn busy_time_sums_disjoint_transfers() {
        let log = log_with_transfers(&[(0, 2), (5, 8)], 10);
        assert_eq!(link_busy_time(&log), Duration::from_secs(5));
        assert!((link_utilization(&log) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn utilization_of_empty_session_is_zero() {
        let log = log_with_transfers(&[], 0);
        assert_eq!(link_busy_time(&log), Duration::ZERO);
        assert_eq!(link_utilization(&log), 0.0);
    }

    #[test]
    fn table_alignment() {
        let t = table(
            &["Combo", "Kbps"],
            &[
                vec!["V1+A1".into(), "253".into()],
                vec!["V6+A3".into(), "4838".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[1].contains("Combo"));
        assert!(lines[3].contains("V1+A1"));
        // All body lines share the same width.
        assert!(lines
            .iter()
            .all(|l| l.chars().count() == lines[0].chars().count()));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn plot_contains_glyphs_and_legend() {
        let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, (i % 7) as f64)).collect();
        let p = ascii_plot(
            "demo",
            &[Series {
                glyph: 'v',
                label: "video",
                points: &pts,
            }],
            40,
            8,
        );
        assert!(p.starts_with("demo\n"));
        assert!(p.contains('v'));
        assert!(p.contains("v = video"));
    }

    #[test]
    fn plot_handles_flat_series() {
        let pts = [(0.0, 500.0), (10.0, 500.0), (20.0, 500.0)];
        let p = ascii_plot(
            "flat",
            &[Series {
                glyph: 'e',
                label: "estimate",
                points: &pts,
            }],
            30,
            6,
        );
        assert!(p.contains('e'));
    }

    #[test]
    fn plot_empty_series() {
        let p = ascii_plot(
            "none",
            &[Series {
                glyph: 'x',
                label: "x",
                points: &[],
            }],
            30,
            6,
        );
        assert!(p.contains("(no data)"));
    }

    #[test]
    fn table_golden_string() {
        let t = table(&["k", "value"], &[vec!["a".into(), "1".into()]]);
        assert_eq!(
            t,
            "+---+-------+\n\
             | k | value |\n\
             +---+-------+\n\
             | a | 1     |\n\
             +---+-------+\n"
        );
    }

    #[test]
    fn table_with_no_rows_renders_header_only() {
        let t = table(&["Metric", "Value"], &[]);
        assert_eq!(
            t,
            "+--------+-------+\n\
             | Metric | Value |\n\
             +--------+-------+\n\
             +--------+-------+\n"
        );
    }

    #[test]
    fn plot_single_point() {
        let pts = [(5.0, 10.0)];
        let p = ascii_plot(
            "dot",
            &[Series {
                glyph: '*',
                label: "one",
                points: &pts,
            }],
            16,
            4,
        );
        // A degenerate x/y range widens to a unit span instead of dividing
        // by zero; the point lands somewhere inside the frame.
        assert!(p.contains('*'));
        assert!(p.contains("* = one"));
    }

    #[test]
    #[should_panic(expected = "non-finite data point")]
    fn plot_rejects_nan() {
        let pts = [(0.0, 1.0), (1.0, f64::NAN)];
        ascii_plot(
            "bad",
            &[Series {
                glyph: 'x',
                label: "x",
                points: &pts,
            }],
            20,
            5,
        );
    }

    #[test]
    #[should_panic(expected = "non-finite data point")]
    fn plot_rejects_infinity() {
        let pts = [(f64::INFINITY, 1.0)];
        ascii_plot(
            "bad",
            &[Series {
                glyph: 'x',
                label: "x",
                points: &pts,
            }],
            20,
            5,
        );
    }

    #[test]
    #[should_panic(expected = "plot too small")]
    fn plot_rejects_tiny_grid() {
        ascii_plot("tiny", &[], 8, 2);
    }

    #[test]
    fn two_series_overdraw() {
        let a = [(0.0, 0.0), (1.0, 1.0)];
        let b = [(0.0, 1.0), (1.0, 0.0)];
        let p = ascii_plot(
            "xy",
            &[
                Series {
                    glyph: 'a',
                    label: "a",
                    points: &a,
                },
                Series {
                    glyph: 'b',
                    label: "b",
                    points: &b,
                },
            ],
            20,
            5,
        );
        assert!(p.contains('a') && p.contains('b'));
    }
}
