//! Monte Carlo fleet sweep: the scale workload behind `exp mc`.
//!
//! Runs the full trace corpus × every policy (the six player emulations
//! plus the data-saver [`CappedPolicy`] wrapper) × `seeds` independent
//! content/trace realizations on the deterministic parallel runner —
//! thousands of sessions at the default seed count. The report aggregates
//! QoE per (trace, policy) cell across seeds; `scripts/bench_sim.sh` times
//! this sweep for `BENCH_sim.json`.
//!
//! Determinism: the grid is authored up front in a fixed order (seed-major,
//! then corpus order, then policy order) and sharded with
//! [`runner::run_indexed`], so the aggregate is byte-identical at every
//! `--jobs` value. Per-seed realizations derive from the experiment-wide
//! [`SEED`] by offset, never from host state.

use std::rc::Rc;

use crate::corpus::ScenarioCorpus;
use crate::profiling::WorkloadProfile;
use crate::report::table;
use crate::runner;
use crate::setup::{dash_policy_over, run_session_pooled, PlayerKind};
use abr_core::{BestPracticePolicy, CappedPolicy};
use abr_event::time::Duration;
use abr_manifest::view::BoundDash;
use abr_media::combo::{combo_bitrate, curated_subset, Combo};
use abr_media::content::Content;
use abr_media::units::BitsPerSec;
use abr_obs::{HostStopwatch, ObsHandle, Profiler};
use abr_player::policy::AbrPolicy;
use abr_player::SessionScratch;
use abr_qoe::QoeSummary;
use serde_json::{json, Value};

/// The policy arms of the sweep, in column order: the six player
/// emulations plus the capped best-practice wrapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McPolicy {
    /// One of the standard player emulations.
    Kind(PlayerKind),
    /// Best-practice wrapped in a data-saver cap (Kbps).
    Capped(u64),
}

impl McPolicy {
    /// Column label for reports.
    pub fn label(&self) -> String {
        match self {
            McPolicy::Kind(kind) => format!("{kind:?}"),
            McPolicy::Capped(kbps) => format!("Capped{kbps}"),
        }
    }

    /// Which player configuration the arm runs under.
    fn player_kind(&self) -> PlayerKind {
        match self {
            McPolicy::Kind(kind) => *kind,
            McPolicy::Capped(_) => PlayerKind::BestPractice,
        }
    }

    /// Builds the arm's policy over `content` and its already-bound DASH
    /// view (shared from the scenario corpus — the MPD round trip happens
    /// once per realization, not once per session).
    fn policy(&self, content: &Content, view: &BoundDash) -> Box<dyn AbrPolicy> {
        match self {
            McPolicy::Kind(kind) => dash_policy_over(*kind, content, view),
            McPolicy::Capped(kbps) => {
                let allowed = curated_subset(content.video(), content.audio());
                let inner = Box::new(BestPracticePolicy::from_dash(view, &allowed));
                let pairs: Vec<(Combo, BitsPerSec)> = allowed
                    .iter()
                    .map(|&c| {
                        (
                            c,
                            combo_bitrate(content.video(), content.audio(), c).declared,
                        )
                    })
                    .collect();
                Box::new(CappedPolicy::new(
                    inner,
                    pairs,
                    BitsPerSec::from_kbps(*kbps),
                ))
            }
        }
    }
}

/// The seven policy arms, in column order.
pub fn mc_policies() -> Vec<McPolicy> {
    vec![
        McPolicy::Kind(PlayerKind::ExoPlayer),
        McPolicy::Kind(PlayerKind::Shaka),
        McPolicy::Kind(PlayerKind::DashJs),
        McPolicy::Kind(PlayerKind::Bba),
        McPolicy::Kind(PlayerKind::Mpc),
        McPolicy::Kind(PlayerKind::BestPractice),
        McPolicy::Capped(2500),
    ]
}

/// Trace length for corpus realizations: long enough to cover the 300 s
/// clip plus worst-case stalls on the outage profiles.
const TRACE_SECS: u64 = 900;

/// One cell of the session grid.
#[derive(Debug, Clone, Copy)]
struct McCell {
    /// Per-seed realization index, `0..seeds`.
    realization: u64,
    /// Index into [`abr_net::corpus::all`].
    trace: usize,
    /// Index into [`mc_policies`].
    policy: usize,
}

/// Aggregate of one (trace, policy) cell across realizations.
#[derive(Debug, Clone, Default)]
struct CellStats {
    n: usize,
    score_sum: f64,
    score_min: f64,
    stall_count: usize,
    stall_secs: f64,
    video_kbps_sum: u64,
    incomplete: usize,
}

impl CellStats {
    fn fold(&mut self, q: &QoeSummary) {
        if self.n == 0 || q.score < self.score_min {
            self.score_min = q.score;
        }
        self.n += 1;
        self.score_sum += q.score;
        self.stall_count += q.stall_count;
        self.stall_secs += q.total_stall.as_secs_f64();
        self.video_kbps_sum += q.mean_video_kbps;
        if !q.completed {
            self.incomplete += 1;
        }
    }
}

/// The result of one Monte Carlo sweep: the rendered aggregate plus the
/// structured report `exp mc --json` writes.
pub struct McResult {
    /// The aggregate table.
    pub text: String,
    /// Structured per-cell stats plus sweep metadata.
    pub json: Value,
    /// Total sessions run.
    pub sessions: usize,
}

/// The authored sweep grid: the shared scenario corpus, policy arms, and
/// every (realization, trace, policy) cell in the fixed seed-major order
/// the determinism contract requires. The corpus builds each
/// realization's content, DASH view and trace corpus exactly once;
/// cells then clone `Arc` handles instead of re-synthesizing
/// (DESIGN.md §15).
fn mc_grid(seeds: u64) -> (ScenarioCorpus, Vec<McPolicy>, Vec<McCell>) {
    let corpus = ScenarioCorpus::build_mc(seeds, Duration::from_secs(TRACE_SECS));
    let policies = mc_policies();
    let traces = corpus.trace_names().len();
    let mut grid: Vec<McCell> = Vec::new();
    for realization in 0..seeds {
        for trace in 0..traces {
            for policy in 0..policies.len() {
                grid.push(McCell {
                    realization,
                    trace,
                    policy,
                });
            }
        }
    }
    (corpus, policies, grid)
}

/// LPT-style claim-order hint for the grid: MPC cells first (the MPC
/// arm's horizon search dominates per-session cost — it was 74% of the
/// sweep wall before the branch-and-bound rewrite and is still the
/// heaviest arm), everything else in authored order behind them. Longest
/// work first keeps the tail of the sweep from landing a cluster of
/// heavy cells on one worker. Claim order is a scheduling knob outside
/// the artifact contract (DESIGN.md §16); results merge in grid order
/// regardless.
fn lpt_order(policies: &[McPolicy], grid: &[McCell]) -> Vec<usize> {
    let is_heavy = |cell: &McCell| matches!(policies[cell.policy], McPolicy::Kind(PlayerKind::Mpc));
    let mut order = Vec::with_capacity(grid.len());
    order.extend((0..grid.len()).filter(|&i| is_heavy(&grid[i])));
    order.extend((0..grid.len()).filter(|&i| !is_heavy(&grid[i])));
    order
}

/// Runs one grid cell over the shared corpus: clone the realization's
/// content handle and trace, build the arm's policy over the shared
/// view, run the session with pooled log vectors. With a profiler
/// attached the setup, session and summarize phases become spans and the
/// session's `ObsHandle` carries the profiler; without one this is
/// exactly the unprofiled path (a disabled handle is what a bare session
/// uses), so the returned summary is byte-identical either way.
fn run_cell(
    policies: &[McPolicy],
    corpus: &ScenarioCorpus,
    cell: McCell,
    profiler: Option<&Rc<Profiler>>,
    scratch: &mut SessionScratch,
) -> QoeSummary {
    let setup_span = profiler.map(|p| p.span("session.setup"));
    let scenario = corpus.scenario(cell.realization);
    let trace = scenario.traces[cell.trace].1.clone();
    let arm = policies[cell.policy];
    let policy = arm.policy(&scenario.content, &scenario.dash);
    drop(setup_span);
    let mut obs = ObsHandle::disabled();
    if let Some(p) = profiler {
        obs = obs.with_profiler(Rc::clone(p));
    }
    let log = run_session_pooled(
        &scenario.content,
        arm.player_kind(),
        policy,
        trace,
        obs,
        scratch,
    );
    let _summarize = profiler.map(|p| p.span("session.summarize"));
    let summary = abr_qoe::summarize(&log);
    scratch.reclaim(log);
    summary
}

/// Runs the fleet sweep: `seeds` realizations of (full corpus × all
/// policies), sharded over `min(jobs, cores)` workers. Deterministic at
/// every `jobs` value.
pub fn run_mc(seeds: u64, jobs: usize) -> McResult {
    assert!(seeds > 0, "mc sweep needs at least one seed");
    let (corpus, policies, grid) = mc_grid(seeds);
    let order = lpt_order(&policies, &grid);
    let summaries: Vec<QoeSummary> = runner::run_indexed_with_hinted(
        grid.len(),
        jobs,
        &order,
        SessionScratch::new,
        |scratch, i| run_cell(&policies, &corpus, grid[i], None, scratch),
    );
    aggregate(seeds, &corpus.trace_names(), &policies, &grid, &summaries)
}

/// [`run_mc`] with the self-profiling layer on (`exp mc --profile`):
/// every session runs with a private span profiler, the pool reports its
/// phase/worker accounting, and the merged [`WorkloadProfile`] names
/// where the sweep's host time went. The returned [`McResult`] is
/// byte-identical to [`run_mc`] at the same `(seeds, jobs)` — profiling
/// observes, never perturbs (`tests/profile_determinism.rs`).
pub fn run_mc_profiled(seeds: u64, jobs: usize) -> (McResult, WorkloadProfile) {
    assert!(seeds > 0, "mc sweep needs at least one seed");
    let setup = HostStopwatch::start();
    let (corpus, policies, grid) = mc_grid(seeds);
    let order = lpt_order(&policies, &grid);
    let setup_ns = setup.elapsed_ns();
    let (summaries, pool) = runner::run_profiled_sched(
        grid.len(),
        jobs,
        runner::adaptive_chunk(grid.len(), jobs),
        Some(&order),
        |i| {
            let profiler = Rc::new(Profiler::new());
            let mut scratch = SessionScratch::new();
            let q = run_cell(&policies, &corpus, grid[i], Some(&profiler), &mut scratch);
            (q, profiler.report())
        },
    );
    let result = aggregate(seeds, &corpus.trace_names(), &policies, &grid, &summaries);
    let profile = WorkloadProfile::from_pool("mc", setup_ns, pool);
    (result, profile)
}

/// Folds per-session summaries into the per-(trace, policy) aggregate
/// table and JSON report. Pure function of its inputs, shared by the
/// profiled and unprofiled sweeps.
fn aggregate(
    seeds: u64,
    corpus_names: &[&'static str],
    policies: &[McPolicy],
    grid: &[McCell],
    summaries: &[QoeSummary],
) -> McResult {
    let mut cells: Vec<CellStats> = vec![CellStats::default(); corpus_names.len() * policies.len()];
    for (cell, q) in grid.iter().zip(summaries) {
        cells[cell.trace * policies.len() + cell.policy].fold(q);
    }

    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for (t, tname) in corpus_names.iter().enumerate() {
        for (p, arm) in policies.iter().enumerate() {
            let s = &cells[t * policies.len() + p];
            let mean_score = s.score_sum / s.n as f64;
            rows.push(vec![
                tname.to_string(),
                arm.label(),
                format!("{mean_score:.2}"),
                format!("{:.2}", s.score_min),
                format!("{:.2}", s.stall_count as f64 / s.n as f64),
                format!("{:.1}", s.stall_secs / s.n as f64),
                (s.video_kbps_sum / s.n as u64).to_string(),
                s.incomplete.to_string(),
            ]);
            jrows.push(json!({
                "trace": *tname,
                "policy": arm.label(),
                "seeds": s.n,
                "mean_score": mean_score,
                "min_score": s.score_min,
                "mean_stalls": s.stall_count as f64 / s.n as f64,
                "mean_stall_s": s.stall_secs / s.n as f64,
                "mean_video_kbps": s.video_kbps_sum / s.n as u64,
                "incomplete": s.incomplete,
            }));
        }
    }
    let sessions = grid.len();
    let header = format!(
        "{} seeds x {} traces x {} policies = {} sessions\n",
        seeds,
        corpus_names.len(),
        policies.len(),
        sessions
    );
    let text = format!(
        "{header}{}",
        table(
            &[
                "Trace",
                "Policy",
                "QoE mean",
                "QoE min",
                "Stalls/run",
                "Stall s",
                "Video Kbps",
                "Incomplete",
            ],
            &rows,
        )
    );
    McResult {
        text,
        json: json!({
            "seeds": seeds,
            "traces": corpus_names.len(),
            "policies": policies.len(),
            "sessions": sessions,
            "trace_secs": TRACE_SECS,
            "rows": jrows,
        }),
        sessions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_runs_and_aggregates() {
        let r = run_mc(1, 1);
        assert_eq!(r.sessions, 7 * 7);
        let rows = r.json["rows"].as_array().unwrap();
        assert_eq!(rows.len(), 49);
        for row in rows {
            assert_eq!(row["seeds"], 1u64);
            assert!(row["mean_score"].as_f64().is_some());
        }
        assert!(r.text.contains("1 seeds x 7 traces x 7 policies"));
    }

    #[test]
    fn sweep_is_jobs_invariant() {
        // The determinism contract: the aggregate is byte-identical no
        // matter how the grid is sharded.
        let serial = run_mc(2, 1);
        let sharded = run_mc(2, 4);
        assert_eq!(serial.text, sharded.text);
        assert_eq!(
            serde_json::to_string(&serial.json).unwrap(),
            serde_json::to_string(&sharded.json).unwrap()
        );
    }

    #[test]
    fn corpus_sharing_matches_per_spec_construction() {
        // The tentpole differential: cells running over Arc-shared
        // corpus scenarios must summarize identically to cells that
        // rebuild content, view and trace from their spec alone.
        use crate::setup::{dash_view, run_session_with_obs, SEED};
        use abr_media::content::SharedContent;
        let (corpus, policies, grid) = mc_grid(2);
        let mut scratch = SessionScratch::new();
        for cell in grid.iter().step_by(5).copied() {
            let shared = run_cell(&policies, &corpus, cell, None, &mut scratch);
            let seed = SEED.wrapping_add(cell.realization);
            let content: SharedContent = Content::drama_show(seed).into();
            let trace = abr_net::corpus::all(Duration::from_secs(TRACE_SECS), seed)
                .swap_remove(cell.trace)
                .1;
            let arm = policies[cell.policy];
            let view = dash_view(&content);
            let policy = arm.policy(&content, &view);
            let log = run_session_with_obs(
                &content,
                arm.player_kind(),
                policy,
                trace,
                ObsHandle::disabled(),
            );
            assert_eq!(shared, abr_qoe::summarize(&log), "cell {cell:?}");
        }
    }

    #[test]
    fn lpt_order_is_a_permutation_with_mpc_first() {
        let (_corpus, policies, grid) = mc_grid(2);
        let order = lpt_order(&policies, &grid);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..grid.len()).collect::<Vec<_>>());
        let is_heavy =
            |i: usize| matches!(policies[grid[i].policy], McPolicy::Kind(PlayerKind::Mpc));
        let heavy = (0..grid.len()).filter(|&i| is_heavy(i)).count();
        assert_eq!(
            heavy,
            grid.len() / policies.len(),
            "one MPC arm per cell row"
        );
        assert!(
            order[..heavy].iter().all(|&i| is_heavy(i)),
            "MPC cells lead"
        );
    }

    #[test]
    fn capped_arm_respects_its_budget() {
        let r = run_mc(1, 1);
        let rows = r.json["rows"].as_array().unwrap();
        for row in rows {
            if row["policy"] == "Capped2500" {
                let kbps = row["mean_video_kbps"].as_u64().unwrap();
                assert!(kbps <= 2500, "capped arm averaged {kbps} Kbps");
            }
        }
    }
}
