//! Integration: every experiment id runs, renders non-empty text and
//! structured JSON, and the headline shape claims hold.

use abr_bench::experiments::{all_ids, run};

#[test]
fn every_experiment_runs_and_renders() {
    for id in all_ids() {
        let r = run(id).unwrap_or_else(|| panic!("unknown id {id}"));
        assert_eq!(r.id, id);
        assert!(!r.title.is_empty());
        assert!(
            r.text.len() > 80,
            "{id}: text too small ({} bytes)",
            r.text.len()
        );
        assert!(r.json.is_object(), "{id}: json must be an object");
    }
}

#[test]
fn unknown_id_is_none() {
    assert!(run("nope").is_none());
    assert!(run("").is_none());
}

#[test]
fn headline_shapes_hold_in_json() {
    // F2a: V3+B2 dominates all chunks.
    let f2a = run("f2a").unwrap().json;
    assert_eq!(f2a["dominant_combo"], "V3+A2"); // B-set renders as A-names
    assert_eq!(f2a["dominant_chunks"], 75);
    assert_eq!(f2a["better_excluded"], true);

    // F3a: A3 pinned, everything off-manifest.
    let f3a = run("f3a").unwrap().json;
    assert_eq!(f3a["audio_tracks_used"], serde_json::json!([2]));
    assert_eq!(f3a["off_manifest_chunks"], 75);

    // F4a: flat default estimate.
    let f4a = run("f4a").unwrap().json;
    assert_eq!(f4a["estimate_flat_500"], true);
    assert_eq!(f4a["dominant_combo"], "V2+A2");

    // F4b: overestimation after bursts.
    let f4b = run("f4b").unwrap().json;
    assert!(f4b["late_max_estimate_kbps"].as_f64().unwrap() > 1000.0);

    // F3fix: the repaired player stops stalling.
    let f3fix = run("f3fix").unwrap().json;
    let rows = f3fix["rows"].as_array().unwrap();
    let stock = &rows[0];
    let fixed = &rows[1];
    assert!(stock["total_stall_s"].as_f64().unwrap() > 20.0);
    assert!(fixed["total_stall_s"].as_f64().unwrap() < 2.0);

    // BP3: extension-driven session never leaves the manifest.
    let bp3 = run("bp3").unwrap().json;
    assert_eq!(bp3["off_manifest_chunks"], 0);

    // M1: storage expansion factor in the expected band.
    let m1 = run("m1").unwrap().json;
    let factor = m1["expansion_factor"].as_f64().unwrap();
    assert!((3.0..4.0).contains(&factor), "{factor}");
    assert_eq!(m1["muxed_user_b_hits"], 0);

    // M3: demuxed viewer B pulls far fewer origin bytes than muxed.
    let m3 = run("m3").unwrap().json;
    let rows = m3["rows"].as_array().unwrap();
    let demuxed_mb = rows[0]["viewer_b_origin_mb"].as_f64().unwrap();
    let muxed_mb = rows[1]["viewer_b_origin_mb"].as_f64().unwrap();
    assert!(demuxed_mb * 3.0 < muxed_mb, "{demuxed_mb} vs {muxed_mb}");
}
