//! CLI-level coverage of `exp --trace/--chrome/--metrics` on sweep
//! experiments: sweeps used to be an error; they now write one artifact
//! per session (`<stem>.<n>.<ext>`), identically at any `--jobs` value.

use std::path::Path;
use std::process::Command;

fn exp() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_exp"));
    // The test asserts explicit --jobs behavior; shield it from the
    // environment default.
    cmd.env_remove("ABR_JOBS");
    cmd
}

fn tmp(name: &str) -> String {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_trace");
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir.join(name).to_str().expect("utf-8 path").to_string()
}

#[test]
fn sweep_trace_writes_per_session_files() {
    let base = tmp("f3fix.trace.jsonl");
    let out = exp()
        .args(["--id", "f3fix", "--trace", &base, "--jobs", "8"])
        .output()
        .expect("run exp");
    assert!(
        out.status.success(),
        "exp failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Three arms → three per-session files; the bare path is not written.
    assert!(!Path::new(&base).exists(), "sweep must not write {base}");
    for n in 0..3 {
        let path = tmp(&format!("f3fix.{n}.trace.jsonl"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing per-session trace {path}: {e}"));
        let first = text.lines().next().expect("non-empty trace");
        assert!(
            first.contains("\"name\":\"session_start\""),
            "trace {path} must start with session_start, got: {first}"
        );
        assert!(
            !text.contains("\"wall_ns\":1")
                && !text.contains("\"wall_ns\":2")
                && !text.contains("\"wall_ns\":3"),
            "deterministic stamping: wall_ns must be 0 in {path}"
        );
    }
    assert!(
        !Path::new(&tmp("f3fix.3.trace.jsonl")).exists(),
        "only one file per session"
    );
}

#[test]
fn sweep_trace_is_jobs_invariant() {
    for (jobs, prefix) in [("1", "serial"), ("8", "parallel")] {
        let base = tmp(&format!("{prefix}.trace.jsonl"));
        let out = exp()
            .args(["--id", "f3fix", "--trace", &base, "--jobs", jobs])
            .output()
            .expect("run exp");
        assert!(out.status.success());
    }
    for n in 0..3 {
        let serial = std::fs::read_to_string(tmp(&format!("serial.{n}.trace.jsonl"))).unwrap();
        let parallel = std::fs::read_to_string(tmp(&format!("parallel.{n}.trace.jsonl"))).unwrap();
        assert_eq!(
            serial, parallel,
            "per-session trace {n} differs between --jobs 1 and --jobs 8"
        );
    }
}

#[test]
fn single_session_trace_keeps_exact_path() {
    let path = tmp("f4a.trace.jsonl");
    let out = exp()
        .args(["--id", "f4a", "--trace", &path])
        .output()
        .expect("run exp");
    assert!(out.status.success());
    assert!(
        Path::new(&path).exists(),
        "single-session experiments write the path as given"
    );
    assert!(!Path::new(&tmp("f4a.0.trace.jsonl")).exists());
}

#[test]
fn sweep_chrome_and_metrics_work() {
    let chrome = tmp("bp5.chrome.json");
    let out = exp()
        .args([
            "--id",
            "bp5",
            "--chrome",
            &chrome,
            "--metrics",
            "--jobs",
            "4",
        ])
        .output()
        .expect("run exp");
    assert!(
        out.status.success(),
        "exp failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Metric"), "merged metrics table printed");
    let first = std::fs::read_to_string(tmp("bp5.0.chrome.json")).expect("per-session chrome");
    assert!(first.starts_with("{") || first.starts_with("["));
}

#[test]
fn untraceable_experiment_still_errors() {
    let out = exp()
        .args(["--id", "t1", "--trace", &tmp("t1.trace.jsonl")])
        .output()
        .expect("run exp");
    assert!(!out.status.success(), "t1 has no sessions to trace");
}
