//! Integration: a traced session's event stream, serialized to JSONL and
//! parsed back, reconstructs the directly-recorded `SessionLog` exactly.
//! This is the end-to-end contract the observability layer makes: the
//! trace is not a lossy narration of the session — it *is* the session.

use abr_bench::experiments::traced_session;
use abr_bench::setup::{drama, hls_all_view, run_session_obs, PlayerKind};
use abr_core::ShakaPolicy;
use abr_event::time::Duration;
use abr_media::units::BitsPerSec;
use abr_net::trace::Trace;
use abr_obs::export::{from_jsonl, to_jsonl};
use abr_obs::Event;
use abr_player::SessionLog;

/// The Fig 4(b) Shaka session — dynamic trace, stalls, estimate movement —
/// traced, exported, re-parsed, reconstructed, compared field for field.
#[test]
fn traced_f4b_replay_equals_direct_log() {
    let content = drama();
    let view = hls_all_view(&content);
    let policy = ShakaPolicy::hls(&view);
    let (direct, events, _metrics) = run_session_obs(
        &content,
        PlayerKind::Shaka,
        Box::new(policy),
        Trace::fig4b_varying_600k(Duration::from_secs(3600)),
    );

    // The session must actually have exercised the interesting machinery,
    // or the equality below proves nothing.
    assert!(!events.is_empty(), "trace captured no events");
    assert!(direct.stall_count() > 0, "f4b should stall");
    assert!(!direct.transfers.is_empty() && !direct.selections.is_empty());

    let text = to_jsonl(&events);
    let parsed = from_jsonl(&text).expect("jsonl parses back");
    assert_eq!(parsed, events, "jsonl round trip is lossless");

    let replayed = SessionLog::from_trace(&parsed).expect("trace reconstructs");
    assert_eq!(
        replayed, direct,
        "replayed log equals the directly-recorded log"
    );
}

/// The same equality through the `exp` runner's hook, for the dash.js
/// session (independent audio/video pipelines — a different event
/// interleaving than Shaka's).
#[test]
fn traced_session_hook_replay_equals_direct_log() {
    let (direct, events, _metrics) = traced_session("f5a").expect("f5a has one session");
    let replayed =
        SessionLog::from_trace(&from_jsonl(&to_jsonl(&events)).unwrap()).expect("reconstructs");
    assert_eq!(replayed, direct);
}

/// Sweep experiments have no single canonical session to trace.
#[test]
fn sweeps_have_no_traced_session() {
    for id in ["t1", "bp1", "bp5", "m1", "nope"] {
        assert!(traced_session(id).is_none(), "{id} should not trace");
    }
}

/// The metrics registry riding along with the trace carries the link and
/// policy counters the session actually exercised.
#[test]
fn metrics_ride_along_with_the_trace() {
    let content = drama();
    let view = hls_all_view(&content);
    let (log, events, metrics) = run_session_obs(
        &content,
        PlayerKind::Shaka,
        Box::new(ShakaPolicy::hls(&view)),
        Trace::constant(BitsPerSec::from_kbps(1000)),
    );
    let completed = *metrics
        .counters
        .get("link.flows_completed")
        .expect("link counter present");
    assert_eq!(
        completed as usize,
        log.transfers.len(),
        "one completed flow per transfer"
    );
    let decisions = events
        .iter()
        .filter(|e| matches!(e.event, Event::PolicyDecision { .. }))
        .count();
    assert!(decisions > 0, "policy decisions traced");
}
