//! Profiling never perturbs artifacts (DESIGN.md §13).
//!
//! The span profiler reads the host clock and writes into its own arena;
//! nothing it does may leak into simulation outputs. These tests pin the
//! contract end to end:
//!
//! * `exp mc --profile` produces an [`abr_bench::mc::McResult`] whose
//!   text table and JSON report are **byte-identical** to the unprofiled
//!   sweep, at every `jobs` value.
//! * A single traced session returns identical log, event stream and
//!   metrics snapshot with and without a profiler attached.
//! * The profile itself is useful: it names the hot dispatch/fetch/link
//!   spans and attributes ≥ 95% of measured session wall time to named
//!   spans (the ISSUE acceptance bar).

use std::rc::Rc;

use abr_bench::mc::{run_mc, run_mc_profiled};
use abr_bench::setup::{drama, run_session_obs, run_session_obs_profiled, PlayerKind};
use abr_core::bestpractice::BestPracticePolicy;
use abr_event::time::Duration;
use abr_net::trace::Trace;
use abr_obs::Profiler;

#[test]
fn mc_sweep_is_byte_identical_with_profiling_on() {
    let plain = run_mc(2, 1);
    for jobs in [1usize, 2, 8] {
        let (profiled, profile) = run_mc_profiled(2, jobs);
        assert_eq!(
            plain.text, profiled.text,
            "mc table changed with --profile at jobs={jobs}"
        );
        assert_eq!(
            serde_json::to_string_pretty(&plain.json).unwrap(),
            serde_json::to_string_pretty(&profiled.json).unwrap(),
            "mc JSON report changed with --profile at jobs={jobs}"
        );
        assert_eq!(plain.sessions, profiled.sessions);
        assert_eq!(profile.sessions, plain.sessions as u64);
    }
}

/// Under chunked claiming the claim stopwatch covers only the per-chunk
/// fetch-add rounds and item execution is timed separately, so the
/// per-worker ledger must stay consistent: every session is claimed by
/// exactly one worker, and a worker's claim + busy time never exceeds
/// its lifetime.
#[test]
fn worker_accounting_holds_under_chunked_claiming() {
    for jobs in [1usize, 2, 8] {
        let (result, profile) = run_mc_profiled(2, jobs);
        let claimed: u64 = profile.workers.iter().map(|w| w.items).sum();
        assert_eq!(
            claimed, result.sessions as u64,
            "workers claimed {claimed} items for {} sessions at jobs={jobs}",
            result.sessions
        );
        for w in &profile.workers {
            assert!(
                w.claim_ns + w.busy_ns <= w.alive_ns,
                "worker {}: claim {}ns + busy {}ns exceeds alive {}ns at jobs={jobs}",
                w.worker,
                w.claim_ns,
                w.busy_ns,
                w.alive_ns
            );
        }
    }
}

#[test]
fn traced_session_is_identical_with_profiler_attached() {
    let content = drama();
    let make_policy = || {
        let view = abr_bench::setup::hls_sub_view(&content, &[0, 1, 2]);
        Box::new(BestPracticePolicy::from_hls(&view))
    };
    let trace = || Trace::fig4b_varying_600k(Duration::from_secs(600));
    let (log_a, events_a, metrics_a) =
        run_session_obs(&content, PlayerKind::BestPractice, make_policy(), trace());
    let profiler = Rc::new(Profiler::new());
    let (log_b, events_b, metrics_b) = run_session_obs_profiled(
        &content,
        PlayerKind::BestPractice,
        make_policy(),
        trace(),
        Some(&profiler),
    );
    assert_eq!(format!("{log_a:?}"), format!("{log_b:?}"));
    assert_eq!(events_a, events_b, "traced event stream diverged");
    assert_eq!(metrics_a.counters, metrics_b.counters);
    assert_eq!(metrics_a.gauges, metrics_b.gauges);
    assert_eq!(metrics_a.histograms, metrics_b.histograms);
    // And the profiler actually saw the session.
    let report = profiler.report();
    assert!(!report.roots.is_empty(), "profiler recorded nothing");
}

#[test]
fn profile_names_hot_spans_and_attributes_wall_time() {
    let (_, profile) = run_mc_profiled(2, 2);
    let flat = profile.spans.flatten();
    let names: Vec<&str> = flat.iter().map(|(_, _, node)| node.name.as_str()).collect();
    for expected in [
        "session.setup",
        "session.run",
        "session.summarize",
        "dispatch.transfer_complete",
        "fetch.round",
        "policy.select",
        "engine.arm_wakes",
        "link.advance_to",
        "link.next_completion",
        "transfer.on_completions",
    ] {
        assert!(
            names.contains(&expected),
            "span {expected} missing from profile (have: {names:?})"
        );
    }
    assert!(
        profile.attributed() >= 0.95,
        "named spans attribute only {:.1}% of measured wall time",
        100.0 * profile.attributed()
    );
    let text = profile.text();
    assert!(text.contains("attributed:"));
    assert!(text.contains("hot spans by self time:"));
    let json = profile.json();
    assert_eq!(json["format"], "abr-profile-v1");
    assert!(json["attributed"].as_f64().unwrap() >= 0.95);
}
