//! Origin storage accounting: muxed versus demuxed packaging.
//!
//! §1 of the paper: with M video and N audio tracks, demuxed packaging
//! stores M + N tracks while muxed packaging stores all M × N pairings.
//! These functions compute the exact byte totals for a given content model,
//! powering the M1 motivation experiment.

use abr_media::combo::Combo;
use abr_media::content::Content;
use abr_media::track::TrackId;
use abr_media::units::Bytes;

/// Total origin bytes under demuxed packaging: every video track plus every
/// audio track, stored once.
pub fn demuxed_storage(content: &Content) -> Bytes {
    let video: Bytes = (0..content.video().len())
        .map(|i| content.track_bytes(TrackId::video(i)))
        .sum();
    let audio: Bytes = (0..content.audio().len())
        .map(|i| content.track_bytes(TrackId::audio(i)))
        .sum();
    video + audio
}

/// Total origin bytes under muxed packaging of the given combinations
/// (every listed pairing stored as its own track).
pub fn muxed_storage(content: &Content, combos: &[Combo]) -> Bytes {
    combos
        .iter()
        .map(|c| content.track_bytes(c.video_id()) + content.track_bytes(c.audio_id()))
        .sum()
}

/// Muxed storage for the *full* M×N pairing set.
pub fn muxed_storage_full(content: &Content) -> Bytes {
    let combos: Vec<Combo> = (0..content.video().len())
        .flat_map(|v| (0..content.audio().len()).map(move |a| Combo::new(v, a)))
        .collect();
    muxed_storage(content, &combos)
}

/// Total origin bytes under demuxed packaging with `languages` audio
/// languages (each language carries the full audio ladder; video is shared
/// across languages): `ΣV + L·ΣA` — §1's "services that need to have more
/// than one audio variant — e.g., to support multiple languages, or
/// multiple audio quality levels or both".
pub fn demuxed_storage_multilang(content: &Content, languages: usize) -> Bytes {
    assert!(languages >= 1);
    let video: Bytes = (0..content.video().len())
        .map(|i| content.track_bytes(TrackId::video(i)))
        .sum();
    let audio: Bytes = (0..content.audio().len())
        .map(|i| content.track_bytes(TrackId::audio(i)))
        .sum();
    Bytes(video.get() + audio.get() * languages as u64)
}

/// Total origin bytes under full muxed packaging with `languages` audio
/// languages: every (video rung, audio rung, language) triple is its own
/// stored track — `L·N·ΣV + M·L·ΣA`.
pub fn muxed_storage_multilang(content: &Content, languages: usize) -> Bytes {
    assert!(languages >= 1);
    let video: Bytes = (0..content.video().len())
        .map(|i| content.track_bytes(TrackId::video(i)))
        .sum();
    let audio: Bytes = (0..content.audio().len())
        .map(|i| content.track_bytes(TrackId::audio(i)))
        .sum();
    let n = content.audio().len() as u64;
    let m = content.video().len() as u64;
    Bytes(video.get() * n * languages as u64 + audio.get() * m * languages as u64)
}

/// Storage comparison summary for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageComparison {
    /// Bytes under demuxed (M + N) packaging.
    pub demuxed: Bytes,
    /// Bytes under full muxed (M × N) packaging.
    pub muxed: Bytes,
}

impl StorageComparison {
    /// Computes both totals.
    pub fn compute(content: &Content) -> StorageComparison {
        StorageComparison {
            demuxed: demuxed_storage(content),
            muxed: muxed_storage_full(content),
        }
    }

    /// muxed / demuxed expansion factor.
    pub fn expansion_factor(&self) -> f64 {
        self.muxed.get() as f64 / self.demuxed.get() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn muxed_exceeds_demuxed() {
        let c = Content::drama_show(1);
        let cmp = StorageComparison::compute(&c);
        assert!(cmp.muxed > cmp.demuxed);
        // Every video track is stored N=3 times under muxing, every audio
        // track M=6 times: muxed = 3·ΣV + 6·ΣA.
        let sum_v: Bytes = (0..6).map(|i| c.track_bytes(TrackId::video(i))).sum();
        let sum_a: Bytes = (0..3).map(|i| c.track_bytes(TrackId::audio(i))).sum();
        assert_eq!(cmp.muxed, Bytes(3 * sum_v.get() + 6 * sum_a.get()));
        assert_eq!(cmp.demuxed, sum_v + sum_a);
        assert!(
            cmp.expansion_factor() > 2.9,
            "factor {}",
            cmp.expansion_factor()
        );
    }

    #[test]
    fn multilang_storage_scales_as_predicted() {
        let c = Content::drama_show(1);
        // One language reduces to the single-language formulas.
        assert_eq!(demuxed_storage_multilang(&c, 1), demuxed_storage(&c));
        assert_eq!(muxed_storage_multilang(&c, 1), muxed_storage_full(&c));
        // With L languages: demuxed grows by (L−1)·ΣA only; muxed by the
        // whole L factor.
        let sum_v: Bytes = (0..6).map(|i| c.track_bytes(TrackId::video(i))).sum();
        let sum_a: Bytes = (0..3).map(|i| c.track_bytes(TrackId::audio(i))).sum();
        for l in 2..=5usize {
            let d = demuxed_storage_multilang(&c, l);
            assert_eq!(d, Bytes(sum_v.get() + sum_a.get() * l as u64));
            let m = muxed_storage_multilang(&c, l);
            assert_eq!(m.get(), muxed_storage_full(&c).get() * l as u64);
            // The expansion factor grows with L (audio is the cheap part of
            // demuxed storage but multiplies everything under muxing).
            let factor = m.get() as f64 / d.get() as f64;
            let prev = muxed_storage_multilang(&c, l - 1).get() as f64
                / demuxed_storage_multilang(&c, l - 1).get() as f64;
            assert!(factor > prev, "expansion grows with languages");
        }
    }

    #[test]
    fn muxed_subset_costs_less_than_full() {
        let c = Content::drama_show(1);
        let subset = abr_media::combo::curated_subset(c.video(), c.audio());
        let sub = muxed_storage(&c, &subset);
        let full = muxed_storage_full(&c);
        assert!(sub < full);
        // The curated subset still duplicates audio across videos, so it
        // exceeds demuxed storage.
        assert!(sub > demuxed_storage(&c));
    }

    #[test]
    fn empty_combo_list_is_zero() {
        let c = Content::drama_show(1);
        assert_eq!(muxed_storage(&c, &[]), Bytes::ZERO);
    }
}
