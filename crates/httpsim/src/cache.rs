//! LRU CDN cache.
//!
//! Models an edge cache between clients and the origin, keyed by
//! `(object, exact range)`. Used by the §1 motivation experiment: with
//! demuxed tracks, user B's request for video variant V1 hits the cache
//! warmed by user A even though their audio choices differ; with muxed
//! packaging every (V, A) pairing is a distinct object and misses.

use crate::origin::{HttpError, Origin};
use crate::request::{ObjectId, Request};
use abr_event::time::Instant;
use abr_media::units::Bytes;
use abr_obs::{Event, ObsHandle};
use std::collections::BTreeMap;

/// Aggregate cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from cache.
    pub hits: u64,
    /// Requests that went to the origin.
    pub misses: u64,
    /// Body bytes served out of cache.
    pub bytes_from_cache: Bytes,
    /// Body bytes fetched from the origin.
    pub bytes_from_origin: Bytes,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio over all requests (0 when no requests yet).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cached entry in the LRU order bookkeeping.
#[derive(Debug, Clone)]
struct Entry {
    size: Bytes,
    last_used: u64,
}

/// Full cache key: `(namespace, object, exact range)`. The namespace
/// disambiguates identical `ObjectId`s from different catalog titles when
/// one cache fronts a whole fleet (every title numbers its segments from
/// chunk 0); single-title callers use namespace 0 throughout.
type CacheKey = (u64, ObjectId, Option<(u64, u64)>);

/// An LRU cache with a byte-capacity bound.
#[derive(Debug)]
pub struct CdnCache {
    capacity: Bytes,
    used: Bytes,
    clock: u64,
    /// Keyed by `(namespace, object, exact range)`. A `BTreeMap` rather
    /// than a hash map so that iteration (LRU victim scans) is key-ordered
    /// and the cache's observable behavior is a pure function of the
    /// request sequence (ABR-L001; `last_used` stamps are unique, so the
    /// LRU minimum is unambiguous either way — but the ordered map makes
    /// the scan order itself deterministic).
    entries: BTreeMap<CacheKey, Entry>,
    stats: CacheStats,
    obs: ObsHandle,
}

impl CdnCache {
    /// A cache holding at most `capacity` body bytes.
    pub fn new(capacity: Bytes) -> CdnCache {
        assert!(capacity.get() > 0, "zero-capacity cache");
        CdnCache {
            capacity,
            used: Bytes::ZERO,
            clock: 0,
            entries: BTreeMap::new(),
            stats: CacheStats::default(),
            obs: ObsHandle::disabled(),
        }
    }

    /// Attaches an observability handle: hit/miss/eviction counters, a
    /// live hit-ratio gauge, and `cache_lookup` events while tracing.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    /// Serves `req` through the cache: returns `(was_hit, body_size)`.
    /// Misses fetch from `origin` and insert (evicting LRU entries if
    /// needed; objects larger than the whole cache are served but not
    /// stored).
    pub fn fetch(&mut self, origin: &Origin, req: &Request) -> Result<(bool, Bytes), HttpError> {
        self.fetch_at(origin, req, Instant::ZERO)
    }

    /// [`CdnCache::fetch`] stamped with the simulated time of the lookup,
    /// so traced `cache_lookup` events land on the session clock.
    pub fn fetch_at(
        &mut self,
        origin: &Origin,
        req: &Request,
        now: Instant,
    ) -> Result<(bool, Bytes), HttpError> {
        self.fetch_keyed(origin, req, 0, now)
    }

    /// [`CdnCache::fetch_at`] under an explicit namespace. A fleet-shared
    /// cache serves many catalog titles whose `ObjectId`s collide (each
    /// title has its own "video track 0, chunk 3"); the namespace — the
    /// title index — keeps their entries distinct while still letting
    /// same-title sessions share bytes.
    pub fn fetch_keyed(
        &mut self,
        origin: &Origin,
        req: &Request,
        namespace: u64,
        now: Instant,
    ) -> Result<(bool, Bytes), HttpError> {
        self.clock += 1;
        let (object, range) = req.cache_key();
        let key = (namespace, object, range);
        if let Some(e) = self.entries.get_mut(&key) {
            e.last_used = self.clock;
            self.stats.hits += 1;
            let size = e.size;
            self.stats.bytes_from_cache += size;
            self.record_lookup(req, now, true, size);
            return Ok((true, size));
        }
        let size = origin.body_size(req)?;
        self.stats.misses += 1;
        self.stats.bytes_from_origin += size;
        if size <= self.capacity {
            while self.used + size > self.capacity {
                self.evict_lru();
            }
            self.used += size;
            self.entries.insert(
                key,
                Entry {
                    size,
                    last_used: self.clock,
                },
            );
        }
        self.record_lookup(req, now, false, size);
        Ok((false, size))
    }

    fn record_lookup(&self, req: &Request, now: Instant, hit: bool, size: Bytes) {
        self.obs
            .count(if hit { "cache.hits" } else { "cache.misses" }, 1);
        self.obs.gauge("cache.hit_ratio", self.stats.hit_ratio());
        self.obs.gauge("cache.used_bytes", self.used.get() as f64);
        self.obs.emit(now, || Event::CacheLookup {
            object: req.to_string(),
            hit,
            size,
        });
    }

    fn evict_lru(&mut self) {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())
            .expect("evict on non-empty cache");
        let e = self.entries.remove(&victim).expect("present");
        self.used -= e.size;
        self.stats.evictions += 1;
        self.obs.count("cache.evictions", 1);
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Bytes currently stored.
    pub fn used(&self) -> Bytes {
        self.used
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_media::combo::Combo;
    use abr_media::content::Content;
    use abr_media::track::TrackId;

    fn setup() -> (Origin, CdnCache) {
        let origin = Origin::with_overhead(Content::drama_show(1), Bytes::ZERO);
        let cache = CdnCache::new(Bytes(1_000_000_000));
        (origin, cache)
    }

    #[test]
    fn miss_then_hit() {
        let (o, mut c) = setup();
        let req = Origin::segment_request(TrackId::video(0), 0);
        let (hit1, s1) = c.fetch(&o, &req).unwrap();
        let (hit2, s2) = c.fetch(&o, &req).unwrap();
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(s1, s2);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hit_ratio(), 0.5);
    }

    #[test]
    fn demuxed_cross_user_hit_muxed_miss() {
        // §1 scenario: A watches V1+A2, then B watches V1+A1.
        let (o, mut c_demux) = setup();
        for chunk in 0..5 {
            // User A.
            c_demux
                .fetch(&o, &Origin::segment_request(TrackId::video(0), chunk))
                .unwrap();
            c_demux
                .fetch(&o, &Origin::segment_request(TrackId::audio(1), chunk))
                .unwrap();
        }
        let before = c_demux.stats();
        for chunk in 0..5 {
            // User B: video hits, audio misses.
            let (vh, _) = c_demux
                .fetch(&o, &Origin::segment_request(TrackId::video(0), chunk))
                .unwrap();
            let (ah, _) = c_demux
                .fetch(&o, &Origin::segment_request(TrackId::audio(0), chunk))
                .unwrap();
            assert!(vh, "video chunk should hit");
            assert!(!ah, "different audio misses");
        }
        assert_eq!(c_demux.stats().hits - before.hits, 5);

        // Muxed: same scenario, every request misses for user B too.
        let (o2, mut c_mux) = setup();
        for chunk in 0..5 {
            c_mux
                .fetch(
                    &o2,
                    &Request::whole(ObjectId::MuxedSegment {
                        combo: Combo::new(0, 1),
                        chunk,
                    }),
                )
                .unwrap();
        }
        for chunk in 0..5 {
            let (hit, _) = c_mux
                .fetch(
                    &o2,
                    &Request::whole(ObjectId::MuxedSegment {
                        combo: Combo::new(0, 0),
                        chunk,
                    }),
                )
                .unwrap();
            assert!(!hit, "muxed variants never share cache entries");
        }
    }

    #[test]
    fn lru_eviction_order() {
        let (o, _) = setup();
        // Capacity fits ~two audio chunks only.
        let a0 = Origin::segment_request(TrackId::audio(0), 0);
        let a1 = Origin::segment_request(TrackId::audio(0), 1);
        let a2 = Origin::segment_request(TrackId::audio(0), 2);
        let s0 = o.body_size(&a0).unwrap();
        let s1 = o.body_size(&a1).unwrap();
        let mut c = CdnCache::new(s0 + s1);
        c.fetch(&o, &a0).unwrap();
        c.fetch(&o, &a1).unwrap();
        c.fetch(&o, &a0).unwrap(); // refresh a0 → a1 becomes LRU
        c.fetch(&o, &a2).unwrap(); // evicts a1
        assert_eq!(c.stats().evictions, 1);
        let (hit_a0, _) = c.fetch(&o, &a0).unwrap();
        assert!(hit_a0, "refreshed entry survived");
        let (hit_a1, _) = c.fetch(&o, &a1).unwrap();
        assert!(!hit_a1, "LRU entry evicted");
    }

    #[test]
    fn oversized_objects_pass_through() {
        let (o, _) = setup();
        let mut c = CdnCache::new(Bytes(10));
        let req = Origin::segment_request(TrackId::video(5), 0);
        let (hit, size) = c.fetch(&o, &req).unwrap();
        assert!(!hit);
        assert!(size.get() > 10);
        assert!(c.is_empty(), "not stored");
        assert_eq!(c.used(), Bytes::ZERO);
    }

    #[test]
    fn ranged_requests_key_separately() {
        let (o, mut c) = setup();
        let r0 = o.range_request(TrackId::video(0), 0).unwrap();
        let r1 = o.range_request(TrackId::video(0), 1).unwrap();
        c.fetch(&o, &r0).unwrap();
        let (hit, _) = c.fetch(&o, &r1).unwrap();
        assert!(!hit);
        let (hit, _) = c.fetch(&o, &r0).unwrap();
        assert!(hit);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn namespaces_partition_the_cache() {
        let (o, mut c) = setup();
        let req = Origin::segment_request(TrackId::video(0), 0);
        // Title 7 warms its entry; title 8's identical ObjectId still
        // misses, while a second title-7 viewer hits.
        let (h, _) = c.fetch_keyed(&o, &req, 7, Instant::ZERO).unwrap();
        assert!(!h);
        let (h, _) = c.fetch_keyed(&o, &req, 8, Instant::ZERO).unwrap();
        assert!(!h, "other namespace must not share bytes");
        let (h, _) = c.fetch_keyed(&o, &req, 7, Instant::ZERO).unwrap();
        assert!(h, "same namespace shares");
        assert_eq!(c.len(), 2);
        // The legacy single-title entry points are namespace 0.
        let (h, _) = c.fetch(&o, &req).unwrap();
        assert!(!h);
        let (h, _) = c.fetch(&o, &req).unwrap();
        assert!(h);
    }

    #[test]
    fn errors_propagate_without_counting_entries() {
        let (o, mut c) = setup();
        let bad = Origin::segment_request(TrackId::video(0), 999);
        assert!(c.fetch(&o, &bad).is_err());
        assert!(c.is_empty());
    }

    #[test]
    fn obs_records_lookups_and_hit_ratio() {
        use abr_event::time::Instant;
        use abr_obs::{Event, ObsHandle};
        let (o, mut c) = setup();
        let (obs, tracer, metrics) = ObsHandle::recording();
        c.set_obs(obs);
        let req = Origin::segment_request(TrackId::video(0), 0);
        c.fetch_at(&o, &req, Instant::from_secs(1)).unwrap();
        c.fetch_at(&o, &req, Instant::from_secs(2)).unwrap();
        assert_eq!(metrics.counter_value("cache.misses"), 1);
        assert_eq!(metrics.counter_value("cache.hits"), 1);
        assert_eq!(metrics.gauge_value("cache.hit_ratio"), Some(0.5));
        let events = tracer.snapshot();
        assert_eq!(events.len(), 2);
        match (&events[0].event, &events[1].event) {
            (
                Event::CacheLookup {
                    hit: h1, object, ..
                },
                Event::CacheLookup { hit: h2, .. },
            ) => {
                assert!(!*h1 && *h2);
                assert!(
                    object.contains("V1"),
                    "object key names the track: {object}"
                );
            }
            other => panic!("unexpected events {other:?}"),
        }
        assert_eq!(events[1].at, Instant::from_secs(2));
    }
}
