//! The transfer path between player and origin: pluggable first-byte delay.
//!
//! A request does not always go straight to the origin — it may be served
//! through an edge cache (CDN PoP) that answers hits locally and pays an
//! extra origin round trip on misses. [`TransferPath`] abstracts "what
//! happens between issuing a request and its first byte" so the player's
//! transfer layer can model direct origin access, an edge cache, or any
//! future path (request faults, retries, multi-CDN switching) behind one
//! trait.

use crate::cache::CdnCache;
use crate::origin::Origin;
use crate::request::Request;
use abr_event::time::{Duration, Instant};

/// A delivery path between the player and the origin: decides the extra
/// first-byte delay a request pays beyond the link's base latency, and may
/// mutate path state (warm a cache) while doing so.
///
/// The trivial path is "none": [`Option<EdgeCache>`] implements the trait
/// with `None` adding zero delay.
pub trait TransferPath {
    /// Extra first-byte delay for `req` issued at `now`. Called once per
    /// request, in request-issue order — implementations may keep state
    /// (e.g. cache contents) keyed on that order.
    fn first_byte_delay(&mut self, origin: &Origin, req: &Request, now: Instant) -> Duration;
}

/// An edge cache between the player and the origin: cache misses pay an
/// extra origin round trip before the first byte (the mechanism behind the
/// §1 claim that demuxing improves CDN effectiveness).
#[derive(Debug)]
pub struct EdgeCache {
    /// The cache (persisting across sessions lets experiments model a
    /// second viewer hitting a warmed edge).
    pub cache: CdnCache,
    /// Extra first-byte delay on a cache miss (edge → origin round trip).
    pub miss_penalty: Duration,
}

impl TransferPath for EdgeCache {
    /// Zero on a hit; the miss penalty on a miss (which warms the cache).
    fn first_byte_delay(&mut self, origin: &Origin, req: &Request, now: Instant) -> Duration {
        let (hit, _) = self
            .cache
            .fetch_at(origin, req, now)
            .expect("request already validated");
        if hit {
            Duration::ZERO
        } else {
            self.miss_penalty
        }
    }
}

impl<P: TransferPath> TransferPath for Option<P> {
    /// `None` is the direct path: no extra delay.
    fn first_byte_delay(&mut self, origin: &Origin, req: &Request, now: Instant) -> Duration {
        match self {
            None => Duration::ZERO,
            Some(p) => p.first_byte_delay(origin, req, now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ObjectId;
    use abr_media::content::Content;
    use abr_media::units::Bytes;

    fn setup() -> (Origin, Request) {
        let content = Content::drama_show(1);
        let origin = Origin::with_overhead(content, Bytes::ZERO);
        let req = Request::whole(ObjectId::Segment {
            track: abr_media::track::TrackId::video(0),
            chunk: 0,
        });
        (origin, req)
    }

    #[test]
    fn none_path_is_free() {
        let (origin, req) = setup();
        let mut path: Option<EdgeCache> = None;
        assert_eq!(
            path.first_byte_delay(&origin, &req, Instant::ZERO),
            Duration::ZERO
        );
    }

    #[test]
    fn edge_charges_misses_then_serves_hits() {
        let (origin, req) = setup();
        let penalty = Duration::from_millis(80);
        let mut path = Some(EdgeCache {
            cache: CdnCache::new(Bytes(1 << 30)),
            miss_penalty: penalty,
        });
        // Cold: miss pays the penalty and warms the cache.
        assert_eq!(path.first_byte_delay(&origin, &req, Instant::ZERO), penalty);
        // Warm: the same object now hits for free.
        assert_eq!(
            path.first_byte_delay(&origin, &req, Instant::from_secs(1)),
            Duration::ZERO
        );
        let edge = path.unwrap();
        assert_eq!(edge.cache.stats().misses, 1);
        assert_eq!(edge.cache.stats().hits, 1);
    }

    #[test]
    fn distinct_objects_miss_independently() {
        let (origin, req) = setup();
        let other = Request::whole(ObjectId::Segment {
            track: abr_media::track::TrackId::video(0),
            chunk: 1,
        });
        let mut path = EdgeCache {
            cache: CdnCache::new(Bytes(1 << 30)),
            miss_penalty: Duration::from_millis(40),
        };
        assert_eq!(
            path.first_byte_delay(&origin, &req, Instant::ZERO),
            Duration::from_millis(40)
        );
        assert_eq!(
            path.first_byte_delay(&origin, &other, Instant::ZERO),
            Duration::from_millis(40),
            "a different chunk is a separate cache object"
        );
    }
}
