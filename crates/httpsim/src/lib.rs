//! # abr-httpsim — origin server, byte ranges and CDN cache model
//!
//! The HTTP layer between the player and the fluid link:
//!
//! * [`request`] — chunk requests under both packaging modes (one file per
//!   segment, or byte ranges into a single track file) with configurable
//!   per-request header overhead.
//! * [`origin`] — the origin server: resolves requests against a
//!   [`abr_media::Content`] and yields exact transfer sizes.
//! * [`cache`] — an LRU CDN cache keyed by `(object, range)`, with hit/miss
//!   and byte accounting. Reproduces the §1 motivation: demuxed tracks give
//!   cross-user cache hits that muxed M×N packaging cannot.
//! * [`edge`] — the [`edge::TransferPath`] trait (what sits between player
//!   and origin) and the miss-penalty [`edge::EdgeCache`] path built on the
//!   CDN cache.
//! * [`shared`] — the fleet-shared delivery path: a per-domain
//!   [`shared::FleetHub`] (title-namespaced cache + FIFO origin uplink)
//!   and the per-session [`shared::SharedEdge`] handle that makes cache
//!   misses load-dependent across sessions.
//! * [`storage`] — origin storage accounting for muxed (M×N) versus demuxed
//!   (M+N) packaging.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod edge;
pub mod origin;
pub mod request;
pub mod shared;
pub mod storage;

pub use cache::{CacheStats, CdnCache};
pub use edge::{EdgeCache, TransferPath};
pub use origin::Origin;
pub use request::{ObjectId, Request};
pub use shared::{FleetHub, SharedEdge};
