//! HTTP object identities and requests.

use abr_media::combo::Combo;
use abr_media::track::TrackId;
use abr_media::units::Bytes;
use core::fmt;

/// A server object: an addressable file at the origin.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObjectId {
    /// One segment file of one demuxed track (per-file packaging).
    Segment {
        /// The track.
        track: TrackId,
        /// 0-based chunk index.
        chunk: usize,
    },
    /// The single file holding all of one demuxed track (byte-range
    /// packaging).
    TrackFile {
        /// The track.
        track: TrackId,
    },
    /// One segment of a *muxed* variant: video rung + audio rung combined
    /// in one file (used by the storage/cache motivation experiments).
    MuxedSegment {
        /// The combination.
        combo: Combo,
        /// 0-based chunk index.
        chunk: usize,
    },
    /// A manifest or playlist document.
    Document {
        /// Path-like name.
        path: String,
    },
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectId::Segment { track, chunk } => {
                write!(f, "{}/{}/seg-{}.m4s", track.media, track, chunk + 1)
            }
            ObjectId::TrackFile { track } => write!(f, "{}/{}/track.mp4", track.media, track),
            ObjectId::MuxedSegment { combo, chunk } => {
                write!(f, "muxed/{}/seg-{}.m4s", combo, chunk + 1)
            }
            ObjectId::Document { path } => write!(f, "{path}"),
        }
    }
}

/// An HTTP GET, optionally with a byte range.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Request {
    /// What to fetch.
    pub object: ObjectId,
    /// `Range: bytes=offset..offset+len` when present.
    pub range: Option<(u64, Bytes)>,
}

impl Request {
    /// A whole-object GET.
    pub fn whole(object: ObjectId) -> Request {
        Request {
            object,
            range: None,
        }
    }

    /// A ranged GET.
    pub fn ranged(object: ObjectId, offset: u64, len: Bytes) -> Request {
        assert!(len.get() > 0, "empty range");
        Request {
            object,
            range: Some((offset, len)),
        }
    }

    /// The cache key: object plus exact range. CDNs commonly cache ranged
    /// responses per-range (or slice them); exact-range keying models the
    /// per-chunk granularity the paper's CDN argument needs.
    pub fn cache_key(&self) -> (ObjectId, Option<(u64, u64)>) {
        (self.object.clone(), self.range.map(|(o, l)| (o, l.get())))
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.range {
            Some((off, len)) => write!(f, "GET {} [{}+{}]", self.object, off, len.get()),
            None => write!(f, "GET {}", self.object),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_paths() {
        let seg = ObjectId::Segment {
            track: TrackId::video(2),
            chunk: 4,
        };
        assert_eq!(seg.to_string(), "video/V3/seg-5.m4s");
        let tf = ObjectId::TrackFile {
            track: TrackId::audio(0),
        };
        assert_eq!(tf.to_string(), "audio/A1/track.mp4");
        let mx = ObjectId::MuxedSegment {
            combo: Combo::new(1, 2),
            chunk: 0,
        };
        assert_eq!(mx.to_string(), "muxed/V2+A3/seg-1.m4s");
        assert_eq!(
            Request::ranged(tf, 100, Bytes(50)).to_string(),
            "GET audio/A1/track.mp4 [100+50]"
        );
    }

    #[test]
    fn cache_keys_distinguish_ranges() {
        let obj = ObjectId::TrackFile {
            track: TrackId::video(0),
        };
        let a = Request::ranged(obj.clone(), 0, Bytes(100));
        let b = Request::ranged(obj.clone(), 100, Bytes(100));
        let c = Request::whole(obj);
        assert_ne!(a.cache_key(), b.cache_key());
        assert_ne!(a.cache_key(), c.cache_key());
        assert_eq!(a.cache_key(), a.clone().cache_key());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        Request::ranged(ObjectId::Document { path: "x".into() }, 0, Bytes::ZERO);
    }
}
