//! The origin server.
//!
//! Resolves [`Request`]s against a [`Content`] and reports exact response
//! sizes (body plus configurable header overhead). The origin is
//! packaging-agnostic: it serves whole segment files, byte ranges into
//! track files, and muxed variant segments, so the same instance backs the
//! player experiments and the storage/cache motivation experiments.

use crate::request::{ObjectId, Request};
use abr_media::content::{Content, SharedContent};
use abr_media::track::TrackId;
use abr_media::units::Bytes;

/// Default per-response header overhead (status line + typical headers).
pub const DEFAULT_HEADER_OVERHEAD: Bytes = Bytes(320);

/// Errors the origin can return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Unknown object.
    NotFound(String),
    /// Range outside the object.
    RangeNotSatisfiable {
        /// Requested range.
        requested: (u64, u64),
        /// Actual object size.
        object_size: u64,
    },
}

impl core::fmt::Display for HttpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HttpError::NotFound(p) => write!(f, "404 Not Found: {p}"),
            HttpError::RangeNotSatisfiable {
                requested,
                object_size,
            } => write!(
                f,
                "416 Range Not Satisfiable: [{}+{}] of {} B",
                requested.0, requested.1, object_size
            ),
        }
    }
}

impl std::error::Error for HttpError {}

/// The origin server for one piece of content.
///
/// The content itself is held behind a [`SharedContent`] handle: a fleet
/// of origins serving the same title shares one immutable realization
/// instead of cloning per-chunk size tables per session (DESIGN.md §15).
/// Constructors accept either an owned [`Content`] or an existing handle.
#[derive(Debug, Clone)]
pub struct Origin {
    content: SharedContent,
    header_overhead: Bytes,
    /// Documents (manifests/playlists) by path, storing body size.
    documents: std::collections::BTreeMap<String, Bytes>,
    obs: abr_obs::ObsHandle,
}

impl Origin {
    /// An origin serving `content` with the default header overhead.
    pub fn new(content: impl Into<SharedContent>) -> Origin {
        Origin::with_overhead(content, DEFAULT_HEADER_OVERHEAD)
    }

    /// An origin with explicit header overhead (use `Bytes::ZERO` for
    /// byte-exact analytical experiments).
    pub fn with_overhead(content: impl Into<SharedContent>, header_overhead: Bytes) -> Origin {
        Origin {
            content: content.into(),
            header_overhead,
            documents: std::collections::BTreeMap::new(),
            obs: abr_obs::ObsHandle::disabled(),
        }
    }

    /// Attaches an observability handle (request and served-byte counters).
    pub fn set_obs(&mut self, obs: abr_obs::ObsHandle) {
        self.obs = obs;
    }

    /// The content being served.
    pub fn content(&self) -> &Content {
        &self.content
    }

    /// A cheap shared handle to the content being served.
    pub fn shared_content(&self) -> SharedContent {
        SharedContent::clone(&self.content)
    }

    /// Publishes a document (manifest/playlist) body.
    pub fn publish_document(&mut self, path: &str, body: &str) {
        self.documents
            .insert(path.to_string(), Bytes(body.len() as u64));
    }

    /// Size of the stored object (before ranging / overhead).
    pub fn object_size(&self, object: &ObjectId) -> Result<Bytes, HttpError> {
        match object {
            ObjectId::Segment { track, chunk } => {
                self.check_track(*track, *chunk)?;
                Ok(self.content.chunk_size(*track, *chunk))
            }
            ObjectId::TrackFile { track } => {
                self.check_track(*track, 0)?;
                Ok(self.content.track_bytes(*track))
            }
            ObjectId::MuxedSegment { combo, chunk } => {
                self.check_track(combo.video_id(), *chunk)?;
                self.check_track(combo.audio_id(), *chunk)?;
                Ok(self.content.chunk_size(combo.video_id(), *chunk)
                    + self.content.chunk_size(combo.audio_id(), *chunk))
            }
            ObjectId::Document { path } => self
                .documents
                .get(path)
                .copied()
                .ok_or_else(|| HttpError::NotFound(path.clone())),
        }
    }

    fn check_track(&self, track: TrackId, chunk: usize) -> Result<(), HttpError> {
        let ladder = self.content.ladder(track.media);
        if track.index >= ladder.len() || chunk >= self.content.num_chunks() {
            return Err(HttpError::NotFound(format!("{track} chunk {chunk}")));
        }
        Ok(())
    }

    /// Response *body* size for a request (range applied).
    pub fn body_size(&self, req: &Request) -> Result<Bytes, HttpError> {
        let size = self.object_size(&req.object)?;
        let body = match req.range {
            None => size,
            Some((offset, len)) => {
                if offset + len.get() > size.get() {
                    return Err(HttpError::RangeNotSatisfiable {
                        requested: (offset, len.get()),
                        object_size: size.get(),
                    });
                }
                len
            }
        };
        self.obs.count("origin.requests", 1);
        self.obs.count("origin.bytes_served", body.get());
        Ok(body)
    }

    /// Total on-the-wire transfer size: body plus header overhead. This is
    /// the number of bytes the fluid link must deliver.
    pub fn transfer_size(&self, req: &Request) -> Result<Bytes, HttpError> {
        Ok(self.body_size(req)? + self.header_overhead)
    }

    /// Convenience: the whole-segment request for a chunk (per-file
    /// packaging).
    pub fn segment_request(track: TrackId, chunk: usize) -> Request {
        Request::whole(ObjectId::Segment { track, chunk })
    }

    /// Convenience: the byte-range request for a chunk out of a single
    /// track file (byte-range packaging).
    pub fn range_request(&self, track: TrackId, chunk: usize) -> Result<Request, HttpError> {
        self.check_track(track, chunk)?;
        let offset: u64 = (0..chunk)
            .map(|i| self.content.chunk_size(track, i).get())
            .sum();
        Ok(Request::ranged(
            ObjectId::TrackFile { track },
            offset,
            self.content.chunk_size(track, chunk),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_media::combo::Combo;

    fn origin() -> Origin {
        Origin::with_overhead(Content::drama_show(1), Bytes::ZERO)
    }

    #[test]
    fn segment_sizes_match_content() {
        let o = origin();
        let req = Origin::segment_request(TrackId::video(3), 7);
        assert_eq!(
            o.transfer_size(&req).unwrap(),
            o.content().chunk_size(TrackId::video(3), 7)
        );
    }

    #[test]
    fn header_overhead_added() {
        let o = Origin::new(Content::drama_show(1));
        let req = Origin::segment_request(TrackId::audio(0), 0);
        let body = o.body_size(&req).unwrap();
        assert_eq!(
            o.transfer_size(&req).unwrap(),
            body + DEFAULT_HEADER_OVERHEAD
        );
    }

    #[test]
    fn range_requests_tile_the_track_file() {
        let o = origin();
        let track = TrackId::video(2);
        let mut total = Bytes::ZERO;
        for chunk in 0..o.content().num_chunks() {
            let req = o.range_request(track, chunk).unwrap();
            total += o.body_size(&req).unwrap();
        }
        assert_eq!(total, o.content().track_bytes(track));
        // Ranges are consistent with the whole-file size.
        let whole = Request::whole(ObjectId::TrackFile { track });
        assert_eq!(o.body_size(&whole).unwrap(), total);
    }

    #[test]
    fn muxed_segment_is_sum_of_components() {
        let o = origin();
        let combo = Combo::new(4, 2);
        let req = Request::whole(ObjectId::MuxedSegment { combo, chunk: 3 });
        assert_eq!(
            o.body_size(&req).unwrap(),
            o.content().chunk_size(TrackId::video(4), 3)
                + o.content().chunk_size(TrackId::audio(2), 3)
        );
    }

    #[test]
    fn documents_publish_and_resolve() {
        let mut o = origin();
        o.publish_document("manifest.mpd", "<MPD/>");
        let req = Request::whole(ObjectId::Document {
            path: "manifest.mpd".into(),
        });
        assert_eq!(o.body_size(&req).unwrap(), Bytes(6));
        let missing = Request::whole(ObjectId::Document {
            path: "nope".into(),
        });
        assert!(matches!(o.body_size(&missing), Err(HttpError::NotFound(_))));
    }

    #[test]
    fn not_found_cases() {
        let o = origin();
        assert!(o
            .body_size(&Origin::segment_request(TrackId::video(9), 0))
            .is_err());
        assert!(o
            .body_size(&Origin::segment_request(TrackId::video(0), 99))
            .is_err());
    }

    #[test]
    fn unsatisfiable_range() {
        let o = origin();
        let track = TrackId::audio(0);
        let size = o.content().track_bytes(track);
        let req = Request::ranged(ObjectId::TrackFile { track }, size.get() - 10, Bytes(100));
        assert!(matches!(
            o.body_size(&req),
            Err(HttpError::RangeNotSatisfiable { .. })
        ));
    }
}
