//! Shared-fate delivery path for fleet simulations.
//!
//! One link domain = many sessions behind a common CDN point of presence.
//! [`FleetHub`] bundles the domain's shared state — an LRU [`CdnCache`]
//! (namespaced by catalog title) and a FIFO origin [`UplinkQueue`] — and
//! [`SharedEdge`] is the per-session handle implementing [`TransferPath`]:
//! it translates session-local time to fleet time via the session's
//! arrival offset and charges each request against the hub.
//!
//! The charging rule is where shared fate appears:
//!
//! * **cache hit** → zero extra first-byte delay (served at the PoP);
//! * **cache miss** → the origin round-trip `miss_rtt` **plus** the
//!   uplink's queueing + serialization delay for the object's bytes.
//!
//! Because the uplink is FIFO, a burst of misses from *other* sessions
//! directly lengthens this session's first-byte delay — the contention
//! effect that a fleet of independent sessions structurally cannot show.

use crate::cache::{CacheStats, CdnCache};
use crate::edge::TransferPath;
use crate::origin::Origin;
use crate::request::Request;
use abr_event::time::{Duration, Instant};
use abr_net::uplink::UplinkQueue;
use std::cell::RefCell;
use std::rc::Rc;

/// Shared per-domain delivery state: one cache and one origin uplink for
/// every session in the domain.
///
/// A hub built with [`FleetHub::passthrough`] has no cache and charges
/// nothing — the degenerate topology under which a fleet-of-1 must be
/// byte-identical to a standalone [`Session`](../../abr_player) run.
#[derive(Debug)]
pub struct FleetHub {
    cache: Option<CdnCache>,
    uplink: UplinkQueue,
    miss_rtt: Duration,
}

impl FleetHub {
    /// A hub with a shared cache in front of a FIFO origin uplink; cache
    /// misses pay `miss_rtt` plus the uplink delay for the object bytes.
    #[must_use]
    pub fn new(cache: CdnCache, uplink: UplinkQueue, miss_rtt: Duration) -> Self {
        FleetHub {
            cache: Some(cache),
            uplink,
            miss_rtt,
        }
    }

    /// The degenerate hub: no cache, no uplink charging, zero delay for
    /// every request. Exactly equivalent to the player's direct-origin
    /// path (`edge = None`).
    #[must_use]
    pub fn passthrough() -> Self {
        FleetHub {
            cache: None,
            uplink: UplinkQueue::new(1),
            miss_rtt: Duration::ZERO,
        }
    }

    /// Charges one request issued at fleet time `at` under namespace
    /// `namespace` (the requesting session's catalog title) and returns
    /// the extra first-byte delay.
    pub fn request(
        &mut self,
        origin: &Origin,
        req: &Request,
        namespace: u64,
        at: Instant,
    ) -> Duration {
        let Some(cache) = &mut self.cache else {
            return Duration::ZERO;
        };
        let (hit, size) = cache
            .fetch_keyed(origin, req, namespace, at)
            .expect("request already validated");
        if hit {
            Duration::ZERO
        } else {
            self.miss_rtt + self.uplink.enqueue(at, size.get())
        }
    }

    /// Cache counters, when this hub has a cache.
    #[must_use]
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(CdnCache::stats)
    }

    /// The origin uplink (stats, window-byte drain).
    #[must_use]
    pub fn uplink(&self) -> &UplinkQueue {
        &self.uplink
    }

    /// Mutable uplink access for the window-sync rule (rate throttling,
    /// per-window demand drain).
    pub fn uplink_mut(&mut self) -> &mut UplinkQueue {
        &mut self.uplink
    }
}

/// A per-session handle onto a domain's [`FleetHub`].
///
/// Sessions run on local clocks starting at their own `t = 0`; the handle
/// carries the session's fleet arrival offset and translates every request
/// timestamp before charging the hub, so the hub only ever sees fleet
/// time. Handles of one domain share the hub via `Rc<RefCell<…>>` —
/// domains are single-threaded by construction (DESIGN.md §14).
#[derive(Debug)]
pub struct SharedEdge {
    hub: Rc<RefCell<FleetHub>>,
    namespace: u64,
    offset: Duration,
}

impl SharedEdge {
    /// A handle for the session with catalog-title namespace `namespace`
    /// arriving at fleet time `offset`.
    #[must_use]
    pub fn new(hub: Rc<RefCell<FleetHub>>, namespace: u64, offset: Duration) -> Self {
        SharedEdge {
            hub,
            namespace,
            offset,
        }
    }
}

impl TransferPath for SharedEdge {
    /// Translates the session-local `now` to fleet time and charges the
    /// shared hub.
    fn first_byte_delay(&mut self, origin: &Origin, req: &Request, now: Instant) -> Duration {
        self.hub
            .borrow_mut()
            .request(origin, req, self.namespace, now + self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_media::content::Content;
    use abr_media::track::TrackId;
    use abr_media::units::Bytes;

    fn origin() -> Origin {
        Origin::with_overhead(Content::drama_show(1), Bytes::ZERO)
    }

    fn contended_hub(uplink_kbps: u64) -> Rc<RefCell<FleetHub>> {
        Rc::new(RefCell::new(FleetHub::new(
            CdnCache::new(Bytes(1 << 30)),
            UplinkQueue::new(uplink_kbps),
            Duration::from_millis(50),
        )))
    }

    #[test]
    fn passthrough_charges_nothing() {
        let o = origin();
        let hub = Rc::new(RefCell::new(FleetHub::passthrough()));
        let mut edge = SharedEdge::new(Rc::clone(&hub), 3, Duration::from_secs(9));
        let req = Origin::segment_request(TrackId::video(0), 0);
        for t in 0..4 {
            assert_eq!(
                edge.first_byte_delay(&o, &req, Instant::from_secs(t)),
                Duration::ZERO
            );
        }
        assert_eq!(hub.borrow().cache_stats(), None);
    }

    #[test]
    fn misses_pay_rtt_plus_uplink_and_hits_are_free() {
        let o = origin();
        let hub = contended_hub(8_000); // 1000 bytes/ms
        let req = Origin::segment_request(TrackId::video(0), 0);
        let size = o.body_size(&req).unwrap().get();
        let mut a = SharedEdge::new(Rc::clone(&hub), 0, Duration::ZERO);
        let mut b = SharedEdge::new(Rc::clone(&hub), 0, Duration::ZERO);
        let d = a.first_byte_delay(&o, &req, Instant::ZERO);
        let expected_ser = Duration::from_micros((size * 8_000).div_ceil(8_000));
        assert_eq!(d, Duration::from_millis(50) + expected_ser);
        // Second session, same title: hit, free, regardless of its offset.
        assert_eq!(
            b.first_byte_delay(&o, &req, Instant::from_secs(1)),
            Duration::ZERO
        );
        let stats = hub.borrow().cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn concurrent_misses_contend_on_the_uplink() {
        let o = origin();
        let hub = contended_hub(8_000);
        // Different titles: both miss; the second waits behind the first
        // on the FIFO uplink, so its delay is strictly larger.
        let req = Origin::segment_request(TrackId::video(0), 0);
        let mut a = SharedEdge::new(Rc::clone(&hub), 0, Duration::ZERO);
        let mut b = SharedEdge::new(Rc::clone(&hub), 1, Duration::ZERO);
        let da = a.first_byte_delay(&o, &req, Instant::ZERO);
        let db = b.first_byte_delay(&o, &req, Instant::ZERO);
        assert!(db > da, "queued miss must wait longer: {db} vs {da}");
    }

    #[test]
    fn offsets_map_local_time_to_fleet_time() {
        let o = origin();
        let hub = contended_hub(8_000);
        let req = Origin::segment_request(TrackId::audio(0), 0);
        let mut late = SharedEdge::new(Rc::clone(&hub), 0, Duration::from_secs(100));
        late.first_byte_delay(&o, &req, Instant::from_secs(2));
        // The uplink saw fleet time 102 s, not local time 2 s.
        assert!(hub.borrow().uplink().busy_until() > Instant::from_secs(100));
    }
}
