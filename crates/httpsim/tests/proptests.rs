//! Property-based tests: cache capacity/accounting invariants and origin
//! byte-range consistency.

use abr_httpsim::cache::CdnCache;
use abr_httpsim::origin::Origin;
use abr_httpsim::request::{ObjectId, Request};
use abr_media::content::Content;
use abr_media::track::TrackId;
use abr_media::units::Bytes;
use proptest::prelude::*;

fn origin() -> Origin {
    Origin::with_overhead(Content::drama_show(3), Bytes::ZERO)
}

/// A random request against the drama show.
fn arb_request() -> impl Strategy<Value = Request> {
    (0usize..9, 0usize..75, any::<bool>()).prop_map(|(t, chunk, whole_track)| {
        let track = if t < 6 {
            TrackId::video(t)
        } else {
            TrackId::audio(t - 6)
        };
        if whole_track {
            Request::whole(ObjectId::TrackFile { track })
        } else {
            Origin::segment_request(track, chunk)
        }
    })
}

proptest! {
    /// The cache never stores more than its capacity, hit+miss equals
    /// request count, and repeated identical requests after a miss are
    /// hits as long as nothing was evicted in between.
    #[test]
    fn cache_accounting_invariants(
        requests in proptest::collection::vec(arb_request(), 1..120),
        capacity_kb in 8u64..4_096,
    ) {
        let origin = origin();
        let mut cache = CdnCache::new(Bytes(capacity_kb * 1024));
        let mut count = 0u64;
        for req in &requests {
            let (_hit, size) = cache.fetch(&origin, req).unwrap();
            count += 1;
            prop_assert!(cache.used() <= Bytes(capacity_kb * 1024), "capacity respected");
            prop_assert_eq!(size, origin.body_size(req).unwrap());
            let stats = cache.stats();
            prop_assert_eq!(stats.hits + stats.misses, count);
        }
        // Totals are consistent with per-request sizes.
        let stats = cache.stats();
        let total: u64 = stats.bytes_from_cache.get() + stats.bytes_from_origin.get();
        let expect: u64 = requests.iter().map(|r| origin.body_size(r).unwrap().get()).sum();
        prop_assert_eq!(total, expect);
    }

    /// Immediately repeating any request is a hit iff the object fits the
    /// cache at all.
    #[test]
    fn immediate_repeat_hits(req in arb_request(), capacity_kb in 1u64..100_000) {
        let origin = origin();
        let mut cache = CdnCache::new(Bytes(capacity_kb * 1024));
        let size = origin.body_size(&req).unwrap();
        let (first, _) = cache.fetch(&origin, &req).unwrap();
        prop_assert!(!first, "cold cache always misses");
        let (second, _) = cache.fetch(&origin, &req).unwrap();
        prop_assert_eq!(second, size <= Bytes(capacity_kb * 1024));
    }

    /// Byte-range requests for consecutive chunks cover the whole track
    /// file with no gaps or overlaps, for every track.
    #[test]
    fn ranges_partition_track_files(seed in any::<u64>()) {
        let origin = Origin::with_overhead(Content::drama_show(seed), Bytes::ZERO);
        for &id in origin.content().track_ids() {
            let mut next_offset = 0u64;
            for chunk in 0..origin.content().num_chunks() {
                let req = origin.range_request(id, chunk).unwrap();
                let (off, len) = match req.range {
                    Some((o, l)) => (o, l),
                    None => unreachable!("range requests carry ranges"),
                };
                prop_assert_eq!(off, next_offset);
                next_offset = off + len.get();
            }
            prop_assert_eq!(next_offset, origin.content().track_bytes(id).get());
        }
    }

    /// Hits never serve stale or foreign bytes: under arbitrary request
    /// sequences over multiple title namespaces with a small (eviction-
    /// heavy) capacity, every served size equals what the origin reports,
    /// and a hit only ever follows an earlier fetch of the *same* key in
    /// the *same* namespace — an evicted or never-fetched entry must go
    /// back to the origin, never to another title's bytes.
    #[test]
    fn hits_never_serve_stale_or_foreign_bytes(
        requests in proptest::collection::vec((arb_request(), 0u64..3), 1..150),
        capacity_kb in 8u64..512,
    ) {
        use abr_event::time::Instant;
        use std::collections::BTreeMap;
        let origin = origin();
        let capacity = Bytes(capacity_kb * 1024);
        let mut cache = CdnCache::new(capacity);
        let mut seen: BTreeMap<_, Bytes> = BTreeMap::new();
        for (req, ns) in &requests {
            let (object, range) = req.cache_key();
            let key = (*ns, object, range);
            let truth = origin.body_size(req).unwrap();
            let (hit, size) = cache.fetch_keyed(&origin, req, *ns, Instant::ZERO).unwrap();
            prop_assert_eq!(size, truth, "served size must match the origin");
            if hit {
                prop_assert_eq!(
                    seen.get(&key), Some(&truth),
                    "hit without a prior same-namespace fetch of the same key"
                );
            }
            seen.insert(key, truth);
            prop_assert!(cache.used() <= capacity, "capacity respected under eviction");
        }
    }

    /// Muxed segment sizes equal the sum of their components, for every
    /// combination and chunk.
    #[test]
    fn muxed_segments_are_sums(v in 0usize..6, a in 0usize..3, chunk in 0usize..75) {
        let origin = origin();
        let combo = abr_media::combo::Combo::new(v, a);
        let muxed = origin
            .body_size(&Request::whole(ObjectId::MuxedSegment { combo, chunk }))
            .unwrap();
        let video = origin.body_size(&Origin::segment_request(TrackId::video(v), chunk)).unwrap();
        let audio = origin.body_size(&Origin::segment_request(TrackId::audio(a), chunk)).unwrap();
        prop_assert_eq!(muxed, video + audio);
    }
}
