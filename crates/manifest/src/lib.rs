//! # abr-manifest — DASH and HLS manifest models
//!
//! The paper's root causes live in the *information asymmetry* between the
//! two manifest formats (§2.3):
//!
//! * **DASH** declares a per-track `@bandwidth` for every Representation but
//!   has **no way to restrict audio+video combinations** — so a player must
//!   either consider all M×N combinations (Shaka) or invent its own subset
//!   (ExoPlayer's staircase).
//! * **HLS** lists explicit audio+video combinations (`EXT-X-STREAM-INF`)
//!   but the master playlist only carries the **aggregate** `BANDWIDTH` of
//!   each combination — per-track bitrates hide in second-level media
//!   playlists (`EXT-X-BYTERANGE` / `EXT-X-BITRATE`), which commercial
//!   players don't read for adaptation (§4.1).
//!
//! This crate models both formats with real textual writers and parsers
//! (a conformant subset), builders from [`abr_media::Content`], and the
//! [`view`] module that exposes exactly the information each protocol makes
//! available to a player — nothing more.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod dash;
pub mod hls;
pub mod view;
pub mod xml;

pub use build::{build_master_playlist, build_media_playlist, build_mpd, Packaging};
pub use dash::Mpd;
pub use hls::{MasterPlaylist, MediaPlaylist};
pub use view::{BoundDash, BoundHls, BoundVariant};
