//! DASH Media Presentation Description (MPD) model.
//!
//! Covers the subset of ISO/IEC 23009-1 that demuxed audio/video streaming
//! exercises: a static MPD with one Period, one AdaptationSet per media
//! type, per-Representation `@bandwidth` (the paper's "declared bitrate for
//! DASH", Table 1), and a SegmentTemplate. Deliberately absent — because
//! the standard itself lacks it, which is the §3.2 root cause — is any way
//! to declare *allowed audio+video combinations*.

use crate::xml::{self, Element};
use abr_event::time::Duration;
use abr_media::track::MediaType;
use abr_media::units::BitsPerSec;

/// The `@schemeIdUri` of this workspace's proposed allowed-combinations
/// descriptor — the §4.1 "longer term" DASH extension: *"the DASH
/// specification can be expanded to support this feature"*. Carried as a
/// standard `SupplementalProperty`, so conformant parsers that don't know
/// the scheme simply ignore it.
pub const COMBINATIONS_SCHEME: &str = "urn:abr-unmuxed:allowed-combinations:2019";

/// A static MPD: one Period holding the adaptation sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mpd {
    /// Total presentation duration.
    pub duration: Duration,
    /// `@minBufferTime`.
    pub min_buffer: Duration,
    /// Adaptation sets, one per media type for demuxed content.
    pub adaptation_sets: Vec<AdaptationSet>,
    /// §4.1 extension: the allowed audio+video combinations, as
    /// `(video Representation id, audio Representation id)` pairs. `None`
    /// reproduces the standard's limitation (no way to restrict
    /// combinations); `Some` models the proposed extension.
    pub allowed_combinations: Option<Vec<(String, String)>>,
}

/// One set of interchangeable Representations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptationSet {
    /// Audio or video.
    pub content_type: MediaType,
    /// Representations in manifest order.
    pub representations: Vec<Representation>,
}

/// One encoded rendition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Representation {
    /// `@id` — this workspace uses the paper's names ("V3", "A1").
    pub id: String,
    /// `@bandwidth` — the declared bitrate.
    pub bandwidth: BitsPerSec,
    /// `@width`/`@height` for video.
    pub resolution: Option<(u32, u32)>,
    /// `@audioSamplingRate` for audio.
    pub audio_sampling_rate: Option<u32>,
    /// Segment addressing.
    pub segment: SegmentTemplate,
}

/// `SegmentTemplate` with number-based addressing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentTemplate {
    /// Media URL template containing `$Number$`.
    pub media: String,
    /// Per-segment duration.
    pub segment_duration: Duration,
    /// First segment number.
    pub start_number: u64,
}

impl Mpd {
    /// The adaptation set for a media type, if present.
    pub fn adaptation_set(&self, media: MediaType) -> Option<&AdaptationSet> {
        self.adaptation_sets
            .iter()
            .find(|a| a.content_type == media)
    }

    /// Serializes to MPD XML text.
    pub fn to_text(&self) -> String {
        let mut period = Element::new("Period");
        if let Some(combos) = &self.allowed_combinations {
            let value: Vec<String> = combos.iter().map(|(v, a)| format!("{v}+{a}")).collect();
            period = period.child(
                Element::new("SupplementalProperty")
                    .attr("schemeIdUri", COMBINATIONS_SCHEME)
                    .attr("value", value.join(",")),
            );
        }
        for aset in &self.adaptation_sets {
            let mut el = Element::new("AdaptationSet")
                .attr(
                    "contentType",
                    match aset.content_type {
                        MediaType::Audio => "audio",
                        MediaType::Video => "video",
                    },
                )
                .attr(
                    "mimeType",
                    match aset.content_type {
                        MediaType::Audio => "audio/mp4",
                        MediaType::Video => "video/mp4",
                    },
                );
            for rep in &aset.representations {
                let mut r = Element::new("Representation")
                    .attr("id", &rep.id)
                    .attr("bandwidth", rep.bandwidth.bps());
                if let Some((w, h)) = rep.resolution {
                    r = r.attr("width", w).attr("height", h);
                }
                if let Some(sr) = rep.audio_sampling_rate {
                    r = r.attr("audioSamplingRate", sr);
                }
                r = r.child(
                    Element::new("SegmentTemplate")
                        .attr("media", &rep.segment.media)
                        .attr("duration", rep.segment.segment_duration.as_millis())
                        .attr("timescale", 1000u64)
                        .attr("startNumber", rep.segment.start_number),
                );
                el = el.child(r);
            }
            period = period.child(el);
        }
        Element::new("MPD")
            .attr("xmlns", "urn:mpeg:dash:schema:mpd:2011")
            .attr("type", "static")
            .attr("mediaPresentationDuration", iso8601(self.duration))
            .attr("minBufferTime", iso8601(self.min_buffer))
            .child(period)
            .to_document()
    }

    /// Parses MPD XML text.
    pub fn parse(text: &str) -> Result<Mpd, String> {
        let root = xml::parse(text)?;
        if root.name != "MPD" {
            return Err(format!("root element is `{}`, expected `MPD`", root.name));
        }
        let duration = parse_iso8601(
            root.get_attr("mediaPresentationDuration")
                .ok_or("missing mediaPresentationDuration")?,
        )?;
        let min_buffer = parse_iso8601(root.get_attr("minBufferTime").unwrap_or("PT0S"))?;
        let period = root.first_child("Period").ok_or("missing Period")?;
        let mut allowed_combinations = None;
        for prop in period.children_named("SupplementalProperty") {
            if prop.get_attr("schemeIdUri") == Some(COMBINATIONS_SCHEME) {
                let value = prop.get_attr("value").unwrap_or("");
                let combos: Result<Vec<(String, String)>, String> = value
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|pair| {
                        pair.split_once('+')
                            .map(|(v, a)| (v.to_string(), a.to_string()))
                            .ok_or_else(|| format!("bad combination `{pair}`"))
                    })
                    .collect();
                allowed_combinations = Some(combos?);
            }
        }
        let mut adaptation_sets = Vec::new();
        for aset in period.children_named("AdaptationSet") {
            let content_type = match aset.get_attr("contentType") {
                Some("audio") => MediaType::Audio,
                Some("video") => MediaType::Video,
                other => return Err(format!("bad contentType {other:?}")),
            };
            let mut representations = Vec::new();
            for rep in aset.children_named("Representation") {
                let id = rep
                    .get_attr("id")
                    .ok_or("Representation missing id")?
                    .to_string();
                let bandwidth: u64 = rep
                    .get_attr("bandwidth")
                    .ok_or("Representation missing bandwidth")?
                    .parse()
                    .map_err(|e| format!("bad bandwidth: {e}"))?;
                let resolution = match (rep.get_attr("width"), rep.get_attr("height")) {
                    (Some(w), Some(h)) => Some((
                        w.parse().map_err(|e| format!("bad width: {e}"))?,
                        h.parse().map_err(|e| format!("bad height: {e}"))?,
                    )),
                    _ => None,
                };
                let audio_sampling_rate = rep
                    .get_attr("audioSamplingRate")
                    .map(|s| s.parse().map_err(|e| format!("bad audioSamplingRate: {e}")))
                    .transpose()?;
                let st = rep
                    .first_child("SegmentTemplate")
                    .ok_or("missing SegmentTemplate")?;
                let timescale: u64 = st
                    .get_attr("timescale")
                    .unwrap_or("1")
                    .parse()
                    .map_err(|e| format!("bad timescale: {e}"))?;
                let dur_units: u64 = st
                    .get_attr("duration")
                    .ok_or("SegmentTemplate missing duration")?
                    .parse()
                    .map_err(|e| format!("bad duration: {e}"))?;
                if timescale == 0 {
                    return Err("zero timescale".into());
                }
                let segment = SegmentTemplate {
                    media: st
                        .get_attr("media")
                        .ok_or("SegmentTemplate missing media")?
                        .to_string(),
                    segment_duration: Duration::from_micros(dur_units * 1_000_000 / timescale),
                    start_number: st
                        .get_attr("startNumber")
                        .unwrap_or("1")
                        .parse()
                        .map_err(|e| format!("bad startNumber: {e}"))?,
                };
                representations.push(Representation {
                    id,
                    bandwidth: BitsPerSec(bandwidth),
                    resolution,
                    audio_sampling_rate,
                    segment,
                });
            }
            adaptation_sets.push(AdaptationSet {
                content_type,
                representations,
            });
        }
        Ok(Mpd {
            duration,
            min_buffer,
            adaptation_sets,
            allowed_combinations,
        })
    }
}

/// Formats a duration as ISO 8601 (`PT12.5S` style).
fn iso8601(d: Duration) -> String {
    let micros = d.as_micros();
    if micros.is_multiple_of(1_000_000) {
        format!("PT{}S", micros / 1_000_000)
    } else {
        format!("PT{}S", d.as_secs_f64())
    }
}

/// Parses the `PT[nH][nM][n[.n]S]` subset of ISO 8601 durations.
fn parse_iso8601(s: &str) -> Result<Duration, String> {
    let rest = s
        .strip_prefix("PT")
        .ok_or_else(|| format!("bad ISO duration `{s}`"))?;
    let mut total = 0.0f64;
    let mut num = String::new();
    for c in rest.chars() {
        match c {
            '0'..='9' | '.' => num.push(c),
            'H' | 'M' | 'S' => {
                let v: f64 = num
                    .parse()
                    .map_err(|e| format!("bad ISO duration `{s}`: {e}"))?;
                total += v * match c {
                    'H' => 3600.0,
                    'M' => 60.0,
                    _ => 1.0,
                };
                num.clear();
            }
            _ => return Err(format!("bad ISO duration `{s}`")),
        }
    }
    if !num.is_empty() {
        return Err(format!("bad ISO duration `{s}`: trailing `{num}`"));
    }
    Ok(Duration::from_secs_f64(total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Mpd {
        Mpd {
            duration: Duration::from_secs(300),
            min_buffer: Duration::from_secs(4),
            allowed_combinations: None,
            adaptation_sets: vec![
                AdaptationSet {
                    content_type: MediaType::Video,
                    representations: vec![Representation {
                        id: "V1".into(),
                        bandwidth: BitsPerSec::from_kbps(111),
                        resolution: Some((256, 144)),
                        audio_sampling_rate: None,
                        segment: SegmentTemplate {
                            media: "video/V1/seg-$Number$.m4s".into(),
                            segment_duration: Duration::from_secs(4),
                            start_number: 1,
                        },
                    }],
                },
                AdaptationSet {
                    content_type: MediaType::Audio,
                    representations: vec![Representation {
                        id: "A1".into(),
                        bandwidth: BitsPerSec::from_kbps(128),
                        resolution: None,
                        audio_sampling_rate: Some(44_000),
                        segment: SegmentTemplate {
                            media: "audio/A1/seg-$Number$.m4s".into(),
                            segment_duration: Duration::from_secs(4),
                            start_number: 1,
                        },
                    }],
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let mpd = sample();
        let text = mpd.to_text();
        let back = Mpd::parse(&text).unwrap();
        assert_eq!(mpd, back);
    }

    #[test]
    fn text_shape() {
        let text = sample().to_text();
        assert!(text.contains("urn:mpeg:dash:schema:mpd:2011"));
        assert!(text.contains("mediaPresentationDuration=\"PT300S\""));
        assert!(text.contains("bandwidth=\"111000\""));
        assert!(text.contains("contentType=\"video\""));
        assert!(text.contains("startNumber=\"1\""));
    }

    #[test]
    fn adaptation_set_lookup() {
        let mpd = sample();
        assert_eq!(
            mpd.adaptation_set(MediaType::Video)
                .unwrap()
                .representations[0]
                .id,
            "V1"
        );
        assert_eq!(
            mpd.adaptation_set(MediaType::Audio)
                .unwrap()
                .representations[0]
                .id,
            "A1"
        );
    }

    #[test]
    fn iso8601_roundtrip() {
        assert_eq!(iso8601(Duration::from_secs(300)), "PT300S");
        assert_eq!(parse_iso8601("PT300S").unwrap(), Duration::from_secs(300));
        assert_eq!(parse_iso8601("PT5M").unwrap(), Duration::from_secs(300));
        assert_eq!(parse_iso8601("PT1H30M").unwrap(), Duration::from_secs(5400));
        assert_eq!(
            parse_iso8601("PT2.5S").unwrap(),
            Duration::from_millis(2500)
        );
        assert!(parse_iso8601("300").is_err());
        assert!(parse_iso8601("PT5").is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Mpd::parse("<NotMpd/>").is_err());
        assert!(Mpd::parse("<MPD/>").is_err(), "missing duration");
        let no_bw = r#"<MPD mediaPresentationDuration="PT1S"><Period>
            <AdaptationSet contentType="video"><Representation id="V1">
            <SegmentTemplate media="x" duration="4000" timescale="1000"/>
            </Representation></AdaptationSet></Period></MPD>"#;
        assert!(Mpd::parse(no_bw).is_err());
    }

    #[test]
    fn combinations_extension_roundtrip() {
        let mut mpd = sample();
        mpd.allowed_combinations =
            Some(vec![("V1".into(), "A1".into()), ("V1".into(), "A2".into())]);
        let text = mpd.to_text();
        assert!(text.contains(COMBINATIONS_SCHEME));
        assert!(text.contains("value=\"V1+A1,V1+A2\""));
        let back = Mpd::parse(&text).unwrap();
        assert_eq!(back, mpd);
    }

    #[test]
    fn unknown_supplemental_properties_ignored() {
        let text = r#"<MPD mediaPresentationDuration="PT1S"><Period>
            <SupplementalProperty schemeIdUri="urn:other:thing" value="x"/>
            <AdaptationSet contentType="video"><Representation id="V1" bandwidth="100000">
            <SegmentTemplate media="m" duration="4000" timescale="1000"/>
            </Representation></AdaptationSet></Period></MPD>"#;
        let mpd = Mpd::parse(text).unwrap();
        assert_eq!(mpd.allowed_combinations, None);
    }

    #[test]
    fn malformed_combination_value_rejected() {
        let text = format!(
            r#"<MPD mediaPresentationDuration="PT1S"><Period>
            <SupplementalProperty schemeIdUri="{COMBINATIONS_SCHEME}" value="V1A1"/>
            <AdaptationSet contentType="video"><Representation id="V1" bandwidth="100000">
            <SegmentTemplate media="m" duration="4000" timescale="1000"/>
            </Representation></AdaptationSet></Period></MPD>"#
        );
        assert!(Mpd::parse(&text).is_err());
    }

    #[test]
    fn timescale_conversion() {
        let text = r#"<MPD mediaPresentationDuration="PT8S" minBufferTime="PT1S"><Period>
            <AdaptationSet contentType="video"><Representation id="V1" bandwidth="100000">
            <SegmentTemplate media="m" duration="90000" timescale="22500" startNumber="1"/>
            </Representation></AdaptationSet></Period></MPD>"#;
        let mpd = Mpd::parse(text).unwrap();
        let rep = &mpd.adaptation_sets[0].representations[0];
        assert_eq!(rep.segment.segment_duration, Duration::from_secs(4));
    }
}
