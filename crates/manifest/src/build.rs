//! Builders: [`abr_media::Content`] → manifests.
//!
//! Plays the role of the paper's Bento4 packaging step (§3.1): given the
//! content model, emit the DASH MPD, the HLS master playlists (`H_all`,
//! `H_sub`, or any curated combination list in any listing order), and the
//! second-level media playlists under either packaging mode.

use crate::dash::{AdaptationSet, Mpd, Representation, SegmentTemplate};
use crate::hls::{MasterPlaylist, MediaPlaylist, MediaRendition, SegmentEntry, VariantStream};
use abr_media::combo::{combo_bitrate, Combo};
use abr_media::content::Content;
use abr_media::track::{MediaType, TrackDetail, TrackId};

/// How chunks are laid out on the server (HLS §4.1 distinction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Packaging {
    /// All chunks of a track in one file; playlists carry
    /// `EXT-X-BYTERANGE`, from which per-track bitrates are derivable.
    SingleFile,
    /// One file per chunk; per-track bitrates are derivable only when
    /// `with_bitrate_tags` adds the (optional in HLS) `EXT-X-BITRATE`.
    SegmentFiles {
        /// Emit `EXT-X-BITRATE` per segment.
        with_bitrate_tags: bool,
    },
}

/// Canonical media-playlist URI for a track.
pub fn playlist_uri(id: TrackId) -> String {
    format!("{}/{}/playlist.m3u8", id.media, id)
}

/// Canonical audio group id for an audio ladder index.
pub fn audio_group_id(audio_index: usize) -> String {
    format!("aud-A{}", audio_index + 1)
}

/// Builds the DASH MPD: one AdaptationSet per media type, per-track
/// declared `@bandwidth` — and, faithfully to the standard's limitation, no
/// combination information whatsoever.
pub fn build_mpd(content: &Content) -> Mpd {
    let make_set = |media: MediaType| -> AdaptationSet {
        let ladder = content.ladder(media);
        AdaptationSet {
            content_type: media,
            representations: ladder
                .iter()
                .map(|t| Representation {
                    id: t.name(),
                    bandwidth: t.declared,
                    resolution: match t.detail {
                        TrackDetail::Video { width, height } => Some((width, height)),
                        TrackDetail::Audio { .. } => None,
                    },
                    audio_sampling_rate: match t.detail {
                        TrackDetail::Audio { sample_rate, .. } => Some(sample_rate),
                        TrackDetail::Video { .. } => None,
                    },
                    segment: SegmentTemplate {
                        media: format!("{}/{}/seg-$Number$.m4s", t.id.media, t.id),
                        segment_duration: content.chunk_duration(),
                        start_number: 1,
                    },
                })
                .collect(),
        }
    };
    Mpd {
        duration: content.duration(),
        min_buffer: content.chunk_duration(),
        adaptation_sets: vec![make_set(MediaType::Video), make_set(MediaType::Audio)],
        allowed_combinations: None,
    }
}

/// Builds a DASH MPD carrying the §4.1 *proposed* allowed-combinations
/// extension (a `SupplementalProperty` on the Period) — what the paper
/// suggests the DASH specification should grow in the longer term.
pub fn build_mpd_with_combos(content: &Content, combos: &[Combo]) -> Mpd {
    assert!(!combos.is_empty(), "no combinations");
    let mut mpd = build_mpd(content);
    mpd.allowed_combinations = Some(
        combos
            .iter()
            .map(|c| (c.video_id().to_string(), c.audio_id().to_string()))
            .collect(),
    );
    mpd
}

/// Builds an HLS master playlist listing exactly `combos` (in the given
/// order) as variants, with audio renditions listed in `audio_order`
/// (ladder indices; the first entry is the one ExoPlayer pins, §3.2).
///
/// `BANDWIDTH` is the aggregate peak and `AVERAGE-BANDWIDTH` the aggregate
/// average of each combination — the Table 2/3 values.
pub fn build_master_playlist(
    content: &Content,
    combos: &[Combo],
    audio_order: &[usize],
) -> MasterPlaylist {
    assert!(!combos.is_empty(), "no combinations");
    let audio_used: std::collections::BTreeSet<usize> = combos.iter().map(|c| c.audio).collect();
    assert!(
        audio_used.iter().all(|a| audio_order.contains(a)),
        "audio_order must cover every audio track referenced by a combination"
    );
    let media = audio_order
        .iter()
        .enumerate()
        .map(|(pos, &a)| {
            let id = TrackId::audio(a);
            MediaRendition {
                group_id: audio_group_id(a),
                name: id.to_string(),
                uri: playlist_uri(id),
                default: pos == 0,
                language: None,
            }
        })
        .collect();
    let variants = combos
        .iter()
        .map(|&c| {
            let bits = combo_bitrate(content.video(), content.audio(), c);
            let v = content.video().get(c.video);
            VariantStream {
                bandwidth: bits.peak,
                average_bandwidth: Some(bits.avg),
                resolution: match v.detail {
                    TrackDetail::Video { width, height } => Some((width, height)),
                    TrackDetail::Audio { .. } => None,
                },
                audio_group: Some(audio_group_id(c.audio)),
                uri: playlist_uri(c.video_id()),
                video_bandwidth: None,
                audio_bandwidth: None,
            }
        })
        .collect();
    MasterPlaylist { media, variants }
}

/// [`build_master_playlist`] plus the §4.1 per-track bitrate extension:
/// every variant also declares its video and audio components' own peak
/// bitrates (`VIDEO-BANDWIDTH` / `AUDIO-BANDWIDTH`) — the paper's proposed
/// "more robust longer term solution" for HLS.
pub fn build_master_playlist_ext(
    content: &Content,
    combos: &[Combo],
    audio_order: &[usize],
) -> MasterPlaylist {
    let mut master = build_master_playlist(content, combos, audio_order);
    for (variant, &combo) in master.variants.iter_mut().zip(combos) {
        variant.video_bandwidth = Some(content.video().get(combo.video).peak);
        variant.audio_bandwidth = Some(content.audio().get(combo.audio).peak);
    }
    master
}

/// Builds the second-level media playlist for one track.
pub fn build_media_playlist(content: &Content, id: TrackId, packaging: Packaging) -> MediaPlaylist {
    let chunk_dur = content.chunk_duration();
    let mut offset: u64 = 0;
    let segments = (0..content.num_chunks())
        .map(|i| {
            let size = content.chunk_size(id, i);
            let entry = match packaging {
                Packaging::SingleFile => {
                    let e = SegmentEntry {
                        duration: chunk_dur,
                        uri: format!("{}/{}/track.mp4", id.media, id),
                        byterange: Some((size, offset)),
                        bitrate_kbps: None,
                    };
                    offset += size.get();
                    e
                }
                Packaging::SegmentFiles { with_bitrate_tags } => SegmentEntry {
                    duration: chunk_dur,
                    uri: format!("{}/{}/seg-{}.m4s", id.media, id, i + 1),
                    byterange: None,
                    bitrate_kbps: with_bitrate_tags.then(|| content.chunk_bitrate(id, i).kbps()),
                },
            };
            entry
        })
        .collect();
    MediaPlaylist {
        target_duration: chunk_dur,
        segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_media::combo::{all_combos, curated_subset};
    use abr_media::units::BitsPerSec;

    #[test]
    fn mpd_carries_declared_bitrates() {
        let c = Content::drama_show(1);
        let mpd = build_mpd(&c);
        let video = mpd.adaptation_set(MediaType::Video).unwrap();
        let declared: Vec<u64> = video
            .representations
            .iter()
            .map(|r| r.bandwidth.kbps())
            .collect();
        assert_eq!(declared, vec![111, 246, 473, 914, 1852, 3746]);
        let audio = mpd.adaptation_set(MediaType::Audio).unwrap();
        assert_eq!(audio.representations.len(), 3);
        assert_eq!(audio.representations[2].id, "A3");
        // Text roundtrip survives.
        let back = Mpd::parse(&mpd.to_text()).unwrap();
        assert_eq!(mpd, back);
    }

    #[test]
    fn h_all_master_matches_table2() {
        let c = Content::drama_show(1);
        let combos = all_combos(c.video(), c.audio());
        let m = build_master_playlist(&c, &combos, &[0, 1, 2]);
        assert_eq!(m.variants.len(), 18);
        // First row of Table 2: V1+A1 at 253/239 Kbps.
        assert_eq!(m.variants[0].bandwidth, BitsPerSec::from_kbps(253));
        assert_eq!(
            m.variants[0].average_bandwidth,
            Some(BitsPerSec::from_kbps(239))
        );
        assert_eq!(m.variants[0].uri, "video/V1/playlist.m3u8");
        assert_eq!(m.variants[0].audio_group.as_deref(), Some("aud-A1"));
        // Last row: V6+A3 at 4838/3112.
        assert_eq!(m.variants[17].bandwidth, BitsPerSec::from_kbps(4838));
        assert_eq!(m.media.len(), 3);
    }

    #[test]
    fn h_sub_master_matches_table3() {
        let c = Content::drama_show(1);
        let combos = curated_subset(c.video(), c.audio());
        // Fig 3 experiment 1: A3 listed first.
        let m = build_master_playlist(&c, &combos, &[2, 0, 1]);
        assert_eq!(m.variants.len(), 6);
        assert_eq!(
            m.audio_groups_in_order(),
            vec!["aud-A3", "aud-A1", "aud-A2"]
        );
        assert!(m.media[0].default);
        let bw: Vec<u64> = m.variants.iter().map(|v| v.bandwidth.kbps()).collect();
        assert_eq!(bw, vec![253, 395, 840, 1389, 2773, 4838]);
        // Roundtrip.
        let back = MasterPlaylist::parse(&m.to_text()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    #[should_panic(expected = "audio_order must cover")]
    fn master_requires_complete_audio_order() {
        let c = Content::drama_show(1);
        let combos = curated_subset(c.video(), c.audio());
        build_master_playlist(&c, &combos, &[0, 1]); // A3 referenced but unlisted
    }

    #[test]
    fn media_playlist_single_file_byteranges_tile() {
        let c = Content::drama_show(1);
        let id = TrackId::video(2);
        let m = build_media_playlist(&c, id, Packaging::SingleFile);
        assert_eq!(m.segments.len(), 75);
        // Offsets tile contiguously.
        let mut expect = 0u64;
        for s in &m.segments {
            let (len, off) = s.byterange.unwrap();
            assert_eq!(off, expect);
            expect += len.get();
        }
        assert_eq!(expect, c.track_bytes(id).get());
        // Derived bitrates recover the track's Table 1 stats.
        let d = m.derived_bitrates().unwrap();
        assert!(
            (d.avg.kbps() as i64 - 362).abs() <= 1,
            "avg {}",
            d.avg.kbps()
        );
        assert!(
            (d.peak.kbps() as i64 - 641).abs() <= 1,
            "peak {}",
            d.peak.kbps()
        );
    }

    #[test]
    fn media_playlist_segment_files_with_tags() {
        let c = Content::drama_show(1);
        let id = TrackId::audio(2);
        let m = build_media_playlist(
            &c,
            id,
            Packaging::SegmentFiles {
                with_bitrate_tags: true,
            },
        );
        assert!(m
            .segments
            .iter()
            .all(|s| s.bitrate_kbps.is_some() && s.byterange.is_none()));
        let d = m.derived_bitrates().unwrap();
        assert!((d.avg.kbps() as i64 - 384).abs() <= 1);
        // Roundtrip.
        let back = MediaPlaylist::parse(&m.to_text()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn media_playlist_lazy_packaging_hides_bitrates() {
        let c = Content::drama_show(1);
        let m = build_media_playlist(
            &c,
            TrackId::video(0),
            Packaging::SegmentFiles {
                with_bitrate_tags: false,
            },
        );
        assert_eq!(m.derived_bitrates(), None);
    }
}
