//! HLS playlist models (RFC 8216 subset).
//!
//! * [`MasterPlaylist`] — `EXT-X-MEDIA` audio renditions plus
//!   `EXT-X-STREAM-INF` variants. Each variant pairs a video media playlist
//!   URI with an audio group and declares only the **aggregate**
//!   `BANDWIDTH` (sum of component peak bitrates) and `AVERAGE-BANDWIDTH`
//!   (sum of averages) — the Table 2/3 numbers. The order of `EXT-X-MEDIA`
//!   lines is semantically significant to ExoPlayer's HLS audio pinning
//!   (§3.2), so this model preserves it byte-for-byte.
//! * [`MediaPlaylist`] — second-level playlists with `EXTINF`, optional
//!   `EXT-X-BYTERANGE` (single-file packaging) and optional `EXT-X-BITRATE`
//!   (per-segment Kbps). §4.1's server-side recommendation is that players
//!   *should* derive per-track bitrates from these; [`MediaPlaylist::
//!   derived_bitrates`] implements exactly that derivation.

use abr_event::time::Duration;
use abr_media::units::{BitsPerSec, Bytes};

/// An `EXT-X-MEDIA` audio rendition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MediaRendition {
    /// `GROUP-ID` — this workspace uses one group per audio track.
    pub group_id: String,
    /// `NAME` — human label ("A3").
    pub name: String,
    /// `URI` of the rendition's media playlist.
    pub uri: String,
    /// `DEFAULT=YES|NO`.
    pub default: bool,
    /// `LANGUAGE` (RFC 5646 tag) — §1's first motivation for demuxing is
    /// "to support multiple languages, or multiple audio quality levels or
    /// both".
    pub language: Option<String>,
}

/// An `EXT-X-STREAM-INF` variant: one audio+video combination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariantStream {
    /// Aggregate peak bitrate (`BANDWIDTH`).
    pub bandwidth: BitsPerSec,
    /// Aggregate average bitrate (`AVERAGE-BANDWIDTH`).
    pub average_bandwidth: Option<BitsPerSec>,
    /// Video resolution (`RESOLUTION`).
    pub resolution: Option<(u32, u32)>,
    /// Audio group reference (`AUDIO`).
    pub audio_group: Option<String>,
    /// URI of the *video* media playlist.
    pub uri: String,
    /// §4.1 extension: the video component's own peak bitrate
    /// (`VIDEO-BANDWIDTH`, non-standard) — the paper's "more robust longer
    /// term solution is to enhance the HLS specification so that the
    /// top-level master playlist directly provides per-track ... bitrate
    /// information". `None` reproduces today's HLS.
    pub video_bandwidth: Option<BitsPerSec>,
    /// §4.1 extension: the audio component's own peak bitrate
    /// (`AUDIO-BANDWIDTH`, non-standard).
    pub audio_bandwidth: Option<BitsPerSec>,
}

/// A top-level master playlist.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MasterPlaylist {
    /// Audio renditions in listing order (order matters; see module docs).
    pub media: Vec<MediaRendition>,
    /// Variants in listing order.
    pub variants: Vec<VariantStream>,
}

impl MasterPlaylist {
    /// Serializes to M3U8 text.
    pub fn to_text(&self) -> String {
        let mut out = String::from("#EXTM3U\n#EXT-X-VERSION:4\n");
        for m in &self.media {
            let mut line = format!(
                "#EXT-X-MEDIA:TYPE=AUDIO,GROUP-ID=\"{}\",NAME=\"{}\",DEFAULT={}",
                m.group_id,
                m.name,
                if m.default { "YES" } else { "NO" },
            );
            if let Some(lang) = &m.language {
                line.push_str(&format!(",LANGUAGE=\"{lang}\""));
            }
            line.push_str(&format!(",URI=\"{}\"\n", m.uri));
            out.push_str(&line);
        }
        for v in &self.variants {
            let mut line = format!("#EXT-X-STREAM-INF:BANDWIDTH={}", v.bandwidth.bps());
            if let Some(avg) = v.average_bandwidth {
                line.push_str(&format!(",AVERAGE-BANDWIDTH={}", avg.bps()));
            }
            if let Some((w, h)) = v.resolution {
                line.push_str(&format!(",RESOLUTION={w}x{h}"));
            }
            if let Some(g) = &v.audio_group {
                line.push_str(&format!(",AUDIO=\"{g}\""));
            }
            if let Some(vb) = v.video_bandwidth {
                line.push_str(&format!(",VIDEO-BANDWIDTH={}", vb.bps()));
            }
            if let Some(ab) = v.audio_bandwidth {
                line.push_str(&format!(",AUDIO-BANDWIDTH={}", ab.bps()));
            }
            out.push_str(&line);
            out.push('\n');
            out.push_str(&v.uri);
            out.push('\n');
        }
        out
    }

    /// Parses M3U8 master playlist text.
    pub fn parse(text: &str) -> Result<MasterPlaylist, String> {
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        if lines.next() != Some("#EXTM3U") {
            return Err("missing #EXTM3U header".to_string());
        }
        let mut pl = MasterPlaylist::default();
        let mut pending: Option<VariantStream> = None;
        for line in lines {
            if let Some(attrs) = line.strip_prefix("#EXT-X-MEDIA:") {
                let a = parse_attrs(attrs)?;
                if a.get("TYPE").map(String::as_str) != Some("AUDIO") {
                    continue; // subtitles etc. are out of scope
                }
                pl.media.push(MediaRendition {
                    group_id: req(&a, "GROUP-ID")?,
                    name: req(&a, "NAME")?,
                    uri: req(&a, "URI")?,
                    default: a.get("DEFAULT").map(String::as_str) == Some("YES"),
                    language: a.get("LANGUAGE").cloned(),
                });
            } else if let Some(attrs) = line.strip_prefix("#EXT-X-STREAM-INF:") {
                if pending.is_some() {
                    return Err("EXT-X-STREAM-INF without a following URI".to_string());
                }
                let a = parse_attrs(attrs)?;
                let bandwidth: u64 = req(&a, "BANDWIDTH")?
                    .parse()
                    .map_err(|e| format!("bad BANDWIDTH: {e}"))?;
                let average_bandwidth = a
                    .get("AVERAGE-BANDWIDTH")
                    .map(|s| {
                        s.parse::<u64>()
                            .map_err(|e| format!("bad AVERAGE-BANDWIDTH: {e}"))
                    })
                    .transpose()?
                    .map(BitsPerSec);
                let resolution = a
                    .get("RESOLUTION")
                    .map(|s| {
                        let (w, h) = s.split_once('x').ok_or("bad RESOLUTION")?;
                        Ok::<_, String>((
                            w.parse().map_err(|_| "bad RESOLUTION width")?,
                            h.parse().map_err(|_| "bad RESOLUTION height")?,
                        ))
                    })
                    .transpose()?;
                let parse_opt_bw = |key: &str| -> Result<Option<BitsPerSec>, String> {
                    a.get(key)
                        .map(|s| {
                            s.parse::<u64>()
                                .map_err(|e| format!("bad {key}: {e}"))
                                .map(BitsPerSec)
                        })
                        .transpose()
                };
                pending = Some(VariantStream {
                    bandwidth: BitsPerSec(bandwidth),
                    average_bandwidth,
                    resolution,
                    audio_group: a.get("AUDIO").cloned(),
                    uri: String::new(),
                    video_bandwidth: parse_opt_bw("VIDEO-BANDWIDTH")?,
                    audio_bandwidth: parse_opt_bw("AUDIO-BANDWIDTH")?,
                });
            } else if line.starts_with('#') {
                // Unknown tag: ignore per RFC 8216 §6.3.1.
                continue;
            } else {
                match pending.take() {
                    Some(mut v) => {
                        v.uri = line.to_string();
                        pl.variants.push(v);
                    }
                    None => return Err(format!("unexpected URI line `{line}`")),
                }
            }
        }
        if pending.is_some() {
            return Err("EXT-X-STREAM-INF without a following URI".to_string());
        }
        Ok(pl)
    }

    /// Audio rendition group ids in listing order.
    pub fn audio_groups_in_order(&self) -> Vec<&str> {
        self.media.iter().map(|m| m.group_id.as_str()).collect()
    }
}

/// One segment entry in a media playlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentEntry {
    /// `EXTINF` duration.
    pub duration: Duration,
    /// Segment URI (or the single file's URI under byte-range packaging).
    pub uri: String,
    /// `EXT-X-BYTERANGE` as `(length, offset)`, for single-file packaging.
    pub byterange: Option<(Bytes, u64)>,
    /// `EXT-X-BITRATE` in Kbps, for per-file packaging.
    pub bitrate_kbps: Option<u64>,
}

impl SegmentEntry {
    /// The segment's bitrate if derivable from this entry alone: byte-range
    /// length over duration, or the explicit `EXT-X-BITRATE` tag.
    pub fn derived_bitrate(&self) -> Option<BitsPerSec> {
        if let Some((len, _)) = self.byterange {
            return Some(len.rate_over_micros(self.duration.as_micros()));
        }
        self.bitrate_kbps.map(BitsPerSec::from_kbps)
    }
}

/// A second-level media playlist for one track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MediaPlaylist {
    /// `EXT-X-TARGETDURATION`.
    pub target_duration: Duration,
    /// Segment entries in playback order.
    pub segments: Vec<SegmentEntry>,
}

/// Per-track bitrates derived from a media playlist per §4.1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DerivedBitrates {
    /// Mean of per-segment bitrates weighted by duration.
    pub avg: BitsPerSec,
    /// Maximum per-segment bitrate.
    pub peak: BitsPerSec,
}

impl MediaPlaylist {
    /// Serializes to M3U8 text.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "#EXTM3U\n#EXT-X-VERSION:4\n#EXT-X-TARGETDURATION:{}\n#EXT-X-MEDIA-SEQUENCE:0\n",
            self.target_duration.as_secs_f64().ceil() as u64
        );
        for s in &self.segments {
            if let Some(kbps) = s.bitrate_kbps {
                out.push_str(&format!("#EXT-X-BITRATE:{kbps}\n"));
            }
            out.push_str(&format!("#EXTINF:{:.3},\n", s.duration.as_secs_f64()));
            if let Some((len, off)) = s.byterange {
                out.push_str(&format!("#EXT-X-BYTERANGE:{}@{off}\n", len.get()));
            }
            out.push_str(&s.uri);
            out.push('\n');
        }
        out.push_str("#EXT-X-ENDLIST\n");
        out
    }

    /// Parses M3U8 media playlist text.
    pub fn parse(text: &str) -> Result<MediaPlaylist, String> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .peekable();
        if lines.next() != Some("#EXTM3U") {
            return Err("missing #EXTM3U header".to_string());
        }
        let mut target_duration = None;
        let mut segments = Vec::new();
        let mut cur_duration: Option<Duration> = None;
        let mut cur_byterange: Option<(Bytes, u64)> = None;
        let mut cur_bitrate: Option<u64> = None;
        for line in lines {
            if let Some(v) = line.strip_prefix("#EXT-X-TARGETDURATION:") {
                target_duration = Some(Duration::from_secs_f64(
                    v.parse().map_err(|e| format!("bad TARGETDURATION: {e}"))?,
                ));
            } else if let Some(v) = line.strip_prefix("#EXTINF:") {
                let num = v.trim_end_matches(',');
                cur_duration = Some(Duration::from_secs_f64(
                    num.parse().map_err(|e| format!("bad EXTINF: {e}"))?,
                ));
            } else if let Some(v) = line.strip_prefix("#EXT-X-BYTERANGE:") {
                let (len, off) = v.split_once('@').ok_or("EXT-X-BYTERANGE missing offset")?;
                cur_byterange = Some((
                    Bytes(
                        len.parse()
                            .map_err(|e| format!("bad byterange length: {e}"))?,
                    ),
                    off.parse()
                        .map_err(|e| format!("bad byterange offset: {e}"))?,
                ));
            } else if let Some(v) = line.strip_prefix("#EXT-X-BITRATE:") {
                cur_bitrate = Some(v.parse().map_err(|e| format!("bad EXT-X-BITRATE: {e}"))?);
            } else if line == "#EXT-X-ENDLIST" {
                break;
            } else if line.starts_with('#') {
                continue;
            } else {
                let duration = cur_duration
                    .take()
                    .ok_or_else(|| format!("URI `{line}` without EXTINF"))?;
                segments.push(SegmentEntry {
                    duration,
                    uri: line.to_string(),
                    byterange: cur_byterange.take(),
                    bitrate_kbps: cur_bitrate.take(),
                });
            }
        }
        Ok(MediaPlaylist {
            target_duration: target_duration.ok_or("missing EXT-X-TARGETDURATION")?,
            segments,
        })
    }

    /// Total playlist duration.
    pub fn duration(&self) -> Duration {
        self.segments.iter().map(|s| s.duration).sum()
    }

    /// Derives the track's average and peak bitrates from byte ranges or
    /// `EXT-X-BITRATE` tags (§4.1). Returns `None` when any segment lacks
    /// the information — the situation §4.1 recommends servers eliminate.
    pub fn derived_bitrates(&self) -> Option<DerivedBitrates> {
        if self.segments.is_empty() {
            return None;
        }
        let mut total_bits: u128 = 0;
        let mut total_micros: u128 = 0;
        let mut peak = BitsPerSec::ZERO;
        for s in &self.segments {
            let rate = s.derived_bitrate()?;
            total_bits += rate.bps() as u128 * s.duration.as_micros() as u128;
            total_micros += s.duration.as_micros() as u128;
            peak = peak.max(rate);
        }
        if total_micros == 0 {
            return None;
        }
        Some(DerivedBitrates {
            avg: BitsPerSec((total_bits / total_micros) as u64),
            peak,
        })
    }
}

/// Parses an HLS attribute list: `KEY=value,KEY="quoted,value",...`.
fn parse_attrs(s: &str) -> Result<std::collections::BTreeMap<String, String>, String> {
    let mut out = std::collections::BTreeMap::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let key_start = i;
        while i < bytes.len() && bytes[i] != b'=' {
            i += 1;
        }
        if i == bytes.len() {
            return Err(format!("attribute without `=` in `{s}`"));
        }
        let key = s[key_start..i].trim().to_string();
        i += 1; // '='
        let value = if bytes.get(i) == Some(&b'"') {
            i += 1;
            let vs = i;
            while i < bytes.len() && bytes[i] != b'"' {
                i += 1;
            }
            if i == bytes.len() {
                return Err(format!("unterminated quoted value in `{s}`"));
            }
            let v = s[vs..i].to_string();
            i += 1; // closing quote
            v
        } else {
            let vs = i;
            while i < bytes.len() && bytes[i] != b',' {
                i += 1;
            }
            s[vs..i].trim().to_string()
        };
        if key.is_empty() {
            return Err(format!("empty attribute key in `{s}`"));
        }
        out.insert(key, value);
        if bytes.get(i) == Some(&b',') {
            i += 1;
        }
    }
    Ok(out)
}

fn req(a: &std::collections::BTreeMap<String, String>, key: &str) -> Result<String, String> {
    a.get(key)
        .cloned()
        .ok_or_else(|| format!("missing attribute {key}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_master() -> MasterPlaylist {
        MasterPlaylist {
            media: vec![
                MediaRendition {
                    group_id: "aud-A3".into(),
                    name: "A3".into(),
                    uri: "audio/A3/playlist.m3u8".into(),
                    default: true,
                    language: Some("en".into()),
                },
                MediaRendition {
                    group_id: "aud-A1".into(),
                    name: "A1".into(),
                    uri: "audio/A1/playlist.m3u8".into(),
                    default: false,
                    language: None,
                },
            ],
            variants: vec![
                VariantStream {
                    bandwidth: BitsPerSec::from_kbps(253),
                    average_bandwidth: Some(BitsPerSec::from_kbps(239)),
                    resolution: Some((256, 144)),
                    audio_group: Some("aud-A1".into()),
                    uri: "video/V1/playlist.m3u8".into(),
                    video_bandwidth: None,
                    audio_bandwidth: None,
                },
                VariantStream {
                    bandwidth: BitsPerSec::from_kbps(2773),
                    average_bandwidth: Some(BitsPerSec::from_kbps(1805)),
                    resolution: Some((1280, 720)),
                    audio_group: Some("aud-A3".into()),
                    uri: "video/V5/playlist.m3u8".into(),
                    video_bandwidth: None,
                    audio_bandwidth: None,
                },
            ],
        }
    }

    #[test]
    fn master_roundtrip() {
        let m = sample_master();
        let text = m.to_text();
        let back = MasterPlaylist::parse(&text).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn language_attribute_roundtrips() {
        let m = sample_master();
        let text = m.to_text();
        assert!(text.contains("LANGUAGE=\"en\""));
        let back = MasterPlaylist::parse(&text).unwrap();
        assert_eq!(back.media[0].language.as_deref(), Some("en"));
        assert_eq!(back.media[1].language, None);
    }

    #[test]
    fn master_text_shape() {
        let text = sample_master().to_text();
        assert!(text.starts_with("#EXTM3U\n"));
        assert!(
            text.contains("#EXT-X-MEDIA:TYPE=AUDIO,GROUP-ID=\"aud-A3\",NAME=\"A3\",DEFAULT=YES")
        );
        assert!(text.contains("#EXT-X-STREAM-INF:BANDWIDTH=253000,AVERAGE-BANDWIDTH=239000,RESOLUTION=256x144,AUDIO=\"aud-A1\""));
    }

    #[test]
    fn media_rendition_order_preserved() {
        // Fig 3's experiment depends on which audio is listed first.
        let m = sample_master();
        assert_eq!(m.audio_groups_in_order(), vec!["aud-A3", "aud-A1"]);
        let back = MasterPlaylist::parse(&m.to_text()).unwrap();
        assert_eq!(back.audio_groups_in_order(), vec!["aud-A3", "aud-A1"]);
    }

    #[test]
    fn per_track_bandwidth_extension_roundtrip() {
        let mut m = sample_master();
        m.variants[0].video_bandwidth = Some(BitsPerSec::from_kbps(119));
        m.variants[0].audio_bandwidth = Some(BitsPerSec::from_kbps(134));
        let text = m.to_text();
        assert!(text.contains("VIDEO-BANDWIDTH=119000"));
        assert!(text.contains("AUDIO-BANDWIDTH=134000"));
        let back = MasterPlaylist::parse(&text).unwrap();
        assert_eq!(m, back);
        // A variant without the extension parses to None.
        assert_eq!(back.variants[1].video_bandwidth, None);
    }

    #[test]
    fn master_parse_errors() {
        assert!(MasterPlaylist::parse("").is_err());
        assert!(MasterPlaylist::parse("#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=1\n").is_err());
        assert!(MasterPlaylist::parse("#EXTM3U\nstray-uri\n").is_err());
        assert!(MasterPlaylist::parse("#EXTM3U\n#EXT-X-STREAM-INF:FOO=1\nu\n").is_err());
    }

    #[test]
    fn attr_parser_quoted_commas() {
        let a = parse_attrs(r#"A=1,B="x,y",C=2"#).unwrap();
        assert_eq!(a["A"], "1");
        assert_eq!(a["B"], "x,y");
        assert_eq!(a["C"], "2");
        assert!(parse_attrs("NOEQ").is_err());
        assert!(parse_attrs(r#"A="unterminated"#).is_err());
    }

    fn sample_media(byterange: bool) -> MediaPlaylist {
        MediaPlaylist {
            target_duration: Duration::from_secs(4),
            segments: (0..3)
                .map(|i| SegmentEntry {
                    duration: Duration::from_secs(4),
                    uri: if byterange {
                        "track.mp4".into()
                    } else {
                        format!("seg-{i}.m4s")
                    },
                    byterange: byterange.then(|| (Bytes(50_000 + i * 10_000), i * 100_000)),
                    bitrate_kbps: (!byterange).then(|| 100 + i * 20),
                })
                .collect(),
        }
    }

    #[test]
    fn media_roundtrip_byterange() {
        let m = sample_media(true);
        let back = MediaPlaylist::parse(&m.to_text()).unwrap();
        assert_eq!(m, back);
        assert_eq!(back.segments[1].byterange, Some((Bytes(60_000), 100_000)));
    }

    #[test]
    fn media_roundtrip_bitrate_tags() {
        let m = sample_media(false);
        let back = MediaPlaylist::parse(&m.to_text()).unwrap();
        assert_eq!(m, back);
        assert_eq!(back.segments[2].bitrate_kbps, Some(140));
    }

    #[test]
    fn derived_bitrates_from_byteranges() {
        let m = sample_media(true);
        let d = m.derived_bitrates().unwrap();
        // Sizes 50/60/70 KB over 4 s → rates 100/120/140 Kbps; avg 120.
        assert_eq!(d.avg, BitsPerSec::from_kbps(120));
        assert_eq!(d.peak, BitsPerSec::from_kbps(140));
    }

    #[test]
    fn derived_bitrates_from_tags() {
        let m = sample_media(false);
        let d = m.derived_bitrates().unwrap();
        assert_eq!(d.avg, BitsPerSec::from_kbps(120));
        assert_eq!(d.peak, BitsPerSec::from_kbps(140));
    }

    #[test]
    fn derived_bitrates_absent_when_info_missing() {
        let mut m = sample_media(false);
        m.segments[1].bitrate_kbps = None; // lazy packaging: no info
        assert_eq!(m.derived_bitrates(), None);
    }

    #[test]
    fn media_duration_sums() {
        assert_eq!(sample_media(true).duration(), Duration::from_secs(12));
    }

    #[test]
    fn media_parse_errors() {
        assert!(
            MediaPlaylist::parse("#EXTM3U\nseg.m4s\n").is_err(),
            "URI without EXTINF"
        );
        assert!(
            MediaPlaylist::parse("#EXTM3U\n#EXTINF:4,\nseg.m4s\n").is_err(),
            "missing target duration"
        );
    }
}
