//! A minimal XML reader/writer, sufficient for DASH MPD documents.
//!
//! Supports: the XML declaration, nested elements, attributes with single-
//! or double-quoted values, self-closing tags, comments, and the five
//! predefined entities. Does **not** support: CDATA, processing
//! instructions other than the declaration, DOCTYPE, or namespaces beyond
//! passing `xmlns` through as an ordinary attribute — none of which appear
//! in the MPD subset this workspace emits.

use core::fmt::Write as _;

/// An XML element: name, attributes in document order, children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child elements in document order (text content is ignored — MPDs in
    /// this workspace carry data only in attributes).
    pub children: Vec<Element>,
}

impl Element {
    /// A new element with no attributes or children.
    pub fn new(name: &str) -> Element {
        Element {
            name: name.to_string(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Adds an attribute (builder style).
    pub fn attr(mut self, key: &str, value: impl ToString) -> Element {
        self.attrs.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a child (builder style).
    pub fn child(mut self, child: Element) -> Element {
        self.children.push(child);
        self
    }

    /// First attribute value by key.
    pub fn get_attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// All children with a given tag name.
    pub fn children_named<'a>(&'a self, name: &str) -> impl Iterator<Item = &'a Element> + 'a {
        let name = name.to_string();
        self.children.iter().filter(move |c| c.name == name)
    }

    /// First child with a given tag name.
    pub fn first_child(&self, name: &str) -> Option<&Element> {
        self.children_named(name).next()
    }

    /// Serializes with 2-space indentation and an XML declaration.
    pub fn to_document(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        self.write_into(&mut out, 0);
        out
    }

    fn write_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        let _ = write!(out, "{pad}<{}", self.name);
        for (k, v) in &self.attrs {
            let _ = write!(out, " {k}=\"{}\"", escape(v));
        }
        if self.children.is_empty() {
            out.push_str("/>\n");
        } else {
            out.push_str(">\n");
            for c in &self.children {
                c.write_into(out, depth + 1);
            }
            let _ = writeln!(out, "{pad}</{}>", self.name);
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

/// Parses a document and returns its root element.
pub fn parse(text: &str) -> Result<Element, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_misc()?;
    let root = p.parse_element()?;
    p.skip_misc()?;
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, the XML declaration, and comments.
    fn skip_misc(&mut self) -> Result<(), String> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.consume_until("?>")?;
            } else if self.starts_with("<!--") {
                self.consume_until("-->")?;
            } else {
                return Ok(());
            }
        }
    }

    fn consume_until(&mut self, end: &str) -> Result<(), String> {
        let hay = &self.bytes[self.pos..];
        match hay.windows(end.len()).position(|w| w == end.as_bytes()) {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => Err(format!("unterminated construct expecting `{end}`")),
        }
    }

    fn parse_name(&mut self) -> Result<String, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b':' | b'.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(format!("expected a name at byte {start}"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn parse_element(&mut self) -> Result<Element, String> {
        if self.peek() != Some(b'<') {
            return Err(format!("expected `<` at byte {}", self.pos));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut el = Element::new(&name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(format!("expected `>` after `/` at byte {}", self.pos));
                    }
                    self.pos += 1;
                    return Ok(el); // self-closing
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(format!("expected `=` after attribute `{key}`"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = self.peek();
                    if !matches!(quote, Some(b'"' | b'\'')) {
                        return Err(format!("expected quoted value for `{key}`"));
                    }
                    let q = quote.expect("checked");
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != q) {
                        self.pos += 1;
                    }
                    if self.peek().is_none() {
                        return Err(format!("unterminated value for `{key}`"));
                    }
                    let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    self.pos += 1;
                    el.attrs.push((key, unescape(&raw)));
                }
                None => return Err("unexpected end inside tag".to_string()),
            }
        }
        // Children until the close tag; text content is skipped.
        loop {
            // Skip text and comments.
            while self.peek().is_some_and(|c| c != b'<') {
                self.pos += 1;
            }
            if self.starts_with("<!--") {
                self.consume_until("-->")?;
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != name {
                    return Err(format!("mismatched close tag: `{close}` vs `{name}`"));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err("expected `>` in close tag".to_string());
                }
                self.pos += 1;
                return Ok(el);
            }
            if self.peek().is_none() {
                return Err(format!("unclosed element `{name}`"));
            }
            el.children.push(self.parse_element()?);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_serialize() {
        let doc = Element::new("MPD").attr("type", "static").child(
            Element::new("Period")
                .child(Element::new("AdaptationSet").attr("contentType", "video")),
        );
        let text = doc.to_document();
        assert!(text.starts_with("<?xml"));
        assert!(text.contains("<MPD type=\"static\">"));
        assert!(text.contains("<AdaptationSet contentType=\"video\"/>"));
    }

    #[test]
    fn parse_roundtrip() {
        let doc = Element::new("MPD")
            .attr("mediaPresentationDuration", "PT300S")
            .child(
                Element::new("Period").child(
                    Element::new("AdaptationSet")
                        .attr("contentType", "audio")
                        .child(
                            Element::new("Representation")
                                .attr("id", "A1")
                                .attr("bandwidth", "128000"),
                        ),
                ),
            );
        let text = doc.to_document();
        let back = parse(&text).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn attribute_escaping_roundtrip() {
        let doc = Element::new("E").attr("v", "a<b & \"c\">");
        let back = parse(&doc.to_document()).unwrap();
        assert_eq!(back.get_attr("v"), Some("a<b & \"c\">"));
    }

    #[test]
    fn single_quoted_attributes() {
        let el = parse("<A x='1' y=\"2\"/>").unwrap();
        assert_eq!(el.get_attr("x"), Some("1"));
        assert_eq!(el.get_attr("y"), Some("2"));
    }

    #[test]
    fn comments_and_text_ignored() {
        let el = parse("<A><!-- note --><B/>text<B/></A>").unwrap();
        assert_eq!(el.children.len(), 2);
        assert_eq!(el.children_named("B").count(), 2);
    }

    #[test]
    fn accessors() {
        let el = parse("<A><B id=\"1\"/><C/><B id=\"2\"/></A>").unwrap();
        assert_eq!(el.first_child("B").unwrap().get_attr("id"), Some("1"));
        assert!(el.first_child("D").is_none());
        let ids: Vec<_> = el
            .children_named("B")
            .map(|b| b.get_attr("id").unwrap())
            .collect();
        assert_eq!(ids, vec!["1", "2"]);
    }

    #[test]
    fn literal_angle_bracket_in_quoted_attribute() {
        // A raw `>` inside a quoted value must not terminate the tag.
        let el = parse("<A x=\"a>b\"><B/></A>").unwrap();
        assert_eq!(el.get_attr("x"), Some("a>b"));
        assert_eq!(el.children.len(), 1);
    }

    #[test]
    fn error_cases() {
        assert!(parse("<A>").is_err(), "unclosed");
        assert!(parse("<A></B>").is_err(), "mismatched");
        assert!(parse("<A x=1/>").is_err(), "unquoted attr");
        assert!(parse("<A/><B/>").is_err(), "trailing content");
        assert!(parse("<A x=\"1/>").is_err(), "unterminated value");
    }

    #[test]
    fn declaration_skipped() {
        let el = parse("<?xml version=\"1.0\"?>\n<Root/>").unwrap();
        assert_eq!(el.name, "Root");
    }
}
