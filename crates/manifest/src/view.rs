//! Bound manifest views — what a player actually knows.
//!
//! A player never sees `Content`; it sees a manifest. These views bind a
//! parsed manifest back to ladder indices (via this workspace's canonical
//! naming: representation ids / URIs carry "V3", "A1", audio groups carry
//! "aud-A2") and expose *exactly* the information each protocol provides:
//!
//! * [`BoundDash`] — per-track declared bitrates, **no combinations**;
//! * [`BoundHls`] — combinations with **aggregate bandwidths only**, plus
//!   the audio rendition listing order; per-track bitrates appear only
//!   after [`BoundHls::attach_derived_bitrates`], which models the §4.1
//!   recommendation of reading second-level playlists before adapting.

use crate::dash::Mpd;
use crate::hls::{DerivedBitrates, MasterPlaylist, MediaPlaylist};
use abr_media::combo::Combo;
use abr_media::track::MediaType;
use abr_media::units::BitsPerSec;

/// Extracts a track name like "V3" / "A1" from an id, URI or group id.
fn parse_track_name(s: &str) -> Option<(MediaType, usize)> {
    // Accept "V3", "A1", "aud-A2", "video/V3/playlist.m3u8", etc.: find the
    // last occurrence of [VA]<digits> delimited by non-alphanumerics.
    let bytes = s.as_bytes();
    let mut best = None;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if (c == b'V' || c == b'A')
            && (i == 0 || !bytes[i - 1].is_ascii_alphanumeric())
            && i + 1 < bytes.len()
            && bytes[i + 1].is_ascii_digit()
        {
            let start = i + 1;
            let mut end = start;
            while end < bytes.len() && bytes[end].is_ascii_digit() {
                end += 1;
            }
            if end == bytes.len() || !bytes[end].is_ascii_alphanumeric() {
                let n: usize = s[start..end].parse().ok()?;
                if n >= 1 {
                    let media = if c == b'V' {
                        MediaType::Video
                    } else {
                        MediaType::Audio
                    };
                    best = Some((media, n - 1));
                }
            }
            i = end;
        } else {
            i += 1;
        }
    }
    best
}

/// A shared, immutable bound-DASH view handle (DESIGN.md §15): sweeps
/// round-trip one manifest per scenario and share the parsed view by
/// `Arc` across every policy built over it.
pub type SharedDash = std::sync::Arc<BoundDash>;

/// A shared, immutable bound-HLS view handle (see [`SharedDash`]).
pub type SharedHls = std::sync::Arc<BoundHls>;

/// What a DASH player knows after parsing the MPD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundDash {
    /// Declared bitrate of each video rung, ascending ladder order.
    pub video_declared: Vec<BitsPerSec>,
    /// Declared bitrate of each audio rung, ascending ladder order.
    pub audio_declared: Vec<BitsPerSec>,
    /// §4.1 extension: server-declared allowed combinations, when the MPD
    /// carries the proposed `SupplementalProperty` (DESIGN.md; standard
    /// DASH has no such mechanism and leaves this `None`).
    pub allowed_combos: Option<Vec<Combo>>,
}

impl BoundDash {
    /// Binds a parsed MPD. Fails when representation ids don't form
    /// complete `V1..Vm` / `A1..An` sets.
    pub fn from_mpd(mpd: &Mpd) -> Result<BoundDash, String> {
        let mut video: Vec<Option<BitsPerSec>> = Vec::new();
        let mut audio: Vec<Option<BitsPerSec>> = Vec::new();
        for aset in &mpd.adaptation_sets {
            for rep in &aset.representations {
                let (media, idx) = parse_track_name(&rep.id)
                    .ok_or_else(|| format!("unparseable representation id `{}`", rep.id))?;
                if media != aset.content_type {
                    return Err(format!(
                        "representation `{}` in a {} adaptation set",
                        rep.id, aset.content_type
                    ));
                }
                let slot = match media {
                    MediaType::Video => &mut video,
                    MediaType::Audio => &mut audio,
                };
                if slot.len() <= idx {
                    slot.resize(idx + 1, None);
                }
                if slot[idx].replace(rep.bandwidth).is_some() {
                    return Err(format!("duplicate representation `{}`", rep.id));
                }
            }
        }
        let unwrap_all =
            |v: Vec<Option<BitsPerSec>>, what: &str| -> Result<Vec<BitsPerSec>, String> {
                v.into_iter()
                    .enumerate()
                    .map(|(i, b)| b.ok_or(format!("missing {what} track {}", i + 1)))
                    .collect()
            };
        let allowed_combos = mpd
            .allowed_combinations
            .as_ref()
            .map(|pairs| {
                pairs
                    .iter()
                    .map(|(v, a)| {
                        let (vm, vi) = parse_track_name(v)
                            .filter(|(m, _)| *m == MediaType::Video)
                            .ok_or_else(|| format!("bad video id `{v}` in combinations"))?;
                        let (am, ai) = parse_track_name(a)
                            .filter(|(m, _)| *m == MediaType::Audio)
                            .ok_or_else(|| format!("bad audio id `{a}` in combinations"))?;
                        let _ = (vm, am);
                        Ok::<_, String>(Combo::new(vi, ai))
                    })
                    .collect::<Result<Vec<_>, _>>()
            })
            .transpose()?;
        let out = BoundDash {
            video_declared: unwrap_all(video, "video")?,
            audio_declared: unwrap_all(audio, "audio")?,
            allowed_combos,
        };
        if out.video_declared.is_empty() || out.audio_declared.is_empty() {
            return Err("MPD lacks a video or audio adaptation set".to_string());
        }
        if let Some(combos) = &out.allowed_combos {
            for c in combos {
                if c.video >= out.video_declared.len() || c.audio >= out.audio_declared.len() {
                    return Err(format!("combination {c} references a missing track"));
                }
            }
        }
        Ok(out)
    }
}

/// One bound HLS variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundVariant {
    /// The audio+video combination this variant pairs.
    pub combo: Combo,
    /// Aggregate `BANDWIDTH` (peak sum).
    pub bandwidth: BitsPerSec,
    /// Aggregate `AVERAGE-BANDWIDTH`, when declared.
    pub average_bandwidth: Option<BitsPerSec>,
    /// §4.1 extension: the video component's own bitrate, when declared.
    pub video_bandwidth: Option<BitsPerSec>,
    /// §4.1 extension: the audio component's own bitrate, when declared.
    pub audio_bandwidth: Option<BitsPerSec>,
}

/// What an HLS player knows after parsing the master playlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundHls {
    /// Variants in master-playlist listing order.
    pub variants: Vec<BoundVariant>,
    /// Audio ladder indices in `EXT-X-MEDIA` listing order (first = the
    /// rendition ExoPlayer pins).
    pub audio_listing: Vec<usize>,
    /// Per-track video bitrates derived from second-level playlists
    /// (§4.1); `None` until attached.
    pub video_bitrates: Option<Vec<DerivedBitrates>>,
    /// Per-track audio bitrates derived from second-level playlists.
    pub audio_bitrates: Option<Vec<DerivedBitrates>>,
}

impl BoundHls {
    /// Binds a parsed master playlist.
    pub fn from_master(master: &MasterPlaylist) -> Result<BoundHls, String> {
        let mut group_to_audio = std::collections::BTreeMap::new();
        let mut audio_listing = Vec::new();
        for m in &master.media {
            let (media, idx) = parse_track_name(&m.group_id)
                .or_else(|| parse_track_name(&m.name))
                .ok_or_else(|| format!("unparseable audio group `{}`", m.group_id))?;
            if media != MediaType::Audio {
                return Err(format!("audio group `{}` names a video track", m.group_id));
            }
            group_to_audio.insert(m.group_id.clone(), idx);
            audio_listing.push(idx);
        }
        let mut variants = Vec::with_capacity(master.variants.len());
        for v in &master.variants {
            let (media, vidx) = parse_track_name(&v.uri)
                .ok_or_else(|| format!("unparseable variant URI `{}`", v.uri))?;
            if media != MediaType::Video {
                return Err(format!("variant URI `{}` is not a video track", v.uri));
            }
            let group = v
                .audio_group
                .as_ref()
                .ok_or_else(|| format!("variant `{}` lacks AUDIO", v.uri))?;
            let aidx = *group_to_audio
                .get(group)
                .ok_or_else(|| format!("variant references unknown audio group `{group}`"))?;
            variants.push(BoundVariant {
                combo: Combo::new(vidx, aidx),
                bandwidth: v.bandwidth,
                average_bandwidth: v.average_bandwidth,
                video_bandwidth: v.video_bandwidth,
                audio_bandwidth: v.audio_bandwidth,
            });
        }
        if variants.is_empty() {
            return Err("master playlist has no variants".to_string());
        }
        Ok(BoundHls {
            variants,
            audio_listing,
            video_bitrates: None,
            audio_bitrates: None,
        })
    }

    /// The combinations the manifest allows, in listing order.
    pub fn allowed_combos(&self) -> Vec<Combo> {
        self.variants.iter().map(|v| v.combo).collect()
    }

    /// Number of distinct video rungs referenced.
    pub fn video_count(&self) -> usize {
        self.variants
            .iter()
            .map(|v| v.combo.video)
            .max()
            .map_or(0, |m| m + 1)
    }

    /// Number of distinct audio rungs referenced (from the listing).
    pub fn audio_count(&self) -> usize {
        self.audio_listing
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m + 1)
    }

    /// The aggregate `BANDWIDTH` of the *first* variant whose video rung is
    /// `video` — ExoPlayer's (over)estimate of that video track's bitrate
    /// under HLS (§3.2 root cause).
    pub fn first_variant_bandwidth_for_video(&self, video: usize) -> Option<BitsPerSec> {
        self.variants
            .iter()
            .find(|v| v.combo.video == video)
            .map(|v| v.bandwidth)
    }

    /// Per-track peak bitrates from the §4.1 *master playlist* extension
    /// (`VIDEO-BANDWIDTH`/`AUDIO-BANDWIDTH`), indexed by ladder rung.
    /// `None` unless every rung is covered by at least one extended
    /// variant — i.e. unless the server adopted the proposal.
    pub fn extension_track_bitrates(&self) -> Option<(Vec<BitsPerSec>, Vec<BitsPerSec>)> {
        let mut video = vec![None; self.video_count()];
        let mut audio = vec![None; self.audio_count()];
        for v in &self.variants {
            if let Some(b) = v.video_bandwidth {
                video[v.combo.video] = Some(b);
            }
            if let Some(b) = v.audio_bandwidth {
                audio[v.combo.audio] = Some(b);
            }
        }
        Some((
            video.into_iter().collect::<Option<Vec<_>>>()?,
            audio.into_iter().collect::<Option<Vec<_>>>()?,
        ))
    }

    /// Implements the §4.1 client-side recommendation: derive per-track
    /// bitrates from the second-level playlists (indexed by ladder rung).
    /// Fails if any playlist lacks the byte-range/bitrate information.
    pub fn attach_derived_bitrates(
        &mut self,
        video_playlists: &[MediaPlaylist],
        audio_playlists: &[MediaPlaylist],
    ) -> Result<(), String> {
        let derive = |pls: &[MediaPlaylist], what: &str| -> Result<Vec<DerivedBitrates>, String> {
            pls.iter()
                .enumerate()
                .map(|(i, p)| {
                    p.derived_bitrates().ok_or(format!(
                        "{what} playlist {} lacks bitrate information",
                        i + 1
                    ))
                })
                .collect()
        };
        self.video_bitrates = Some(derive(video_playlists, "video")?);
        self.audio_bitrates = Some(derive(audio_playlists, "audio")?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_master_playlist, build_media_playlist, build_mpd, Packaging};
    use abr_media::combo::{all_combos, curated_subset};
    use abr_media::content::Content;
    use abr_media::track::TrackId;

    #[test]
    fn parse_track_name_variants() {
        assert_eq!(parse_track_name("V3"), Some((MediaType::Video, 2)));
        assert_eq!(parse_track_name("A1"), Some((MediaType::Audio, 0)));
        assert_eq!(parse_track_name("aud-A2"), Some((MediaType::Audio, 1)));
        assert_eq!(
            parse_track_name("video/V12/playlist.m3u8"),
            Some((MediaType::Video, 11))
        );
        assert_eq!(
            parse_track_name("audio/A3/seg-5.m4s"),
            Some((MediaType::Audio, 2))
        );
        assert_eq!(parse_track_name("nothing"), None);
        assert_eq!(parse_track_name("V0"), None, "track numbers are 1-based");
        assert_eq!(
            parse_track_name("NAVY"),
            None,
            "letters after digits break the match"
        );
    }

    #[test]
    fn bound_dash_from_built_mpd() {
        let c = Content::drama_show(1);
        let mpd = Mpd::parse(&build_mpd(&c).to_text()).unwrap();
        let b = BoundDash::from_mpd(&mpd).unwrap();
        let v: Vec<u64> = b.video_declared.iter().map(|x| x.kbps()).collect();
        assert_eq!(v, vec![111, 246, 473, 914, 1852, 3746]);
        let a: Vec<u64> = b.audio_declared.iter().map(|x| x.kbps()).collect();
        assert_eq!(a, vec![128, 196, 384]);
    }

    #[test]
    fn bound_hls_h_all() {
        let c = Content::drama_show(1);
        let combos = all_combos(c.video(), c.audio());
        let master =
            MasterPlaylist::parse(&build_master_playlist(&c, &combos, &[0, 1, 2]).to_text())
                .unwrap();
        let b = BoundHls::from_master(&master).unwrap();
        assert_eq!(b.variants.len(), 18);
        assert_eq!(b.allowed_combos(), combos);
        assert_eq!(b.audio_listing, vec![0, 1, 2]);
        assert_eq!(b.video_count(), 6);
        assert_eq!(b.audio_count(), 3);
        assert!(b.video_bitrates.is_none());
    }

    #[test]
    fn first_variant_bandwidth_overestimates() {
        // H_sub with A3 listed first: the only variant containing V5 is
        // V5+A3 at 2773 Kbps — ExoPlayer treats that as V5's bitrate even
        // though V5's real peak is 2382.
        let c = Content::drama_show(1);
        let combos = curated_subset(c.video(), c.audio());
        let b = BoundHls::from_master(&build_master_playlist(&c, &combos, &[2, 0, 1])).unwrap();
        assert_eq!(b.first_variant_bandwidth_for_video(4).unwrap().kbps(), 2773);
        assert_eq!(b.audio_listing[0], 2, "A3 listed first");
    }

    #[test]
    fn attach_derived_bitrates_roundtrip() {
        let c = Content::drama_show(1);
        let combos = curated_subset(c.video(), c.audio());
        let mut b = BoundHls::from_master(&build_master_playlist(&c, &combos, &[0, 1, 2])).unwrap();
        let vids: Vec<MediaPlaylist> = (0..6)
            .map(|i| build_media_playlist(&c, TrackId::video(i), Packaging::SingleFile))
            .collect();
        let auds: Vec<MediaPlaylist> = (0..3)
            .map(|i| build_media_playlist(&c, TrackId::audio(i), Packaging::SingleFile))
            .collect();
        b.attach_derived_bitrates(&vids, &auds).unwrap();
        let vb = b.video_bitrates.as_ref().unwrap();
        assert!(
            (vb[2].peak.kbps() as i64 - 641).abs() <= 1,
            "V3 derived peak"
        );
        let ab = b.audio_bitrates.as_ref().unwrap();
        assert!((ab[2].avg.kbps() as i64 - 384).abs() <= 1, "A3 derived avg");
    }

    #[test]
    fn attach_fails_on_lazy_packaging() {
        let c = Content::drama_show(1);
        let combos = curated_subset(c.video(), c.audio());
        let mut b = BoundHls::from_master(&build_master_playlist(&c, &combos, &[0, 1, 2])).unwrap();
        let lazy: Vec<MediaPlaylist> = (0..6)
            .map(|i| {
                build_media_playlist(
                    &c,
                    TrackId::video(i),
                    Packaging::SegmentFiles {
                        with_bitrate_tags: false,
                    },
                )
            })
            .collect();
        assert!(b.attach_derived_bitrates(&lazy, &[]).is_err());
    }

    #[test]
    fn bound_dash_rejects_gaps() {
        let c = Content::drama_show(1);
        let mut mpd = build_mpd(&c);
        mpd.adaptation_sets[0].representations.remove(2); // drop V3
        assert!(BoundDash::from_mpd(&mpd).is_err());
    }

    #[test]
    fn bound_hls_rejects_unknown_group() {
        let c = Content::drama_show(1);
        let combos = curated_subset(c.video(), c.audio());
        let mut master = build_master_playlist(&c, &combos, &[0, 1, 2]);
        master.variants[0].audio_group = Some("aud-A9".into());
        assert!(BoundHls::from_master(&master).is_err());
    }
}
