//! Property-based tests: manifest round trips over arbitrary ladders and
//! combination sets.

use abr_event::time::Duration;
use abr_manifest::build::{
    build_master_playlist, build_master_playlist_ext, build_media_playlist, build_mpd,
    build_mpd_with_combos, Packaging,
};
use abr_manifest::view::{BoundDash, BoundHls};
use abr_manifest::{MasterPlaylist, MediaPlaylist, Mpd};
use abr_media::combo::Combo;
use abr_media::content::Content;
use abr_media::ladder::Ladder;
use abr_media::track::{MediaType, TrackId, TrackInfo};
use proptest::prelude::*;

/// Arbitrary content: random strictly-ascending ladders, modest chunk
/// counts (content synthesis is cheap but not free).
fn arb_content() -> impl Strategy<Value = Content> {
    (
        proptest::collection::vec(1u64..400, 1..7),
        proptest::collection::vec(1u64..200, 1..4),
        3usize..20, // ≥3 so a 2×avg peak chunk stays below the clip total
        any::<u64>(),
    )
        .prop_map(|(vinc, ainc, chunks, seed)| {
            let mut acc = 50u64;
            let video: Vec<TrackInfo> = vinc
                .iter()
                .enumerate()
                .map(|(i, inc)| {
                    acc += inc;
                    TrackInfo::video(i, acc, acc * 2, acc, 144)
                })
                .collect();
            let mut acc = 24u64;
            let audio: Vec<TrackInfo> = ainc
                .iter()
                .enumerate()
                .map(|(i, inc)| {
                    acc += inc;
                    TrackInfo::audio(i, acc, acc * 2, acc, 2, 44_000)
                })
                .collect();
            Content::new(
                Ladder::new(MediaType::Video, video),
                Ladder::new(MediaType::Audio, audio),
                Duration::from_secs(4),
                chunks,
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// MPD text round trip preserves everything, including the §4.1
    /// combinations extension, and binds to the same declared bitrates.
    #[test]
    fn mpd_roundtrip_arbitrary(content in arb_content(), with_ext in any::<bool>()) {
        let combos: Vec<Combo> =
            abr_media::combo::curated_subset(content.video(), content.audio());
        let mpd = if with_ext {
            build_mpd_with_combos(&content, &combos)
        } else {
            build_mpd(&content)
        };
        let back = Mpd::parse(&mpd.to_text()).unwrap();
        prop_assert_eq!(&back, &mpd);
        let view = BoundDash::from_mpd(&back).unwrap();
        prop_assert_eq!(view.video_declared.len(), content.video().len());
        prop_assert_eq!(view.audio_declared.len(), content.audio().len());
        for (i, b) in view.video_declared.iter().enumerate() {
            prop_assert_eq!(*b, content.video().get(i).declared);
        }
        if with_ext {
            prop_assert_eq!(view.allowed_combos.as_deref(), Some(combos.as_slice()));
        } else {
            prop_assert_eq!(view.allowed_combos, None);
        }
    }

    /// HLS master round trip preserves variants (with and without the
    /// per-track extension) and binds to the same combination list.
    #[test]
    fn master_roundtrip_arbitrary(content in arb_content(), with_ext in any::<bool>()) {
        let combos = abr_media::combo::all_combos(content.video(), content.audio());
        let order: Vec<usize> = (0..content.audio().len()).collect();
        let master = if with_ext {
            build_master_playlist_ext(&content, &combos, &order)
        } else {
            build_master_playlist(&content, &combos, &order)
        };
        let back = MasterPlaylist::parse(&master.to_text()).unwrap();
        prop_assert_eq!(&back, &master);
        let view = BoundHls::from_master(&back).unwrap();
        prop_assert_eq!(view.allowed_combos(), combos);
        if with_ext {
            let (v, a) = view.extension_track_bitrates().expect("extension present");
            for (i, b) in v.iter().enumerate() {
                prop_assert_eq!(*b, content.video().get(i).peak);
            }
            prop_assert_eq!(a.len(), content.audio().len());
        } else {
            prop_assert_eq!(view.extension_track_bitrates(), None);
        }
    }

    /// Media playlists round trip under both packaging modes, and the
    /// derived bitrates match the track's measured statistics.
    #[test]
    fn media_playlist_roundtrip_arbitrary(
        content in arb_content(),
        single_file in any::<bool>(),
    ) {
        let packaging = if single_file {
            Packaging::SingleFile
        } else {
            Packaging::SegmentFiles { with_bitrate_tags: true }
        };
        for &id in content.track_ids() {
            let pl = build_media_playlist(&content, id, packaging);
            let back = MediaPlaylist::parse(&pl.to_text()).unwrap();
            prop_assert_eq!(&back, &pl);
            prop_assert_eq!(back.segments.len(), content.num_chunks());
            prop_assert_eq!(back.duration(), content.duration());
            let derived = back.derived_bitrates().expect("information present");
            let track = content.track(id);
            // Byte ranges are exact; EXT-X-BITRATE rounds to whole Kbps, so
            // allow 1 Kbps per segment of drift on the average.
            let tol: i64 = if single_file { 1 } else { 2 };
            prop_assert!(
                (derived.avg.kbps() as i64 - track.avg.kbps() as i64).abs() <= tol,
                "derived avg {} vs track {}", derived.avg.kbps(), track.avg.kbps()
            );
        }
    }

    /// Byte ranges tile every track file exactly.
    #[test]
    fn byteranges_tile(content in arb_content()) {
        for &id in content.track_ids() {
            let pl = build_media_playlist(&content, id, Packaging::SingleFile);
            let mut offset = 0u64;
            for seg in &pl.segments {
                let (len, off) = seg.byterange.expect("single-file packaging");
                prop_assert_eq!(off, offset);
                offset += len.get();
            }
            prop_assert_eq!(offset, content.track_bytes(id).get());
        }
        let _ = TrackId::video(0);
    }
}
