//! Property-based tests for the QoE metrics.

use abr_event::time::{Duration, Instant};
use abr_media::combo::Combo;
use abr_media::track::{MediaType, TrackId};
use abr_media::units::BitsPerSec;
use abr_player::log::{BufferSample, SelectionEvent, SessionLog};
use abr_player::playback::Stall;
use abr_qoe::{
    chunk_qualities, chunk_qualities_weighted, combos_used, off_manifest_chunks, summarize,
    summarize_for_content, ContentProfile, QoeWeights,
};
use proptest::prelude::*;

/// Builds a synthetic log from per-chunk (video rung, audio rung) picks
/// and stall windows.
fn make_log(picks: &[(usize, usize)], stalls: &[(u64, u64)]) -> SessionLog {
    let mut selections = Vec::new();
    for (chunk, &(v, a)) in picks.iter().enumerate() {
        let vb = 100 + 200 * v as u64;
        let ab = 64 + 64 * a as u64;
        selections.push(SelectionEvent {
            at: Instant::from_secs(chunk as u64 * 4),
            chunk,
            track: TrackId::video(v),
            declared: BitsPerSec::from_kbps(vb),
            avg_bitrate: BitsPerSec::from_kbps(vb),
        });
        selections.push(SelectionEvent {
            at: Instant::from_secs(chunk as u64 * 4),
            chunk,
            track: TrackId::audio(a),
            declared: BitsPerSec::from_kbps(ab),
            avg_bitrate: BitsPerSec::from_kbps(ab),
        });
    }
    let finished = Instant::from_secs(picks.len() as u64 * 4 + 100);
    SessionLog {
        policy: "prop".into(),
        selections,
        transfers: vec![],
        buffer_samples: vec![
            BufferSample {
                at: Instant::ZERO,
                audio: Duration::ZERO,
                video: Duration::ZERO,
            },
            BufferSample {
                at: finished,
                audio: Duration::ZERO,
                video: Duration::ZERO,
            },
        ],
        stalls: stalls
            .iter()
            .map(|&(s, d)| Stall {
                start: Instant::from_secs(s),
                end: Some(Instant::from_secs(s + d)),
            })
            .collect(),
        playlist_fetches: vec![],
        seeks: vec![],
        startup_at: Some(Instant::from_millis(700)),
        ended_at: Some(finished),
        finished_at: finished,
        chunk_duration: Duration::from_secs(4),
        num_chunks: picks.len(),
    }
}

fn arb_picks() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0usize..6, 0usize..3), 1..60)
}

proptest! {
    /// combos_used run-lengths sum to the chunk count and, flattened,
    /// reproduce the input pick sequence.
    #[test]
    fn combos_rle_roundtrip(picks in arb_picks()) {
        let log = make_log(&picks, &[]);
        let rle = combos_used(&log);
        let total: usize = rle.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(total, picks.len());
        let mut flat = Vec::new();
        for (c, n) in &rle {
            for _ in 0..*n {
                flat.push((c.video, c.audio));
            }
        }
        prop_assert_eq!(flat, picks);
        // RLE is maximal: no two consecutive runs share a combo.
        prop_assert!(rle.windows(2).all(|w| w[0].0 != w[1].0));
    }

    /// off_manifest_chunks is between 0 and the chunk count, zero against
    /// the full combination set and the full count against an empty set.
    #[test]
    fn off_manifest_bounds(picks in arb_picks()) {
        let log = make_log(&picks, &[]);
        let all: Vec<Combo> = (0..6)
            .flat_map(|v| (0..3).map(move |a| Combo::new(v, a)))
            .collect();
        prop_assert_eq!(off_manifest_chunks(&log, &all), 0);
        prop_assert_eq!(off_manifest_chunks(&log, &[]), picks.len());
        let some = &all[..6];
        let k = off_manifest_chunks(&log, some);
        prop_assert!(k <= picks.len());
    }

    /// More stall time never increases the score (everything else fixed).
    #[test]
    fn score_monotone_in_stalls(picks in arb_picks(), d1 in 0u64..30, d2 in 0u64..30) {
        let (lo, hi) = (d1.min(d2), d1.max(d2));
        let s_lo = summarize(&make_log(&picks, &[(10, lo)]));
        let s_hi = summarize(&make_log(&picks, &[(10, hi)]));
        prop_assert!(s_hi.score <= s_lo.score + 1e-9);
        prop_assert!(s_hi.total_stall >= s_lo.total_stall);
    }

    /// Content profiles: the weighted quality is a linear blend — scaling
    /// a profile scales the quality term exactly.
    #[test]
    fn profile_linearity(picks in arb_picks(), wv in 1u32..5, wa in 1u32..5) {
        let log = make_log(&picks, &[]);
        let base = chunk_qualities(&log);
        let weighted = chunk_qualities_weighted(
            &log,
            ContentProfile { video_weight: wv as f64, audio_weight: wa as f64 },
        );
        prop_assert_eq!(base.len(), weighted.len());
        for (chunk, (&(v, a), (&b, &w))) in
            picks.iter().zip(base.iter().zip(weighted.iter())).enumerate()
        {
            let vb = (100 + 200 * v as u64) as f64 / 1000.0;
            let ab = (64 + 64 * a as u64) as f64 / 1000.0;
            prop_assert!((b - (vb + ab)).abs() < 1e-9, "chunk {chunk} neutral");
            prop_assert!(
                (w - (wv as f64 * vb + wa as f64 * ab)).abs() < 1e-9,
                "chunk {chunk} weighted"
            );
        }
        // And the summary uses the weighted series.
        let s = summarize_for_content(
            &log,
            QoeWeights::default(),
            ContentProfile { video_weight: wv as f64, audio_weight: wa as f64 },
        );
        prop_assert!(s.score.is_finite());
    }

    /// Switch counts: between 0 and chunks−1 per media, and zero for a
    /// constant pick sequence.
    #[test]
    fn switch_count_bounds(picks in arb_picks()) {
        let log = make_log(&picks, &[]);
        let n = picks.len();
        for media in [MediaType::Audio, MediaType::Video] {
            let s = log.switch_count(media);
            prop_assert!(s <= n.saturating_sub(1));
        }
        let constant = make_log(&vec![(2, 1); n], &[]);
        prop_assert_eq!(constant.switch_count(MediaType::Video), 0);
        prop_assert_eq!(constant.switch_count(MediaType::Audio), 0);
    }
}
