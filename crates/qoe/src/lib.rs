//! # abr-qoe — quality-of-experience metrics
//!
//! Turns a [`abr_player::SessionLog`] into the quantities the paper argues
//! about: rebuffering, selected quality, track switching, audio/video
//! buffer imbalance, and adherence to the manifest's allowed combinations.
//! Also provides a composite linear QoE score in the style of Yin et al.
//! (the paper's reference \[25\]) extended with the audio component.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use abr_event::time::Duration;
use abr_media::combo::Combo;
use abr_media::track::MediaType;
use abr_player::SessionLog;

/// Content-type weighting for the quality term (§2.1: "for music shows,
/// the sound quality may be relatively more important than video quality
/// ... for an action movie, the desirable combinations may be the
/// opposite"). Weights scale each component's bitrate before they are
/// summed into per-chunk quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentProfile {
    /// Multiplier on the video component (Mbps).
    pub video_weight: f64,
    /// Multiplier on the audio component (Mbps).
    pub audio_weight: f64,
}

impl ContentProfile {
    /// Equal weighting — the default, used when nothing is known about the
    /// content.
    pub const NEUTRAL: ContentProfile = ContentProfile {
        video_weight: 1.0,
        audio_weight: 1.0,
    };
    /// A concert or music show: audio bits count double.
    pub const MUSIC_SHOW: ContentProfile = ContentProfile {
        video_weight: 1.0,
        audio_weight: 2.0,
    };
    /// An action movie: video bits count double.
    pub const ACTION_MOVIE: ContentProfile = ContentProfile {
        video_weight: 2.0,
        audio_weight: 1.0,
    };
}

/// Composite QoE model weights, after Yin et al. \[25\]: per-chunk quality is
/// the combined audio+video average bitrate in Mbps; switches and stalls
/// subtract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QoeWeights {
    /// Penalty per Mbps of per-chunk quality change (λ).
    pub switch_penalty: f64,
    /// Penalty per second of rebuffering (μ). 4.3 in \[25\] for quality in
    /// Mbps.
    pub stall_penalty: f64,
    /// Penalty per second of startup delay (μ_s in \[25\], usually smaller).
    pub startup_penalty: f64,
}

impl Default for QoeWeights {
    fn default() -> Self {
        QoeWeights {
            switch_penalty: 1.0,
            stall_penalty: 4.3,
            startup_penalty: 1.0,
        }
    }
}

/// Everything QoE-relevant about one session.
#[derive(Debug, Clone, PartialEq)]
pub struct QoeSummary {
    /// Policy that produced the session.
    pub policy: String,
    /// Content played to the end with every chunk fetched.
    pub completed: bool,
    /// Request-to-first-frame delay.
    pub startup_delay: Option<Duration>,
    /// Number of rebuffering events.
    pub stall_count: usize,
    /// Total rebuffering time.
    pub total_stall: Duration,
    /// Stall time over total session wall time.
    pub rebuffer_ratio: f64,
    /// Mean selected video average-bitrate, Kbps.
    pub mean_video_kbps: u64,
    /// Mean selected audio average-bitrate, Kbps.
    pub mean_audio_kbps: u64,
    /// Video track switches.
    pub video_switches: usize,
    /// Audio track switches.
    pub audio_switches: usize,
    /// Time-averaged |audio − video| buffer difference.
    pub mean_imbalance: Duration,
    /// Maximum |audio − video| buffer difference.
    pub max_imbalance: Duration,
    /// Composite linear QoE score (higher is better).
    pub score: f64,
}

/// Computes the summary with default weights and neutral content.
pub fn summarize(log: &SessionLog) -> QoeSummary {
    summarize_weighted(log, QoeWeights::default())
}

/// Computes the summary with explicit weights and neutral content.
pub fn summarize_weighted(log: &SessionLog, w: QoeWeights) -> QoeSummary {
    summarize_for_content(log, w, ContentProfile::NEUTRAL)
}

/// Computes the summary with a §2.1 content-type profile weighting the
/// audio and video components of the quality term.
pub fn summarize_for_content(
    log: &SessionLog,
    w: QoeWeights,
    profile: ContentProfile,
) -> QoeSummary {
    let wall = log.finished_at.as_secs_f64().max(1e-9);
    let total_stall = log.total_stall();

    // Per-chunk combined quality (Mbps) for the score.
    let audio = log.selected_tracks(MediaType::Audio);
    let video = log.selected_tracks(MediaType::Video);
    let per_chunk_mbps: Vec<f64> = chunk_qualities_weighted(log, profile);
    let quality: f64 = per_chunk_mbps.iter().sum::<f64>() / per_chunk_mbps.len().max(1) as f64;
    let switching: f64 = per_chunk_mbps
        .windows(2)
        .map(|p| (p[1] - p[0]).abs())
        .sum::<f64>()
        / per_chunk_mbps.len().max(1) as f64;
    let startup = log
        .startup_at
        .map(abr_event::Instant::as_secs_f64)
        .unwrap_or(wall);
    let score = quality
        - w.switch_penalty * switching
        - w.stall_penalty * total_stall.as_secs_f64() / (log.num_chunks as f64).max(1.0)
        - w.startup_penalty * startup / (log.num_chunks as f64).max(1.0);

    QoeSummary {
        policy: log.policy.clone(),
        completed: log.completed(),
        startup_delay: log
            .startup_at
            .map(|t| t.saturating_duration_since(abr_event::time::Instant::ZERO)),
        stall_count: log.stall_count(),
        total_stall,
        rebuffer_ratio: total_stall.as_secs_f64() / wall,
        mean_video_kbps: log
            .mean_selected_avg_bitrate(MediaType::Video)
            .map_or(0, abr_media::BitsPerSec::kbps),
        mean_audio_kbps: log
            .mean_selected_avg_bitrate(MediaType::Audio)
            .map_or(0, abr_media::BitsPerSec::kbps),
        video_switches: if video.len() >= 2 {
            log.switch_count(MediaType::Video)
        } else {
            0
        },
        audio_switches: if audio.len() >= 2 {
            log.switch_count(MediaType::Audio)
        } else {
            0
        },
        mean_imbalance: log.mean_buffer_imbalance(),
        max_imbalance: log.max_buffer_imbalance(),
        score,
    }
}

/// Combined audio+video average bitrate (Mbps) selected for each chunk
/// position covered by both media types.
pub fn chunk_qualities(log: &SessionLog) -> Vec<f64> {
    chunk_qualities_weighted(log, ContentProfile::NEUTRAL)
}

/// [`chunk_qualities`] with a §2.1 content-type weighting.
pub fn chunk_qualities_weighted(log: &SessionLog, profile: ContentProfile) -> Vec<f64> {
    let mut audio = vec![None; log.num_chunks];
    let mut video = vec![None; log.num_chunks];
    for s in &log.selections {
        match s.track.media {
            MediaType::Audio => audio[s.chunk] = Some(s.avg_bitrate),
            MediaType::Video => video[s.chunk] = Some(s.avg_bitrate),
        }
    }
    audio
        .into_iter()
        .zip(video)
        .filter_map(|(a, v)| match (a, v) {
            (Some(a), Some(v)) => Some(
                (profile.audio_weight * a.bps() as f64 + profile.video_weight * v.bps() as f64)
                    / 1_000_000.0,
            ),
            _ => None,
        })
        .collect()
}

/// The (video, audio) combination selected for each chunk position,
/// run-length encoded in playback order.
pub fn combos_used(log: &SessionLog) -> Vec<(Combo, usize)> {
    let audio = log.selected_tracks(MediaType::Audio);
    let video = log.selected_tracks(MediaType::Video);
    let n = audio.len().min(video.len());
    let mut out: Vec<(Combo, usize)> = Vec::new();
    for i in 0..n {
        let c = Combo::new(video[i], audio[i]);
        match out.last_mut() {
            Some((last, count)) if *last == c => *count += 1,
            _ => out.push((c, 1)),
        }
    }
    out
}

/// Distinct combinations used, in first-use order.
pub fn distinct_combos(log: &SessionLog) -> Vec<Combo> {
    let mut seen = Vec::new();
    for (c, _) in combos_used(log) {
        if !seen.contains(&c) {
            seen.push(c);
        }
    }
    seen
}

/// Chunks whose selected combination is not in `allowed` — the §3.2
/// "disobeying the manifest" measure.
pub fn off_manifest_chunks(log: &SessionLog, allowed: &[Combo]) -> usize {
    combos_used(log)
        .into_iter()
        .filter(|(c, _)| !allowed.contains(c))
        .map(|(_, n)| n)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_event::time::Instant;
    use abr_media::track::TrackId;
    use abr_media::units::BitsPerSec;
    use abr_player::log::SelectionEvent;
    use abr_player::playback::Stall;

    fn log_with(selections: Vec<SelectionEvent>, num_chunks: usize) -> SessionLog {
        SessionLog {
            policy: "test".into(),
            selections,
            transfers: vec![],
            buffer_samples: vec![],
            stalls: vec![],
            playlist_fetches: vec![],
            seeks: vec![],
            startup_at: Some(Instant::from_millis(500)),
            ended_at: Some(Instant::from_secs(12)),
            finished_at: Instant::from_secs(12),
            chunk_duration: Duration::from_secs(4),
            num_chunks,
        }
    }

    fn sel(chunk: usize, track: TrackId, kbps: u64) -> SelectionEvent {
        SelectionEvent {
            at: Instant::from_secs(chunk as u64),
            chunk,
            track,
            declared: BitsPerSec::from_kbps(kbps),
            avg_bitrate: BitsPerSec::from_kbps(kbps),
        }
    }

    fn three_chunk_log() -> SessionLog {
        log_with(
            vec![
                sel(0, TrackId::video(1), 246),
                sel(0, TrackId::audio(0), 128),
                sel(1, TrackId::video(1), 246),
                sel(1, TrackId::audio(1), 196),
                sel(2, TrackId::video(2), 362),
                sel(2, TrackId::audio(1), 196),
            ],
            3,
        )
    }

    #[test]
    fn combos_run_length() {
        let log = three_chunk_log();
        assert_eq!(
            combos_used(&log),
            vec![
                (Combo::new(1, 0), 1),
                (Combo::new(1, 1), 1),
                (Combo::new(2, 1), 1)
            ]
        );
        assert_eq!(
            distinct_combos(&log),
            vec![Combo::new(1, 0), Combo::new(1, 1), Combo::new(2, 1)]
        );
    }

    #[test]
    fn off_manifest_counts() {
        let log = three_chunk_log();
        let allowed = vec![Combo::new(1, 0), Combo::new(2, 1)];
        assert_eq!(off_manifest_chunks(&log, &allowed), 1);
        assert_eq!(off_manifest_chunks(&log, &[]), 3);
    }

    #[test]
    fn chunk_qualities_combined() {
        let log = three_chunk_log();
        let q = chunk_qualities(&log);
        assert_eq!(q.len(), 3);
        assert!((q[0] - 0.374).abs() < 1e-9);
        assert!((q[2] - 0.558).abs() < 1e-9);
    }

    #[test]
    fn summary_basics() {
        let mut log = three_chunk_log();
        log.stalls = vec![Stall {
            start: Instant::from_secs(5),
            end: Some(Instant::from_secs(7)),
        }];
        let s = summarize(&log);
        assert_eq!(s.stall_count, 1);
        assert_eq!(s.total_stall, Duration::from_secs(2));
        assert!((s.rebuffer_ratio - 2.0 / 12.0).abs() < 1e-9);
        assert_eq!(s.mean_video_kbps, 285); // (246+246+362)/3 rounded
        assert_eq!(s.mean_audio_kbps, 173); // (128+196+196)/3 rounded
        assert_eq!(s.video_switches, 1);
        assert_eq!(s.audio_switches, 1);
        assert!(s.completed);
        assert_eq!(s.startup_delay, Some(Duration::from_millis(500)));
    }

    #[test]
    fn stalls_reduce_score() {
        let clean = summarize(&three_chunk_log());
        let mut stalled_log = three_chunk_log();
        stalled_log.stalls = vec![Stall {
            start: Instant::from_secs(5),
            end: Some(Instant::from_secs(9)),
        }];
        let stalled = summarize(&stalled_log);
        assert!(stalled.score < clean.score);
    }

    #[test]
    fn switching_reduces_score() {
        let stable = log_with(
            vec![
                sel(0, TrackId::video(1), 246),
                sel(0, TrackId::audio(0), 128),
                sel(1, TrackId::video(1), 246),
                sel(1, TrackId::audio(0), 128),
            ],
            2,
        );
        let flappy = log_with(
            vec![
                sel(0, TrackId::video(0), 111),
                sel(0, TrackId::audio(0), 128),
                sel(1, TrackId::video(2), 381),
                sel(1, TrackId::audio(0), 128),
            ],
            2,
        );
        // Same mean quality (246 vs (111+381)/2) but flappy switches.
        let s_stable = summarize(&stable);
        let s_flappy = summarize(&flappy);
        assert!(s_stable.score > s_flappy.score);
    }

    #[test]
    fn content_profile_reweights_quality() {
        // Same log, different content types: the audio-heavy selection
        // scores better for a music show than for an action movie.
        let audio_heavy = log_with(
            vec![
                sel(0, TrackId::video(0), 111),
                sel(0, TrackId::audio(2), 384),
                sel(1, TrackId::video(0), 111),
                sel(1, TrackId::audio(2), 384),
            ],
            2,
        );
        let video_heavy = log_with(
            vec![
                sel(0, TrackId::video(2), 384),
                sel(0, TrackId::audio(0), 111),
                sel(1, TrackId::video(2), 384),
                sel(1, TrackId::audio(0), 111),
            ],
            2,
        );
        let w = QoeWeights::default();
        let music_a = summarize_for_content(&audio_heavy, w, ContentProfile::MUSIC_SHOW);
        let music_v = summarize_for_content(&video_heavy, w, ContentProfile::MUSIC_SHOW);
        assert!(
            music_a.score > music_v.score,
            "music favors the audio-heavy pick"
        );
        let action_a = summarize_for_content(&audio_heavy, w, ContentProfile::ACTION_MOVIE);
        let action_v = summarize_for_content(&video_heavy, w, ContentProfile::ACTION_MOVIE);
        assert!(
            action_v.score > action_a.score,
            "action favors the video-heavy pick"
        );
        // Neutral weighting ties them (identical total bitrate).
        let na = summarize(&audio_heavy);
        let nv = summarize(&video_heavy);
        assert!((na.score - nv.score).abs() < 1e-9);
    }

    #[test]
    fn incomplete_sessions_flagged() {
        let mut log = three_chunk_log();
        log.ended_at = None;
        assert!(!summarize(&log).completed);
    }
}
