//! Rule-by-rule fixture tests: every rule both fires (exact ids + spans)
//! and is suppressed when the allowlist or its scope says so.

use abr_lint::allowlist::Allowlist;
use abr_lint::{lint_source, LintReport};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn fixture_allowlist() -> Allowlist {
    Allowlist::parse(&fixture("allow.toml")).expect("fixture allow.toml parses")
}

/// Lints one fixture under a virtual workspace path with an empty
/// allowlist, returning `(rule, line, col)` triples.
fn spans_of(virtual_path: &str, name: &str) -> Vec<(&'static str, usize, usize)> {
    let allow = Allowlist::default();
    let mut report = LintReport::default();
    lint_source(virtual_path, &fixture(name), &allow, &mut [], &mut report);
    report.violations.sort_by_key(|v| (v.line, v.col, v.rule));
    report
        .violations
        .iter()
        .map(|v| (v.rule, v.line, v.col))
        .collect()
}

#[test]
fn l001_hash_collections_fires_with_exact_spans() {
    assert_eq!(
        spans_of("crates/net/src/fixture.rs", "hash_collections.rs"),
        vec![("ABR-L001", 3, 23), ("ABR-L001", 7, 12)],
        "cfg(test) HashSet and string-literal HashSet must not fire"
    );
}

#[test]
fn l002_host_clock_fires_with_exact_spans() {
    assert_eq!(
        spans_of("crates/player/src/fixture.rs", "host_clock.rs"),
        vec![
            ("ABR-L002", 8, 14),  // std::time
            ("ABR-L002", 8, 25),  // Instant::now
            ("ABR-L002", 12, 14), // std::time
            ("ABR-L002", 12, 25), // SystemTime
            ("ABR-L002", 13, 5),  // std::time
            ("ABR-L002", 13, 16), // SystemTime
        ]
    );
}

#[test]
fn l002_host_timing_module_is_allowlisted() {
    // The same source under the obs host-timing module path, with the
    // allowlist: every site suppressed, nothing stale about that entry.
    let allow = fixture_allowlist();
    let mut used = vec![false; allow.entries.len()];
    let mut report = LintReport::default();
    lint_source(
        "crates/obs/src/tracer.rs",
        &fixture("host_clock.rs"),
        &allow,
        &mut used,
        &mut report,
    );
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.suppressed.len(), 6);
    assert!(used[0], "the tracer.rs entry must be marked used");
}

#[test]
fn l002_profiler_outside_host_timing_module_still_fires() {
    // The span profiler lives one file over from the allowlisted
    // host-timing module. A profiler that read std::time itself under
    // `crates/obs/src/profile.rs` must still trip L002 even with the
    // allowlist loaded — clock confinement ends at tracer.rs.
    let allow = fixture_allowlist();
    let mut used = vec![false; allow.entries.len()];
    let mut report = LintReport::default();
    lint_source(
        "crates/obs/src/profile.rs",
        &fixture("profiler_clock.rs"),
        &allow,
        &mut used,
        &mut report,
    );
    assert!(
        !report.violations.is_empty(),
        "a host clock outside tracer.rs must fire L002"
    );
    assert!(report.violations.iter().all(|v| v.rule == "ABR-L002"));
    assert!(
        report.suppressed.is_empty(),
        "the tracer.rs allowlist entry must not reach profile.rs"
    );
    assert!(!used[0], "entry must stay unused under profile.rs");
}

#[test]
fn l003_external_rng_fires_and_home_module_is_exempt() {
    assert_eq!(
        spans_of("crates/core/src/fixture.rs", "external_rng.rs"),
        vec![
            ("ABR-L003", 7, 17),  // rand::
            ("ABR-L003", 7, 23),  // thread_rng
            ("ABR-L003", 12, 13), // StdRng
            ("ABR-L003", 12, 21), // from_entropy
        ]
    );
    // The identical tokens inside the rule's home module are exempt.
    assert_eq!(
        spans_of("crates/event/src/rng.rs", "external_rng.rs"),
        vec![]
    );
}

#[test]
fn l004_float_time_fires_in_core_and_not_in_policy_code() {
    assert_eq!(
        spans_of("crates/net/src/link.rs", "float_time.rs"),
        vec![
            ("ABR-L004", 4, 28),
            ("ABR-L004", 6, 20),
            ("ABR-L004", 8, 24),
        ]
    );
    // Policy math is float by the paper's definition: out of scope.
    assert_eq!(
        spans_of("crates/core/src/fixture.rs", "float_time.rs"),
        vec![]
    );
}

#[test]
fn l005_unkeyed_iteration_fires_in_dispatch_modules_only() {
    assert_eq!(
        spans_of("crates/player/src/engine.rs", "unkeyed_iter.rs"),
        vec![("ABR-L005", 6, 21), ("ABR-L005", 9, 21)],
        "keyed .iter() must not fire"
    );
    assert_eq!(
        spans_of("crates/media/src/combo.rs", "unkeyed_iter.rs"),
        vec![]
    );
}

#[test]
fn l005_arena_iteration_in_dispatch_paths_must_be_keyed() {
    // Arena/slotmap storage replaced the BTreeMaps in the fleet driver's
    // active-session table; draining it by `.values()` would hide whether
    // the visit order is the slot order. Both arena-bearing dispatch
    // modules are in scope; the keyed `.iter()` loop and the cfg(test)
    // sweep stay silent.
    for module in [
        "crates/bench/src/fleet/driver.rs",
        "crates/event/src/arena.rs",
    ] {
        assert_eq!(
            spans_of(module, "slotmap_unkeyed.rs"),
            vec![("ABR-L005", 10, 26), ("ABR-L005", 13, 26)],
            "under {module}"
        );
    }
    // The same code outside a dispatch module is out of scope.
    assert_eq!(
        spans_of("crates/media/src/combo.rs", "slotmap_unkeyed.rs"),
        vec![]
    );
}

#[test]
fn l006_truncating_cast_fires_in_time_core_only() {
    assert_eq!(
        spans_of("crates/event/src/time.rs", "truncating_cast.rs"),
        vec![("ABR-L006", 4, 7), ("ABR-L006", 16, 34)],
        "widening as u128 and u64::try_from must not fire"
    );
    // Under link.rs the cast rule is out of scope (L004 still sees the
    // fixture's f64 parameter, which is the float rule doing its job).
    let elsewhere = spans_of("crates/net/src/link.rs", "truncating_cast.rs");
    assert!(
        elsewhere.iter().all(|(rule, _, _)| *rule != "ABR-L006"),
        "the cast rule only governs abr_event::time: {elsewhere:?}"
    );
}

#[test]
fn l006_rounding_boundary_is_allowlisted_by_pattern() {
    let allow = fixture_allowlist();
    let mut used = vec![false; allow.entries.len()];
    let mut report = LintReport::default();
    lint_source(
        "crates/event/src/time.rs",
        &fixture("truncating_cast.rs"),
        &allow,
        &mut used,
        &mut report,
    );
    // Line 16 (`.round() as u64`) suppressed; line 4 still fires.
    assert_eq!(report.violations.len(), 1);
    assert_eq!(
        (report.violations[0].line, report.violations[0].col),
        (4, 7)
    );
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].line, 16);
    assert!(used[1], "the time.rs rounding entry must be marked used");
}

#[test]
fn l007_weak_ordering_fires_with_exact_spans() {
    assert_eq!(
        spans_of("crates/bench/src/runner.rs", "weak_ordering.rs"),
        vec![
            ("ABR-L007", 8, 27),  // Ordering::Relaxed
            ("ABR-L007", 12, 19), // Ordering::Release
            ("ABR-L007", 13, 23), // Ordering::Acquire
            ("ABR-L007", 14, 26), // Ordering::AcqRel
        ],
        "SeqCst and cfg(test) Relaxed must not fire"
    );
}

#[test]
fn l007_justified_edge_is_suppressed_by_pattern() {
    // A lint.toml entry naming the happens-before edge covers exactly the
    // ordering it cites; the other weak orderings in the file still fire.
    let allow = Allowlist::parse(
        r#"
[[allow]]
rule = "ABR-L007"
path = "crates/bench/src/runner.rs"
pattern = "Ordering::Relaxed"
justification = "claim counter RMW: total modification order hands out unique chunks; results synchronize via mpsc send/recv and the thread::scope join"
"#,
    )
    .expect("inline allowlist parses");
    let mut used = vec![false; allow.entries.len()];
    let mut report = LintReport::default();
    lint_source(
        "crates/bench/src/runner.rs",
        &fixture("weak_ordering.rs"),
        &allow,
        &mut used,
        &mut report,
    );
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].line, 8);
    assert_eq!(
        report.violations.len(),
        3,
        "Release/Acquire/AcqRel stay unjustified: {:?}",
        report.violations
    );
    assert!(used[0], "the Relaxed entry must be marked used");
}

#[test]
fn l008_concurrency_primitives_fire_outside_designated_modules() {
    assert_eq!(
        spans_of("crates/core/src/fixture.rs", "concurrency_outside.rs"),
        vec![
            ("ABR-L008", 5, 10),  // sync::atomic
            ("ABR-L008", 5, 24),  // AtomicU64
            ("ABR-L008", 6, 16),  // Barrier
            ("ABR-L008", 7, 16),  // Mutex
            ("ABR-L008", 10, 17), // AtomicU64::new
            ("ABR-L008", 11, 10), // thread::scope
            ("ABR-L008", 14, 13), // Mutex::new
        ],
        "Arc and cfg(test) Mutex must not fire"
    );
}

#[test]
fn l008_designated_modules_are_exempt() {
    // The same primitives inside any designated concurrency module are
    // that module's business (and ABR-L007 audits its orderings).
    for module in [
        "crates/bench/src/runner.rs",
        "crates/bench/src/fleet/driver.rs",
        "crates/obs/src/tracer.rs",
    ] {
        let spans = spans_of(module, "concurrency_outside.rs");
        assert!(
            spans.iter().all(|(rule, _, _)| *rule != "ABR-L008"),
            "under {module}: {spans:?}"
        );
    }
}

#[test]
fn l009_raw_board_access_fires_outside_the_driver() {
    assert_eq!(
        spans_of("crates/bench/src/fixture.rs", "raw_board_access.rs"),
        vec![
            ("ABR-L009", 5, 27),  // WindowBoard (use)
            ("ABR-L009", 7, 17),  // WindowBoard (type)
            ("ABR-L009", 8, 18),  // .demand[
            ("ABR-L009", 9, 18),  // .alive[
            ("ABR-L009", 10, 18), // .next_at[
        ],
        "a plain `demand` variable must not fire"
    );
    // Inside the driver the board implements its own protocol API.
    let home = spans_of("crates/bench/src/fleet/driver.rs", "raw_board_access.rs");
    assert!(
        home.iter().all(|(rule, _, _)| *rule != "ABR-L009"),
        "{home:?}"
    );
}

#[test]
fn stale_allowlist_entries_are_detected() {
    // Run the two fixture scans that use the allowlist; the third entry
    // (qoe/nonexistent.rs) never matches and must surface as stale.
    let allow = fixture_allowlist();
    let mut used = vec![false; allow.entries.len()];
    let mut report = LintReport::default();
    lint_source(
        "crates/obs/src/tracer.rs",
        &fixture("host_clock.rs"),
        &allow,
        &mut used,
        &mut report,
    );
    lint_source(
        "crates/event/src/time.rs",
        &fixture("truncating_cast.rs"),
        &allow,
        &mut used,
        &mut report,
    );
    let stale: Vec<usize> = used
        .iter()
        .enumerate()
        .filter_map(|(i, &u)| (!u).then_some(i))
        .collect();
    assert_eq!(stale, vec![2], "exactly the planted stale entry");
    assert_eq!(allow.entries[2].path, "crates/qoe/src/nonexistent.rs");
}
