//! The real workspace must lint clean against the checked-in `lint.toml`,
//! with no stale allowlist entries. This is the same check CI runs via
//! `cargo run -p abr-lint`, kept as a test so `cargo test` alone catches
//! determinism-contract regressions.

use std::path::Path;

use abr_lint::allowlist::Allowlist;
use abr_lint::{lint_workspace, load_allowlist};

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_lints_clean_with_checked_in_allowlist() {
    let root = workspace_root();
    let allow = load_allowlist(&root).expect("lint.toml parses");
    assert!(!allow.entries.is_empty(), "root lint.toml should exist");
    let report = lint_workspace(&root, &allow).expect("workspace scan");
    assert!(
        report.violations.is_empty(),
        "unallowlisted determinism violations:\n{:#?}",
        report.violations
    );
    assert!(
        report.stale.is_empty(),
        "stale lint.toml entries (indices): {:?}",
        report.stale
    );
    assert!(report.files_scanned > 50, "scan saw the whole workspace");
    assert!(report.is_clean());
}

#[test]
fn concurrency_exemptions_are_real_and_audited() {
    // The concurrency contract (DESIGN.md §17) rests on the ABR-L007
    // exemptions actually covering live weak-ordering sites: the claim
    // counter in the runner and the WindowBoard protocol in the fleet
    // driver. If a refactor moved or strengthened those atomics, the
    // entries would go stale (caught above) — and if it *added* weak
    // orderings elsewhere, they would surface as violations. Here we pin
    // the audit trail itself: the suppressed set names both modules.
    let root = workspace_root();
    let allow = load_allowlist(&root).expect("lint.toml parses");
    let report = lint_workspace(&root, &allow).expect("workspace scan");
    for module in [
        "crates/bench/src/runner.rs",
        "crates/bench/src/fleet/driver.rs",
    ] {
        assert!(
            report
                .suppressed
                .iter()
                .any(|v| v.rule == "ABR-L007" && v.path == module),
            "no audited weak-ordering exemption for {module}"
        );
    }
    // Every L007 exemption names its happens-before edge: the lint.toml
    // contract requires the justification to cite the synchronizing
    // construct, not merely assert safety.
    for entry in allow.entries.iter().filter(|e| e.rule == "ABR-L007") {
        let j = entry.justification.to_ascii_lowercase();
        assert!(
            j.contains("happens-before") || j.contains("synchroniz"),
            "ABR-L007 entry for {} must name its happens-before edge",
            entry.path
        );
    }
}

#[test]
fn pruned_justification_resurfaces_the_weak_ordering_sites() {
    // Gate direction 1: dropping the runner's Relaxed justification from
    // lint.toml must make the workspace dirty again — the exemption is
    // doing real work, not papering over nothing.
    let root = workspace_root();
    let allow = load_allowlist(&root).expect("lint.toml parses");
    let src = std::fs::read_to_string(root.join("lint.toml")).expect("read lint.toml");
    let pruned_src: String = {
        // Drop exactly the [[allow]] block for the runner's ABR-L007 entry.
        let mut blocks: Vec<&str> = src.split("[[allow]]").collect();
        let before = blocks.len();
        blocks.retain(|b| !(b.contains("ABR-L007") && b.contains("crates/bench/src/runner.rs")));
        assert_eq!(blocks.len(), before - 1, "exactly one runner L007 entry");
        blocks.join("[[allow]]")
    };
    let pruned = Allowlist::parse(&pruned_src).expect("pruned lint.toml parses");
    assert_eq!(pruned.entries.len(), allow.entries.len() - 1);
    let report = lint_workspace(&root, &pruned).expect("workspace scan");
    let resurfaced: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "ABR-L007" && v.path == "crates/bench/src/runner.rs")
        .collect();
    assert!(
        !resurfaced.is_empty(),
        "pruning the claim-counter justification must resurface its sites"
    );
}

#[test]
fn orphaned_concurrency_exemption_is_reported_stale() {
    // Gate direction 2: an ABR-L007 entry pointing at code that no longer
    // uses a weak ordering must fail the run as stale, so justifications
    // cannot outlive the atomics they argued for.
    let root = workspace_root();
    let src = std::fs::read_to_string(root.join("lint.toml")).expect("read lint.toml");
    let orphaned_src = format!(
        "{src}\n[[allow]]\nrule = \"ABR-L007\"\npath = \"crates/media/src/units.rs\"\n\
         pattern = \"Ordering::Relaxed\"\njustification = \"orphaned: units.rs has no atomics\"\n"
    );
    let orphaned = Allowlist::parse(&orphaned_src).expect("orphaned lint.toml parses");
    let report = lint_workspace(&root, &orphaned).expect("workspace scan");
    assert_eq!(
        report.stale,
        vec![orphaned.entries.len() - 1],
        "exactly the orphaned entry must be stale"
    );
    assert!(!report.is_clean(), "a stale exemption fails the gate");
}
