//! The real workspace must lint clean against the checked-in `lint.toml`,
//! with no stale allowlist entries. This is the same check CI runs via
//! `cargo run -p abr-lint`, kept as a test so `cargo test` alone catches
//! determinism-contract regressions.

use std::path::Path;

use abr_lint::{lint_workspace, load_allowlist};

#[test]
fn workspace_lints_clean_with_checked_in_allowlist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let allow = load_allowlist(&root).expect("lint.toml parses");
    assert!(!allow.entries.is_empty(), "root lint.toml should exist");
    let report = lint_workspace(&root, &allow).expect("workspace scan");
    assert!(
        report.violations.is_empty(),
        "unallowlisted determinism violations:\n{:#?}",
        report.violations
    );
    assert!(
        report.stale.is_empty(),
        "stale lint.toml entries (indices): {:?}",
        report.stale
    );
    assert!(report.files_scanned > 50, "scan saw the whole workspace");
    assert!(report.is_clean());
}
