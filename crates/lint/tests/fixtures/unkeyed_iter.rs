// ABR-L005 fixture: values-only map iteration in event dispatch.
// Scanned under `crates/player/src/engine.rs` (a dispatch module).
use std::collections::BTreeMap;

fn dispatch(pending: &mut BTreeMap<u64, String>) {
    for p in pending.values() { // VIOLATION (.values())
        drop(p);
    }
    for p in pending.values_mut() { // VIOLATION (.values_mut())
        p.clear();
    }
    for (id, p) in pending.iter() { // fine: keyed iteration
        let _ = (id, p);
    }
}
