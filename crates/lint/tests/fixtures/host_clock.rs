// ABR-L002 fixture: host clocks in simulation code.
// Scanned under the virtual path `crates/player/src/fixture.rs`, and a
// second time under `crates/obs/src/tracer.rs` with the allowlist, where
// the `std::time` sites are the designated host-timing module.
use abr_event::time::Instant; // fine: the virtual clock

fn stamp() -> u64 {
    let t0 = std::time::Instant::now(); // VIOLATION (std::time, Instant::now)
    t0.elapsed().as_nanos() as u64
}

fn wall() -> std::time::SystemTime {
    std::time::SystemTime::now() // VIOLATION (std::time, SystemTime)
}
