// ABR-L004 fixture: float accumulation in the time/byte core.
// Scanned under `crates/net/src/link.rs` (in scope) and under
// `crates/core/src/fixture.rs` (out of scope: policy math may be float).
fn drift(spans: &[u64]) -> f64 {
    // the f64 return type above is a VIOLATION (col 28)
    let mut total: f64 = 0.0; // VIOLATION (col 20)
    for s in spans {
        total += *s as f64; // VIOLATION (col 24)
    }
    total
}

fn integer_time(spans: &[u64]) -> u64 {
    spans.iter().sum() // fine
}
