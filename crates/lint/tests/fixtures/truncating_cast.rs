// ABR-L006 fixture: `as` integer casts in the time core.
// Scanned under `crates/event/src/time.rs` (the rule's only scope).
fn narrow(x: u128) -> u64 {
    x as u64 // VIOLATION (col 7)
}

fn widen(x: u64) -> u128 {
    x as u128 // fine: widening, cannot truncate
}

fn checked(x: u128) -> u64 {
    u64::try_from(x).expect("overflow") // fine: checked conversion
}

fn rounding_boundary(secs: f64) -> u64 {
    (secs * 1_000_000.0).round() as u64 // VIOLATION; allowlisted in allow.toml
}
