// ABR-L009 fixture: raw WindowBoard slot access outside the fleet
// driver. Scanned under `crates/bench/src/fixture.rs` (fires) and under
// `crates/bench/src/fleet/driver.rs` (silent — the board's home module
// implements the protocol API itself).
use crate::fleet::driver::WindowBoard; // VIOLATION (col 27)

fn peek(board: &WindowBoard, parity: usize, w: usize) -> u64 { // VIOLATION (col 17)
    let d = board.demand[parity][w].load(); // VIOLATION (col 18)
    let a = board.alive[parity][w].load(); // VIOLATION (col 18)
    let n = board.next_at[parity][w].load(); // VIOLATION (col 18)
    d + a + n
}

// A plain `demand` variable is not slot indexing: the needles require
// the field-access-plus-bracket shape.
fn fine(demand: u64) -> u64 {
    demand
}
