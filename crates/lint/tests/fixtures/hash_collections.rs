// ABR-L001 fixture: hashed collections in simulation code.
// Scanned under the virtual path `crates/net/src/fixture.rs`.
use std::collections::HashMap; // VIOLATION (col 23)
use std::collections::BTreeMap; // fine

struct S {
    by_id: HashMap<u64, u64>, // VIOLATION (col 12)
    ordered: BTreeMap<u64, u64>,
}

// In a string or comment, the token is prose, not code: HashSet.
fn strings_are_blanked() -> &'static str {
    "HashSet::new() lives in a string"
}

#[cfg(test)]
mod tests {
    // Test code may use order-free collections for assertions.
    use std::collections::HashSet; // allowed: inside #[cfg(test)]

    fn set() -> HashSet<u64> {
        HashSet::new()
    }
}
