// ABR-L002 fixture: a span profiler that reads the host clock itself
// instead of going through the designated host-timing module
// (`crates/obs/src/tracer.rs`'s HostStopwatch). Scanned under the
// virtual path `crates/obs/src/profile.rs` WITH the allowlist: the
// tracer.rs entry is one file over and must not suppress these, so the
// rule still fires. This is the confinement the real profiler honors by
// borrowing HostStopwatch rather than touching std::time.

struct LeakyProfiler {
    epoch: std::time::Instant, // VIOLATION (std::time, Instant)
}

impl LeakyProfiler {
    fn enter(&self) -> u64 {
        let now = std::time::Instant::now(); // VIOLATION (std::time, Instant::now)
        now.duration_since(self.epoch).as_nanos() as u64
    }
}
