// ABR-L005 fixture: values-only iteration over arena/slotmap storage in
// a dispatch path. Scanned under `crates/bench/src/fleet/driver.rs` and
// `crates/event/src/arena.rs` (both dispatch modules): draining active
// sessions without their SlotIds hides whether the visit order is the
// slot order, so the rule must fire. The keyed `iter()` form and the
// `cfg(test)` block below must not.
use abr_event::arena::Arena;

fn drain(active: &mut Arena<String>) {
    for session in active.values() { // VIOLATION (.values())
        drop(session);
    }
    for session in active.values_mut() { // VIOLATION (.values_mut())
        session.clear();
    }
    for (id, session) in active.iter() { // fine: SlotId-keyed iteration
        let _ = (id, session);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn assertions_may_sweep_values() {
        let arena: super::Arena<u32> = super::Arena::new();
        assert_eq!(arena.values().count(), 0); // test region: exempt
    }
}
