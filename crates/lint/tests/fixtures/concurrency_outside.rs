// ABR-L008 fixture: threading primitives outside the designated
// concurrency modules. Scanned under `crates/core/src/fixture.rs`
// (fires everywhere) and under `crates/bench/src/runner.rs` (silent —
// the runner is a designated module).
use std::sync::atomic::AtomicU64; // VIOLATION x2 (cols 10, 24)
use std::sync::Barrier; // VIOLATION (col 16)
use std::sync::Mutex; // VIOLATION (col 16)

fn fan_out(n: u64) -> u64 {
    let total = AtomicU64::new(n); // VIOLATION (col 17)
    std::thread::scope(|s| { // VIOLATION (col 10)
        let _ = s;
    });
    let m = Mutex::new(0u64); // VIOLATION (col 13)
    let _ = m;
    total.into_inner()
}

// Arc alone is fine: the shared-corpus data plane hands out read-only
// Arc'd state with no thread spawned at the sharing site.
fn share<T>(x: std::sync::Arc<T>) -> std::sync::Arc<T> {
    x
}

#[cfg(test)]
mod tests {
    // Test harness code may synchronize however it likes.
    use std::sync::Mutex; // allowed: inside #[cfg(test)]

    static LOCK: Mutex<()> = Mutex::new(());
}
