// ABR-L007 fixture: sub-SeqCst atomic orderings require a lint.toml
// justification naming the happens-before edge. Scanned under the
// designated path `crates/bench/src/runner.rs`, so ABR-L008 stays
// silent and the ordering rule is isolated.
use std::sync::atomic::{AtomicUsize, Ordering};

fn claim(next: &AtomicUsize, chunk: usize) -> usize {
    next.fetch_add(chunk, Ordering::Relaxed) // VIOLATION (col 27)
}

fn publish(slot: &AtomicUsize, v: usize) {
    slot.store(v, Ordering::Release); // VIOLATION (col 19)
    let _ = slot.load(Ordering::Acquire); // VIOLATION (col 23)
    let _ = slot.swap(v, Ordering::AcqRel); // VIOLATION (col 26)
}

fn strong_needs_no_entry(slot: &AtomicUsize) {
    slot.store(0, Ordering::SeqCst); // fine: SeqCst is the default strength
}

// Prose mentions of Ordering::Relaxed are blanked with the comment.

#[cfg(test)]
mod tests {
    use super::*;

    pub fn helper(n: &AtomicUsize) -> usize {
        n.load(Ordering::Relaxed) // allowed: inside #[cfg(test)]
    }
}
