// ABR-L003 fixture: external randomness.
// Scanned under `crates/core/src/fixture.rs` (violations) and under the
// rule's home module `crates/event/src/rng.rs` (exempt).
use abr_event::rng::SplitMix64; // fine: the owned PRNG

fn bad_seed() -> u64 {
    let mut r = rand::thread_rng(); // VIOLATION (rand::, thread_rng)
    r.gen()
}

fn also_bad() {
    let _ = StdRng::from_entropy(); // VIOLATION (StdRng, from_entropy)
}
