//! The determinism-contract rule catalog (DESIGN.md §12).
//!
//! Each rule is a named, span-reporting check over the cleaned source of
//! [`crate::lexer`]. Rules are deliberately *syntactic*: the determinism
//! contract bans whole construct families (hashed collections, host
//! clocks, external RNGs, float time arithmetic, unkeyed map iteration,
//! truncating casts in the time core) rather than specific call graphs, so
//! token-level matching over comment/string-blanked code is exact for the
//! properties enforced — and it keeps the linter dependency-free in this
//! vendored workspace (a full `syn` pass would flag the identical spans).

use crate::lexer::CleanFile;

/// One rule violation at a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (`ABR-L00x`).
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column of the match.
    pub col: usize,
    /// The matched token (for messages and allowlist auditing).
    pub excerpt: String,
}

/// What part of the workspace a rule adjudicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Every scanned simulation source file.
    AllSources,
    /// Only the listed files (workspace-relative paths).
    Files(&'static [&'static str]),
    /// Every scanned file except the listed ones (the rule's approved
    /// home module).
    AllExcept(&'static [&'static str]),
}

impl Scope {
    /// Whether `path` (workspace-relative, forward slashes) is covered.
    pub fn covers(&self, path: &str) -> bool {
        match self {
            Scope::AllSources => true,
            Scope::Files(fs) => fs.contains(&path),
            Scope::AllExcept(fs) => !fs.contains(&path),
        }
    }
}

/// How a rule finds its violations on one cleaned line.
#[derive(Debug, Clone, Copy)]
pub enum Matcher {
    /// Identifier-boundary occurrences of any of these needles. Needles
    /// may contain `::` / `.` / `(`; the characters immediately around the
    /// match must not extend an identifier.
    Words(&'static [&'static str]),
    /// `as <ty>` casts where `<ty>` is one of these target types.
    CastTo(&'static [&'static str]),
}

/// A named rule of the determinism contract.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable identifier, `ABR-L001` … — what allowlist entries cite.
    pub id: &'static str,
    /// Short name used in docs and `--list-rules`.
    pub name: &'static str,
    /// One-line rationale shown with each violation.
    pub rationale: &'static str,
    /// Which files the rule adjudicates.
    pub scope: Scope,
    /// The syntactic pattern.
    pub matcher: Matcher,
}

/// Files that form the integer time/byte arithmetic core: the modules
/// where a stray `f64` would silently break bit-reproducibility.
/// `crates/event/src/time.rs` itself is the *approved* float boundary
/// (`from_secs_f64`/`as_secs_f64` are the documented entry/exit points)
/// and is deliberately not listed here — it is governed by `ABR-L006`
/// instead.
const TIME_BYTE_CORE: &[&str] = &[
    "crates/event/src/queue.rs",
    "crates/net/src/link.rs",
    "crates/net/src/trace.rs",
    "crates/net/src/uplink.rs",
    "crates/media/src/units.rs",
    "crates/player/src/buffer.rs",
    "crates/player/src/playback.rs",
    "crates/player/src/transfer.rs",
];

/// Event-dispatch modules, where iteration order over a map *is* the
/// event order: values-only iteration hides whether that order is keyed.
/// `arena.rs` is listed even though `Arena` *defines* `values()` — the
/// definition site never matches the `.values()` needle, but a dispatch
/// loop written inside the arena module would, and the shared-corpus
/// builder (`bench/corpus.rs`) feeds every session so an unkeyed sweep
/// there would be just as order-sensitive.
const DISPATCH_MODULES: &[&str] = &[
    "crates/event/src/queue.rs",
    "crates/event/src/arena.rs",
    "crates/player/src/engine.rs",
    "crates/player/src/transfer.rs",
    "crates/player/src/fetch.rs",
    "crates/bench/src/corpus.rs",
    "crates/bench/src/fleet/driver.rs",
];

/// The designated concurrency modules: the only files allowed to use
/// threading primitives (`ABR-L008`). `runner.rs` owns the chunked-claim
/// worker pool, `fleet/driver.rs` owns the window-barrier protocol (both
/// model-checked by `abr_event::sync_model` — DESIGN.md §17), and
/// `obs/tracer.rs` is the host-timing boundary where observation
/// plumbing may touch host-side synchronization. Everywhere else,
/// threading in a deterministic simulation is a contract hazard by
/// default and must be argued in here (by joining this list) rather
/// than slipped in piecemeal.
const CONCURRENCY_MODULES: &[&str] = &[
    "crates/bench/src/runner.rs",
    "crates/bench/src/fleet/driver.rs",
    "crates/obs/src/tracer.rs",
];

/// The rule catalog, in rule-id order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "ABR-L001",
        name: "hash-collections",
        rationale: "std HashMap/HashSet iteration order varies per process; \
                    simulation state must live in ordered containers",
        scope: Scope::AllSources,
        matcher: Matcher::Words(&["HashMap", "HashSet", "hash_map", "hash_set"]),
    },
    Rule {
        id: "ABR-L002",
        name: "host-clock",
        rationale: "host clocks leak wall time into simulation output; only \
                    the obs host-timing module may read them",
        scope: Scope::AllSources,
        matcher: Matcher::Words(&["std::time", "Instant::now", "SystemTime"]),
    },
    Rule {
        id: "ABR-L003",
        name: "external-rng",
        rationale: "randomness must come from abr_event::rng::SplitMix64 \
                    seeded per spec; external RNGs break replay",
        scope: Scope::AllExcept(&["crates/event/src/rng.rs"]),
        matcher: Matcher::Words(&[
            "rand::",
            "thread_rng",
            "from_entropy",
            "getrandom",
            "StdRng",
            "SmallRng",
        ]),
    },
    Rule {
        id: "ABR-L004",
        name: "float-time-arith",
        rationale: "time/byte bookkeeping is integer microseconds/bytes; \
                    float accumulation rounds differently across platforms",
        scope: Scope::Files(TIME_BYTE_CORE),
        matcher: Matcher::Words(&["f32", "f64"]),
    },
    Rule {
        id: "ABR-L005",
        name: "unkeyed-map-iter",
        rationale: "event dispatch must iterate maps with their keys so the \
                    dispatch order is visibly deterministic",
        scope: Scope::Files(DISPATCH_MODULES),
        matcher: Matcher::Words(&[".values()", ".values_mut()", ".into_values()"]),
    },
    Rule {
        id: "ABR-L006",
        name: "truncating-cast",
        rationale: "`as` casts in the time core truncate silently on \
                    overflow; use checked conversions",
        scope: Scope::Files(&["crates/event/src/time.rs"]),
        matcher: Matcher::CastTo(&[
            "u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize",
        ]),
    },
    Rule {
        id: "ABR-L007",
        name: "weak-ordering",
        rationale: "memory orderings weaker than SeqCst need a lint.toml \
                    justification naming the happens-before edge that \
                    makes them safe (model evidence: sync_model tests)",
        scope: Scope::AllSources,
        matcher: Matcher::Words(&[
            "Ordering::Relaxed",
            "Ordering::Acquire",
            "Ordering::Release",
            "Ordering::AcqRel",
        ]),
    },
    Rule {
        id: "ABR-L008",
        name: "concurrency-primitives",
        rationale: "threading primitives live only in the designated \
                    concurrency modules (runner, fleet driver, obs \
                    host-timing boundary); determinism everywhere else \
                    rests on single-threaded execution",
        scope: Scope::AllExcept(CONCURRENCY_MODULES),
        matcher: Matcher::Words(&[
            "sync::atomic",
            "AtomicBool",
            "AtomicU32",
            "AtomicU64",
            "AtomicUsize",
            "Barrier",
            "Mutex",
            "RwLock",
            "Condvar",
            "thread::scope",
            "thread::spawn",
            "mpsc",
        ]),
    },
    Rule {
        id: "ABR-L009",
        name: "raw-board-access",
        rationale: "WindowBoard slots are sound only through the \
                    publish/read protocol API the model checker proves; \
                    raw slot indexing outside the driver bypasses the \
                    parity-epoch discipline",
        scope: Scope::AllExcept(&["crates/bench/src/fleet/driver.rs"]),
        matcher: Matcher::Words(&["WindowBoard", ".demand[", ".alive[", ".next_at["]),
    },
];

/// Looks up a rule by id.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// Runs every applicable rule over one cleaned file, appending violations.
pub fn scan_file(path: &str, file: &CleanFile, out: &mut Vec<Violation>) {
    for rule in RULES {
        if !rule.scope.covers(path) {
            continue;
        }
        for (i, line) in file.lines.iter().enumerate() {
            if file.in_test[i] {
                continue;
            }
            match rule.matcher {
                Matcher::Words(needles) => {
                    for needle in needles {
                        for col in find_word_occurrences(line, needle) {
                            out.push(Violation {
                                rule: rule.id,
                                path: path.to_owned(),
                                line: i + 1,
                                col: col + 1,
                                excerpt: (*needle).to_owned(),
                            });
                        }
                    }
                }
                Matcher::CastTo(types) => {
                    for (col, ty) in find_casts(line, types) {
                        out.push(Violation {
                            rule: rule.id,
                            path: path.to_owned(),
                            line: i + 1,
                            col: col + 1,
                            excerpt: format!("as {ty}"),
                        });
                    }
                }
            }
        }
    }
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Byte columns of identifier-boundary occurrences of `needle` in `line`.
fn find_word_occurrences(line: &str, needle: &str) -> Vec<usize> {
    let mut cols = Vec::new();
    let bytes = line.as_bytes();
    let nb = needle.as_bytes();
    let mut from = 0;
    while let Some(rel) = line[from..].find(needle) {
        let at = from + rel;
        let pre_ok = at == 0 || !is_ident_char(bytes[at - 1]) || !is_ident_char(nb[0]);
        let end = at + needle.len();
        let post_ok =
            end >= bytes.len() || !is_ident_char(bytes[end]) || !is_ident_char(nb[nb.len() - 1]);
        if pre_ok && post_ok {
            cols.push(at);
        }
        from = at + needle.len();
    }
    cols
}

/// `(column, target type)` of every `as <ty>` cast on `line` whose target
/// is in `types`.
fn find_casts(line: &str, types: &[&'static str]) -> Vec<(usize, &'static str)> {
    let mut found = Vec::new();
    for col in find_word_occurrences(line, "as") {
        let rest = &line[col + 2..];
        let ty_off = rest.len() - rest.trim_start().len();
        if ty_off == 0 {
            continue; // `as` glued to something: not a cast keyword
        }
        let ty_str = rest.trim_start();
        for ty in types {
            if ty_str.starts_with(ty) {
                let after = ty_str.as_bytes().get(ty.len());
                if after.is_none_or(|&c| !is_ident_char(c)) {
                    found.push((col, *ty));
                    break;
                }
            }
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{clean_source, mark_test_regions};

    fn scan(path: &str, src: &str) -> Vec<Violation> {
        let lines = clean_source(src);
        let in_test = mark_test_regions(&lines);
        let file = CleanFile { lines, in_test };
        let mut out = Vec::new();
        scan_file(path, &file, &mut out);
        out
    }

    #[test]
    fn word_boundaries_respected() {
        // `MyHashMapLike` must not match `HashMap`.
        let v = scan("crates/net/src/x.rs", "type MyHashMapLike = ();\n");
        assert!(v.is_empty(), "{v:?}");
        let v = scan("crates/net/src/x.rs", "use std::collections::HashMap;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "ABR-L001");
        assert_eq!((v[0].line, v[0].col), (1, 23));
    }

    #[test]
    fn cast_matcher_finds_truncations_only() {
        let v = scan(
            "crates/event/src/time.rs",
            "let a = x as u64;\nlet wide = x as u128;\nlet f = x as f64;\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].excerpt, "as u64");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn scope_gates_rules() {
        // f64 outside the time/byte core is not ABR-L004's business.
        assert!(scan("crates/core/src/mpc.rs", "let x: f64 = 0.75;\n").is_empty());
        let v = scan("crates/net/src/link.rs", "let x: f64 = 0.75;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "ABR-L004");
    }

    #[test]
    fn rng_home_module_is_exempt() {
        assert!(scan("crates/event/src/rng.rs", "fn thread_rng() {}\n").is_empty());
        let v = scan("crates/core/src/bba.rs", "let r = thread_rng();\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "ABR-L003");
    }
}
