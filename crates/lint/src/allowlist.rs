//! The `lint.toml` allowlist.
//!
//! Every suppression of a determinism rule must be *written down* with a
//! justification — the allowlist is the audited record of every site where
//! the workspace deliberately steps outside the contract (DESIGN.md §12).
//!
//! The file is a flat sequence of `[[allow]]` tables:
//!
//! ```toml
//! [[allow]]
//! rule = "ABR-L002"
//! path = "crates/obs/src/tracer.rs"
//! pattern = "std::time"          # optional: line must contain this
//! justification = "host-timing module; wall_ns is zeroed in deterministic mode"
//! ```
//!
//! `rule`, `path` and a non-empty `justification` are mandatory; `pattern`
//! narrows the entry to lines containing the substring (omit it to cover
//! the whole file for that rule). Entries that suppress nothing are
//! *stale* and fail the lint run — the allowlist can never drift ahead of
//! the code. Parsing is a deliberately minimal TOML subset (this workspace
//! vendors no TOML crate): tables of `key = "string"` pairs only.

use crate::rules::{rule_by_id, Violation};

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry suppresses (`ABR-L00x`).
    pub rule: String,
    /// Workspace-relative file the entry covers.
    pub path: String,
    /// Optional substring the violating line must contain.
    pub pattern: Option<String>,
    /// Why this site is exempt. Mandatory and non-empty.
    pub justification: String,
    /// `lint.toml` line the entry starts on (for error messages).
    pub defined_at: usize,
}

/// The parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

/// A malformed `lint.toml`.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the problem.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl Allowlist {
    /// Parses the `lint.toml` subset described in the module docs and
    /// validates every entry (known rule id, non-empty justification).
    pub fn parse(src: &str) -> Result<Allowlist, ParseError> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut open = false;
        for (i, raw) in src.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if open {
                    Self::validate(entries.last().expect("open entry"))?;
                }
                entries.push(AllowEntry {
                    rule: String::new(),
                    path: String::new(),
                    pattern: None,
                    justification: String::new(),
                    defined_at: lineno,
                });
                open = true;
                continue;
            }
            let Some((key, value)) = parse_kv(line) else {
                return Err(ParseError {
                    line: lineno,
                    message: format!("expected `[[allow]]` or `key = \"value\"`, got `{line}`"),
                });
            };
            let Some(entry) = entries.last_mut() else {
                return Err(ParseError {
                    line: lineno,
                    message: "key/value pair before the first [[allow]] table".into(),
                });
            };
            match key {
                "rule" => entry.rule = value,
                "path" => entry.path = value,
                "pattern" => entry.pattern = Some(value),
                "justification" => entry.justification = value,
                other => {
                    return Err(ParseError {
                        line: lineno,
                        message: format!("unknown key `{other}`"),
                    });
                }
            }
        }
        if open {
            Self::validate(entries.last().expect("open entry"))?;
        }
        Ok(Allowlist { entries })
    }

    fn validate(e: &AllowEntry) -> Result<(), ParseError> {
        let fail = |message: String| {
            Err(ParseError {
                line: e.defined_at,
                message,
            })
        };
        if rule_by_id(&e.rule).is_none() {
            return fail(format!("entry names unknown rule `{}`", e.rule));
        }
        if e.path.is_empty() {
            return fail("entry is missing `path`".into());
        }
        if e.justification.trim().is_empty() {
            return fail(format!(
                "entry for {} on {} has no justification — every exemption \
                 from the determinism contract must say why",
                e.rule, e.path
            ));
        }
        Ok(())
    }

    /// Index of the first entry suppressing `v` (matching rule + path, and
    /// pattern contained in the violating line), if any.
    pub fn matches(&self, v: &Violation, line_text: &str) -> Option<usize> {
        self.entries.iter().position(|e| {
            e.rule == v.rule
                && e.path == v.path
                && e.pattern.as_ref().is_none_or(|p| line_text.contains(p))
        })
    }
}

/// Splits `key = "value"`, rejecting anything fancier.
fn parse_kv(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let rest = rest.trim();
    let inner = rest.strip_prefix('"')?.strip_suffix('"')?;
    if inner.contains('"') {
        return None; // no escapes in this subset
    }
    Some((key.trim(), inner.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# comment
[[allow]]
rule = "ABR-L002"
path = "crates/obs/src/tracer.rs"
pattern = "std::time"
justification = "host-timing module"
"#;

    #[test]
    fn parses_entries() {
        let a = Allowlist::parse(GOOD).unwrap();
        assert_eq!(a.entries.len(), 1);
        assert_eq!(a.entries[0].rule, "ABR-L002");
        assert_eq!(a.entries[0].pattern.as_deref(), Some("std::time"));
    }

    #[test]
    fn rejects_missing_justification() {
        let src = "[[allow]]\nrule = \"ABR-L001\"\npath = \"crates/x/src/y.rs\"\n";
        let err = Allowlist::parse(src).unwrap_err();
        assert!(err.message.contains("justification"), "{err}");
    }

    #[test]
    fn rejects_unknown_rule() {
        let src = "[[allow]]\nrule = \"ABR-L999\"\npath = \"x.rs\"\njustification = \"y\"\n";
        let err = Allowlist::parse(src).unwrap_err();
        assert!(err.message.contains("unknown rule"), "{err}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Allowlist::parse("not toml at all\n").is_err());
        assert!(Allowlist::parse("rule = \"ABR-L001\"\n").is_err());
    }

    #[test]
    fn matches_by_rule_path_pattern() {
        let a = Allowlist::parse(GOOD).unwrap();
        let v = Violation {
            rule: "ABR-L002",
            path: "crates/obs/src/tracer.rs".into(),
            line: 47,
            col: 14,
            excerpt: "std::time".into(),
        };
        assert_eq!(a.matches(&v, "    started: std::time::Instant,"), Some(0));
        assert_eq!(a.matches(&v, "unrelated line"), None);
        let other = Violation {
            path: "crates/net/src/link.rs".into(),
            ..v
        };
        assert_eq!(a.matches(&other, "std::time"), None);
    }
}
