//! Comment/string-aware source preparation.
//!
//! The rules in [`crate::rules`] match on *code*, never on prose: before a
//! file is scanned, every comment (line, doc, nested block) and every
//! string/char literal body is blanked to spaces, preserving the exact
//! line/column layout so spans reported against the cleaned text are valid
//! in the original file. On top of the cleaned text, `#[cfg(test)]` items
//! are located and their brace-delimited bodies marked, so in-crate unit
//! tests (which may legitimately use `HashSet` for order-free assertions)
//! never trip the determinism rules that govern simulation code.

/// A source file reduced to rule-scannable form.
#[derive(Debug)]
pub struct CleanFile {
    /// The cleaned source, split into lines (same count and byte layout as
    /// the original; comment and literal bodies replaced by spaces).
    pub lines: Vec<String>,
    /// `in_test[i]` is true when line `i` (0-based) lies inside a
    /// `#[cfg(test)]` item body.
    pub in_test: Vec<bool>,
}

/// Lexer state while sweeping the raw source.
enum State {
    Code,
    LineComment,
    /// Nested block comments carry their depth.
    BlockComment(u32),
    Str,
    /// Raw string terminated by `"` followed by this many `#`s.
    RawStr(u32),
    CharLit,
}

/// Blanks comments and string/char literal bodies, preserving layout.
///
/// Handles line and nested block comments, plain/escaped strings, raw
/// (and byte/raw-byte) strings with arbitrary `#` guards, and tells
/// lifetimes (`'a`) apart from char literals (`'a'`, `'\n'`).
pub fn clean_source(src: &str) -> Vec<String> {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut st = State::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            if let State::LineComment = st {
                st = State::Code;
            }
            out.push('\n');
            i += 1;
            continue;
        }
        match st {
            State::Code => {
                if c == '/' && b.get(i + 1) == Some(&'/') {
                    st = State::LineComment;
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && b.get(i + 1) == Some(&'*') {
                    st = State::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                } else if let Some(hashes) = raw_string_opens(&b, i) {
                    // r"…", r#"…"#, br#"…"# — blank the opener too.
                    let opener_len = raw_opener_len(&b, i, hashes);
                    for _ in 0..opener_len {
                        out.push(' ');
                    }
                    i += opener_len;
                    st = State::RawStr(hashes);
                } else if c == '"' {
                    // Covers plain and byte strings: the `b` prefix was
                    // already emitted as ordinary code.
                    out.push(' ');
                    i += 1;
                    st = State::Str;
                } else if c == '\'' {
                    if is_char_literal(&b, i) {
                        out.push(' ');
                        i += 1;
                        st = State::CharLit;
                    } else {
                        // A lifetime: keep it, it is code.
                        out.push(c);
                        i += 1;
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                out.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && b.get(i + 1) == Some(&'/') {
                    out.push_str("  ");
                    i += 2;
                    st = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                } else if c == '/' && b.get(i + 1) == Some(&'*') {
                    out.push_str("  ");
                    i += 2;
                    st = State::BlockComment(depth + 1);
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 2;
                    if b.get(i - 1) == Some(&'\n') {
                        // An escaped newline still ends the visual line.
                        out.pop();
                        out.pop();
                        out.push(' ');
                        out.push('\n');
                    }
                } else if c == '"' {
                    out.push(' ');
                    i += 1;
                    st = State::Code;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&b, i, hashes) {
                    for _ in 0..=hashes {
                        out.push(' ');
                    }
                    i += 1 + hashes as usize;
                    st = State::Code;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    out.push(' ');
                    i += 1;
                    st = State::Code;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
        }
    }
    out.lines().map(str::to_owned).collect()
}

/// Whether position `i` (a `'`) starts a char literal rather than a
/// lifetime. A char literal is `'x'` or `'\…'`; a lifetime's quote is
/// followed by an identifier with no closing quote right after.
fn is_char_literal(b: &[char], i: usize) -> bool {
    match b.get(i + 1) {
        Some('\\') => true,
        Some(_) => b.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// If position `i` opens a raw string (`r`/`br` + `#`* + `"`), returns the
/// number of `#` guards.
fn raw_string_opens(b: &[char], i: usize) -> Option<u32> {
    let start = if b.get(i) == Some(&'b') && b.get(i + 1) == Some(&'r') {
        i + 2
    } else if b.get(i) == Some(&'r') {
        i + 1
    } else {
        return None;
    };
    // `r` must not be the tail of a longer identifier (e.g. `for`).
    if i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_') {
        return None;
    }
    let mut j = start;
    while b.get(j) == Some(&'#') {
        j += 1;
    }
    if b.get(j) == Some(&'"') {
        Some((j - start) as u32)
    } else {
        None
    }
}

/// Total char length of a raw-string opener starting at `i` with `hashes`
/// guards (`r#"` = 3, `br"` = 3, …).
fn raw_opener_len(b: &[char], i: usize, hashes: u32) -> usize {
    let prefix = if b.get(i) == Some(&'b') { 2 } else { 1 };
    prefix + hashes as usize + 1
}

/// Whether the `"` at position `i` closes a raw string with `hashes` guards.
fn closes_raw(b: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| b.get(i + k) == Some(&'#'))
}

/// Marks the lines covered by `#[cfg(test)]` item bodies in cleaned lines.
///
/// The body is the first `{ … }` block after the attribute (tracking brace
/// depth); an item that ends in `;` before any brace (e.g. a gated `use`)
/// covers only its own lines.
pub fn mark_test_regions(lines: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let text: Vec<&str> = lines.iter().map(String::as_str).collect();
    let mut li = 0;
    while li < text.len() {
        if let Some(col) = find_cfg_test(text[li]) {
            // Walk forward from just past the attribute to the end of the
            // gated item, marking every line on the way.
            let mut depth: i64 = 0;
            let mut seen_brace = false;
            let (mut l, mut c) = (li, col);
            loop {
                if l >= text.len() {
                    break;
                }
                in_test[l] = true;
                let bytes = text[l].as_bytes();
                let mut done = false;
                while c < bytes.len() {
                    match bytes[c] {
                        b'{' => {
                            depth += 1;
                            seen_brace = true;
                        }
                        b'}' => {
                            depth -= 1;
                            if seen_brace && depth == 0 {
                                done = true;
                                break;
                            }
                        }
                        b';' if !seen_brace && depth == 0 => {
                            done = true;
                            break;
                        }
                        _ => {}
                    }
                    c += 1;
                }
                if done {
                    li = l;
                    break;
                }
                l += 1;
                c = 0;
            }
        }
        li += 1;
    }
    in_test
}

/// Column of a `#[cfg(test)]`-style attribute on a cleaned line, if any
/// (also matches composites like `#[cfg(all(test, …))]`).
fn find_cfg_test(line: &str) -> Option<usize> {
    let at = line.find("cfg(")?;
    let rest = &line[at..];
    if !rest.contains("test") {
        return None;
    }
    // Must be inside an attribute.
    line[..at].rfind("#[")?;
    Some(at)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_line_and_block_comments() {
        let cleaned = clean_source("let a = 1; // HashMap here\n/* HashSet */ let b = 2;\n");
        assert!(cleaned[0].contains("let a = 1;"));
        assert!(!cleaned[0].contains("HashMap"));
        assert!(!cleaned[1].contains("HashSet"));
        assert!(cleaned[1].contains("let b = 2;"));
    }

    #[test]
    fn blanks_nested_block_comments() {
        let cleaned = clean_source("/* outer /* HashMap */ still comment */ code();\n");
        assert!(!cleaned[0].contains("HashMap"));
        assert!(cleaned[0].contains("code();"));
    }

    #[test]
    fn blanks_string_and_char_literals() {
        let cleaned = clean_source("let s = \"HashMap::new()\"; let c = 'h'; let l: &'a str;\n");
        assert!(!cleaned[0].contains("HashMap"));
        assert!(cleaned[0].contains("let c ="));
        assert!(
            cleaned[0].contains("&'a str"),
            "lifetimes survive: {cleaned:?}"
        );
    }

    #[test]
    fn blanks_raw_strings_with_guards() {
        let cleaned = clean_source("let s = r#\"std::time::Instant::now()\"#; f();\n");
        assert!(!cleaned[0].contains("Instant::now"));
        assert!(cleaned[0].contains("f();"));
    }

    #[test]
    fn layout_is_preserved() {
        let src = "abc /* x */ def\n";
        let cleaned = clean_source(src);
        assert_eq!(cleaned[0].len(), src.len() - 1);
        assert_eq!(cleaned[0].find("def"), src.find("def"));
    }

    #[test]
    fn marks_cfg_test_mod_body() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\nfn after() {}\n";
        let lines = clean_source(src);
        let marks = mark_test_regions(&lines);
        assert_eq!(marks, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_on_single_item_stops_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashSet;\nfn live() {}\n";
        let lines = clean_source(src);
        let marks = mark_test_regions(&lines);
        assert_eq!(marks, vec![true, true, false]);
    }
}
