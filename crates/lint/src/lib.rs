//! # abr-lint — workspace determinism & invariant linter
//!
//! The workspace's bit-reproducibility contract (DESIGN.md §10) is load
//! bearing: the parallel sweep runner, the allocation-free link and every
//! golden artifact rest on simulations being pure functions of their
//! specs. Differential tests (`parallel_determinism`, `legacy_parity`,
//! `link_differential`) catch violations *after the fact*; this crate
//! catches them at the source, before a single session runs, by enforcing
//! the contract as named static rules (DESIGN.md §12):
//!
//! | id | name | bans |
//! |----|------|------|
//! | `ABR-L001` | hash-collections | `HashMap`/`HashSet` in simulation code |
//! | `ABR-L002` | host-clock | `std::time`/`Instant::now`/`SystemTime` outside obs host timing |
//! | `ABR-L003` | external-rng | any RNG other than `abr_event::rng` |
//! | `ABR-L004` | float-time-arith | `f32`/`f64` in integer time/byte core modules |
//! | `ABR-L005` | unkeyed-map-iter | values-only map iteration in event dispatch |
//! | `ABR-L006` | truncating-cast | `as` integer casts in `abr_event::time` |
//! | `ABR-L007` | weak-ordering | sub-`SeqCst` atomics without a justified happens-before edge |
//! | `ABR-L008` | concurrency-primitives | threading outside the designated concurrency modules |
//! | `ABR-L009` | raw-board-access | `WindowBoard` slot access outside its protocol API |
//!
//! `ABR-L007`–`L009` enforce the concurrency contract (DESIGN.md §17):
//! the two thread-sharing protocols are model-checked by
//! `abr_event::sync_model`, and every `ABR-L007` exemption must name the
//! happens-before edge the model proved sufficient.
//!
//! Exemptions live in `lint.toml` at the workspace root; every entry
//! carries a mandatory justification and fails the run when it no longer
//! suppresses anything ([`allowlist`]). Run `cargo run -p abr-lint` from
//! the workspace root; CI runs it on every push.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod allowlist;
pub mod lexer;
pub mod rules;

use allowlist::Allowlist;
use lexer::CleanFile;
use rules::Violation;
use std::path::{Path, PathBuf};

/// Outcome of linting a set of files.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations not covered by any allowlist entry, sorted by
    /// `(path, line, col, rule)`.
    pub violations: Vec<Violation>,
    /// Violations suppressed by the allowlist (kept for auditing).
    pub suppressed: Vec<Violation>,
    /// Allowlist entries (by `lint.toml` position) that suppressed
    /// nothing: stale exemptions that must be deleted.
    pub stale: Vec<usize>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when the workspace is clean: no unallowlisted violations and
    /// no stale allowlist entries.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.stale.is_empty()
    }
}

/// Lints one in-memory source file under its workspace-relative `path`,
/// splitting hits into (violations, suppressed) against `allow` and
/// recording which entries fired into `used` (indexed like
/// `allow.entries`).
pub fn lint_source(
    path: &str,
    src: &str,
    allow: &Allowlist,
    used: &mut [bool],
    report: &mut LintReport,
) {
    let lines = lexer::clean_source(src);
    let in_test = lexer::mark_test_regions(&lines);
    let file = CleanFile { lines, in_test };
    let mut hits = Vec::new();
    rules::scan_file(path, &file, &mut hits);
    for v in hits {
        let line_text = &file.lines[v.line - 1];
        match allow.matches(&v, line_text) {
            Some(idx) => {
                used[idx] = true;
                report.suppressed.push(v);
            }
            None => report.violations.push(v),
        }
    }
    report.files_scanned += 1;
}

/// The source files the determinism contract governs: `src/` trees of the
/// workspace root and of every crate under `crates/` — not `vendor/`
/// (offline stand-ins for external crates), and not `tests/`, `benches/`
/// or `examples/` (test code may use order-free collections for
/// assertions; `#[cfg(test)]` modules inside `src/` are skipped by the
/// lexer for the same reason).
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut roots = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let p = entry?.path();
            if p.is_dir() {
                roots.push(p.join("src"));
            }
        }
    }
    for r in roots {
        if r.is_dir() {
            collect_rs(&r, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root` against `allow`.
pub fn lint_workspace(root: &Path, allow: &Allowlist) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    let mut used = vec![false; allow.entries.len()];
    for file in workspace_sources(root)? {
        let rel = file
            .strip_prefix(root)
            .expect("file under root")
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&file)?;
        lint_source(&rel, &src, allow, &mut used, &mut report);
    }
    report.stale = used
        .iter()
        .enumerate()
        .filter_map(|(i, &u)| (!u).then_some(i))
        .collect();
    let key = |v: &Violation| (v.path.clone(), v.line, v.col, v.rule);
    report.violations.sort_by_key(key);
    report.suppressed.sort_by_key(key);
    Ok(report)
}

/// Loads `lint.toml` from the workspace root (an absent file is an empty
/// allowlist).
pub fn load_allowlist(root: &Path) -> Result<Allowlist, String> {
    let path = root.join("lint.toml");
    if !path.exists() {
        return Ok(Allowlist::default());
    }
    let src = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    Allowlist::parse(&src).map_err(|e| e.to_string())
}
