//! `abr-lint` CLI: lints the workspace against the determinism contract.
//!
//! ```text
//! cargo run -p abr-lint              # lint the workspace (exit 1 on dirt)
//! cargo run -p abr-lint -- --list-rules
//! cargo run -p abr-lint -- --root /path/to/workspace
//! cargo run -p abr-lint -- --verbose # also print suppressed sites
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use abr_lint::rules::{rule_by_id, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut verbose = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-rules" => {
                for r in RULES {
                    println!("{}  {:<18} {}", r.id, r.name, r.rationale);
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--verbose" => verbose = true,
            other => {
                eprintln!("unknown argument `{other}` (try --list-rules)");
                return ExitCode::FAILURE;
            }
        }
    }
    // `cargo run -p abr-lint` runs from the workspace root; fall back to
    // walking up from the current directory to the first `lint.toml`.
    let root = root.unwrap_or_else(find_root);

    let allow = match abr_lint::load_allowlist(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match abr_lint::lint_workspace(&root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: failed to scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    for v in &report.violations {
        let rule = rule_by_id(v.rule).expect("violation cites known rule");
        println!(
            "{} {}:{}:{} `{}` — {}",
            v.rule, v.path, v.line, v.col, v.excerpt, rule.rationale
        );
    }
    if verbose {
        for v in &report.suppressed {
            println!(
                "allowed {} {}:{}:{} `{}`",
                v.rule, v.path, v.line, v.col, v.excerpt
            );
        }
    }
    for &idx in &report.stale {
        let e = &allow.entries[idx];
        println!(
            "stale lint.toml:{} — entry for {} on {} suppresses nothing; delete it",
            e.defined_at, e.rule, e.path
        );
    }
    println!(
        "abr-lint: {} files, {} violation(s), {} allowlisted, {} stale allowlist entr(ies)",
        report.files_scanned,
        report.violations.len(),
        report.suppressed.len(),
        report.stale.len()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walks up from the current directory to the nearest `lint.toml` (or the
/// nearest `Cargo.toml` if no allowlist exists yet).
fn find_root() -> PathBuf {
    let cwd = std::env::current_dir().expect("current dir");
    let mut dir = cwd.as_path();
    loop {
        if dir.join("lint.toml").exists() {
            return dir.to_path_buf();
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return cwd,
        }
    }
}
