//! A complete piece of demuxed content: one video ladder, one audio ladder,
//! and calibrated per-chunk byte sizes for every track.
//!
//! [`Content::drama_show`] reconstructs the paper's experimental subject: a
//! ~5-minute YouTube drama show with the Table 1 ladder, cut into equal
//! chunks. The §3.2 variants with the "B" and "C" audio sets are
//! [`Content::drama_show_low_audio`] and [`Content::drama_show_high_audio`].

use crate::ladder::Ladder;
use crate::track::{MediaType, TrackId, TrackInfo};
use crate::units::{BitsPerSec, Bytes};
use crate::vbr::{self, VbrParams};
use abr_event::rng::SplitMix64;
use abr_event::time::Duration;

/// A shared, immutable content handle (DESIGN.md §15).
///
/// A `Content` is expensive to synthesize (per-track VBR size draws) and
/// expensive to clone (per-chunk size tables), but strictly immutable
/// after construction — so sweeps build each realization once and share
/// it by `Arc` across every session, origin and worker that streams it.
pub type SharedContent = std::sync::Arc<Content>;

/// Content descriptor plus per-chunk sizes.
#[derive(Debug, Clone)]
pub struct Content {
    video: Ladder,
    audio: Ladder,
    chunk_duration: Duration,
    num_chunks: usize,
    /// `video_sizes[track][chunk]`.
    video_sizes: Vec<Vec<Bytes>>,
    /// `audio_sizes[track][chunk]`.
    audio_sizes: Vec<Vec<Bytes>>,
    /// Whole-track byte totals, precomputed at build time.
    video_totals: Vec<Bytes>,
    audio_totals: Vec<Bytes>,
    /// Cached id list: audio first then video, each ascending.
    ids: Vec<TrackId>,
}

/// Sums each track's chunk sizes once, at build time.
fn track_totals(sizes: &[Vec<Bytes>]) -> Vec<Bytes> {
    sizes
        .iter()
        .map(|chunks| chunks.iter().copied().sum())
        .collect()
}

impl Content {
    /// Builds content from two ladders, generating calibrated chunk sizes.
    ///
    /// Video tracks use a VBR shape (spread 0.35) and audio tracks a
    /// near-CBR shape (spread 0.02); each track draws from an independent
    /// child stream of `seed`, so adding a track never perturbs the sizes
    /// of the others.
    pub fn new(
        video: Ladder,
        audio: Ladder,
        chunk_duration: Duration,
        num_chunks: usize,
        seed: u64,
    ) -> Self {
        assert_eq!(video.media(), MediaType::Video);
        assert_eq!(audio.media(), MediaType::Audio);
        assert!(num_chunks > 0, "content needs at least one chunk");
        let mut rng = SplitMix64::new(seed);
        let video_sizes: Vec<Vec<Bytes>> = video
            .iter()
            .map(|t| {
                let mut child = rng.split();
                vbr::chunk_sizes(
                    VbrParams::video(t.avg, t.peak),
                    chunk_duration,
                    num_chunks,
                    &mut child,
                )
            })
            .collect();
        let audio_sizes: Vec<Vec<Bytes>> = audio
            .iter()
            .map(|t| {
                let mut child = rng.split();
                vbr::chunk_sizes(
                    VbrParams::audio(t.avg, t.peak),
                    chunk_duration,
                    num_chunks,
                    &mut child,
                )
            })
            .collect();
        let video_totals = track_totals(&video_sizes);
        let audio_totals = track_totals(&audio_sizes);
        let mut ids: Vec<TrackId> = (0..audio.len()).map(TrackId::audio).collect();
        ids.extend((0..video.len()).map(TrackId::video));
        Content {
            video,
            audio,
            chunk_duration,
            num_chunks,
            video_sizes,
            audio_sizes,
            video_totals,
            audio_totals,
            ids,
        }
    }

    /// The Table 1 drama show: 6 video + 3 audio tracks, 75 chunks of 4 s
    /// (300 s ≈ the paper's "around 5 minutes").
    pub fn drama_show(seed: u64) -> Content {
        Content::new(
            Ladder::table1_video(),
            Ladder::table1_audio(),
            Duration::from_secs(4),
            75,
            seed,
        )
    }

    /// §3.2 experiment 1: Table 1 video with the low-bitrate "B" audio set.
    pub fn drama_show_low_audio(seed: u64) -> Content {
        Content::new(
            Ladder::table1_video(),
            Ladder::low_audio_b(),
            Duration::from_secs(4),
            75,
            seed,
        )
    }

    /// §3.2 experiment 2: Table 1 video with the high-bitrate "C" audio set.
    pub fn drama_show_high_audio(seed: u64) -> Content {
        Content::new(
            Ladder::table1_video(),
            Ladder::high_audio_c(),
            Duration::from_secs(4),
            75,
            seed,
        )
    }

    /// The video ladder.
    pub fn video(&self) -> &Ladder {
        &self.video
    }

    /// The audio ladder.
    pub fn audio(&self) -> &Ladder {
        &self.audio
    }

    /// The ladder for a media type.
    pub fn ladder(&self, media: MediaType) -> &Ladder {
        match media {
            MediaType::Video => &self.video,
            MediaType::Audio => &self.audio,
        }
    }

    /// Track info for an id.
    pub fn track(&self, id: TrackId) -> &TrackInfo {
        self.ladder(id.media).track(id)
    }

    /// Duration of every chunk.
    pub fn chunk_duration(&self) -> Duration {
        self.chunk_duration
    }

    /// Number of chunks per track.
    pub fn num_chunks(&self) -> usize {
        self.num_chunks
    }

    /// Total clip duration.
    pub fn duration(&self) -> Duration {
        self.chunk_duration * self.num_chunks as u64
    }

    /// Size in bytes of one chunk of one track. Panics on out-of-range
    /// track or chunk indices.
    pub fn chunk_size(&self, id: TrackId, chunk: usize) -> Bytes {
        assert!(
            chunk < self.num_chunks,
            "chunk {chunk} out of range (< {})",
            self.num_chunks
        );
        match id.media {
            MediaType::Video => self.video_sizes[id.index][chunk],
            MediaType::Audio => self.audio_sizes[id.index][chunk],
        }
    }

    /// The bitrate one chunk realizes (size over chunk duration).
    pub fn chunk_bitrate(&self, id: TrackId, chunk: usize) -> BitsPerSec {
        self.chunk_size(id, chunk)
            .rate_over_micros(self.chunk_duration.as_micros())
    }

    /// Total bytes of one whole track (precomputed at build time).
    pub fn track_bytes(&self, id: TrackId) -> Bytes {
        match id.media {
            MediaType::Video => self.video_totals[id.index],
            MediaType::Audio => self.audio_totals[id.index],
        }
    }

    /// All track ids, audio first then video, each ascending — a cached
    /// slice, so iterating it allocates nothing.
    pub fn track_ids(&self) -> &[TrackId] {
        &self.ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vbr::measure;

    #[test]
    fn drama_show_dimensions() {
        let c = Content::drama_show(1);
        assert_eq!(c.video().len(), 6);
        assert_eq!(c.audio().len(), 3);
        assert_eq!(c.num_chunks(), 75);
        assert_eq!(c.chunk_duration(), Duration::from_secs(4));
        assert_eq!(c.duration(), Duration::from_secs(300));
        assert_eq!(c.track_ids().len(), 9);
    }

    #[test]
    fn every_track_calibrated_to_table1() {
        let c = Content::drama_show(42);
        for &id in c.track_ids() {
            let t = c.track(id).clone();
            let sizes: Vec<Bytes> = (0..c.num_chunks()).map(|i| c.chunk_size(id, i)).collect();
            let m = measure(&sizes, c.chunk_duration());
            assert!(
                (m.avg.kbps() as i64 - t.avg.kbps() as i64).abs() <= 1,
                "{id}: measured avg {} vs declared {}",
                m.avg.kbps(),
                t.avg.kbps()
            );
            assert!(
                (m.peak.kbps() as i64 - t.peak.kbps() as i64).abs() <= 1,
                "{id}: measured peak {} vs declared {}",
                m.peak.kbps(),
                t.peak.kbps()
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Content::drama_show(7);
        let b = Content::drama_show(7);
        let c = Content::drama_show(8);
        let id = TrackId::video(3);
        assert_eq!(a.chunk_size(id, 10), b.chunk_size(id, 10));
        let differs = (0..a.num_chunks()).any(|i| a.chunk_size(id, i) != c.chunk_size(id, i));
        assert!(differs, "different seeds must differ somewhere");
    }

    #[test]
    fn higher_rungs_are_bigger() {
        let c = Content::drama_show(3);
        let lo = c.track_bytes(TrackId::video(0));
        let hi = c.track_bytes(TrackId::video(5));
        assert!(hi.get() > 20 * lo.get(), "V6 total {hi} vs V1 total {lo}");
    }

    #[test]
    fn chunk_bitrate_matches_size() {
        let c = Content::drama_show(3);
        let id = TrackId::audio(0);
        let br = c.chunk_bitrate(id, 5);
        let sz = c.chunk_size(id, 5);
        assert_eq!(sz, br.bytes_in_micros(c.chunk_duration().as_micros()));
    }

    #[test]
    fn variant_contents_use_expected_audio() {
        let b = Content::drama_show_low_audio(1);
        assert_eq!(b.audio().get(2).declared.kbps(), 128);
        let hc = Content::drama_show_high_audio(1);
        assert_eq!(hc.audio().get(2).declared.kbps(), 768);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn chunk_out_of_range_panics() {
        let c = Content::drama_show(1);
        c.chunk_size(TrackId::video(0), 75);
    }
}
