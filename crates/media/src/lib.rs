//! # abr-media — content model for demuxed ABR streaming
//!
//! Everything the rest of the workspace knows about *content* lives here:
//!
//! * [`units`] — `BitsPerSec` / `Bytes` newtypes with integer conversions.
//! * [`track`] — audio/video track descriptors (average, peak and declared
//!   bitrates; the three are distinct, exactly as in Table 1 of the paper).
//! * [`ladder`] — an ordered set of tracks for one media type, with the
//!   paper's Table-1 YouTube ladder and the §3.2 "B" and "C" audio sets as
//!   constants.
//! * [`vbr`] — deterministic per-chunk size synthesis calibrated so each
//!   track's measured average and peak bitrates match its declared ladder
//!   entry (the substitution for the real YouTube clip; see DESIGN.md §1).
//! * [`content`] — a complete piece of content: both ladders plus per-chunk
//!   byte sizes for every track.
//! * [`combo`] — audio+video combination math: the full M×N set (Table 2),
//!   the curated subset (Table 3), and the log-staircase predetermination
//!   rule reverse-engineered from ExoPlayer's behaviour (DESIGN.md §4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combo;
pub mod content;
pub mod ladder;
pub mod track;
pub mod units;
pub mod vbr;

pub use combo::{Combo, ComboBitrate};
pub use content::Content;
pub use ladder::Ladder;
pub use track::{MediaType, TrackId, TrackInfo};
pub use units::{BitsPerSec, Bytes};
