//! Audio + video combination math.
//!
//! * [`all_combos`] — the full M×N cross product in ascending aggregate peak
//!   bitrate order: exactly Table 2 of the paper (the HLS `H_all` manifest).
//! * [`curated_subset`] — the paper's `H_sub` 6-combination curation rule
//!   (Table 3): each video rung paired with a content-appropriate audio rung.
//! * [`log_staircase`] — ExoPlayer's DASH combination-predetermination rule,
//!   reverse-engineered from the paper's three worked examples (DESIGN.md
//!   §4): a greedy staircase in normalized log-bitrate space.

use crate::ladder::Ladder;
use crate::track::{MediaType, TrackId};
use crate::units::BitsPerSec;
use core::fmt;

/// One audio+video track combination, by ladder indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Combo {
    /// Video ladder index (0-based).
    pub video: usize,
    /// Audio ladder index (0-based).
    pub audio: usize,
}

impl Combo {
    /// Constructs a combination.
    pub const fn new(video: usize, audio: usize) -> Combo {
        Combo { video, audio }
    }

    /// The video [`TrackId`].
    pub fn video_id(self) -> TrackId {
        TrackId::video(self.video)
    }

    /// The audio [`TrackId`].
    pub fn audio_id(self) -> TrackId {
        TrackId::audio(self.audio)
    }

    /// The track of `media` in this combination.
    pub fn id_for(self, media: MediaType) -> TrackId {
        match media {
            MediaType::Video => self.video_id(),
            MediaType::Audio => self.audio_id(),
        }
    }
}

impl fmt::Display for Combo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}+A{}", self.video + 1, self.audio + 1)
    }
}

/// Aggregate bitrates of a combination (sums of the component tracks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComboBitrate {
    /// Sum of average bitrates (HLS `AVERAGE-BANDWIDTH`).
    pub avg: BitsPerSec,
    /// Sum of peak bitrates (HLS `BANDWIDTH`).
    pub peak: BitsPerSec,
    /// Sum of declared bitrates (DASH per-track `@bandwidth` summed — the
    /// paper's "bandwidth requirement" for DASH combinations).
    pub declared: BitsPerSec,
}

/// Computes the aggregate bitrates of `combo` over the given ladders.
pub fn combo_bitrate(video: &Ladder, audio: &Ladder, combo: Combo) -> ComboBitrate {
    let v = video.get(combo.video);
    let a = audio.get(combo.audio);
    ComboBitrate {
        avg: v.avg + a.avg,
        peak: v.peak + a.peak,
        declared: v.declared + a.declared,
    }
}

/// All M×N combinations sorted by ascending aggregate peak bitrate, ties by
/// ascending aggregate average — the order Table 2 lists them in.
pub fn all_combos(video: &Ladder, audio: &Ladder) -> Vec<Combo> {
    let mut combos: Vec<Combo> = (0..video.len())
        .flat_map(|v| (0..audio.len()).map(move |a| Combo::new(v, a)))
        .collect();
    combos.sort_by_key(|&c| {
        let b = combo_bitrate(video, audio, c);
        (b.peak, b.avg, c.video, c.audio)
    });
    combos
}

/// The paper's `H_sub` curation: pair each video rung with an audio rung at
/// the matching relative position (low video ↔ low audio), exactly one
/// combination per video rung. For Table 1's 6×3 ladder this yields
/// V1+A1, V2+A1, V3+A2, V4+A2, V5+A3, V6+A3 — Table 3 verbatim.
pub fn curated_subset(video: &Ladder, audio: &Ladder) -> Vec<Combo> {
    let m = video.len();
    let n = audio.len();
    (0..m)
        .map(|v| {
            // Evenly partition video rungs across audio rungs, low-to-low;
            // the top video rung always pairs with the top audio rung.
            let a = ((v + 1) * n - 1) / m;
            Combo::new(v, a)
        })
        .collect()
}

/// ExoPlayer's DASH combination-predetermination rule (reverse-engineered;
/// see DESIGN.md §4 for the derivation and validation against the paper's
/// three worked examples).
///
/// Each track is placed at its normalized log-bitrate position within its
/// own ladder, `p = (ln r − ln r_lo) / (ln r_hi − ln r_lo)` (0 for a
/// single-rung or flat ladder). Starting from (V1, A1), the staircase
/// repeatedly upgrades whichever component leaves the two positions closest
/// (`|p_video − p_audio|` minimized; ties upgrade video), ending at the top
/// of both ladders. The result has exactly `M + N − 1` combinations in which
/// consecutive entries differ in a single component.
pub fn log_staircase(video: &Ladder, audio: &Ladder) -> Vec<Combo> {
    log_staircase_rates(&video.declared_bitrates(), &audio.declared_bitrates())
}

/// [`log_staircase`] over raw declared-bitrate slices — the form a player
/// can compute from a parsed manifest alone.
pub fn log_staircase_rates(video: &[BitsPerSec], audio: &[BitsPerSec]) -> Vec<Combo> {
    fn positions(declared: &[BitsPerSec]) -> Vec<f64> {
        let lo = declared.first().expect("non-empty ladder").bps() as f64;
        let hi = declared.last().expect("non-empty ladder").bps() as f64;
        if declared.len() <= 1 || hi <= lo {
            return vec![0.0; declared.len()];
        }
        let (llo, lhi) = (lo.ln(), hi.ln());
        declared
            .iter()
            .map(|r| ((r.bps() as f64).ln() - llo) / (lhi - llo))
            .collect()
    }

    let qv = positions(video);
    let pa = positions(audio);
    let (m, n) = (video.len(), audio.len());

    let mut combos = Vec::with_capacity(m + n - 1);
    let (mut i, mut j) = (0usize, 0usize);
    combos.push(Combo::new(i, j));
    while i < m - 1 || j < n - 1 {
        let after_video = if i < m - 1 {
            Some((qv[i + 1] - pa[j]).abs())
        } else {
            None
        };
        let after_audio = if j < n - 1 {
            Some((qv[i] - pa[j + 1]).abs())
        } else {
            None
        };
        match (after_video, after_audio) {
            (Some(v), Some(a)) if a < v => j += 1,
            (Some(_), _) => i += 1,
            (None, Some(_)) => j += 1,
            (None, None) => unreachable!("loop guard"),
        }
        combos.push(Combo::new(i, j));
    }
    combos
}

/// True if `combos` form a valid staircase: starts at (0,0), ends at the
/// ladder tops, and every step increments exactly one component by one.
pub fn is_staircase(combos: &[Combo], video_len: usize, audio_len: usize) -> bool {
    if combos.first() != Some(&Combo::new(0, 0)) {
        return false;
    }
    if combos.last() != Some(&Combo::new(video_len - 1, audio_len - 1)) {
        return false;
    }
    combos.windows(2).all(|w| {
        let (a, b) = (w[0], w[1]);
        (b.video == a.video + 1 && b.audio == a.audio)
            || (b.video == a.video && b.audio == a.audio + 1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(combos: &[Combo]) -> Vec<String> {
        combos
            .iter()
            .map(std::string::ToString::to_string)
            .collect()
    }

    #[test]
    fn table2_full_set_order_and_bitrates() {
        let v = Ladder::table1_video();
        let a = Ladder::table1_audio();
        let combos = all_combos(&v, &a);
        assert_eq!(combos.len(), 18);
        // Table 2, rows in order with (avg, peak) Kbps.
        let expected = [
            ("V1+A1", 239, 253),
            ("V1+A2", 307, 318),
            ("V2+A1", 374, 395),
            ("V2+A2", 442, 460),
            ("V1+A3", 495, 510),
            ("V2+A3", 630, 652),
            ("V3+A1", 490, 775),
            ("V3+A2", 558, 840),
            ("V3+A3", 746, 1032),
            ("V4+A1", 862, 1324),
            ("V4+A2", 930, 1389),
            ("V4+A3", 1118, 1581),
            ("V5+A1", 1549, 2516),
            ("V5+A2", 1617, 2581),
            ("V5+A3", 1805, 2773),
            ("V6+A1", 2856, 4581),
            ("V6+A2", 2924, 4646),
            ("V6+A3", 3112, 4838),
        ];
        for (combo, (name, avg, peak)) in combos.iter().zip(expected.iter()) {
            assert_eq!(&combo.to_string(), name);
            let b = combo_bitrate(&v, &a, *combo);
            assert_eq!(b.avg.kbps(), *avg, "{name} avg");
            assert_eq!(b.peak.kbps(), *peak, "{name} peak");
        }
    }

    #[test]
    fn table3_curated_subset() {
        let v = Ladder::table1_video();
        let a = Ladder::table1_audio();
        let combos = curated_subset(&v, &a);
        assert_eq!(
            names(&combos),
            vec!["V1+A1", "V2+A1", "V3+A2", "V4+A2", "V5+A3", "V6+A3"]
        );
        // Table 3 bitrates.
        let expected = [
            (239, 253),
            (374, 395),
            (558, 840),
            (930, 1389),
            (1805, 2773),
            (3112, 4838),
        ];
        for (c, (avg, peak)) in combos.iter().zip(expected.iter()) {
            let b = combo_bitrate(&v, &a, *c);
            assert_eq!(b.avg.kbps(), *avg);
            assert_eq!(b.peak.kbps(), *peak);
        }
    }

    #[test]
    fn staircase_matches_paper_table1_audio() {
        // §3.2: "the resultant combinations ... are V1+A1, V2+A1, V2+A2,
        // V3+A2, V4+A2, V4+A3, V5+A3, and V6+A3".
        let combos = log_staircase(&Ladder::table1_video(), &Ladder::table1_audio());
        assert_eq!(
            names(&combos),
            vec!["V1+A1", "V2+A1", "V2+A2", "V3+A2", "V4+A2", "V4+A3", "V5+A3", "V6+A3"]
        );
    }

    #[test]
    fn staircase_matches_paper_low_audio_b() {
        // §3.2 experiment 1: B = 32/64/128 Kbps → V1+B1, V2+B1, V2+B2,
        // V3+B2, V4+B2, V5+B2, V5+B3, V6+B3.
        let combos = log_staircase(&Ladder::table1_video(), &Ladder::low_audio_b());
        assert_eq!(
            names(&combos),
            vec!["V1+A1", "V2+A1", "V2+A2", "V3+A2", "V4+A2", "V5+A2", "V5+A3", "V6+A3"]
        );
    }

    #[test]
    fn staircase_matches_paper_high_audio_c() {
        // §3.2 experiment 2: C = 196/384/768 Kbps → V1+C1, V2+C1, V2+C2,
        // V3+C2, V4+C2, V5+C2, V5+C3, V6+C3.
        let combos = log_staircase(&Ladder::table1_video(), &Ladder::high_audio_c());
        assert_eq!(
            names(&combos),
            vec!["V1+A1", "V2+A1", "V2+A2", "V3+A2", "V4+A2", "V5+A2", "V5+A3", "V6+A3"]
        );
    }

    #[test]
    fn staircase_shape_invariants() {
        for audio in [
            Ladder::table1_audio(),
            Ladder::low_audio_b(),
            Ladder::high_audio_c(),
        ] {
            let v = Ladder::table1_video();
            let combos = log_staircase(&v, &audio);
            assert_eq!(combos.len(), v.len() + audio.len() - 1);
            assert!(is_staircase(&combos, v.len(), audio.len()));
        }
    }

    #[test]
    fn staircase_excludes_desirable_combo_v3b3() {
        // The paper's point: V3+B3 (declared 473+128 = 601 Kbps) is a better
        // fit at 900 Kbps but is NOT in the predetermined set.
        let v = Ladder::table1_video();
        let b = Ladder::low_audio_b();
        let combos = log_staircase(&v, &b);
        assert!(
            !combos.contains(&Combo::new(2, 2)),
            "V3+B3 must be excluded"
        );
        let bits = combo_bitrate(&v, &b, Combo::new(2, 2));
        assert_eq!(bits.declared.kbps(), 601);
    }

    #[test]
    fn combo_id_accessors() {
        let c = Combo::new(2, 1);
        assert_eq!(c.video_id(), TrackId::video(2));
        assert_eq!(c.audio_id(), TrackId::audio(1));
        assert_eq!(c.id_for(MediaType::Video), TrackId::video(2));
        assert_eq!(c.id_for(MediaType::Audio), TrackId::audio(1));
        assert_eq!(c.to_string(), "V3+A2");
    }

    #[test]
    fn degenerate_single_rung_ladders() {
        let v1 = Ladder::new(
            MediaType::Video,
            vec![crate::track::TrackInfo::video(0, 100, 120, 110, 144)],
        );
        let a = Ladder::table1_audio();
        let combos = log_staircase(&v1, &a);
        assert_eq!(names(&combos), vec!["V1+A1", "V1+A2", "V1+A3"]);
        assert_eq!(all_combos(&v1, &a).len(), 3);
        assert_eq!(curated_subset(&v1, &a).len(), 1);
    }
}
