//! Deterministic per-chunk size synthesis.
//!
//! The paper streams a real YouTube clip; we substitute a synthetic clip
//! whose *per-track average and peak bitrates are calibrated to Table 1
//! exactly* (see DESIGN.md §1 — every behaviour the paper demonstrates is a
//! function of the ladder, not of pixel content).
//!
//! Calibration contract, given `n ≥ 2` chunks of equal duration:
//!
//! 1. the sum of all chunk sizes equals the track's average bitrate times
//!    the clip duration (to the byte),
//! 2. exactly one designated chunk carries the peak bitrate (to the byte),
//!    and no chunk exceeds it,
//! 3. all sizes are positive,
//! 4. the sequence is a pure function of the seed.

use crate::units::{BitsPerSec, Bytes};
use abr_event::rng::SplitMix64;
use abr_event::time::Duration;

/// Shape parameters for one track's chunk-size sequence.
#[derive(Debug, Clone, Copy)]
pub struct VbrParams {
    /// Target mean bitrate over the clip.
    pub avg: BitsPerSec,
    /// Target maximum per-chunk bitrate.
    pub peak: BitsPerSec,
    /// Relative half-width of the per-chunk variation around the mean, in
    /// `[0, 0.95]`. Video uses ~0.35; near-CBR audio ~0.02. The effective
    /// spread is automatically narrowed when the peak leaves little
    /// headroom above the mean.
    pub spread: f64,
}

impl VbrParams {
    /// Typical VBR video shape.
    pub fn video(avg: BitsPerSec, peak: BitsPerSec) -> Self {
        VbrParams {
            avg,
            peak,
            spread: 0.35,
        }
    }

    /// Near-CBR audio shape.
    pub fn audio(avg: BitsPerSec, peak: BitsPerSec) -> Self {
        VbrParams {
            avg,
            peak,
            spread: 0.02,
        }
    }
}

/// Bytes in one chunk of `chunk_dur` at `rate`, rounded to nearest.
fn chunk_bytes(rate: BitsPerSec, chunk_dur: Duration) -> u64 {
    rate.bytes_in_micros(chunk_dur.as_micros()).get()
}

/// Generates `n` chunk sizes meeting the calibration contract above.
///
/// Panics if `n == 0`, `avg > peak`, `spread` is outside `[0, 0.95]`, or the
/// target total cannot accommodate the peak chunk (`peak > n × avg`, which
/// no realistic ladder exhibits).
pub fn chunk_sizes(
    params: VbrParams,
    chunk_dur: Duration,
    n: usize,
    rng: &mut SplitMix64,
) -> Vec<Bytes> {
    assert!(n > 0, "zero chunks");
    assert!(
        params.avg <= params.peak,
        "avg {} > peak {}",
        params.avg,
        params.peak
    );
    assert!(
        (0.0..=0.95).contains(&params.spread),
        "spread {} outside [0, 0.95]",
        params.spread
    );
    assert!(!chunk_dur.is_zero(), "zero chunk duration");

    let total: u64 = (params.avg.bps() as u128 * chunk_dur.as_micros() as u128 * n as u128
        / (8 * 1_000_000)) as u64;
    let peak_sz = chunk_bytes(params.peak, chunk_dur);

    if n == 1 {
        return vec![Bytes(total.max(1))];
    }
    assert!(
        peak_sz < total,
        "peak chunk ({peak_sz} B) exceeds clip total ({total} B): peak > n × avg"
    );

    let rest_total = total - peak_sz;
    let rest_n = n - 1;
    let rest_mean = rest_total as f64 / rest_n as f64;

    // Narrow the spread so no non-peak chunk can reach the peak and none
    // can go non-positive.
    let headroom = (peak_sz as f64 / rest_mean - 1.0).max(0.0);
    let eff = params.spread.min(headroom * 0.9).min(0.95);

    // Non-peak chunks stay strictly below the peak so the peak chunk is the
    // unique maximum — except in the (near-)CBR regime where the mean leaves
    // no room below the peak and equality is the only feasible assignment.
    let cap = if peak_sz as f64 - rest_mean > 1.5 {
        peak_sz - 1
    } else {
        peak_sz
    };

    // Raw weights, normalized to hit rest_total exactly after rounding.
    let weights: Vec<f64> = (0..rest_n)
        .map(|_| 1.0 + eff * (2.0 * rng.next_f64() - 1.0))
        .collect();
    let wsum: f64 = weights.iter().sum();
    let mut sizes: Vec<u64> = weights
        .iter()
        .map(|w| ((w / wsum) * rest_total as f64).round().max(1.0) as u64)
        .map(|s| s.min(cap))
        .collect();

    // Integer correction so the sum is exact. The per-chunk drift from
    // rounding is at most a few bytes; distribute it one byte at a time over
    // chunks that still have headroom (or slack, when shrinking).
    let mut diff: i64 = rest_total as i64 - sizes.iter().sum::<u64>() as i64;
    let mut k = 0usize;
    let mut guard = 0u64;
    while diff != 0 {
        guard += 1;
        assert!(
            guard < 64 * rest_total.max(1),
            "size correction failed to converge (diff {diff})"
        );
        let i = k % rest_n;
        k += 1;
        if diff > 0 && sizes[i] < cap {
            sizes[i] += 1;
            diff -= 1;
        } else if diff < 0 && sizes[i] > 1 {
            sizes[i] -= 1;
            diff += 1;
        }
    }

    // Insert the peak chunk at a seed-determined position.
    let peak_pos = rng.below(n as u64) as usize;
    let mut out: Vec<Bytes> = sizes.into_iter().map(Bytes).collect();
    out.insert(peak_pos.min(out.len()), Bytes(peak_sz));
    debug_assert_eq!(out.len(), n);
    out
}

/// Measured statistics of a size sequence, for calibration checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredBitrates {
    /// Mean bitrate implied by the sizes.
    pub avg: BitsPerSec,
    /// Maximum per-chunk bitrate implied by the sizes.
    pub peak: BitsPerSec,
}

/// Computes the average and peak bitrates a size sequence realizes.
pub fn measure(sizes: &[Bytes], chunk_dur: Duration) -> MeasuredBitrates {
    assert!(!sizes.is_empty());
    let total: Bytes = sizes.iter().copied().sum();
    let avg = total.rate_over_micros(chunk_dur.as_micros() * sizes.len() as u64);
    let peak_sz = sizes.iter().copied().max().expect("non-empty");
    MeasuredBitrates {
        avg,
        peak: peak_sz.rate_over_micros(chunk_dur.as_micros()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHUNK: Duration = Duration::from_secs(4);

    fn check_calibration(avg_kbps: u64, peak_kbps: u64, spread: f64, n: usize, seed: u64) {
        let p = VbrParams {
            avg: BitsPerSec::from_kbps(avg_kbps),
            peak: BitsPerSec::from_kbps(peak_kbps),
            spread,
        };
        let mut rng = SplitMix64::new(seed);
        let sizes = chunk_sizes(p, CHUNK, n, &mut rng);
        assert_eq!(sizes.len(), n);
        let m = measure(&sizes, CHUNK);
        // Integer division rounds the total by at most n bytes: within 1 Kbps.
        assert!(
            (m.avg.kbps() as i64 - avg_kbps as i64).abs() <= 1,
            "avg {} vs target {avg_kbps}",
            m.avg.kbps()
        );
        assert!(
            (m.peak.kbps() as i64 - peak_kbps as i64).abs() <= 1,
            "peak {} vs target {peak_kbps}",
            m.peak.kbps()
        );
        assert!(sizes.iter().all(|s| s.get() > 0), "positive sizes");
        let peak_sz = sizes.iter().max().unwrap();
        assert_eq!(
            sizes.iter().filter(|s| *s == peak_sz).count(),
            1,
            "unique peak chunk"
        );
    }

    #[test]
    fn calibrates_every_table1_track() {
        // (avg, peak) pairs straight from Table 1.
        for (i, (a, p, s)) in [
            (128, 134, 0.02),
            (196, 199, 0.02),
            (384, 391, 0.02),
            (111, 119, 0.35),
            (246, 261, 0.35),
            (362, 641, 0.35),
            (734, 1190, 0.35),
            (1421, 2382, 0.35),
            (2728, 4447, 0.35),
        ]
        .iter()
        .enumerate()
        {
            check_calibration(*a, *p, *s, 75, 1000 + i as u64);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = VbrParams::video(BitsPerSec::from_kbps(734), BitsPerSec::from_kbps(1190));
        let a = chunk_sizes(p, CHUNK, 75, &mut SplitMix64::new(9));
        let b = chunk_sizes(p, CHUNK, 75, &mut SplitMix64::new(9));
        let c = chunk_sizes(p, CHUNK, 75, &mut SplitMix64::new(10));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn single_chunk_clip() {
        let p = VbrParams::audio(BitsPerSec::from_kbps(128), BitsPerSec::from_kbps(134));
        let sizes = chunk_sizes(p, CHUNK, 1, &mut SplitMix64::new(1));
        assert_eq!(sizes.len(), 1);
        assert_eq!(sizes[0], Bytes(64_000)); // 128 Kbps × 4 s / 8
    }

    #[test]
    fn cbr_when_avg_equals_peak() {
        let p = VbrParams {
            avg: BitsPerSec::from_kbps(100),
            peak: BitsPerSec::from_kbps(100),
            spread: 0.0,
        };
        let sizes = chunk_sizes(p, CHUNK, 10, &mut SplitMix64::new(1));
        let m = measure(&sizes, CHUNK);
        assert_eq!(m.avg.kbps(), 100);
        assert_eq!(m.peak.kbps(), 100);
    }

    #[test]
    fn tiny_clips_still_calibrate() {
        check_calibration(362, 641, 0.35, 2, 7);
        check_calibration(362, 641, 0.35, 3, 7);
    }

    #[test]
    #[should_panic(expected = "avg")]
    fn rejects_avg_above_peak() {
        let p = VbrParams {
            avg: BitsPerSec::from_kbps(200),
            peak: BitsPerSec::from_kbps(100),
            spread: 0.1,
        };
        chunk_sizes(p, CHUNK, 10, &mut SplitMix64::new(1));
    }

    #[test]
    #[should_panic(expected = "peak chunk")]
    fn rejects_peak_exceeding_total() {
        // peak 10× avg with only 2 chunks: the peak chunk alone exceeds the
        // whole clip's byte budget.
        let p = VbrParams {
            avg: BitsPerSec::from_kbps(100),
            peak: BitsPerSec::from_kbps(1000),
            spread: 0.1,
        };
        chunk_sizes(p, CHUNK, 2, &mut SplitMix64::new(1));
    }

    #[test]
    fn measure_reports_exact_rates() {
        // Two 4-s chunks of 50000 and 100000 bytes: avg = 150 KB/8 s,
        // peak = 100 KB/4 s.
        let m = measure(&[Bytes(50_000), Bytes(100_000)], CHUNK);
        assert_eq!(m.avg, BitsPerSec(150_000));
        assert_eq!(m.peak, BitsPerSec(200_000));
    }
}
