//! Integer units for bitrate and data size.
//!
//! Bitrates are bits per second (`u64`), sizes are bytes (`u64`). All
//! conversions between {rate, size, time} go through 128-bit integer
//! arithmetic with explicit rounding so two code paths computing the same
//! quantity always agree to the microsecond / byte.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub};

/// Microseconds per second, kept in sync with `abr_event::time`.
const MICROS_PER_SEC: u128 = 1_000_000;

/// A bitrate in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BitsPerSec(pub u64);

impl BitsPerSec {
    /// Zero bitrate.
    pub const ZERO: BitsPerSec = BitsPerSec(0);

    /// Constructs from kilobits per second (the unit every table in the
    /// paper uses).
    pub const fn from_kbps(kbps: u64) -> Self {
        BitsPerSec(kbps * 1_000)
    }

    /// Raw bits per second.
    pub const fn bps(self) -> u64 {
        self.0
    }

    /// Kilobits per second, rounded to nearest.
    pub const fn kbps(self) -> u64 {
        (self.0 + 500) / 1_000
    }

    /// Kilobits per second as a float (reporting only).
    pub fn kbps_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Bytes delivered by this rate over `micros` microseconds, rounded to
    /// the nearest byte.
    pub fn bytes_in_micros(self, micros: u64) -> Bytes {
        let bits = self.0 as u128 * micros as u128;
        Bytes(((bits + (8 * MICROS_PER_SEC) / 2) / (8 * MICROS_PER_SEC)) as u64)
    }

    /// Microseconds needed to transfer `bytes` at this rate, rounded *up*
    /// (a transfer is complete only when the last byte has arrived).
    /// Returns `None` for a zero rate.
    pub fn micros_for_bytes(self, bytes: Bytes) -> Option<u64> {
        if self.0 == 0 {
            return None;
        }
        let bits = bytes.0 as u128 * 8 * MICROS_PER_SEC;
        Some(bits.div_ceil(self.0 as u128) as u64)
    }

    /// Scales by a rational factor `num/den` (used for safety factors such
    /// as ExoPlayer's 0.75 = 3/4), rounding down — conservative in the
    /// direction players are conservative.
    pub fn mul_ratio(self, num: u64, den: u64) -> BitsPerSec {
        assert!(den != 0);
        BitsPerSec(((self.0 as u128 * num as u128) / den as u128) as u64)
    }

    /// Scales by a float factor, rounding to nearest. Panics on negative or
    /// non-finite factors.
    pub fn mul_f64(self, factor: f64) -> BitsPerSec {
        assert!(factor.is_finite() && factor >= 0.0, "bad factor {factor}");
        BitsPerSec((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for BitsPerSec {
    type Output = BitsPerSec;
    fn add(self, rhs: BitsPerSec) -> BitsPerSec {
        BitsPerSec(self.0.checked_add(rhs.0).expect("bitrate overflow"))
    }
}

impl AddAssign for BitsPerSec {
    fn add_assign(&mut self, rhs: BitsPerSec) {
        *self = *self + rhs;
    }
}

impl Sub for BitsPerSec {
    type Output = BitsPerSec;
    fn sub(self, rhs: BitsPerSec) -> BitsPerSec {
        BitsPerSec(self.0.checked_sub(rhs.0).expect("bitrate underflow"))
    }
}

impl Sum for BitsPerSec {
    fn sum<I: Iterator<Item = BitsPerSec>>(iter: I) -> BitsPerSec {
        iter.fold(BitsPerSec::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for BitsPerSec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} Kbps", self.kbps())
    }
}

/// A size in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(pub u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Constructs from kibibytes (1024 bytes).
    pub const fn from_kib(kib: u64) -> Self {
        Bytes(kib * 1024)
    }

    /// Raw byte count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Bits in this many bytes.
    pub const fn bits(self) -> u64 {
        self.0 * 8
    }

    /// The average bitrate of this many bytes spread over `micros`
    /// microseconds, rounded to nearest. Panics if `micros == 0`.
    pub fn rate_over_micros(self, micros: u64) -> BitsPerSec {
        assert!(micros > 0, "rate over zero time");
        let bits = self.0 as u128 * 8 * MICROS_PER_SEC;
        BitsPerSec(((bits + micros as u128 / 2) / micros as u128) as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.checked_add(rhs.0).expect("byte count overflow"))
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        *self = *self + rhs;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.checked_sub(rhs.0).expect("byte count underflow"))
    }
}

impl core::ops::SubAssign for Bytes {
    fn sub_assign(&mut self, rhs: Bytes) {
        *self = *self - rhs;
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} B", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kbps_roundtrip() {
        assert_eq!(BitsPerSec::from_kbps(384).bps(), 384_000);
        assert_eq!(BitsPerSec::from_kbps(384).kbps(), 384);
        assert_eq!(BitsPerSec(1_499).kbps(), 1); // rounds to nearest
        assert_eq!(BitsPerSec(1_500).kbps(), 2);
    }

    #[test]
    fn bytes_in_micros_exact() {
        // 1 Mbps for 0.125 s = 125000 bits = 15625 bytes: the Fig 4(a)
        // boundary case — just under Shaka's 16 KiB filter.
        let rate = BitsPerSec::from_kbps(1_000);
        assert_eq!(rate.bytes_in_micros(125_000), Bytes(15_625));
        assert!(Bytes(15_625) < Bytes::from_kib(16));
    }

    #[test]
    fn micros_for_bytes_rounds_up() {
        let rate = BitsPerSec(8_000_000); // 1 MB/s
        assert_eq!(rate.micros_for_bytes(Bytes(1_000_000)), Some(1_000_000));
        // One extra byte must push completion to the next microsecond.
        assert_eq!(rate.micros_for_bytes(Bytes(1_000_001)), Some(1_000_001));
        assert_eq!(BitsPerSec::ZERO.micros_for_bytes(Bytes(1)), None);
    }

    #[test]
    fn transfer_roundtrip_consistency() {
        // time(bytes(t)) == t for rates that divide evenly.
        let rate = BitsPerSec::from_kbps(800); // 100 KB/s
        let b = rate.bytes_in_micros(2_000_000);
        assert_eq!(b, Bytes(200_000));
        assert_eq!(rate.micros_for_bytes(b), Some(2_000_000));
    }

    #[test]
    fn mul_ratio_is_floor() {
        // ExoPlayer's 75% of 900 Kbps = 675 Kbps.
        assert_eq!(
            BitsPerSec::from_kbps(900).mul_ratio(3, 4),
            BitsPerSec::from_kbps(675)
        );
        assert_eq!(BitsPerSec(1_001).mul_ratio(1, 2), BitsPerSec(500));
    }

    #[test]
    fn rate_over_micros() {
        assert_eq!(
            Bytes(15_625).rate_over_micros(125_000),
            BitsPerSec::from_kbps(1_000)
        );
        assert_eq!(
            Bytes(125_000).rate_over_micros(1_000_000),
            BitsPerSec::from_kbps(1_000)
        );
    }

    #[test]
    fn sums() {
        let total: BitsPerSec = [BitsPerSec::from_kbps(111), BitsPerSec::from_kbps(128)]
            .into_iter()
            .sum();
        assert_eq!(total, BitsPerSec::from_kbps(239));
        let sz: Bytes = [Bytes(10), Bytes(20)].into_iter().sum();
        assert_eq!(sz, Bytes(30));
    }

    #[test]
    fn display() {
        assert_eq!(BitsPerSec::from_kbps(473).to_string(), "473 Kbps");
        assert_eq!(Bytes(42).to_string(), "42 B");
    }

    #[test]
    fn saturating_bytes() {
        assert_eq!(Bytes(5).saturating_sub(Bytes(9)), Bytes::ZERO);
        assert_eq!(Bytes(9).saturating_sub(Bytes(5)), Bytes(4));
    }
}

/// Serialization as raw counts (enabled by the `serde` feature):
/// [`BitsPerSec`] is its bps value, [`Bytes`] its byte count.
#[cfg(feature = "serde")]
mod serde_impls {
    use super::{BitsPerSec, Bytes};
    use serde::{Deserialize, FromValueError, Serialize, Value};

    impl Serialize for BitsPerSec {
        fn to_value(&self) -> Value {
            self.bps().to_value()
        }
    }

    impl Deserialize for BitsPerSec {
        fn from_value(v: &Value) -> Result<Self, FromValueError> {
            u64::from_value(v).map(BitsPerSec)
        }
    }

    impl Serialize for Bytes {
        fn to_value(&self) -> Value {
            self.get().to_value()
        }
    }

    impl Deserialize for Bytes {
        fn from_value(v: &Value) -> Result<Self, FromValueError> {
            u64::from_value(v).map(Bytes)
        }
    }
}
