//! Track descriptors.
//!
//! A *track* is one encoded rendition of either the audio or the video
//! component of a piece of content. Three bitrates describe it, mirroring
//! Table 1 of the paper:
//!
//! * **average** — mean bitrate over the whole clip,
//! * **peak** — maximum per-chunk bitrate,
//! * **declared** — what the manifest advertises (DASH `@bandwidth`).
//!   For VBR video this sits between average and peak (e.g. V3: 362 avg /
//!   641 peak / 473 declared); for near-CBR audio it equals the average.

use crate::units::BitsPerSec;
use core::fmt;

/// Which elementary stream a track carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MediaType {
    /// Sound.
    Audio,
    /// Pictures.
    Video,
}

impl MediaType {
    /// The other media type.
    pub fn other(self) -> MediaType {
        match self {
            MediaType::Audio => MediaType::Video,
            MediaType::Video => MediaType::Audio,
        }
    }

    /// Single-letter prefix used in track names ("A" / "V").
    pub fn prefix(self) -> &'static str {
        match self {
            MediaType::Audio => "A",
            MediaType::Video => "V",
        }
    }

    /// Both media types, audio first (iteration order used throughout).
    pub const ALL: [MediaType; 2] = [MediaType::Audio, MediaType::Video];
}

impl fmt::Display for MediaType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MediaType::Audio => write!(f, "audio"),
            MediaType::Video => write!(f, "video"),
        }
    }
}

/// Identifies a track as (media type, 0-based index within its ladder).
///
/// Ladders are sorted by ascending declared bitrate, so index 0 is the
/// lowest-quality rendition. Display is 1-based to match the paper's
/// "V1..V6" / "A1..A3" naming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrackId {
    /// Audio or video.
    pub media: MediaType,
    /// 0-based rung within the ladder for that media type.
    pub index: usize,
}

impl TrackId {
    /// Convenience constructor for an audio track id.
    pub const fn audio(index: usize) -> TrackId {
        TrackId {
            media: MediaType::Audio,
            index,
        }
    }

    /// Convenience constructor for a video track id.
    pub const fn video(index: usize) -> TrackId {
        TrackId {
            media: MediaType::Video,
            index,
        }
    }
}

impl fmt::Display for TrackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.media.prefix(), self.index + 1)
    }
}

/// A set of track ids backed by one bitmask per media type.
///
/// Ladders in this workspace are tiny (Table 1 tops out at 6 video and
/// 3 audio rungs), so membership fits in two machine words — the arena
/// replacement for the `BTreeSet<TrackId>` the session engine used to
/// carry per session (DESIGN.md §15). Inserts panic beyond 64 rungs per
/// media type; no real ladder comes close.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrackSet {
    audio: u64,
    video: u64,
}

impl TrackSet {
    /// The empty set.
    pub const fn new() -> TrackSet {
        TrackSet { audio: 0, video: 0 }
    }

    fn mask(id: TrackId) -> u64 {
        assert!(id.index < 64, "track ladder exceeds TrackSet capacity");
        1u64 << id.index
    }

    /// Adds a track id to the set.
    pub fn insert(&mut self, id: TrackId) {
        let m = Self::mask(id);
        match id.media {
            MediaType::Audio => self.audio |= m,
            MediaType::Video => self.video |= m,
        }
    }

    /// True if the id is in the set.
    pub fn contains(&self, id: TrackId) -> bool {
        let m = Self::mask(id);
        match id.media {
            MediaType::Audio => self.audio & m != 0,
            MediaType::Video => self.video & m != 0,
        }
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        (self.audio.count_ones() + self.video.count_ones()) as usize
    }

    /// True if no id is in the set.
    pub fn is_empty(&self) -> bool {
        self.audio == 0 && self.video == 0
    }
}

/// A small association table from [`TrackId`] to a value, kept sorted by
/// id in a flat vector.
///
/// Same arena rationale as [`TrackSet`]: a session maps at most a
/// handful of tracks (playlist transfer sizes), so a sorted `Vec` beats
/// a `BTreeMap`'s pointer-chasing and per-node allocation while keeping
/// the exact same deterministic iteration order (ascending `TrackId`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrackTable<V> {
    entries: Vec<(TrackId, V)>,
}

impl<V> TrackTable<V> {
    /// The empty table.
    pub const fn new() -> TrackTable<V> {
        TrackTable {
            entries: Vec::new(),
        }
    }

    /// Inserts or overwrites the value for `id`.
    pub fn insert(&mut self, id: TrackId, value: V) {
        match self.entries.binary_search_by_key(&id, |&(k, _)| k) {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (id, value)),
        }
    }

    /// The value for `id`, if present.
    pub fn get(&self, id: TrackId) -> Option<&V> {
        self.entries
            .binary_search_by_key(&id, |&(k, _)| k)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// True if `id` has a value.
    pub fn contains_key(&self, id: TrackId) -> bool {
        self.get(id).is_some()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Media-specific track metadata (the rightmost column of Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrackDetail {
    /// Video resolution.
    Video {
        /// Frame width in pixels.
        width: u32,
        /// Frame height in pixels.
        height: u32,
    },
    /// Audio channel layout and sampling rate.
    Audio {
        /// Number of channels (2 = stereo, 6 = 5.1).
        channels: u8,
        /// Sampling rate in Hz.
        sample_rate: u32,
    },
}

impl TrackDetail {
    /// The media type this detail belongs to.
    pub fn media(&self) -> MediaType {
        match self {
            TrackDetail::Video { .. } => MediaType::Video,
            TrackDetail::Audio { .. } => MediaType::Audio,
        }
    }

    /// Short human label: "360p" for video, "6ch/48kHz" for audio.
    pub fn label(&self) -> String {
        match self {
            TrackDetail::Video { height, .. } => format!("{height}p"),
            TrackDetail::Audio {
                channels,
                sample_rate,
            } => {
                format!("{channels}ch/{}kHz", sample_rate / 1000)
            }
        }
    }
}

/// A complete track descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackInfo {
    /// Identity (media type + ladder rung).
    pub id: TrackId,
    /// Mean bitrate over the clip.
    pub avg: BitsPerSec,
    /// Maximum per-chunk bitrate.
    pub peak: BitsPerSec,
    /// Bitrate advertised in the DASH manifest (`@bandwidth`).
    pub declared: BitsPerSec,
    /// Resolution / channel metadata.
    pub detail: TrackDetail,
}

impl TrackInfo {
    /// Builds a video track descriptor. Bitrates in Kbps, matching the
    /// paper's tables. Panics if `avg > peak` or `declared > peak`.
    pub fn video(
        index: usize,
        avg_kbps: u64,
        peak_kbps: u64,
        declared_kbps: u64,
        height: u32,
    ) -> Self {
        let t = TrackInfo {
            id: TrackId::video(index),
            avg: BitsPerSec::from_kbps(avg_kbps),
            peak: BitsPerSec::from_kbps(peak_kbps),
            declared: BitsPerSec::from_kbps(declared_kbps),
            detail: TrackDetail::Video {
                width: height * 16 / 9,
                height,
            },
        };
        t.validate();
        t
    }

    /// Builds an audio track descriptor. Bitrates in Kbps.
    pub fn audio(
        index: usize,
        avg_kbps: u64,
        peak_kbps: u64,
        declared_kbps: u64,
        channels: u8,
        sample_rate: u32,
    ) -> Self {
        let t = TrackInfo {
            id: TrackId::audio(index),
            avg: BitsPerSec::from_kbps(avg_kbps),
            peak: BitsPerSec::from_kbps(peak_kbps),
            declared: BitsPerSec::from_kbps(declared_kbps),
            detail: TrackDetail::Audio {
                channels,
                sample_rate,
            },
        };
        t.validate();
        t
    }

    fn validate(&self) {
        assert!(
            self.avg <= self.peak,
            "{}: avg {} > peak {}",
            self.id,
            self.avg,
            self.peak
        );
        assert!(
            self.declared <= self.peak,
            "{}: declared {} > peak {}",
            self.id,
            self.declared,
            self.peak
        );
        assert!(self.avg.bps() > 0, "{}: zero average bitrate", self.id);
        assert_eq!(
            self.detail.media(),
            self.id.media,
            "{}: detail/media mismatch",
            self.id
        );
    }

    /// Track name in the paper's notation ("V3", "A2").
    pub fn name(&self) -> String {
        self.id.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn media_type_other_and_prefix() {
        assert_eq!(MediaType::Audio.other(), MediaType::Video);
        assert_eq!(MediaType::Video.other(), MediaType::Audio);
        assert_eq!(MediaType::Audio.prefix(), "A");
        assert_eq!(MediaType::Video.prefix(), "V");
    }

    #[test]
    fn track_id_display_is_one_based() {
        assert_eq!(TrackId::video(2).to_string(), "V3");
        assert_eq!(TrackId::audio(0).to_string(), "A1");
    }

    #[test]
    fn video_constructor_fills_detail() {
        let v = TrackInfo::video(2, 362, 641, 473, 360);
        assert_eq!(v.name(), "V3");
        assert_eq!(v.detail.label(), "360p");
        assert_eq!(v.avg, BitsPerSec::from_kbps(362));
        assert_eq!(v.peak, BitsPerSec::from_kbps(641));
        assert_eq!(v.declared, BitsPerSec::from_kbps(473));
    }

    #[test]
    fn audio_constructor_fills_detail() {
        let a = TrackInfo::audio(1, 196, 199, 196, 6, 48_000);
        assert_eq!(a.name(), "A2");
        assert_eq!(a.detail.label(), "6ch/48kHz");
    }

    #[test]
    #[should_panic(expected = "avg")]
    fn rejects_avg_above_peak() {
        TrackInfo::video(0, 200, 100, 100, 144);
    }

    #[test]
    #[should_panic(expected = "declared")]
    fn rejects_declared_above_peak() {
        TrackInfo::video(0, 100, 120, 150, 144);
    }

    #[test]
    fn track_ids_order_within_media() {
        assert!(TrackId::video(0) < TrackId::video(1));
        assert!(TrackId::audio(2) < TrackId::video(0)); // audio sorts first
    }
}

/// Serialization (enabled by the `serde` feature): a [`MediaType`] is its
/// lowercase name, a [`TrackId`] an object `{"media": ..., "index": ...}`.
#[cfg(feature = "serde")]
mod serde_impls {
    use super::{MediaType, TrackId};
    use serde::{Deserialize, FromValueError, Map, Serialize, Value};

    impl Serialize for MediaType {
        fn to_value(&self) -> Value {
            Value::String(self.to_string())
        }
    }

    impl Deserialize for MediaType {
        fn from_value(v: &Value) -> Result<Self, FromValueError> {
            match v.as_str() {
                Some("audio") => Ok(MediaType::Audio),
                Some("video") => Ok(MediaType::Video),
                _ => Err(FromValueError::expected("\"audio\" or \"video\"", v)),
            }
        }
    }

    impl Serialize for TrackId {
        fn to_value(&self) -> Value {
            let mut map = Map::new();
            map.insert("media".to_string(), self.media.to_value());
            map.insert("index".to_string(), self.index.to_value());
            Value::Object(map)
        }
    }

    impl Deserialize for TrackId {
        fn from_value(v: &Value) -> Result<Self, FromValueError> {
            let media = MediaType::from_value(&v["media"])?;
            let index = usize::from_value(&v["index"])?;
            Ok(TrackId { media, index })
        }
    }
}
