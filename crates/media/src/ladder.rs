//! Bitrate ladders.
//!
//! A ladder is the ordered set of tracks offered for one media type,
//! sorted by ascending declared bitrate. This module also carries the
//! concrete ladders the paper experiments with:
//!
//! * [`Ladder::table1_video`] / [`Ladder::table1_audio`] — the YouTube drama
//!   show of Table 1 (V1–V6, A1–A3);
//! * [`Ladder::low_audio_b`] — the §3.2 "B" set (32/64/128 Kbps);
//! * [`Ladder::high_audio_c`] — the §3.2 "C" set (196/384/768 Kbps).

use crate::track::{MediaType, TrackId, TrackInfo};
use crate::units::BitsPerSec;

/// An ordered set of tracks for one media type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ladder {
    media: MediaType,
    tracks: Vec<TrackInfo>,
}

impl Ladder {
    /// Builds a ladder, validating that all tracks share `media`, indices
    /// are consecutive from zero, and declared bitrates strictly ascend.
    pub fn new(media: MediaType, tracks: Vec<TrackInfo>) -> Self {
        assert!(!tracks.is_empty(), "empty ladder");
        for (i, t) in tracks.iter().enumerate() {
            assert_eq!(t.id.media, media, "track {} in {} ladder", t.id, media);
            assert_eq!(
                t.id.index, i,
                "track index {} out of order (expected {i})",
                t.id.index
            );
            if i > 0 {
                assert!(
                    tracks[i - 1].declared < t.declared,
                    "declared bitrates must strictly ascend: {} !< {}",
                    tracks[i - 1].declared,
                    t.declared
                );
            }
        }
        Ladder { media, tracks }
    }

    /// The media type of every track in this ladder.
    pub fn media(&self) -> MediaType {
        self.media
    }

    /// Number of rungs.
    pub fn len(&self) -> usize {
        self.tracks.len()
    }

    /// Always false (construction rejects empty ladders); present for
    /// clippy-idiomatic pairing with `len`.
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }

    /// Track at `index`. Panics if out of range.
    pub fn get(&self, index: usize) -> &TrackInfo {
        &self.tracks[index]
    }

    /// Track for a [`TrackId`]; panics if the id belongs to the other media
    /// type or is out of range.
    pub fn track(&self, id: TrackId) -> &TrackInfo {
        assert_eq!(
            id.media, self.media,
            "track {} looked up in {} ladder",
            id, self.media
        );
        &self.tracks[id.index]
    }

    /// Iterates rungs from lowest to highest.
    pub fn iter(&self) -> impl Iterator<Item = &TrackInfo> {
        self.tracks.iter()
    }

    /// The lowest rung.
    pub fn lowest(&self) -> &TrackInfo {
        &self.tracks[0]
    }

    /// The highest rung.
    pub fn highest(&self) -> &TrackInfo {
        self.tracks.last().expect("non-empty")
    }

    /// Highest rung whose declared bitrate is ≤ `budget`; `None` if even the
    /// lowest rung exceeds the budget.
    pub fn highest_within(&self, budget: BitsPerSec) -> Option<&TrackInfo> {
        self.tracks.iter().rev().find(|t| t.declared <= budget)
    }

    /// Declared bitrates of all rungs, ascending.
    pub fn declared_bitrates(&self) -> Vec<BitsPerSec> {
        self.tracks.iter().map(|t| t.declared).collect()
    }

    // ------------------------------------------------------------------
    // The paper's concrete ladders.
    // ------------------------------------------------------------------

    /// Table 1 video ladder: the YouTube drama show, V1–V6.
    pub fn table1_video() -> Ladder {
        Ladder::new(
            MediaType::Video,
            vec![
                TrackInfo::video(0, 111, 119, 111, 144),
                TrackInfo::video(1, 246, 261, 246, 240),
                TrackInfo::video(2, 362, 641, 473, 360),
                TrackInfo::video(3, 734, 1190, 914, 480),
                TrackInfo::video(4, 1421, 2382, 1852, 720),
                TrackInfo::video(5, 2728, 4447, 3746, 1080),
            ],
        )
    }

    /// Table 1 audio ladder: A1–A3 (128/196/384 Kbps declared).
    pub fn table1_audio() -> Ladder {
        Ladder::new(
            MediaType::Audio,
            vec![
                TrackInfo::audio(0, 128, 134, 128, 2, 44_000),
                TrackInfo::audio(1, 196, 199, 196, 6, 48_000),
                TrackInfo::audio(2, 384, 391, 384, 6, 48_000),
            ],
        )
    }

    /// §3.2 low-bitrate audio set "B": declared 32/64/128 Kbps. The paper
    /// gives only declared bitrates; we model near-CBR audio with a ~4%
    /// peak-over-average margin like the Table 1 audio tracks.
    pub fn low_audio_b() -> Ladder {
        Ladder::new(
            MediaType::Audio,
            vec![
                TrackInfo::audio(0, 32, 34, 32, 2, 44_000),
                TrackInfo::audio(1, 64, 67, 64, 2, 44_000),
                TrackInfo::audio(2, 128, 134, 128, 2, 44_000),
            ],
        )
    }

    /// §3.2 high-bitrate audio set "C": declared 196/384/768 Kbps
    /// (768 Kbps ≈ Dolby Atmos-class audio per §1).
    pub fn high_audio_c() -> Ladder {
        Ladder::new(
            MediaType::Audio,
            vec![
                TrackInfo::audio(0, 196, 199, 196, 6, 48_000),
                TrackInfo::audio(1, 384, 391, 384, 6, 48_000),
                TrackInfo::audio(2, 768, 782, 768, 6, 48_000),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_video_matches_paper() {
        let l = Ladder::table1_video();
        assert_eq!(l.len(), 6);
        let declared: Vec<u64> = l.declared_bitrates().iter().map(|b| b.kbps()).collect();
        assert_eq!(declared, vec![111, 246, 473, 914, 1852, 3746]);
        assert_eq!(l.get(2).avg.kbps(), 362);
        assert_eq!(l.get(5).peak.kbps(), 4447);
        assert_eq!(l.get(0).detail.label(), "144p");
        assert_eq!(l.get(5).detail.label(), "1080p");
    }

    #[test]
    fn table1_audio_matches_paper() {
        let l = Ladder::table1_audio();
        assert_eq!(l.len(), 3);
        let declared: Vec<u64> = l.declared_bitrates().iter().map(|b| b.kbps()).collect();
        assert_eq!(declared, vec![128, 196, 384]);
        assert_eq!(l.get(0).detail.label(), "2ch/44kHz");
    }

    #[test]
    fn b_and_c_sets_declared() {
        let b: Vec<u64> = Ladder::low_audio_b()
            .declared_bitrates()
            .iter()
            .map(|x| x.kbps())
            .collect();
        assert_eq!(b, vec![32, 64, 128]);
        let c: Vec<u64> = Ladder::high_audio_c()
            .declared_bitrates()
            .iter()
            .map(|x| x.kbps())
            .collect();
        assert_eq!(c, vec![196, 384, 768]);
    }

    #[test]
    fn highest_within_budget() {
        let l = Ladder::table1_video();
        // 675 Kbps budget (0.75 × 900): highest ≤ is V3 (473).
        let t = l.highest_within(BitsPerSec::from_kbps(675)).unwrap();
        assert_eq!(t.name(), "V3");
        // Budget below V1: none fit.
        assert!(l.highest_within(BitsPerSec::from_kbps(100)).is_none());
        // Huge budget: top rung.
        assert_eq!(
            l.highest_within(BitsPerSec::from_kbps(99_999))
                .unwrap()
                .name(),
            "V6"
        );
    }

    #[test]
    fn lookup_by_id() {
        let l = Ladder::table1_audio();
        assert_eq!(l.track(TrackId::audio(2)).declared.kbps(), 384);
    }

    #[test]
    #[should_panic(expected = "looked up in")]
    fn wrong_media_lookup_panics() {
        Ladder::table1_audio().track(TrackId::video(0));
    }

    #[test]
    #[should_panic(expected = "strictly ascend")]
    fn rejects_unsorted_ladder() {
        Ladder::new(
            MediaType::Audio,
            vec![
                TrackInfo::audio(0, 128, 134, 128, 2, 44_000),
                TrackInfo::audio(1, 64, 67, 64, 2, 44_000),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn rejects_gapped_indices() {
        Ladder::new(
            MediaType::Audio,
            vec![TrackInfo::audio(1, 64, 67, 64, 2, 44_000)],
        );
    }
}
