//! Property-based tests: VBR calibration, combination algebra and the
//! staircase rule over arbitrary ladders.

use abr_event::rng::SplitMix64;
use abr_event::time::Duration;
use abr_media::combo::{all_combos, combo_bitrate, curated_subset, is_staircase, log_staircase};
use abr_media::ladder::Ladder;
use abr_media::track::{MediaType, TrackInfo};
use abr_media::units::{BitsPerSec, Bytes};
use abr_media::vbr::{chunk_sizes, measure, VbrParams};
use proptest::prelude::*;

/// An arbitrary strictly-ascending ladder of `n` declared bitrates.
fn arb_ladder(media: MediaType, max_rungs: usize) -> impl Strategy<Value = Ladder> {
    proptest::collection::vec(1u64..400, 1..=max_rungs).prop_map(move |increments| {
        let mut declared = Vec::new();
        let mut acc = 30u64;
        for inc in increments {
            acc += inc;
            declared.push(acc);
        }
        let tracks = declared
            .iter()
            .enumerate()
            .map(|(i, &kbps)| match media {
                MediaType::Video => TrackInfo::video(i, kbps, kbps * 2, kbps, 144),
                MediaType::Audio => TrackInfo::audio(i, kbps, kbps * 2, kbps, 2, 44_000),
            })
            .collect();
        Ladder::new(media, tracks)
    })
}

proptest! {
    /// For any (avg ≤ peak ≤ n·avg/2) parameters, the synthesized chunk
    /// sizes realize the requested average and peak within 1 Kbps, all
    /// sizes are positive, and the sequence is seed-deterministic.
    #[test]
    fn vbr_calibration_holds(
        avg_kbps in 32u64..4000,
        peak_factor in 1u32..30, // peak = avg · (1 + f/10), capped below n·avg
        spread in 0u32..=90,
        n in 2usize..150,
        seed in any::<u64>(),
    ) {
        let avg = BitsPerSec::from_kbps(avg_kbps);
        let peak_kbps = (avg_kbps + avg_kbps * peak_factor as u64 / 10)
            .min(avg_kbps * n as u64 / 2);
        let peak = BitsPerSec::from_kbps(peak_kbps.max(avg_kbps));
        let params = VbrParams { avg, peak, spread: spread as f64 / 100.0 };
        let chunk = Duration::from_secs(4);
        let sizes = chunk_sizes(params, chunk, n, &mut SplitMix64::new(seed));
        prop_assert_eq!(sizes.len(), n);
        prop_assert!(sizes.iter().all(|s| s.get() > 0));
        let m = measure(&sizes, chunk);
        prop_assert!((m.avg.kbps() as i64 - avg.kbps() as i64).abs() <= 1,
            "avg {} vs {}", m.avg.kbps(), avg.kbps());
        prop_assert!((m.peak.kbps() as i64 - peak.kbps() as i64).abs() <= 1,
            "peak {} vs {}", m.peak.kbps(), peak.kbps());
        let again = chunk_sizes(params, chunk, n, &mut SplitMix64::new(seed));
        prop_assert_eq!(sizes, again);
    }

    /// The log staircase is always a valid staircase of length M+N−1 for
    /// arbitrary ladders, and every included combination pairs valid
    /// indices.
    #[test]
    fn staircase_invariants(
        video in arb_ladder(MediaType::Video, 10),
        audio in arb_ladder(MediaType::Audio, 6),
    ) {
        let combos = log_staircase(&video, &audio);
        prop_assert_eq!(combos.len(), video.len() + audio.len() - 1);
        prop_assert!(is_staircase(&combos, video.len(), audio.len()));
        // Aggregate declared bitrates ascend along the staircase.
        let bws: Vec<u64> = combos
            .iter()
            .map(|&c| combo_bitrate(&video, &audio, c).declared.bps())
            .collect();
        prop_assert!(bws.windows(2).all(|w| w[0] < w[1]), "monotone bandwidths: {:?}", bws);
    }

    /// `all_combos` emits exactly M×N unique combinations sorted by
    /// aggregate peak bitrate.
    #[test]
    fn all_combos_sorted_and_complete(
        video in arb_ladder(MediaType::Video, 8),
        audio in arb_ladder(MediaType::Audio, 5),
    ) {
        let combos = all_combos(&video, &audio);
        prop_assert_eq!(combos.len(), video.len() * audio.len());
        let unique: std::collections::BTreeSet<_> = combos.iter().collect();
        prop_assert_eq!(unique.len(), combos.len());
        let peaks: Vec<u64> = combos
            .iter()
            .map(|&c| combo_bitrate(&video, &audio, c).peak.bps())
            .collect();
        prop_assert!(peaks.windows(2).all(|w| w[0] <= w[1]));
    }

    /// The curated subset covers every video rung exactly once with
    /// non-decreasing audio rungs (low pairs with low).
    #[test]
    fn curated_subset_invariants(
        video in arb_ladder(MediaType::Video, 8),
        audio in arb_ladder(MediaType::Audio, 5),
    ) {
        let combos = curated_subset(&video, &audio);
        prop_assert_eq!(combos.len(), video.len());
        for (i, c) in combos.iter().enumerate() {
            prop_assert_eq!(c.video, i);
            prop_assert!(c.audio < audio.len());
        }
        prop_assert!(combos.windows(2).all(|w| w[0].audio <= w[1].audio));
        // The top video rung always pairs with the top audio rung.
        prop_assert_eq!(combos.last().unwrap().audio, audio.len() - 1);
    }

    /// Byte/rate conversions round-trip within rounding error for
    /// arbitrary rates and durations.
    #[test]
    fn unit_conversions_roundtrip(kbps in 1u64..100_000, ms in 1u64..3_600_000) {
        let rate = BitsPerSec::from_kbps(kbps);
        let micros = ms * 1000;
        let bytes = rate.bytes_in_micros(micros);
        if bytes > Bytes::ZERO {
            let back = bytes.rate_over_micros(micros);
            // Rounding to whole bytes costs at most 8 bits per duration.
            let tolerance = (8_000_000 / micros).max(1);
            prop_assert!(
                (back.bps() as i64 - rate.bps() as i64).unsigned_abs() <= tolerance,
                "{} vs {} (tol {tolerance})", back.bps(), rate.bps()
            );
        }
    }
}
