//! The stepper contract: driving a session through
//! [`abr_player::stepper::SessionStepper`] is byte-identical to
//! [`Session::run`], including over a degenerate shared path — the
//! single-session half of the fleet-of-1 parity standard (DESIGN.md §14).

use abr_event::time::{Duration, Instant};
use abr_httpsim::origin::Origin;
use abr_httpsim::shared::{FleetHub, SharedEdge};
use abr_media::content::Content;
use abr_media::units::{BitsPerSec, Bytes};
use abr_net::link::Link;
use abr_net::trace::Trace;
use abr_player::config::{PlayerConfig, SyncMode};
use abr_player::log::SessionLog;
use abr_player::policy::FixedPolicy;
use abr_player::session::Session;
use std::cell::RefCell;
use std::rc::Rc;

fn build(rate_kbps: u64, video: usize, audio: usize, sync: SyncMode) -> Session {
    let content = Content::drama_show(1);
    let origin = Origin::with_overhead(content.clone(), Bytes::ZERO);
    let link = Link::new(Trace::constant(BitsPerSec::from_kbps(rate_kbps)));
    let config = PlayerConfig {
        sync,
        ..PlayerConfig::default_chunked(content.chunk_duration())
    };
    Session::new(origin, link, Box::new(FixedPolicy { video, audio }), config)
}

/// Drives a stepper exactly the way the fleet driver does: ask for the
/// next wake, dispatch, repeat.
fn run_stepped(session: Session) -> SessionLog {
    let mut stepper = session.into_stepper();
    while stepper.next_wake().is_some() {
        if !stepper.dispatch_next() {
            break;
        }
    }
    stepper.finish()
}

const CHUNKED: SyncMode = SyncMode::ChunkLevel {
    tolerance: Duration::from_secs(4),
};

#[test]
fn stepper_matches_run_clean_session() {
    let direct = build(5_000, 0, 0, CHUNKED).run();
    let stepped = run_stepped(build(5_000, 0, 0, CHUNKED));
    assert_eq!(direct, stepped);
    assert!(stepped.completed());
}

#[test]
fn stepper_matches_run_starved_session() {
    // A heavily stalling run exercises every wake class.
    let direct = build(500, 5, 2, CHUNKED).run();
    let stepped = run_stepped(build(500, 5, 2, CHUNKED));
    assert_eq!(direct, stepped);
    assert!(stepped.stall_count() > 0);
}

#[test]
fn stepper_matches_run_independent_pipelines() {
    let direct = build(2_000, 4, 1, SyncMode::Independent).run();
    let stepped = run_stepped(build(2_000, 4, 1, SyncMode::Independent));
    assert_eq!(direct, stepped);
}

#[test]
fn stepper_matches_run_with_seeks() {
    let seeks = vec![
        (Instant::from_secs(30), Duration::from_secs(120)),
        (Instant::from_secs(90), Duration::from_secs(200)),
    ];
    let direct = build(2_000, 2, 1, CHUNKED).with_seeks(seeks.clone()).run();
    let stepped = run_stepped(build(2_000, 2, 1, CHUNKED).with_seeks(seeks));
    assert_eq!(direct, stepped);
    assert_eq!(stepped.seeks.len(), 2);
}

#[test]
fn degenerate_shared_path_is_invisible() {
    // A passthrough FleetHub must not perturb a session at all: same log
    // as the direct-origin path, run or stepped.
    let direct = build(2_000, 2, 1, CHUNKED).run();
    let hub = Rc::new(RefCell::new(FleetHub::passthrough()));
    let shared = build(2_000, 2, 1, CHUNKED).with_transfer_path(Box::new(SharedEdge::new(
        Rc::clone(&hub),
        0,
        Duration::from_secs(1234),
    )));
    let stepped = run_stepped(shared);
    assert_eq!(direct, stepped);
}
