//! End-to-end session behavior through the public facade: startup, stalls,
//! pipeline balance, playlists, seeks, edge caching, muxed delivery,
//! packaging equivalence, live refresh, and bit-reproducibility.

use abr_event::time::{Duration, Instant};
use abr_httpsim::origin::Origin;
use abr_media::content::Content;
use abr_media::track::{MediaType, TrackId};
use abr_media::units::{BitsPerSec, Bytes};
use abr_net::link::Link;
use abr_net::trace::Trace;
use abr_player::config::{PlayerConfig, SyncMode};
use abr_player::log::SessionLog;
use abr_player::policy::FixedPolicy;
use abr_player::session::{DeliveryMode, EdgeCache, PlaylistFetch, Session};

fn kbps(k: u64) -> BitsPerSec {
    BitsPerSec::from_kbps(k)
}

fn run_fixed(rate_kbps: u64, video: usize, audio: usize, sync: SyncMode) -> SessionLog {
    let content = Content::drama_show(1);
    let origin = Origin::with_overhead(content.clone(), Bytes::ZERO);
    let link = Link::new(Trace::constant(kbps(rate_kbps)));
    let config = PlayerConfig {
        sync,
        ..PlayerConfig::default_chunked(content.chunk_duration())
    };
    Session::new(origin, link, Box::new(FixedPolicy { video, audio }), config).run()
}

const CHUNKED: SyncMode = SyncMode::ChunkLevel {
    tolerance: Duration::from_secs(4),
};

#[test]
fn ample_bandwidth_plays_clean() {
    // V1+A1 needs ~239 Kbps average; 5 Mbps is overkill.
    let log = run_fixed(5_000, 0, 0, CHUNKED);
    assert!(log.completed(), "must play to the end");
    assert_eq!(log.stall_count(), 0);
    assert_eq!(log.selected_tracks(MediaType::Video), vec![0; 75]);
    assert_eq!(log.selected_tracks(MediaType::Audio), vec![0; 75]);
    assert!(log.startup_at.unwrap() < Instant::from_secs(2));
    assert_eq!(log.ended_at, Some(log.finished_at));
}

#[test]
fn starved_session_stalls() {
    // V6+A3 averages ~3.1 Mbps; a 500 Kbps link must rebuffer heavily.
    let log = run_fixed(500, 5, 2, CHUNKED);
    assert!(log.stall_count() > 0, "starved run must stall");
    assert!(log.total_stall() > Duration::from_secs(60));
}

#[test]
fn buffers_stay_balanced_with_chunk_sync() {
    let log = run_fixed(2_000, 2, 1, CHUNKED);
    assert!(log.completed());
    // With one-chunk tolerance the imbalance can never exceed ~2 chunks.
    assert!(
        log.max_buffer_imbalance() <= Duration::from_secs(9),
        "imbalance {}",
        log.max_buffer_imbalance()
    );
}

#[test]
fn independent_mode_unbalances_buffers() {
    // Audio (A2, 196 Kbps) downloads far faster than video (V5,
    // 1421 Kbps) on a tight link: without sync, audio races ahead.
    let log = run_fixed(2_000, 4, 1, SyncMode::Independent);
    assert!(
        log.max_buffer_imbalance() > Duration::from_secs(12),
        "imbalance {}",
        log.max_buffer_imbalance()
    );
}

#[test]
fn every_chunk_transferred_exactly_once() {
    let log = run_fixed(3_000, 1, 0, CHUNKED);
    assert_eq!(log.transfers.len(), 150);
    let mut audio_chunks: Vec<usize> = log
        .transfers
        .iter()
        .filter(|t| t.track.media == MediaType::Audio)
        .map(|t| t.chunk)
        .collect();
    audio_chunks.sort_unstable();
    assert_eq!(audio_chunks, (0..75).collect::<Vec<_>>());
}

#[test]
fn deadline_cuts_off_starved_runs() {
    let content = Content::drama_show(1);
    let origin = Origin::with_overhead(content.clone(), Bytes::ZERO);
    // 1 Kbps: nothing meaningful ever downloads.
    let link = Link::new(Trace::constant(kbps(1)));
    let config = PlayerConfig::default_chunked(content.chunk_duration());
    let log = Session::new(
        origin,
        link,
        Box::new(FixedPolicy { video: 0, audio: 0 }),
        config,
    )
    .with_deadline(Instant::from_secs(600))
    .run();
    assert!(!log.completed());
    assert!(log.finished_at <= Instant::from_secs(600));
}

#[test]
fn preloaded_playlists_cost_nothing() {
    let log = run_fixed(2_000, 1, 0, CHUNKED);
    assert!(log.playlist_fetches.is_empty());
}

fn run_with_playlists(mode: PlaylistFetch, video: usize, audio: usize) -> SessionLog {
    let content = Content::drama_show(1);
    let origin = Origin::with_overhead(content.clone(), Bytes(320));
    let link = Link::with_latency(Trace::constant(kbps(2_000)), Duration::from_millis(40));
    let config = PlayerConfig::default_chunked(content.chunk_duration());
    Session::new(origin, link, Box::new(FixedPolicy { video, audio }), config)
        .with_playlist_fetch(mode, abr_manifest::build::Packaging::SingleFile)
        .run()
}

#[test]
fn eager_fetches_every_playlist_before_startup() {
    let log = run_with_playlists(PlaylistFetch::Eager, 1, 0);
    assert!(log.completed());
    // 6 video + 3 audio playlists, all before the first chunk arrives.
    assert_eq!(log.playlist_fetches.len(), 9);
    let last_playlist = log
        .playlist_fetches
        .iter()
        .map(|p| p.completed_at)
        .max()
        .unwrap();
    let first_chunk = log.transfers.first().unwrap().at;
    assert!(last_playlist <= first_chunk, "playlists land before chunks");
    // And startup is later than a preloaded run's.
    let preloaded = run_with_playlists(PlaylistFetch::Preloaded, 1, 0);
    assert!(log.startup_at.unwrap() > preloaded.startup_at.unwrap());
}

#[test]
fn lazy_fetches_only_used_tracks_and_delays_their_first_chunk() {
    let log = run_with_playlists(PlaylistFetch::Lazy, 2, 1);
    assert!(log.completed());
    // A fixed policy touches exactly one video + one audio track.
    assert_eq!(log.playlist_fetches.len(), 2);
    let tracks: Vec<TrackId> = log.playlist_fetches.iter().map(|p| p.track).collect();
    assert!(tracks.contains(&TrackId::video(2)));
    assert!(tracks.contains(&TrackId::audio(1)));
    // The first chunk request was deferred behind the playlist
    // round trip: first transfer completes after the playlist did.
    let first_chunk = log.transfers.first().unwrap().at;
    let first_playlist = log
        .playlist_fetches
        .iter()
        .map(|p| p.completed_at)
        .min()
        .unwrap();
    assert!(first_chunk > first_playlist);
    // Startup also trails the preloaded run.
    let preloaded = run_with_playlists(PlaylistFetch::Preloaded, 2, 1);
    assert!(log.startup_at.unwrap() > preloaded.startup_at.unwrap());
}

#[test]
fn forward_seek_skips_content_and_resumes() {
    let content = Content::drama_show(1);
    let origin = Origin::with_overhead(content.clone(), Bytes::ZERO);
    let link = Link::with_latency(Trace::constant(kbps(2_000)), Duration::from_millis(20));
    let config = PlayerConfig::default_chunked(content.chunk_duration());
    // At t=30 s, jump to media position 200 s (chunk 50).
    let log = Session::new(
        origin,
        link,
        Box::new(FixedPolicy { video: 1, audio: 0 }),
        config,
    )
    .with_seeks(vec![(Instant::from_secs(30), Duration::from_secs(200))])
    .run();
    assert_eq!(log.seeks.len(), 1);
    let seek = log.seeks[0];
    assert_eq!(seek.at, Instant::from_secs(30));
    assert_eq!(seek.to, Duration::from_secs(200));
    assert!(seek.resumed.is_some(), "playback resumed after the seek");
    // Playback reached the end even though the middle was skipped.
    assert!(log.ended_at.is_some());
    // Chunks in the skipped region were never selected.
    let video_chunks: std::collections::BTreeSet<usize> = log
        .selections
        .iter()
        .filter(|s| s.track.media == MediaType::Video)
        .map(|s| s.chunk)
        .collect();
    assert!(video_chunks.contains(&0));
    assert!(video_chunks.contains(&50));
    assert!(video_chunks.contains(&74));
    // The deep-skip region (selected-before-seek prefix aside) has a
    // hole: chunk 45 was neither buffered nor fetched after the flush.
    assert!(!video_chunks.contains(&45) || seek.at > Instant::from_secs(170));
    // Wall time saved: the session ends well before a full watch.
    assert!(log.finished_at < Instant::from_secs(240));
}

#[test]
fn stale_seeks_are_ignored() {
    let content = Content::drama_show(1);
    let origin = Origin::with_overhead(content.clone(), Bytes::ZERO);
    let link = Link::new(Trace::constant(kbps(2_000)));
    let config = PlayerConfig::default_chunked(content.chunk_duration());
    // Backward / past-the-end seeks are dropped.
    let log = Session::new(
        origin,
        link,
        Box::new(FixedPolicy { video: 0, audio: 0 }),
        config,
    )
    .with_seeks(vec![
        (Instant::from_secs(100), Duration::from_secs(4)), // behind the playhead
        (Instant::from_secs(120), Duration::from_secs(400)), // past the end
    ])
    .run();
    assert!(log.seeks.is_empty());
    assert!(log.completed());
}

#[test]
fn edge_cache_misses_slow_the_cold_session() {
    let content = Content::drama_show(1);
    let mk = |edge: Option<EdgeCache>| {
        let origin = Origin::with_overhead(content.clone(), Bytes::ZERO);
        let link = Link::with_latency(Trace::constant(kbps(2_000)), Duration::from_millis(10));
        let config = PlayerConfig::default_chunked(content.chunk_duration());
        let mut s = Session::new(
            origin,
            link,
            Box::new(FixedPolicy { video: 1, audio: 0 }),
            config,
        );
        if let Some(e) = edge {
            s = s.with_edge_cache(e);
        }
        s.run_with_edge()
    };
    // Cold edge: every request misses and pays 80 ms to the origin.
    let cold_edge = EdgeCache {
        cache: abr_httpsim::cache::CdnCache::new(Bytes(1 << 32)),
        miss_penalty: Duration::from_millis(80),
    };
    let (cold, warmed) = mk(Some(cold_edge));
    let warmed = warmed.expect("edge returned");
    assert_eq!(warmed.cache.stats().misses, 150, "every chunk missed");
    // Warm edge (second viewer, same tracks): every request hits.
    let (warm, warmed2) = mk(Some(warmed));
    assert_eq!(warmed2.unwrap().cache.stats().hits, 150);
    // And a no-edge control.
    let (control, none) = mk(None);
    assert!(none.is_none());
    // Miss penalties delay startup and finish.
    assert!(cold.startup_at.unwrap() > warm.startup_at.unwrap());
    assert_eq!(
        warm.startup_at, control.startup_at,
        "hits cost nothing extra"
    );
    assert!(cold.finished_at >= warm.finished_at);
}

#[test]
fn muxed_delivery_fills_both_buffers_in_lockstep() {
    let content = Content::drama_show(1);
    let origin = Origin::with_overhead(content.clone(), Bytes::ZERO);
    let link = Link::new(Trace::constant(kbps(2_000)));
    let config = PlayerConfig::default_chunked(content.chunk_duration());
    let log = Session::new(
        origin,
        link,
        Box::new(FixedPolicy { video: 1, audio: 0 }),
        config,
    )
    .with_delivery(DeliveryMode::Muxed)
    .run();
    assert!(log.completed());
    // One transfer per chunk position, not two.
    assert_eq!(log.transfers.len(), 75);
    // Both selections logged per position.
    assert_eq!(log.selections.len(), 150);
    // Perfectly balanced buffers by construction.
    assert_eq!(log.max_buffer_imbalance(), Duration::ZERO);
    // Transfer sizes are the sum of both components.
    for t in &log.transfers {
        let expect = content.chunk_size(TrackId::video(1), t.chunk)
            + content.chunk_size(TrackId::audio(0), t.chunk);
        assert_eq!(t.size, expect);
    }
}

#[test]
fn byte_range_packaging_is_timing_identical() {
    // §4.1: the two packaging modes carry the same bytes; the session
    // timeline must be identical to the microsecond.
    let content = Content::drama_show(1);
    let mk = |packaging| {
        let origin = Origin::with_overhead(content.clone(), Bytes(320));
        let link = Link::with_latency(Trace::constant(kbps(1_500)), Duration::from_millis(20));
        let config = PlayerConfig::default_chunked(content.chunk_duration());
        Session::new(
            origin,
            link,
            Box::new(FixedPolicy { video: 1, audio: 0 }),
            config,
        )
        .with_packaging(packaging)
        .run()
    };
    let seg = mk(abr_manifest::build::Packaging::SegmentFiles {
        with_bitrate_tags: false,
    });
    let rng = mk(abr_manifest::build::Packaging::SingleFile);
    assert_eq!(seg.transfers.len(), rng.transfers.len());
    for (a, b) in seg.transfers.iter().zip(rng.transfers.iter()) {
        assert_eq!(a.at, b.at);
        assert_eq!(a.size, b.size);
    }
    assert_eq!(seg.startup_at, rng.startup_at);
    assert_eq!(seg.ended_at, rng.ended_at);
}

#[test]
fn sessions_are_bit_reproducible() {
    // The determinism claim, end to end: identical inputs produce
    // identical logs, selection by selection and stall by stall.
    let run_once = || {
        let content = Content::drama_show(99);
        let origin = Origin::with_overhead(content.clone(), Bytes(320));
        let link = Link::with_latency(
            Trace::random_walk(
                kbps(900),
                kbps(200),
                kbps(2_000),
                0.4,
                Duration::from_secs(3),
                Duration::from_secs(3600),
                5,
            ),
            Duration::from_millis(20),
        );
        let config = PlayerConfig::default_chunked(content.chunk_duration());
        Session::new(
            origin,
            link,
            Box::new(FixedPolicy { video: 2, audio: 1 }),
            config,
        )
        .run()
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.selections, b.selections);
    assert_eq!(a.transfers, b.transfers);
    assert_eq!(a.stalls, b.stalls);
    assert_eq!(a.buffer_samples, b.buffer_samples);
    assert_eq!(a.startup_at, b.startup_at);
    assert_eq!(a.finished_at, b.finished_at);
}

#[test]
fn buffer_samples_monotone_in_time() {
    let log = run_fixed(1_500, 2, 0, CHUNKED);
    assert!(log.buffer_samples.windows(2).all(|w| w[0].at <= w[1].at));
    assert!(
        log.buffer_samples.len() > 150,
        "a sample per event at least"
    );
}

fn run_with_refresh(period: Option<Duration>) -> SessionLog {
    let content = Content::drama_show(1);
    let origin = Origin::with_overhead(content.clone(), Bytes(320));
    let link = Link::with_latency(Trace::constant(kbps(2_000)), Duration::from_millis(40));
    let config = PlayerConfig::default_chunked(content.chunk_duration());
    let mut s = Session::new(
        origin,
        link,
        Box::new(FixedPolicy { video: 1, audio: 0 }),
        config,
    );
    if let Some(p) = period {
        s = s.with_playlist_refresh(p, abr_manifest::build::Packaging::SingleFile);
    }
    s.run()
}

#[test]
fn playlist_refresh_polls_selected_tracks_periodically() {
    let log = run_with_refresh(Some(Duration::from_secs(4)));
    assert!(log.completed());
    // Every tick polls the two selected tracks (one audio, one video),
    // and only those — a fixed policy never touches other tracks.
    assert!(!log.playlist_fetches.is_empty(), "ticks produced polls");
    let tracks: std::collections::BTreeSet<TrackId> =
        log.playlist_fetches.iter().map(|p| p.track).collect();
    assert_eq!(
        tracks,
        [TrackId::video(1), TrackId::audio(0)].into_iter().collect()
    );
    // Roughly one audio + one video poll per 4 s of wall time.
    let secs = log.finished_at.as_micros() / 1_000_000;
    let expected = (secs / 4) * 2;
    let got = log.playlist_fetches.len() as u64;
    assert!(
        got >= expected.saturating_sub(4) && got <= expected + 4,
        "expected ~{expected} polls, got {got}"
    );
    // Polls are timestamped at tick boundaries.
    for p in &log.playlist_fetches {
        assert_eq!(p.requested_at.as_micros() % 4_000_000, 0);
    }
}

#[test]
fn playlist_refresh_does_not_disrupt_playback() {
    // Poll transfers share the link and the per-media pipelines with
    // chunk fetches; on an ample link they ride in the pipelines' idle
    // time, so the session still plays every chunk exactly once, cleanly,
    // and finishes no earlier than the poll-free run.
    let vod = run_with_refresh(None);
    let live = run_with_refresh(Some(Duration::from_secs(4)));
    assert!(vod.playlist_fetches.is_empty());
    assert!(live.completed());
    assert_eq!(live.stall_count(), 0);
    assert!(live.finished_at >= vod.finished_at);
    // Both still play every chunk exactly once.
    assert_eq!(vod.transfers.len(), live.transfers.len());
}

#[test]
fn playlist_refresh_off_is_byte_identical_to_before() {
    // The refresh feature is strictly opt-in: a default session must not
    // change in any observable way.
    let a = run_with_refresh(None);
    let b = run_with_refresh(None);
    assert_eq!(a.transfers, b.transfers);
    assert_eq!(a.buffer_samples, b.buffer_samples);
}
