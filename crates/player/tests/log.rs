//! Unit tests for the session-log accessors and trace reconstruction.

use abr_event::time::{Duration, Instant};
use abr_media::track::{MediaType, TrackId};
use abr_media::units::{BitsPerSec, Bytes};
use abr_obs::{Event, TracedEvent};
use abr_player::log::{BufferSample, SelectionEvent, SessionLog};
use abr_player::playback::Stall;

fn sel(at: u64, chunk: usize, track: TrackId, kbps: u64) -> SelectionEvent {
    SelectionEvent {
        at: Instant::from_secs(at),
        chunk,
        track,
        declared: BitsPerSec::from_kbps(kbps),
        avg_bitrate: BitsPerSec::from_kbps(kbps),
    }
}

fn empty_log() -> SessionLog {
    SessionLog {
        policy: "test".into(),
        selections: vec![],
        transfers: vec![],
        buffer_samples: vec![],
        stalls: vec![],
        playlist_fetches: vec![],
        seeks: vec![],
        startup_at: None,
        ended_at: None,
        finished_at: Instant::from_secs(100),
        chunk_duration: Duration::from_secs(4),
        num_chunks: 3,
    }
}

#[test]
fn selected_tracks_and_switches() {
    let mut log = empty_log();
    log.selections = vec![
        sel(0, 0, TrackId::video(1), 246),
        sel(0, 0, TrackId::audio(0), 128),
        sel(4, 1, TrackId::video(2), 473),
        sel(4, 1, TrackId::audio(0), 128),
        sel(8, 2, TrackId::video(2), 473),
        sel(8, 2, TrackId::audio(1), 196),
    ];
    assert_eq!(log.selected_tracks(MediaType::Video), vec![1, 2, 2]);
    assert_eq!(log.selected_tracks(MediaType::Audio), vec![0, 0, 1]);
    assert_eq!(log.switch_count(MediaType::Video), 1);
    assert_eq!(log.switch_count(MediaType::Audio), 1);
    assert_eq!(log.distinct_tracks(MediaType::Video), vec![1, 2]);
}

#[test]
fn mean_selected_bitrate() {
    let mut log = empty_log();
    log.selections = vec![
        sel(0, 0, TrackId::video(0), 100),
        sel(4, 1, TrackId::video(1), 300),
    ];
    assert_eq!(
        log.mean_selected_avg_bitrate(MediaType::Video),
        Some(BitsPerSec::from_kbps(200))
    );
    assert_eq!(log.mean_selected_avg_bitrate(MediaType::Audio), None);
}

#[test]
fn stall_totals_count_open_stalls() {
    let mut log = empty_log();
    log.stalls = vec![
        Stall {
            start: Instant::from_secs(10),
            end: Some(Instant::from_secs(13)),
        },
        Stall {
            start: Instant::from_secs(90),
            end: None,
        },
    ];
    assert_eq!(log.stall_count(), 2);
    // 3 s closed + 10 s open (to finished_at = 100).
    assert_eq!(log.total_stall(), Duration::from_secs(13));
}

#[test]
fn imbalance_integral() {
    let mut log = empty_log();
    log.buffer_samples = vec![
        BufferSample {
            at: Instant::ZERO,
            audio: Duration::from_secs(10),
            video: Duration::from_secs(10),
        },
        BufferSample {
            at: Instant::from_secs(10),
            audio: Duration::from_secs(30),
            video: Duration::from_secs(10),
        },
    ];
    // Imbalance ramps 0 → 20 s over 10 s: mean 10 s, max 20 s.
    assert_eq!(log.mean_buffer_imbalance(), Duration::from_secs(10));
    assert_eq!(log.max_buffer_imbalance(), Duration::from_secs(20));
}

#[test]
fn completed_requires_full_coverage_and_end() {
    let mut log = empty_log();
    log.num_chunks = 1;
    log.selections = vec![
        sel(0, 0, TrackId::video(0), 100),
        sel(0, 0, TrackId::audio(0), 100),
    ];
    assert!(!log.completed(), "no ended_at yet");
    log.ended_at = Some(Instant::from_secs(4));
    assert!(log.completed());
}

#[test]
fn duplicate_selection_resolves_last_write_wins() {
    let mut log = empty_log();
    log.selections = vec![
        sel(0, 0, TrackId::video(0), 100),
        sel(1, 0, TrackId::video(1), 100),
    ];
    assert_eq!(log.selected_tracks(MediaType::Video), vec![1]);
    let err = log.try_selected_tracks(MediaType::Video).unwrap_err();
    assert_eq!(err.chunk, 0);
    assert_eq!((err.first, err.second), (0, 1));
    assert!(err
        .to_string()
        .contains("duplicate video selection for chunk 0"));
    // Clean logs agree between the strict and lenient accessors.
    log.selections.pop();
    assert_eq!(
        log.try_selected_tracks(MediaType::Video).unwrap(),
        log.selected_tracks(MediaType::Video)
    );
}

#[test]
fn from_trace_reconstructs_rows() {
    use Instant as I;
    let mk = |seq, at, event| TracedEvent {
        seq,
        at,
        wall_ns: 0,
        event,
    };
    let events = vec![
        mk(
            0,
            I::ZERO,
            Event::SessionStart {
                policy: "test".into(),
                chunk_duration: Duration::from_secs(4),
                num_chunks: 3,
            },
        ),
        mk(
            1,
            I::ZERO,
            Event::TrackSelected {
                chunk: 0,
                track: TrackId::video(1),
                declared: BitsPerSec::from_kbps(246),
                avg_bitrate: BitsPerSec::from_kbps(240),
            },
        ),
        mk(
            2,
            I::from_secs(1),
            Event::TransferCompleted {
                flow: 0,
                track: TrackId::video(1),
                chunk: 0,
                size: Bytes(120_000),
                opened_at: I::ZERO,
                estimate_after: Some(BitsPerSec::from_kbps(960)),
            },
        ),
        mk(
            3,
            I::from_secs(1),
            Event::BufferStateChange {
                audio: Duration::from_secs(4),
                video: Duration::from_secs(4),
            },
        ),
        mk(4, I::from_secs(2), Event::PlaybackStarted),
        mk(5, I::from_secs(6), Event::StallBegin),
        mk(6, I::from_secs(8), Event::StallEnd),
        mk(
            7,
            I::from_secs(9),
            Event::PlaylistFetch {
                track: TrackId::audio(0),
                requested_at: I::from_secs(8),
            },
        ),
        mk(8, I::from_secs(12), Event::PlaybackEnded),
        mk(9, I::from_secs(12), Event::SessionEnd),
    ];
    let log = SessionLog::from_trace(&events).unwrap();
    assert_eq!(log.policy, "test");
    assert_eq!(log.selections.len(), 1);
    assert_eq!(log.transfers[0].duration, Duration::from_secs(1));
    assert_eq!(
        log.transfers[0].estimate_after,
        Some(BitsPerSec::from_kbps(960))
    );
    assert_eq!(log.buffer_samples.len(), 1);
    assert_eq!(
        log.stalls,
        vec![Stall {
            start: I::from_secs(6),
            end: Some(I::from_secs(8))
        }]
    );
    assert_eq!(log.playlist_fetches[0].completed_at, I::from_secs(9));
    assert_eq!(log.startup_at, Some(I::from_secs(2)));
    assert_eq!(log.ended_at, Some(I::from_secs(12)));
    assert_eq!(log.finished_at, I::from_secs(12));
    assert_eq!(log.total_stall(), Duration::from_secs(2));
}

#[test]
fn from_trace_rejects_malformed_traces() {
    let mk = |seq, event| TracedEvent {
        seq,
        at: Instant::ZERO,
        wall_ns: 0,
        event,
    };
    assert!(SessionLog::from_trace(&[]).is_err());
    let err = SessionLog::from_trace(&[mk(0, Event::StallBegin)]).unwrap_err();
    assert!(err.message.contains("before session_start"));
    let start = Event::SessionStart {
        policy: "t".into(),
        chunk_duration: Duration::from_secs(4),
        num_chunks: 1,
    };
    let err = SessionLog::from_trace(&[mk(0, start), mk(1, Event::StallEnd)]).unwrap_err();
    assert!(err.message.contains("stall_end without open stall"));
}
