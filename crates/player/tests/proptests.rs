//! Property-based tests: buffer arithmetic, playback drain accounting and
//! scheduler gating.

use abr_event::time::{Duration, Instant};
use abr_media::track::{MediaType, TrackId};
use abr_player::buffer::{BufferedChunk, ChunkBuffer};
use abr_player::config::{PlayerConfig, SyncMode};
use abr_player::playback::{PlayState, PlaybackEngine};
use abr_player::scheduler::{due_fetches, PipelineState};
use proptest::prelude::*;

fn chunk(index: usize, millis: u64) -> BufferedChunk {
    BufferedChunk {
        index,
        track: TrackId::video(0),
        duration: Duration::from_millis(millis),
    }
}

proptest! {
    /// Pushing then draining in arbitrary interleavings conserves content:
    /// level == pushed − drained at every step, and drains never exceed
    /// the level.
    #[test]
    fn buffer_conservation(ops in proptest::collection::vec((1u64..8_000, 0u64..100), 1..60)) {
        let mut buf = ChunkBuffer::new(MediaType::Video);
        let mut pushed = 0u64;
        let mut drained = 0u64;
        for (next_index, (push_ms, drain_pct)) in ops.into_iter().enumerate() {
            buf.push(chunk(next_index, push_ms));
            pushed += push_ms;
            let level_ms = buf.level().as_millis();
            let want = level_ms * drain_pct / 100;
            buf.drain(Duration::from_millis(want));
            drained += want;
            prop_assert_eq!(buf.level().as_millis(), pushed - drained);
        }
    }

    /// The playback engine's position plus remaining runway always equals
    /// played content; stalls never overlap and the engine never plays
    /// more than was buffered.
    #[test]
    fn playback_accounting(
        arrivals in proptest::collection::vec(100u64..6_000, 2..40),
    ) {
        let total_ms: u64 = arrivals.iter().sum();
        let mut audio = ChunkBuffer::new(MediaType::Audio);
        let mut video = ChunkBuffer::new(MediaType::Video);
        let mut engine = PlaybackEngine::new(
            Duration::from_millis(total_ms),
            Duration::from_millis(100),
            Duration::from_millis(100),
        );
        let mut now = Instant::ZERO;
        for (i, &ms) in arrivals.iter().enumerate() {
            // Chunks arrive with one-second gaps (forcing stalls whenever
            // a chunk is shorter than the gap).
            audio.push(BufferedChunk {
                index: i,
                track: TrackId::audio(0),
                duration: Duration::from_millis(ms),
            });
            video.push(BufferedChunk {
                index: i,
                track: TrackId::video(0),
                duration: Duration::from_millis(ms),
            });
            engine.try_start(now, &audio, &video);
            // Advance up to one second or the next boundary.
            let target = now + Duration::from_secs(1);
            let step_to = match engine.next_boundary(now, &audio, &video) {
                Some(b) => b.min(target),
                None => target,
            };
            engine.advance(now, step_to, &mut audio, &mut video);
            now = target;
        }
        // Drain out the rest.
        loop {
            engine.try_start(now, &audio, &video);
            match engine.next_boundary(now, &audio, &video) {
                Some(b) if engine.state() == PlayState::Playing => {
                    engine.advance(now, b, &mut audio, &mut video);
                    now = b;
                }
                _ => break,
            }
        }
        // Accounting: played position never exceeds total, equals total
        // when ended, and stalls are disjoint & within the session.
        prop_assert!(engine.position() <= Duration::from_millis(total_ms));
        if engine.state() == PlayState::Ended {
            prop_assert_eq!(engine.position(), Duration::from_millis(total_ms));
        }
        for w in engine.stalls().windows(2) {
            prop_assert!(w[0].end.expect("inner stalls closed") <= w[1].start);
        }
    }

    /// Scheduler gating invariants for arbitrary pipeline states: never
    /// schedules an in-flight or exhausted pipeline; never exceeds the
    /// buffer target; chunk-level sync never lets the leader extend its
    /// lead past tolerance while the peer is active.
    #[test]
    fn scheduler_gates(
        a_inflight in any::<bool>(),
        v_inflight in any::<bool>(),
        a_next in 0usize..80,
        v_next in 0usize..80,
        a_level_s in 0u64..40,
        v_level_s in 0u64..40,
        tolerance_s in 1u64..10,
        independent in any::<bool>(),
    ) {
        let num_chunks = 75;
        let cfg = PlayerConfig {
            startup_threshold: Duration::from_secs(4),
            resume_threshold: Duration::from_secs(4),
            max_buffer: Duration::from_secs(30),
            sync: if independent {
                SyncMode::Independent
            } else {
                SyncMode::ChunkLevel { tolerance: Duration::from_secs(tolerance_s) }
            },
        };
        let audio = PipelineState {
            in_flight: a_inflight,
            next_chunk: a_next,
            level: Duration::from_secs(a_level_s),
        };
        let video = PipelineState {
            in_flight: v_inflight,
            next_chunk: v_next,
            level: Duration::from_secs(v_level_s),
        };
        let due = due_fetches(&cfg, audio, video, num_chunks);
        for media in due {
            let (me, other) = match media {
                MediaType::Audio => (audio, video),
                MediaType::Video => (video, audio),
            };
            prop_assert!(!me.in_flight, "never double-schedules");
            prop_assert!(me.next_chunk < num_chunks, "never past the end");
            prop_assert!(me.level < cfg.max_buffer, "never above target");
            if let SyncMode::ChunkLevel { tolerance } = cfg.sync {
                if other.next_chunk < num_chunks {
                    prop_assert!(
                        me.level < other.level + tolerance,
                        "leader halted at the tolerance"
                    );
                }
            }
        }
    }
}
