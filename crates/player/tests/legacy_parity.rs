//! Differential test: the event-queue engine versus the loop it replaced.
//!
//! `legacy_run` is a faithful port of the session loop as it existed
//! before the engine rewrite — virtual time advanced by taking the `min`
//! of the candidate instants (transfer completion, playback boundary,
//! refill wake, due seek) each iteration, with the deadline checked
//! inline. The engine instead arms those candidates as typed events on an
//! `abr_event::EventQueue` and pops the earliest. The two must produce
//! **identical** [`SessionLog`]s — every selection, transfer, buffer
//! sample, stall and timestamp — across every session feature.

use abr_event::time::{busy_union, Duration, Instant};
use abr_httpsim::edge::{EdgeCache, TransferPath};
use abr_httpsim::origin::Origin;
use abr_httpsim::request::{ObjectId, Request};
use abr_manifest::build::Packaging;
use abr_media::combo::Combo;
use abr_media::content::Content;
use abr_media::track::{MediaType, TrackId};
use abr_media::units::{BitsPerSec, Bytes};
use abr_net::link::{FlowId, Link};
use abr_net::trace::Trace;
use abr_player::buffer::{BufferedChunk, ChunkBuffer};
use abr_player::config::PlayerConfig;
use abr_player::log::{
    BufferSample, PlaylistFetchEvent, SelectionEvent, SessionLog, TransferEvent,
};
use abr_player::playback::{PlayState, PlaybackEngine};
use abr_player::policy::{AbrPolicy, FixedPolicy, SelectionContext, TransferRecord};
use abr_player::scheduler::{due_fetches, DueFetches, PipelineState};
use abr_player::session::{DeliveryMode, PlaylistFetch, Session};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Everything a session run is parameterized by, for both implementations.
struct Scenario {
    content: Content,
    trace: Trace,
    latency: Duration,
    overhead: Bytes,
    config_of: fn(&Content) -> PlayerConfig,
    policy: fn() -> Box<dyn AbrPolicy>,
    packaging: Packaging,
    playlist_fetch: PlaylistFetch,
    delivery: DeliveryMode,
    edge: Option<(Bytes, Duration)>,
    seeks: Vec<(Instant, Duration)>,
    deadline: Option<Instant>,
}

impl Scenario {
    fn origin(&self) -> Origin {
        Origin::with_overhead(self.content.clone(), self.overhead)
    }

    fn link(&self) -> Link {
        Link::with_latency(self.trace.clone(), self.latency)
    }

    fn edge_cache(&self) -> Option<EdgeCache> {
        self.edge.map(|(capacity, penalty)| EdgeCache {
            cache: abr_httpsim::cache::CdnCache::new(capacity),
            miss_penalty: penalty,
        })
    }

    /// The new implementation: the public facade over the event engine.
    fn run_engine(&self) -> SessionLog {
        let config = (self.config_of)(&self.content);
        let mut s = Session::new(self.origin(), self.link(), (self.policy)(), config)
            .with_packaging(self.packaging)
            .with_delivery(self.delivery)
            .with_seeks(self.seeks.clone());
        if self.playlist_fetch != PlaylistFetch::Preloaded {
            s = s.with_playlist_fetch(self.playlist_fetch, self.packaging);
        }
        if let Some(e) = self.edge_cache() {
            s = s.with_edge_cache(e);
        }
        if let Some(d) = self.deadline {
            s = s.with_deadline(d);
        }
        s.run()
    }

    /// The old implementation, ported verbatim (minus obs, which never
    /// fed the log): min-of-candidates time stepping.
    fn run_legacy(&self) -> SessionLog {
        let config = (self.config_of)(&self.content);
        config.validate();
        let mut origin = self.origin();
        let mut link = self.link();
        let mut policy = (self.policy)();
        let mut edge = self.edge_cache();
        let deadline = self
            .deadline
            .unwrap_or(Instant::ZERO + self.content.duration() * 20 + Duration::from_secs(120));

        // Playlist publication, as Session::with_playlist_fetch did it.
        let mut playlist_sizes: BTreeMap<TrackId, Bytes> = BTreeMap::new();
        if self.playlist_fetch != PlaylistFetch::Preloaded {
            for &id in self.content.track_ids() {
                let playlist =
                    abr_manifest::build::build_media_playlist(&self.content, id, self.packaging);
                let path = abr_manifest::build::playlist_uri(id);
                origin.publish_document(&path, &playlist.to_text());
                let req = Request::whole(ObjectId::Document { path });
                let size = origin.transfer_size(&req).expect("published just above");
                playlist_sizes.insert(id, size);
            }
        }

        let content = self.content.clone();
        let chunk_duration = content.chunk_duration();
        let num_chunks = content.num_chunks();
        let mut audio_buf = ChunkBuffer::new(MediaType::Audio);
        let mut video_buf = ChunkBuffer::new(MediaType::Video);
        let mut playback = PlaybackEngine::new(
            content.duration(),
            config.startup_threshold,
            config.resume_threshold,
        );
        let mut pending: BTreeMap<FlowId, Pending> = BTreeMap::new();
        let mut playlists_ready: BTreeSet<TrackId> = BTreeSet::new();
        let total_tracks = content.track_ids().len();
        let mut current_audio: Option<usize> = None;
        let mut current_video: Option<usize> = None;
        let mut log = SessionLog {
            policy: policy.name().to_string(),
            selections: Vec::new(),
            transfers: Vec::new(),
            buffer_samples: Vec::new(),
            stalls: Vec::new(),
            playlist_fetches: Vec::new(),
            seeks: Vec::new(),
            startup_at: None,
            ended_at: None,
            finished_at: Instant::ZERO,
            chunk_duration,
            num_chunks,
        };
        let mut now = Instant::ZERO;
        let mut meter_last = Instant::ZERO;

        macro_rules! schedule {
            () => {{
                let gated = self.playlist_fetch == PlaylistFetch::Eager
                    && playlists_ready.len() < total_tracks;
                let in_flight = |media: MediaType| pending.values().any(|p| p.media() == media);
                let pipes = |buf: &ChunkBuffer, media: MediaType| PipelineState {
                    in_flight: in_flight(media),
                    next_chunk: buf.next_download_index(),
                    level: buf.level(),
                };
                let mut due = if gated {
                    DueFetches::default()
                } else {
                    due_fetches(
                        &config,
                        pipes(&audio_buf, MediaType::Audio),
                        pipes(&video_buf, MediaType::Video),
                        num_chunks,
                    )
                };
                if self.delivery == DeliveryMode::Muxed {
                    due.retain(|m| m == MediaType::Video);
                }
                for media in due {
                    let buf = match media {
                        MediaType::Audio => &audio_buf,
                        MediaType::Video => &video_buf,
                    };
                    let chunk = buf.next_download_index();
                    let ctx = SelectionContext {
                        now,
                        media,
                        chunk,
                        audio_level: audio_buf.level(),
                        video_level: video_buf.level(),
                        chunk_duration,
                        current_audio,
                        current_video,
                        playing: playback.state() == PlayState::Playing,
                    };
                    let track = policy.select(&ctx);
                    match media {
                        MediaType::Audio => current_audio = Some(track.index),
                        MediaType::Video => current_video = Some(track.index),
                    }
                    let info = content.track(track);
                    log.selections.push(SelectionEvent {
                        at: now,
                        chunk,
                        track,
                        declared: info.declared,
                        avg_bitrate: info.avg,
                    });
                    if self.delivery == DeliveryMode::Muxed {
                        let actx = SelectionContext {
                            media: MediaType::Audio,
                            ..ctx
                        };
                        let audio_track = policy.select(&actx);
                        current_audio = Some(audio_track.index);
                        let ainfo = content.track(audio_track);
                        log.selections.push(SelectionEvent {
                            at: now,
                            chunk,
                            track: audio_track,
                            declared: ainfo.declared,
                            avg_bitrate: ainfo.avg,
                        });
                        let combo = Combo::new(track.index, audio_track.index);
                        let req = Request::whole(ObjectId::MuxedSegment { combo, chunk });
                        let size = origin.transfer_size(&req).expect("valid muxed chunk");
                        let extra = edge.first_byte_delay(&origin, &req, now);
                        let flow = link.open_flow_after(size, extra);
                        pending.insert(
                            flow,
                            Pending::Muxed {
                                video: track,
                                audio: audio_track,
                                chunk,
                                opened_at: now,
                            },
                        );
                        continue;
                    }
                    let fetch = ChunkFetch {
                        media,
                        track,
                        chunk,
                        opened_at: now,
                    };
                    if self.playlist_fetch == PlaylistFetch::Lazy
                        && !playlists_ready.contains(&track)
                    {
                        let size = playlist_sizes[&track];
                        let flow = link.open_flow(size);
                        pending.insert(
                            flow,
                            Pending::Playlist {
                                track,
                                requested_at: now,
                                then: Some(fetch),
                            },
                        );
                    } else {
                        let req = chunk_request(&origin, self.packaging, track, chunk);
                        let size = origin.transfer_size(&req).expect("valid chunk request");
                        let extra = edge.first_byte_delay(&origin, &req, now);
                        let flow = link.open_flow_after(size, extra);
                        pending.insert(flow, Pending::Chunk(fetch));
                    }
                }
            }};
        }

        macro_rules! sample {
            () => {
                log.buffer_samples.push(BufferSample {
                    at: now,
                    audio: audio_buf.level(),
                    video: video_buf.level(),
                });
            };
        }

        let mut seek_queue: VecDeque<(Instant, Duration)> = {
            let mut s = self.seeks.clone();
            s.sort_by_key(|&(at, _)| at);
            s.into_iter().collect()
        };
        if self.playlist_fetch == PlaylistFetch::Eager {
            for &track in content.track_ids() {
                let size = playlist_sizes[&track];
                let flow = link.open_flow(size);
                pending.insert(
                    flow,
                    Pending::Playlist {
                        track,
                        requested_at: now,
                        then: None,
                    },
                );
            }
        }
        schedule!();
        sample!();

        loop {
            if playback.state() == PlayState::Ended {
                break;
            }
            let completion = link.next_completion();
            let boundary = playback.next_boundary(now, &audio_buf, &video_buf);
            let refill = if playback.state() == PlayState::Playing {
                [
                    (&audio_buf, MediaType::Audio),
                    (&video_buf, MediaType::Video),
                ]
                .into_iter()
                .filter(|(buf, media)| {
                    !pending.values().any(|p| p.media() == *media)
                        && buf.next_download_index() < num_chunks
                        && buf.level() >= config.max_buffer
                })
                .map(|(buf, _)| now + (buf.level() - config.max_buffer) + Duration::from_millis(1))
                .min()
            } else {
                None
            };
            let seek_at = if playback.startup_at().is_some() {
                seek_queue.front().map(|&(at, _)| at.max(now))
            } else {
                None
            };
            let t = match [completion, boundary, refill, seek_at]
                .into_iter()
                .flatten()
                .min()
            {
                Some(t) => t,
                None => break, // starved: stalled with a dead link
            };
            if t > deadline {
                break;
            }

            let completions = link.advance_to(t);
            playback.advance(now, t, &mut audio_buf, &mut video_buf);
            now = t;

            let (window_bytes, window_busy) = if completions.is_empty() {
                (Bytes::ZERO, Duration::ZERO)
            } else {
                let mut bytes = Bytes::ZERO;
                let mut intervals: Vec<(Instant, Instant)> = Vec::new();
                {
                    let mut take = |profile: &abr_net::profile::DeliveryProfile| {
                        bytes += profile.bytes_between(meter_last, now);
                        for s in profile.segments() {
                            let lo = s.start.max(meter_last);
                            let hi = s.end.min(now);
                            if lo < hi {
                                intervals.push((lo, hi));
                            }
                        }
                    };
                    for c in &completions {
                        take(&c.profile);
                    }
                    for id in pending.keys() {
                        if let Some(p) = link.flow_profile(*id) {
                            take(p);
                        }
                    }
                }
                meter_last = now;
                (bytes, busy_union(intervals))
            };
            let mut first_completion = true;

            for c in completions {
                let p = match pending.remove(&c.id).expect("completion for unknown flow") {
                    Pending::Muxed {
                        video,
                        audio,
                        chunk,
                        opened_at,
                    } => {
                        audio_buf.push(BufferedChunk {
                            index: chunk,
                            track: audio,
                            duration: chunk_duration,
                        });
                        video_buf.push(BufferedChunk {
                            index: chunk,
                            track: video,
                            duration: chunk_duration,
                        });
                        let record = TransferRecord {
                            media: MediaType::Video,
                            track: video,
                            chunk,
                            size: c.size,
                            opened_at,
                            completed_at: c.at,
                            profile: c.profile,
                            window_bytes: if first_completion {
                                window_bytes
                            } else {
                                Bytes::ZERO
                            },
                            window_busy: if first_completion {
                                window_busy
                            } else {
                                Duration::ZERO
                            },
                        };
                        first_completion = false;
                        policy.on_transfer(&record);
                        log.transfers.push(TransferEvent {
                            at: c.at,
                            chunk,
                            track: video,
                            size: c.size,
                            duration: c.at.saturating_duration_since(opened_at),
                            estimate_after: policy.debug_estimate(),
                        });
                        continue;
                    }
                    Pending::Playlist {
                        track,
                        requested_at,
                        then,
                    } => {
                        playlists_ready.insert(track);
                        log.playlist_fetches.push(PlaylistFetchEvent {
                            track,
                            requested_at,
                            completed_at: c.at,
                        });
                        if let Some(fetch) = then {
                            let buf = match fetch.media {
                                MediaType::Audio => &audio_buf,
                                MediaType::Video => &video_buf,
                            };
                            if fetch.chunk != buf.next_download_index() {
                                continue;
                            }
                            let req =
                                chunk_request(&origin, self.packaging, fetch.track, fetch.chunk);
                            let size = origin.transfer_size(&req).expect("valid chunk request");
                            let extra = edge.first_byte_delay(&origin, &req, c.at);
                            let flow = link.open_flow_after(size, extra);
                            pending.insert(
                                flow,
                                Pending::Chunk(ChunkFetch {
                                    opened_at: c.at,
                                    ..fetch
                                }),
                            );
                        }
                        continue;
                    }
                    Pending::Chunk(f) => f,
                };
                let buf = match p.media {
                    MediaType::Audio => &mut audio_buf,
                    MediaType::Video => &mut video_buf,
                };
                buf.push(BufferedChunk {
                    index: p.chunk,
                    track: p.track,
                    duration: chunk_duration,
                });
                let (wb, wd) = if first_completion {
                    (window_bytes, window_busy)
                } else {
                    (Bytes::ZERO, Duration::ZERO)
                };
                first_completion = false;
                let record = TransferRecord {
                    media: p.media,
                    track: p.track,
                    chunk: p.chunk,
                    size: c.size,
                    opened_at: p.opened_at,
                    completed_at: c.at,
                    profile: c.profile,
                    window_bytes: wb,
                    window_busy: wd,
                };
                policy.on_transfer(&record);
                log.transfers.push(TransferEvent {
                    at: c.at,
                    chunk: p.chunk,
                    track: p.track,
                    size: c.size,
                    duration: c.at.saturating_duration_since(p.opened_at),
                    estimate_after: policy.debug_estimate(),
                });
            }

            while let Some(&(at, target)) = seek_queue.front() {
                if at > now || playback.startup_at().is_none() {
                    break;
                }
                seek_queue.pop_front();
                let chunk_idx = (target.as_micros() / chunk_duration.as_micros()) as usize;
                let aligned = chunk_duration * chunk_idx as u64;
                if playback.state() == PlayState::Ended
                    || chunk_idx >= num_chunks
                    || aligned <= playback.position()
                {
                    continue;
                }
                let stale: Vec<FlowId> = pending
                    .iter()
                    .filter(|(_, p)| !matches!(p, Pending::Playlist { .. }))
                    .map(|(id, _)| *id)
                    .collect();
                for id in stale {
                    pending.remove(&id);
                    link.cancel_flow(id);
                }
                audio_buf.flush_to(chunk_idx);
                video_buf.flush_to(chunk_idx);
                playback.seek(now, aligned);
            }

            playback.try_start(now, &audio_buf, &video_buf);
            schedule!();
            sample!();
        }

        log.startup_at = playback.startup_at();
        log.ended_at = playback.ended_at();
        log.stalls = playback.stalls().to_vec();
        log.seeks = playback.seeks().to_vec();
        log.finished_at = now;
        log
    }
}

#[derive(Debug, Clone, Copy)]
struct ChunkFetch {
    media: MediaType,
    track: TrackId,
    chunk: usize,
    opened_at: Instant,
}

#[derive(Debug, Clone, Copy)]
enum Pending {
    Chunk(ChunkFetch),
    Playlist {
        track: TrackId,
        requested_at: Instant,
        then: Option<ChunkFetch>,
    },
    Muxed {
        video: TrackId,
        audio: TrackId,
        chunk: usize,
        opened_at: Instant,
    },
}

impl Pending {
    fn media(&self) -> MediaType {
        match self {
            Pending::Chunk(c) => c.media,
            Pending::Playlist { track, .. } => track.media,
            Pending::Muxed { .. } => MediaType::Video,
        }
    }
}

fn chunk_request(origin: &Origin, packaging: Packaging, track: TrackId, chunk: usize) -> Request {
    match packaging {
        Packaging::SingleFile => origin
            .range_request(track, chunk)
            .expect("valid chunk range"),
        Packaging::SegmentFiles { .. } => Origin::segment_request(track, chunk),
    }
}

fn kbps(k: u64) -> BitsPerSec {
    BitsPerSec::from_kbps(k)
}

fn base(trace: Trace, policy_video: usize, policy_audio: usize) -> Scenario {
    Scenario {
        content: Content::drama_show(1),
        trace,
        latency: Duration::ZERO,
        overhead: Bytes::ZERO,
        config_of: |c| PlayerConfig::default_chunked(c.chunk_duration()),
        policy: || Box::new(FixedPolicy { video: 0, audio: 0 }),
        packaging: Packaging::SegmentFiles {
            with_bitrate_tags: false,
        },
        playlist_fetch: PlaylistFetch::Preloaded,
        delivery: DeliveryMode::Demuxed,
        edge: None,
        seeks: Vec::new(),
        deadline: None,
    }
    .with_policy(policy_video, policy_audio)
}

impl Scenario {
    fn with_policy(mut self, _video: usize, _audio: usize) -> Scenario {
        // FixedPolicy is Copy-constructed in the closure; encode the choice
        // via dedicated closures below instead (fn pointers can't capture).
        self.policy = match (_video, _audio) {
            (0, 0) => || Box::new(FixedPolicy { video: 0, audio: 0 }),
            (1, 0) => || Box::new(FixedPolicy { video: 1, audio: 0 }),
            (2, 1) => || Box::new(FixedPolicy { video: 2, audio: 1 }),
            (4, 1) => || Box::new(FixedPolicy { video: 4, audio: 1 }),
            (5, 2) => || Box::new(FixedPolicy { video: 5, audio: 2 }),
            _ => unreachable!("add a closure arm for this track pair"),
        };
        self
    }

    fn check(self) {
        let engine = self.run_engine();
        let legacy = self.run_legacy();
        assert_eq!(engine, legacy);
    }
}

#[test]
fn parity_ample_constant_link() {
    base(Trace::constant(kbps(5_000)), 0, 0).check();
}

#[test]
fn parity_starved_link_with_stalls() {
    base(Trace::constant(kbps(500)), 5, 2).check();
}

#[test]
fn parity_variable_link() {
    let mut s = base(
        Trace::random_walk(
            kbps(900),
            kbps(200),
            kbps(2_000),
            0.4,
            Duration::from_secs(3),
            Duration::from_secs(3600),
            5,
        ),
        2,
        1,
    );
    s.content = Content::drama_show(99);
    s.latency = Duration::from_millis(20);
    s.overhead = Bytes(320);
    s.check();
}

#[test]
fn parity_lazy_playlists() {
    let mut s = base(Trace::constant(kbps(2_000)), 2, 1);
    s.latency = Duration::from_millis(40);
    s.overhead = Bytes(320);
    s.playlist_fetch = PlaylistFetch::Lazy;
    s.packaging = Packaging::SingleFile;
    s.check();
}

#[test]
fn parity_eager_playlists() {
    let mut s = base(Trace::constant(kbps(2_000)), 1, 0);
    s.latency = Duration::from_millis(40);
    s.overhead = Bytes(320);
    s.playlist_fetch = PlaylistFetch::Eager;
    s.packaging = Packaging::SingleFile;
    s.check();
}

#[test]
fn parity_muxed_delivery() {
    base(Trace::constant(kbps(2_000)), 1, 0)
        .tap(|s| s.delivery = DeliveryMode::Muxed)
        .check();
}

#[test]
fn parity_edge_cache() {
    base(Trace::constant(kbps(2_000)), 1, 0)
        .tap(|s| {
            s.latency = Duration::from_millis(10);
            s.edge = Some((Bytes(1 << 32), Duration::from_millis(80)));
        })
        .check();
}

#[test]
fn parity_seeks() {
    base(Trace::constant(kbps(2_000)), 1, 0)
        .tap(|s| {
            s.latency = Duration::from_millis(20);
            s.seeks = vec![
                (Instant::from_secs(30), Duration::from_secs(200)),
                (Instant::from_secs(100), Duration::from_secs(4)),
            ];
        })
        .check();
}

#[test]
fn parity_deadline_cutoff() {
    base(Trace::constant(kbps(1)), 0, 0)
        .tap(|s| s.deadline = Some(Instant::from_secs(600)))
        .check();
}

#[test]
fn parity_byte_range_packaging() {
    base(Trace::constant(kbps(1_500)), 1, 0)
        .tap(|s| {
            s.latency = Duration::from_millis(20);
            s.overhead = Bytes(320);
            s.packaging = Packaging::SingleFile;
        })
        .check();
}

impl Scenario {
    fn tap(mut self, f: impl FnOnce(&mut Scenario)) -> Scenario {
        f(&mut self);
        self
    }
}
