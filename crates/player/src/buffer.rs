//! Per-media chunk buffers.
//!
//! A buffer holds downloaded-but-unplayed chunks for one media type and is
//! measured in *seconds of content* — the unit the paper's balance argument
//! (§4.2) uses. Playback drains both media buffers in lockstep.

use abr_event::time::Duration;
use abr_media::track::{MediaType, TrackId};
use std::collections::VecDeque;

/// One buffered chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferedChunk {
    /// Playback-order chunk index.
    pub index: usize,
    /// The track the chunk was taken from.
    pub track: TrackId,
    /// Chunk duration.
    pub duration: Duration,
}

/// A FIFO of buffered chunks for one media type, with partial playout of
/// the head chunk.
#[derive(Debug, Clone)]
pub struct ChunkBuffer {
    media: MediaType,
    queue: VecDeque<BufferedChunk>,
    /// How much of the head chunk has already been played.
    head_played: Duration,
    /// Index of the next chunk playback expects (for contiguity checks).
    next_play_index: usize,
}

impl ChunkBuffer {
    /// An empty buffer for `media`.
    pub fn new(media: MediaType) -> ChunkBuffer {
        ChunkBuffer {
            media,
            queue: VecDeque::new(),
            head_played: Duration::ZERO,
            next_play_index: 0,
        }
    }

    /// The media type this buffer holds.
    pub fn media(&self) -> MediaType {
        self.media
    }

    /// Appends a chunk. Panics if the chunk is for the wrong media type or
    /// breaks playback-order contiguity.
    pub fn push(&mut self, chunk: BufferedChunk) {
        assert_eq!(chunk.track.media, self.media, "chunk of wrong media type");
        let expected = self
            .queue
            .back()
            .map_or(self.next_play_index, |c| c.index + 1);
        assert_eq!(
            chunk.index, expected,
            "non-contiguous chunk {} (expected {expected})",
            chunk.index
        );
        assert!(!chunk.duration.is_zero(), "zero-duration chunk");
        self.queue.push_back(chunk);
    }

    /// Buffered seconds of content remaining to play.
    pub fn level(&self) -> Duration {
        let total: Duration = self.queue.iter().map(|c| c.duration).sum();
        total - self.head_played
    }

    /// True when nothing is left to play.
    pub fn is_empty(&self) -> bool {
        self.level().is_zero()
    }

    /// Index of the next chunk a downloader should append.
    pub fn next_download_index(&self) -> usize {
        self.queue
            .back()
            .map_or(self.next_play_index, |c| c.index + 1)
    }

    /// Consumes `dt` of content. Panics if `dt` exceeds the buffered level
    /// (the playback engine is responsible for clamping at boundaries).
    pub fn drain(&mut self, dt: Duration) {
        assert!(
            dt <= self.level(),
            "drain {dt} exceeds level {}",
            self.level()
        );
        let mut left = dt;
        while !left.is_zero() {
            let head = self.queue.front().expect("level guaranteed content");
            let head_left = head.duration - self.head_played;
            if left < head_left {
                self.head_played += left;
                left = Duration::ZERO;
            } else {
                left -= head_left;
                self.next_play_index = head.index + 1;
                self.queue.pop_front();
                self.head_played = Duration::ZERO;
            }
        }
    }

    /// The buffered chunks in playback order (head first).
    pub fn chunks(&self) -> impl Iterator<Item = &BufferedChunk> {
        self.queue.iter()
    }

    /// Discards everything and repositions playback/download at `index`
    /// (a seek). The next chunk pushed — and played — is `index`.
    pub fn flush_to(&mut self, index: usize) {
        self.queue.clear();
        self.head_played = Duration::ZERO;
        self.next_play_index = index;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(index: usize, track: usize, secs: u64) -> BufferedChunk {
        BufferedChunk {
            index,
            track: TrackId::video(track),
            duration: Duration::from_secs(secs),
        }
    }

    #[test]
    fn level_accumulates_and_drains() {
        let mut b = ChunkBuffer::new(MediaType::Video);
        assert!(b.is_empty());
        b.push(chunk(0, 0, 4));
        b.push(chunk(1, 2, 4));
        assert_eq!(b.level(), Duration::from_secs(8));
        b.drain(Duration::from_secs(3));
        assert_eq!(b.level(), Duration::from_secs(5));
        b.drain(Duration::from_secs(5));
        assert!(b.is_empty());
    }

    #[test]
    fn partial_head_tracking() {
        let mut b = ChunkBuffer::new(MediaType::Video);
        b.push(chunk(0, 0, 4));
        b.drain(Duration::from_millis(1500));
        assert_eq!(b.level(), Duration::from_millis(2500));
        // Crossing the chunk boundary pops it and advances the index.
        b.push(chunk(1, 1, 4));
        b.drain(Duration::from_secs(3));
        assert_eq!(b.level(), Duration::from_millis(3500));
        assert_eq!(b.next_download_index(), 2);
    }

    #[test]
    fn next_download_index_follows_play_position() {
        let mut b = ChunkBuffer::new(MediaType::Audio);
        assert_eq!(b.next_download_index(), 0);
        b.push(BufferedChunk {
            index: 0,
            track: TrackId::audio(0),
            duration: Duration::from_secs(4),
        });
        assert_eq!(b.next_download_index(), 1);
        b.drain(Duration::from_secs(4));
        // Fully played: downloads continue from where the queue left off.
        assert_eq!(b.next_download_index(), 1);
    }

    #[test]
    #[should_panic(expected = "non-contiguous")]
    fn rejects_gap() {
        let mut b = ChunkBuffer::new(MediaType::Video);
        b.push(chunk(0, 0, 4));
        b.push(chunk(2, 0, 4));
    }

    #[test]
    #[should_panic(expected = "wrong media type")]
    fn rejects_wrong_media() {
        let mut b = ChunkBuffer::new(MediaType::Audio);
        b.push(chunk(0, 0, 4));
    }

    #[test]
    #[should_panic(expected = "exceeds level")]
    fn overdrain_panics() {
        let mut b = ChunkBuffer::new(MediaType::Video);
        b.push(chunk(0, 0, 4));
        b.drain(Duration::from_secs(5));
    }

    #[test]
    fn flush_to_repositions() {
        let mut b = ChunkBuffer::new(MediaType::Video);
        b.push(chunk(0, 0, 4));
        b.push(chunk(1, 1, 4));
        b.drain(Duration::from_secs(1));
        b.flush_to(40);
        assert!(b.is_empty());
        assert_eq!(b.next_download_index(), 40);
        b.push(chunk(40, 2, 4)); // contiguity restarts at the target
        assert_eq!(b.level(), Duration::from_secs(4));
    }

    #[test]
    fn chunks_iterates_in_order() {
        let mut b = ChunkBuffer::new(MediaType::Video);
        b.push(chunk(0, 3, 4));
        b.push(chunk(1, 4, 4));
        let tracks: Vec<usize> = b.chunks().map(|c| c.track.index).collect();
        assert_eq!(tracks, vec![3, 4]);
    }
}
