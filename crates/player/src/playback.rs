//! The playout state machine.
//!
//! Playback consumes the audio and video buffers in lockstep (both drain at
//! one content-second per wall-second). The machine:
//!
//! * starts once **both** buffers reach the startup threshold,
//! * stalls the instant **either** buffer empties (§2.1: "either empty
//!   audio or video buffer leads to stalls"),
//! * resumes once both buffers recover to the rebuffer threshold,
//! * ends when the full content duration has played out.

use crate::buffer::ChunkBuffer;
use abr_event::time::{Duration, Instant};

/// Current playout state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlayState {
    /// Waiting for the initial buffers.
    Startup,
    /// Playing content.
    Playing,
    /// Stalled mid-stream waiting for a buffer to recover.
    Stalled,
    /// Rebuffering after a user seek.
    Seeking,
    /// All content played.
    Ended,
}

/// One rebuffering event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stall {
    /// When playback froze.
    pub start: Instant,
    /// When playback resumed (`None` while ongoing or if the session ended
    /// stalled).
    pub end: Option<Instant>,
}

impl Stall {
    /// Stall length, measured to `session_end` if never resumed.
    pub fn duration_or(&self, session_end: Instant) -> Duration {
        self.end
            .unwrap_or(session_end)
            .saturating_duration_since(self.start)
    }
}

/// One seek: the jump and how long re-buffering took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seek {
    /// When the user sought.
    pub at: Instant,
    /// Media position jumped from.
    pub from: Duration,
    /// Media position jumped to.
    pub to: Duration,
    /// When playback resumed (`None` while rebuffering or if the session
    /// ended first).
    pub resumed: Option<Instant>,
}

/// The playout engine.
#[derive(Debug, Clone)]
pub struct PlaybackEngine {
    state: PlayState,
    /// Media time played so far.
    position: Duration,
    /// Total content duration.
    total: Duration,
    startup_threshold: Duration,
    resume_threshold: Duration,
    startup_at: Option<Instant>,
    ended_at: Option<Instant>,
    stalls: Vec<Stall>,
    seeks: Vec<Seek>,
}

impl PlaybackEngine {
    /// A new engine for content of length `total`.
    pub fn new(total: Duration, startup_threshold: Duration, resume_threshold: Duration) -> Self {
        assert!(!total.is_zero(), "zero-length content");
        PlaybackEngine {
            state: PlayState::Startup,
            position: Duration::ZERO,
            total,
            startup_threshold,
            resume_threshold,
            startup_at: None,
            ended_at: None,
            stalls: Vec::new(),
            seeks: Vec::new(),
        }
    }

    /// Current state.
    pub fn state(&self) -> PlayState {
        self.state
    }

    /// Media time played so far.
    pub fn position(&self) -> Duration {
        self.position
    }

    /// When playback first started, if it has.
    pub fn startup_at(&self) -> Option<Instant> {
        self.startup_at
    }

    /// When playback finished, if it has.
    pub fn ended_at(&self) -> Option<Instant> {
        self.ended_at
    }

    /// All stall events so far.
    pub fn stalls(&self) -> &[Stall] {
        &self.stalls
    }

    /// All seeks so far.
    pub fn seeks(&self) -> &[Seek] {
        &self.seeks
    }

    /// Jumps the playhead to `to` (a user seek). The caller is responsible
    /// for flushing the buffers; playback re-enters a rebuffering state and
    /// resumes once `try_start` sees enough content. Panics on a seek past
    /// the end or before playback ever started.
    pub fn seek(&mut self, now: Instant, to: Duration) {
        assert!(to < self.total, "seek past the end");
        assert!(self.state != PlayState::Ended, "seek after playback ended");
        assert!(self.startup_at.is_some(), "seek before startup");
        // An open stall is superseded by the seek (the rebuffering that
        // follows is accounted to the seek, not the stall).
        if let Some(stall) = self.stalls.last_mut() {
            if stall.end.is_none() {
                stall.end = Some(now);
            }
        }
        self.seeks.push(Seek {
            at: now,
            from: self.position,
            to,
            resumed: None,
        });
        self.position = to;
        self.state = PlayState::Seeking;
    }

    /// The next instant at which this engine changes state on its own: the
    /// moment the scarcer buffer runs dry (stall or end of content).
    /// `None` unless playing — startup/resume transitions are driven by
    /// chunk arrivals, not by time.
    pub fn next_boundary(
        &self,
        now: Instant,
        audio: &ChunkBuffer,
        video: &ChunkBuffer,
    ) -> Option<Instant> {
        if self.state != PlayState::Playing {
            return None;
        }
        let runway = audio
            .level()
            .min(video.level())
            .min(self.total - self.position);
        Some(now + runway)
    }

    /// Advances playout from `from` to `to`, draining both buffers. The
    /// caller must not advance past [`PlaybackEngine::next_boundary`]; at
    /// the boundary the state transition (stall or end) is taken exactly.
    pub fn advance(
        &mut self,
        from: Instant,
        to: Instant,
        audio: &mut ChunkBuffer,
        video: &mut ChunkBuffer,
    ) {
        assert!(to >= from, "time reversal");
        if self.state != PlayState::Playing {
            return;
        }
        let dt = to - from;
        let runway = audio
            .level()
            .min(video.level())
            .min(self.total - self.position);
        assert!(
            dt <= runway,
            "advance {dt} past playback boundary (runway {runway}); caller must step to next_boundary"
        );
        audio.drain(dt);
        video.drain(dt);
        self.position += dt;
        if self.position == self.total {
            self.state = PlayState::Ended;
            self.ended_at = Some(to);
        } else if audio.is_empty() || video.is_empty() {
            self.state = PlayState::Stalled;
            self.stalls.push(Stall {
                start: to,
                end: None,
            });
        }
    }

    /// Checks whether buffered levels allow starting or resuming playback;
    /// call after every chunk arrival.
    pub fn try_start(&mut self, now: Instant, audio: &ChunkBuffer, video: &ChunkBuffer) {
        let threshold = match self.state {
            PlayState::Startup => self.startup_threshold,
            PlayState::Stalled | PlayState::Seeking => self.resume_threshold,
            _ => return,
        };
        // The tail of the clip may legitimately be shorter than the
        // threshold: start when the remaining content is fully buffered.
        let remaining = self.total - self.position;
        let needed = threshold.min(remaining);
        if audio.level() >= needed && video.level() >= needed {
            match self.state {
                PlayState::Startup => self.startup_at = Some(now),
                PlayState::Seeking => {
                    if let Some(seek) = self.seeks.last_mut() {
                        seek.resumed = Some(now);
                    }
                }
                _ => {
                    if let Some(stall) = self.stalls.last_mut() {
                        stall.end = Some(now);
                    }
                }
            }
            self.state = PlayState::Playing;
        }
    }

    /// Total stalled wall time, counting an unresolved stall up to `now`.
    pub fn total_stall(&self, now: Instant) -> Duration {
        self.stalls.iter().map(|s| s.duration_or(now)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferedChunk;
    use abr_media::track::{MediaType, TrackId};

    const CHUNK: Duration = Duration::from_secs(4);

    fn buffers() -> (ChunkBuffer, ChunkBuffer) {
        (
            ChunkBuffer::new(MediaType::Audio),
            ChunkBuffer::new(MediaType::Video),
        )
    }

    fn push(b: &mut ChunkBuffer, index: usize) {
        let track = match b.media() {
            MediaType::Audio => TrackId::audio(0),
            MediaType::Video => TrackId::video(0),
        };
        b.push(BufferedChunk {
            index,
            track,
            duration: CHUNK,
        });
    }

    fn engine() -> PlaybackEngine {
        PlaybackEngine::new(Duration::from_secs(20), CHUNK, CHUNK)
    }

    #[test]
    fn starts_only_when_both_buffers_ready() {
        let (mut a, mut v) = buffers();
        let mut p = engine();
        push(&mut a, 0);
        p.try_start(Instant::from_secs(1), &a, &v);
        assert_eq!(p.state(), PlayState::Startup, "video still empty");
        push(&mut v, 0);
        p.try_start(Instant::from_secs(2), &a, &v);
        assert_eq!(p.state(), PlayState::Playing);
        assert_eq!(p.startup_at(), Some(Instant::from_secs(2)));
    }

    #[test]
    fn stalls_when_either_buffer_empties() {
        let (mut a, mut v) = buffers();
        let mut p = engine();
        push(&mut a, 0);
        push(&mut a, 1);
        push(&mut v, 0);
        p.try_start(Instant::from_secs(0), &a, &v);
        // Video has 4 s, audio 8 s: boundary at t=4 (video dry).
        let boundary = p.next_boundary(Instant::ZERO, &a, &v).unwrap();
        assert_eq!(boundary, Instant::from_secs(4));
        p.advance(Instant::ZERO, boundary, &mut a, &mut v);
        assert_eq!(p.state(), PlayState::Stalled);
        assert_eq!(p.stalls().len(), 1);
        assert_eq!(p.stalls()[0].start, Instant::from_secs(4));
        assert_eq!(
            a.level(),
            Duration::from_secs(4),
            "audio retains content while stalled"
        );
    }

    #[test]
    fn resume_closes_the_stall() {
        let (mut a, mut v) = buffers();
        let mut p = engine();
        push(&mut a, 0);
        push(&mut v, 0);
        p.try_start(Instant::ZERO, &a, &v);
        p.advance(Instant::ZERO, Instant::from_secs(4), &mut a, &mut v);
        assert_eq!(p.state(), PlayState::Stalled);
        push(&mut a, 1);
        push(&mut v, 1);
        p.try_start(Instant::from_secs(7), &a, &v);
        assert_eq!(p.state(), PlayState::Playing);
        assert_eq!(p.stalls()[0].end, Some(Instant::from_secs(7)));
        assert_eq!(
            p.total_stall(Instant::from_secs(100)),
            Duration::from_secs(3)
        );
    }

    #[test]
    fn ends_exactly_at_content_end() {
        let (mut a, mut v) = buffers();
        let mut p = PlaybackEngine::new(Duration::from_secs(8), CHUNK, CHUNK);
        for i in 0..2 {
            push(&mut a, i);
            push(&mut v, i);
        }
        p.try_start(Instant::ZERO, &a, &v);
        let b = p.next_boundary(Instant::ZERO, &a, &v).unwrap();
        assert_eq!(b, Instant::from_secs(8));
        p.advance(Instant::ZERO, b, &mut a, &mut v);
        assert_eq!(p.state(), PlayState::Ended);
        assert_eq!(p.ended_at(), Some(Instant::from_secs(8)));
        assert!(p.stalls().is_empty(), "clean end is not a stall");
    }

    #[test]
    fn short_tail_starts_below_threshold() {
        // 20 s content, 18 s played, only 2 s remain (< 4 s threshold):
        // playback must restart once the remaining 2 s are buffered.
        let (mut a, mut v) = buffers();
        let mut p = PlaybackEngine::new(Duration::from_secs(6), CHUNK, Duration::from_secs(8));
        push(&mut a, 0);
        push(&mut v, 0);
        p.try_start(Instant::ZERO, &a, &v);
        p.advance(Instant::ZERO, Instant::from_secs(4), &mut a, &mut v);
        assert_eq!(p.state(), PlayState::Stalled);
        // Remaining content is 2 s; resume threshold 8 s would never be met.
        push(&mut a, 1);
        push(&mut v, 1);
        p.try_start(Instant::from_secs(5), &a, &v);
        assert_eq!(p.state(), PlayState::Playing);
    }

    #[test]
    fn mid_run_advance_keeps_playing() {
        let (mut a, mut v) = buffers();
        let mut p = engine();
        for i in 0..2 {
            push(&mut a, i);
            push(&mut v, i);
        }
        p.try_start(Instant::ZERO, &a, &v);
        p.advance(Instant::ZERO, Instant::from_secs(3), &mut a, &mut v);
        assert_eq!(p.state(), PlayState::Playing);
        assert_eq!(p.position(), Duration::from_secs(3));
        assert_eq!(
            p.next_boundary(Instant::from_secs(3), &a, &v),
            Some(Instant::from_secs(8))
        );
    }

    #[test]
    #[should_panic(expected = "past playback boundary")]
    fn advancing_past_boundary_panics() {
        let (mut a, mut v) = buffers();
        let mut p = engine();
        push(&mut a, 0);
        push(&mut v, 0);
        p.try_start(Instant::ZERO, &a, &v);
        p.advance(Instant::ZERO, Instant::from_secs(5), &mut a, &mut v);
    }

    #[test]
    fn seek_repositions_and_rebuffers() {
        let (mut a, mut v) = buffers();
        let mut p = engine(); // 20 s total
        push(&mut a, 0);
        push(&mut v, 0);
        p.try_start(Instant::ZERO, &a, &v);
        p.advance(Instant::ZERO, Instant::from_secs(2), &mut a, &mut v);
        // User seeks to 12 s.
        a.flush_to(3);
        v.flush_to(3);
        p.seek(Instant::from_secs(2), Duration::from_secs(12));
        assert_eq!(p.state(), PlayState::Seeking);
        assert_eq!(p.position(), Duration::from_secs(12));
        assert!(p.next_boundary(Instant::from_secs(2), &a, &v).is_none());
        // Buffers refill at the target; playback resumes.
        push(&mut a, 3);
        push(&mut v, 3);
        p.try_start(Instant::from_secs(3), &a, &v);
        assert_eq!(p.state(), PlayState::Playing);
        let seek = p.seeks()[0];
        assert_eq!(seek.from, Duration::from_secs(2));
        assert_eq!(seek.to, Duration::from_secs(12));
        assert_eq!(seek.resumed, Some(Instant::from_secs(3)));
        // Remaining content: 8 s.
        p.advance(Instant::from_secs(3), Instant::from_secs(7), &mut a, &mut v);
        assert_eq!(p.position(), Duration::from_secs(16));
    }

    #[test]
    fn seek_supersedes_open_stall() {
        let (mut a, mut v) = buffers();
        let mut p = engine();
        push(&mut a, 0);
        push(&mut v, 0);
        p.try_start(Instant::ZERO, &a, &v);
        p.advance(Instant::ZERO, Instant::from_secs(4), &mut a, &mut v);
        assert_eq!(p.state(), PlayState::Stalled);
        a.flush_to(2);
        v.flush_to(2);
        p.seek(Instant::from_secs(6), Duration::from_secs(8));
        assert_eq!(
            p.stalls()[0].end,
            Some(Instant::from_secs(6)),
            "stall closed by the seek"
        );
        assert_eq!(p.state(), PlayState::Seeking);
    }

    #[test]
    #[should_panic(expected = "seek past the end")]
    fn seek_past_end_panics() {
        let (mut a, mut v) = buffers();
        let mut p = engine();
        push(&mut a, 0);
        push(&mut v, 0);
        p.try_start(Instant::ZERO, &a, &v);
        p.seek(Instant::from_secs(1), Duration::from_secs(30));
    }

    #[test]
    fn no_drain_while_stalled_or_startup() {
        let (mut a, mut v) = buffers();
        let mut p = engine();
        push(&mut a, 0);
        // Not started: advance is a no-op.
        p.advance(Instant::ZERO, Instant::from_secs(10), &mut a, &mut v);
        assert_eq!(a.level(), CHUNK);
        assert_eq!(p.position(), Duration::ZERO);
    }
}
