//! The fetch layer: deciding *what* to request next.
//!
//! One scheduling round per simulation step: ask the scheduler which media
//! pipelines are due (§4.2 pipeline coordination), ask the policy which
//! track each should fetch, and hand the resulting requests to the
//! transfer layer. Under muxed delivery the two selections collapse into
//! one pre-combined request; under lazy playlist fetching a first-use
//! track detours through a playlist round trip first.

use crate::engine::Engine;
use crate::log::SelectionEvent;
use crate::playback::PlayState;
use crate::policy::SelectionContext;
use crate::scheduler::{due_fetches, DueFetches, PipelineState};
use crate::session::{DeliveryMode, PlaylistFetch};
use crate::transfer::{ChunkFetch, Pending};
use abr_media::track::{MediaType, TrackId};
use abr_obs::Event;

impl Engine {
    /// Issues every due fetch at the current instant: one scheduling round
    /// of scheduler → policy → transfer layer.
    pub(crate) fn schedule_fetches(&mut self) {
        let _g = self.obs.span("fetch.round");
        // Under eager fetching, adaptation waits for every playlist.
        let gated = self.playlist_fetch == PlaylistFetch::Eager
            && self.playlists_ready.len() < self.total_tracks;
        let mut due = if gated {
            DueFetches::default()
        } else {
            due_fetches(
                &self.config,
                self.pipeline(MediaType::Audio),
                self.pipeline(MediaType::Video),
                self.num_chunks,
            )
        };
        if self.delivery == DeliveryMode::Muxed {
            // One pipeline: each muxed transfer fills both buffers,
            // so only the video pipeline issues requests.
            due.retain(|m| m == MediaType::Video);
        }
        for media in due {
            let buf = match media {
                MediaType::Audio => &self.audio_buf,
                MediaType::Video => &self.video_buf,
            };
            let chunk = buf.next_download_index();
            let ctx = SelectionContext {
                now: self.now,
                media,
                chunk,
                audio_level: self.audio_buf.level(),
                video_level: self.video_buf.level(),
                chunk_duration: self.chunk_duration,
                current_audio: self.current_audio,
                current_video: self.current_video,
                playing: self.playback.state() == PlayState::Playing,
            };
            let track = self.select(&ctx);
            if self.delivery == DeliveryMode::Muxed {
                // Ask the policy for the paired audio component too
                // (joint policies return the same combination).
                let actx = SelectionContext {
                    media: MediaType::Audio,
                    ..ctx
                };
                let audio_track = self.select(&actx);
                let combo = abr_media::combo::Combo::new(track.index, audio_track.index);
                let req = abr_httpsim::request::Request::whole(
                    abr_httpsim::request::ObjectId::MuxedSegment { combo, chunk },
                );
                self.open_transfer(
                    &req,
                    self.now,
                    None,
                    Some(chunk),
                    Pending::Muxed {
                        video: track,
                        audio: audio_track,
                        chunk,
                        opened_at: self.now,
                    },
                );
                continue;
            }
            let fetch = ChunkFetch {
                media,
                track,
                chunk,
                opened_at: self.now,
            };
            if self.playlist_fetch == PlaylistFetch::Lazy && !self.playlists_ready.contains(track) {
                // §4.1's warned-against practice: the chunk request
                // must wait for this track's playlist round trip.
                self.open_playlist_fetch(track, self.now, Some(fetch));
            } else {
                let req = self.chunk_request(track, chunk);
                self.open_transfer(
                    &req,
                    self.now,
                    Some(track),
                    Some(chunk),
                    Pending::Chunk(fetch),
                );
            }
        }
        self.obs
            .gauge("session.pending_requests", self.flights.len() as f64);
    }

    /// The scheduler's view of one media pipeline.
    fn pipeline(&self, media: MediaType) -> PipelineState {
        let buf = match media {
            MediaType::Audio => &self.audio_buf,
            MediaType::Video => &self.video_buf,
        };
        PipelineState {
            in_flight: self.flights.in_flight(media),
            next_chunk: buf.next_download_index(),
            level: buf.level(),
        }
    }

    /// Runs (and times) one policy selection, validates it, records it as
    /// the current track for its media, and logs + traces it.
    fn select(&mut self, ctx: &SelectionContext) -> TrackId {
        let obs = self.obs.clone();
        let track = {
            let _g = obs.span("policy.select");
            obs.time("policy.decision_ns", || self.policy.select(ctx))
        };
        assert_eq!(track.media, ctx.media, "policy returned wrong media type");
        assert!(
            track.index < self.content.ladder(ctx.media).len(),
            "policy selected out-of-ladder track {track}"
        );
        match ctx.media {
            MediaType::Audio => self.current_audio = Some(track.index),
            MediaType::Video => self.current_video = Some(track.index),
        }
        let info = self.content.track(track);
        let chunk = ctx.chunk;
        self.log.selections.push(SelectionEvent {
            at: self.now,
            chunk,
            track,
            declared: info.declared,
            avg_bitrate: info.avg,
        });
        self.obs.emit(self.now, || Event::TrackSelected {
            chunk,
            track,
            declared: info.declared,
            avg_bitrate: info.avg,
        });
        track
    }
}
