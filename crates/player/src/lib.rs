//! # abr-player — the streaming client harness
//!
//! A policy-pluggable ABR player driven by the discrete-event network
//! simulation. Everything the three emulated players (and the §4
//! best-practice player) share lives here; everything they *differ* in —
//! bandwidth estimation and track selection — is injected via the
//! [`policy::AbrPolicy`] trait from `abr-core`.
//!
//! * [`config`] — startup/rebuffer thresholds, buffer targets, and the
//!   download-synchronization mode (chunk-level vs independent pipelines —
//!   the §3.4/§4.2 distinction).
//! * [`buffer`] — per-media chunk buffers measured in seconds of content.
//! * [`playback`] — the playout state machine: playback consumes audio and
//!   video *in lockstep*, so a stall occurs whenever **either** buffer
//!   empties (§2.1).
//! * [`policy`] — the `AbrPolicy` trait and the transfer records fed to it.
//! * [`scheduler`] — which media to fetch next, and when.
//! * [`session`] — the public facade: builds a session and runs it.
//! * [`stepper`] — the same engine driven by an external clock, one event
//!   at a time, for fleet simulations (DESIGN.md §14).
//! * [`log`] — selection/transfer/buffer/stall records for the figures.
//!
//! Behind the facade, the run itself is a typed discrete-event engine
//! split by layer across three private modules: `engine` (the
//! [`abr_event::EventQueue`] dispatch loop and time advancement),
//! `transfer` (in-flight requests, edge-cache delay, bandwidth meter) and
//! `fetch` (scheduler/policy interaction). See DESIGN.md §3.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod buffer;
pub mod config;
mod engine;
mod fetch;
pub mod log;
pub mod playback;
pub mod policy;
pub mod scheduler;
pub mod scratch;
pub mod session;
pub mod stepper;
mod transfer;

pub use config::{PlayerConfig, SyncMode};
pub use log::SessionLog;
pub use policy::{AbrPolicy, SelectionContext, TransferRecord};
pub use scratch::SessionScratch;
pub use session::Session;
pub use stepper::SessionStepper;
