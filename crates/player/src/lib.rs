//! # abr-player — the streaming client harness
//!
//! A policy-pluggable ABR player driven by the discrete-event network
//! simulation. Everything the three emulated players (and the §4
//! best-practice player) share lives here; everything they *differ* in —
//! bandwidth estimation and track selection — is injected via the
//! [`policy::AbrPolicy`] trait from `abr-core`.
//!
//! * [`config`] — startup/rebuffer thresholds, buffer targets, and the
//!   download-synchronization mode (chunk-level vs independent pipelines —
//!   the §3.4/§4.2 distinction).
//! * [`buffer`] — per-media chunk buffers measured in seconds of content.
//! * [`playback`] — the playout state machine: playback consumes audio and
//!   video *in lockstep*, so a stall occurs whenever **either** buffer
//!   empties (§2.1).
//! * [`policy`] — the `AbrPolicy` trait and the transfer records fed to it.
//! * [`scheduler`] — which media to fetch next, and when.
//! * [`session`] — the event loop gluing link + origin + buffers + policy.
//! * [`log`] — selection/transfer/buffer/stall records for the figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod config;
pub mod log;
pub mod playback;
pub mod policy;
pub mod scheduler;
pub mod session;

pub use config::{PlayerConfig, SyncMode};
pub use log::SessionLog;
pub use policy::{AbrPolicy, SelectionContext, TransferRecord};
pub use session::Session;
