//! Per-worker session scratch: pooled log-vector capacity (DESIGN.md §15).
//!
//! A [`crate::log::SessionLog`] accumulates four event vectors whose
//! growth reallocations are pure overhead when a sweep worker runs
//! thousands of sessions back to back — every session re-grows the same
//! few-hundred-entry vectors from zero. A [`SessionScratch`] keeps that
//! capacity alive across sessions: donate it to
//! [`crate::session::Session::run_with_scratch`], summarize the returned
//! log, then hand the log back to [`SessionScratch::reclaim`]. The
//! vectors are cleared between sessions, so logs are byte-identical to
//! the unpooled path — only the allocator traffic changes.

use crate::log::{BufferSample, PlaylistFetchEvent, SelectionEvent, SessionLog, TransferEvent};

/// Reusable log-vector capacity for one sweep worker.
///
/// Only the four append-only event vectors are pooled; `stalls` and
/// `seeks` are copied out of the playback engine at session end and stay
/// session-owned.
#[derive(Debug, Default)]
pub struct SessionScratch {
    pub(crate) selections: Vec<SelectionEvent>,
    pub(crate) transfers: Vec<TransferEvent>,
    pub(crate) buffer_samples: Vec<BufferSample>,
    pub(crate) playlist_fetches: Vec<PlaylistFetchEvent>,
}

impl SessionScratch {
    /// An empty scratch (no capacity yet; it accrues over the first
    /// session).
    pub fn new() -> SessionScratch {
        SessionScratch::default()
    }

    /// Takes a finished log's event vectors back into the pool, clearing
    /// them but keeping their capacity for the next session.
    pub fn reclaim(&mut self, log: SessionLog) {
        self.selections = log.selections;
        self.selections.clear();
        self.transfers = log.transfers;
        self.transfers.clear();
        self.buffer_samples = log.buffer_samples;
        self.buffer_samples.clear();
        self.playlist_fetches = log.playlist_fetches;
        self.playlist_fetches.clear();
    }

    /// Total pooled capacity in bytes across the four vectors — the
    /// steady-state per-session log footprint a worker holds on to.
    pub fn pooled_bytes(&self) -> u64 {
        fn bytes<T>(v: &Vec<T>) -> u64 {
            (v.capacity() * core::mem::size_of::<T>()) as u64
        }
        bytes(&self.selections)
            + bytes(&self.transfers)
            + bytes(&self.buffer_samples)
            + bytes(&self.playlist_fetches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reclaim_keeps_capacity_and_clears_contents() {
        let mut scratch = SessionScratch::new();
        let mut log = SessionLog {
            policy: String::new(),
            selections: Vec::new(),
            transfers: Vec::new(),
            buffer_samples: Vec::new(),
            stalls: Vec::new(),
            playlist_fetches: Vec::new(),
            seeks: Vec::new(),
            startup_at: None,
            ended_at: None,
            finished_at: abr_event::time::Instant::ZERO,
            chunk_duration: abr_event::time::Duration::from_secs(4),
            num_chunks: 0,
        };
        log.buffer_samples.reserve(64);
        let cap = log.buffer_samples.capacity();
        scratch.reclaim(log);
        assert!(scratch.buffer_samples.is_empty());
        assert_eq!(scratch.buffer_samples.capacity(), cap);
        assert!(scratch.pooled_bytes() > 0);
    }
}
