//! Player configuration.

use abr_event::time::Duration;

/// How the audio and video download pipelines are coupled (§3.4, §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Chunk-level synchronization: a media type pauses fetching while it
    /// is more than `tolerance` ahead of the other in buffered seconds
    /// (ExoPlayer-style; the §4.2 recommendation).
    ChunkLevel {
        /// How far one buffer may run ahead of the other.
        tolerance: Duration,
    },
    /// Fully independent pipelines: each media type fills its own buffer to
    /// the target with no regard for the other (dash.js-style; produces the
    /// Fig 5(b) imbalance).
    Independent,
}

/// Static player parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlayerConfig {
    /// Playback starts when *both* buffers reach this level.
    pub startup_threshold: Duration,
    /// Playback resumes after a stall when both buffers reach this level.
    pub resume_threshold: Duration,
    /// A media type stops fetching when its buffer exceeds this target.
    pub max_buffer: Duration,
    /// Pipeline coupling.
    pub sync: SyncMode,
}

impl PlayerConfig {
    /// Defaults modeled on common player settings: start after one 4-s
    /// chunk per media, resume likewise, keep up to 30 s buffered,
    /// chunk-level sync with one-chunk tolerance.
    pub fn default_chunked(chunk_duration: Duration) -> PlayerConfig {
        PlayerConfig {
            startup_threshold: chunk_duration,
            resume_threshold: chunk_duration,
            max_buffer: Duration::from_secs(30),
            sync: SyncMode::ChunkLevel {
                tolerance: chunk_duration,
            },
        }
    }

    /// dash.js-style configuration: independent pipelines (§3.4).
    pub fn dashjs_style(chunk_duration: Duration) -> PlayerConfig {
        PlayerConfig {
            sync: SyncMode::Independent,
            ..PlayerConfig::default_chunked(chunk_duration)
        }
    }

    /// Validates invariants; called by the session constructor.
    pub fn validate(&self) {
        assert!(!self.startup_threshold.is_zero(), "zero startup threshold");
        assert!(!self.resume_threshold.is_zero(), "zero resume threshold");
        assert!(
            self.max_buffer >= self.startup_threshold,
            "max buffer below startup threshold"
        );
        if let SyncMode::ChunkLevel { tolerance } = self.sync {
            assert!(
                !tolerance.is_zero(),
                "zero sync tolerance deadlocks the pipelines"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        PlayerConfig::default_chunked(Duration::from_secs(4)).validate();
        PlayerConfig::dashjs_style(Duration::from_secs(4)).validate();
    }

    #[test]
    fn dashjs_style_is_independent() {
        let c = PlayerConfig::dashjs_style(Duration::from_secs(4));
        assert_eq!(c.sync, SyncMode::Independent);
    }

    #[test]
    #[should_panic(expected = "max buffer below startup")]
    fn rejects_inconsistent_thresholds() {
        PlayerConfig {
            startup_threshold: Duration::from_secs(60),
            resume_threshold: Duration::from_secs(4),
            max_buffer: Duration::from_secs(30),
            sync: SyncMode::Independent,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "zero sync tolerance")]
    fn rejects_zero_tolerance() {
        PlayerConfig {
            sync: SyncMode::ChunkLevel {
                tolerance: Duration::ZERO,
            },
            ..PlayerConfig::default_chunked(Duration::from_secs(4))
        }
        .validate();
    }
}
