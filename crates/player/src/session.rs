//! The streaming session: public configuration facade over the
//! discrete-event engine.
//!
//! One session streams one piece of content through one policy over one
//! link and produces a [`SessionLog`]. [`Session`] itself is only the
//! builder: `run` hands the configured parts to the engine (`engine.rs`),
//! which advances virtual time exclusively by popping a typed
//! [`abr_event::EventQueue`] — transfer completions, playback boundaries,
//! buffer refills, seeks, playlist-refresh ticks and the deadline are all
//! events. All state transitions happen at exact instants; nothing is
//! polled.

use crate::config::PlayerConfig;
use crate::engine::{ArmedWakes, Engine};
use crate::log::SessionLog;
use crate::playback::PlaybackEngine;
use crate::policy::AbrPolicy;
use crate::transfer::FlightBoard;
use abr_event::time::{Duration, Instant};
use abr_event::EventQueue;
use abr_httpsim::origin::Origin;
use abr_media::track::{MediaType, TrackSet, TrackTable};
use abr_net::link::Link;
use abr_obs::ObsHandle;

pub use abr_httpsim::edge::EdgeCache;

/// How content is packaged for delivery (§1's muxed-vs-demuxed axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryMode {
    /// Separate audio and video tracks: two pipelines, per-media chunks —
    /// the paper's subject. The default.
    Demuxed,
    /// Pre-combined audio+video variants: one download per chunk position
    /// carrying both components. There is no pipeline-coordination problem
    /// by construction — the trade-off §1 describes is that the origin
    /// must store (and the CDN cache) every M×N pairing.
    Muxed,
}

/// When the player fetches second-level media playlists (§4.1, footnote 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaylistFetch {
    /// Playlists are already known (out-of-band / cached): no extra
    /// transfers. The default.
    Preloaded,
    /// All playlists are fetched up front, before the first chunk — §4.1's
    /// recommendation ("the player should download these files and read
    /// the information before making rate adaptation decisions").
    Eager,
    /// A track's playlist is fetched only when a chunk from that track is
    /// first selected — the practice §4.1 recommends *avoiding*: every
    /// first use of a track stalls the pipeline for a playlist round trip.
    Lazy,
}

/// A configured streaming session, ready to run.
pub struct Session {
    origin: Origin,
    link: Link,
    policy: Box<dyn AbrPolicy>,
    config: PlayerConfig,
    deadline: Instant,
    playlist_fetch: PlaylistFetch,
    playlist_sizes: TrackTable<abr_media::units::Bytes>,
    packaging: abr_manifest::build::Packaging,
    delivery: DeliveryMode,
    edge: Option<EdgeCache>,
    path: Option<Box<dyn abr_httpsim::edge::TransferPath>>,
    refresh_period: Option<Duration>,
    /// Scheduled user seeks: (wall time, target media position), sorted.
    seeks: Vec<(Instant, Duration)>,
    obs: ObsHandle,
}

impl Session {
    /// Builds a session. The default simulation deadline is 20× the content
    /// duration plus two minutes — hit only by pathologically starved runs.
    pub fn new(
        origin: Origin,
        link: Link,
        policy: Box<dyn AbrPolicy>,
        config: PlayerConfig,
    ) -> Session {
        config.validate();
        let deadline = Instant::ZERO + origin.content().duration() * 20 + Duration::from_secs(120);
        Session {
            origin,
            link,
            policy,
            config,
            deadline,
            playlist_fetch: PlaylistFetch::Preloaded,
            playlist_sizes: TrackTable::new(),
            packaging: abr_manifest::build::Packaging::SegmentFiles {
                with_bitrate_tags: false,
            },
            delivery: DeliveryMode::Demuxed,
            edge: None,
            path: None,
            refresh_period: None,
            seeks: Vec::new(),
            obs: ObsHandle::disabled(),
        }
    }

    /// Attaches an observability handle. The session distributes it to the
    /// link, the origin, the edge cache, and the policy, and emits the full
    /// lifecycle event stream ([`abr_obs::Event::SessionStart`] through
    /// [`abr_obs::Event::SessionEnd`]) plus live metrics while it runs. A
    /// trace recorded this way reconstructs the [`SessionLog`] exactly via
    /// [`SessionLog::from_trace`].
    pub fn with_obs(mut self, obs: ObsHandle) -> Session {
        self.obs = obs;
        self
    }

    /// Schedules forward user seeks: at each wall-clock instant, jump the
    /// playhead to the given media position (rounded down to a chunk
    /// boundary). Seeks that land before startup, after content end, or
    /// behind the playhead are skipped.
    pub fn with_seeks(mut self, mut seeks: Vec<(Instant, Duration)>) -> Session {
        seeks.sort_by_key(|&(at, _)| at);
        self.seeks = seeks;
        self
    }

    /// Routes requests through an edge cache: hits start delivering after
    /// the normal link latency, misses pay `miss_penalty` extra (and warm
    /// the cache). Returns the possibly-warmed cache with the log via
    /// [`Session::run_with_edge`]; `run` discards it.
    pub fn with_edge_cache(mut self, edge: EdgeCache) -> Session {
        self.edge = Some(edge);
        self
    }

    /// Routes requests through an arbitrary [`TransferPath`]
    /// (e.g. a fleet's [`abr_httpsim::shared::SharedEdge`] onto a shared
    /// per-domain cache and origin uplink). Overrides
    /// [`Session::with_edge_cache`] when both are set — the path decides
    /// the whole extra first-byte delay.
    ///
    /// [`TransferPath`]: abr_httpsim::edge::TransferPath
    pub fn with_transfer_path(mut self, path: Box<dyn abr_httpsim::edge::TransferPath>) -> Session {
        self.path = Some(path);
        self
    }

    /// Switches to muxed delivery (§1): one transfer per chunk position
    /// carrying both components; the policy's video and audio selections
    /// for a position are fetched as a single pre-combined variant.
    pub fn with_delivery(mut self, delivery: DeliveryMode) -> Session {
        self.delivery = delivery;
        self
    }

    /// Selects the server packaging: whole segment files (default) or byte
    /// ranges into one file per track (§4.1's `EXT-X-BYTERANGE` mode).
    /// Transfer sizes are identical; only the request shape differs.
    pub fn with_packaging(mut self, packaging: abr_manifest::build::Packaging) -> Session {
        self.packaging = packaging;
        self
    }

    /// Overrides the simulation deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Session {
        self.deadline = deadline;
        self
    }

    /// Enables second-level playlist fetching (§4.1, footnote 2): the
    /// session builds every track's media playlist, publishes it at the
    /// origin, and the player pays real transfers for them — up front
    /// (`Eager`) or on first use of each track (`Lazy`).
    pub fn with_playlist_fetch(
        mut self,
        mode: PlaylistFetch,
        packaging: abr_manifest::build::Packaging,
    ) -> Session {
        self.playlist_fetch = mode;
        if mode != PlaylistFetch::Preloaded {
            self.publish_playlists(packaging);
        }
        self
    }

    /// Enables live-style playlist refresh: every `period`, the player
    /// re-fetches the media playlists of its currently selected audio and
    /// video tracks (the polling a live HLS client performs to discover
    /// new segments). Poll transfers share the per-media request pipelines
    /// with chunk fetches, so slow polls measurably delay chunks — each
    /// tick is traced as [`abr_obs::Event::PlaylistRefreshTick`]. Off by
    /// default; VoD sessions are unaffected unless this is called.
    pub fn with_playlist_refresh(
        mut self,
        period: Duration,
        packaging: abr_manifest::build::Packaging,
    ) -> Session {
        assert!(period > Duration::ZERO, "refresh period must be positive");
        self.refresh_period = Some(period);
        if self.playlist_sizes.is_empty() {
            self.publish_playlists(packaging);
        }
        self
    }

    /// Builds and publishes every track's media playlist at the origin and
    /// records its transfer size (idempotent in effect: sizes are simply
    /// overwritten with identical values if already published).
    fn publish_playlists(&mut self, packaging: abr_manifest::build::Packaging) {
        let content = self.origin.shared_content();
        for &id in content.track_ids() {
            let playlist = abr_manifest::build::build_media_playlist(&content, id, packaging);
            let path = abr_manifest::build::playlist_uri(id);
            let body = playlist.to_text();
            self.origin.publish_document(&path, &body);
            let req =
                abr_httpsim::request::Request::whole(abr_httpsim::request::ObjectId::Document {
                    path,
                });
            let size = self
                .origin
                .transfer_size(&req)
                .expect("published just above");
            self.playlist_sizes.insert(id, size);
        }
    }

    /// Like [`Session::run`], but also returns the (now warmed) edge cache
    /// so a follow-up session can reuse it.
    pub fn run_with_edge(self) -> (SessionLog, Option<EdgeCache>) {
        self.into_engine().run()
    }

    /// Runs to completion (content fully played, starvation, or deadline)
    /// and returns the session log.
    pub fn run(self) -> SessionLog {
        self.into_engine().run().0
    }

    /// Like [`Session::run`], but builds the log's event vectors out of a
    /// worker-local [`SessionScratch`]'s pooled capacity, so back-to-back
    /// sessions on one sweep worker stop paying per-session vector growth
    /// (DESIGN.md §15). Hand the finished log back to
    /// [`SessionScratch::reclaim`] once it has been summarized.
    ///
    /// [`SessionScratch`]: crate::scratch::SessionScratch
    /// [`SessionScratch::reclaim`]: crate::scratch::SessionScratch::reclaim
    pub fn run_with_scratch(self, scratch: &mut crate::scratch::SessionScratch) -> SessionLog {
        let donated = std::mem::take(scratch);
        self.into_engine_with(donated).run().0
    }

    /// Consumes the builder into an externally-clocked
    /// [`SessionStepper`](crate::stepper::SessionStepper): the session's
    /// `t = 0` round runs immediately, and the caller then advances it one
    /// event at a time — the fleet driver's entry point (DESIGN.md §14).
    pub fn into_stepper(self) -> crate::stepper::SessionStepper {
        crate::stepper::SessionStepper::new(self.into_engine())
    }

    /// Consumes the builder into a ready-to-run engine.
    pub(crate) fn into_engine(self) -> Engine {
        self.into_engine_with(crate::scratch::SessionScratch::default())
    }

    /// Consumes the builder into a ready-to-run engine, building the log's
    /// event vectors out of a donated [`SessionScratch`]'s pooled capacity
    /// (DESIGN.md §15). `Engine::finish` hands the vectors back inside the
    /// log; [`crate::scratch::SessionScratch::reclaim`] recovers them.
    pub(crate) fn into_engine_with(self, scratch: crate::scratch::SessionScratch) -> Engine {
        let content = self.origin.shared_content();
        let chunk_duration = content.chunk_duration();
        let num_chunks = content.num_chunks();
        let total_tracks = content.track_ids().len();
        let duration = content.duration();
        let log = SessionLog {
            policy: self.policy.name().to_string(),
            selections: scratch.selections,
            transfers: scratch.transfers,
            buffer_samples: scratch.buffer_samples,
            stalls: Vec::new(),
            playlist_fetches: scratch.playlist_fetches,
            seeks: Vec::new(),
            startup_at: None,
            ended_at: None,
            finished_at: Instant::ZERO,
            chunk_duration,
            num_chunks,
        };
        Engine {
            content,
            chunk_duration,
            num_chunks,
            total_tracks,
            deadline: self.deadline,
            delivery: self.delivery,
            packaging: self.packaging,
            playlist_fetch: self.playlist_fetch,
            playlist_sizes: self.playlist_sizes,
            refresh_period: self.refresh_period,
            origin: self.origin,
            link: self.link,
            policy: self.policy,
            edge: self.edge,
            path: self.path,
            audio_buf: crate::buffer::ChunkBuffer::new(MediaType::Audio),
            video_buf: crate::buffer::ChunkBuffer::new(MediaType::Video),
            playback: PlaybackEngine::new(
                duration,
                self.config.startup_threshold,
                self.config.resume_threshold,
            ),
            config: self.config,
            flights: FlightBoard::default(),
            seek_queue: self.seeks.into_iter().collect(),
            current_audio: None,
            current_video: None,
            playlists_ready: TrackSet::new(),
            queue: EventQueue::new(),
            wakes: ArmedWakes::default(),
            now: Instant::ZERO,
            log,
            obs: self.obs,
        }
    }
}
