//! The streaming session: event loop gluing link, origin, buffers,
//! playback and policy.
//!
//! One session streams one piece of content through one policy over one
//! link and produces a [`SessionLog`]. The loop advances virtual time to
//! the next of: a transfer completion (from the fluid link's exact solver)
//! or a playback boundary (the instant the scarcer buffer runs dry). All
//! state transitions happen at exact instants; nothing is polled.

use crate::buffer::{BufferedChunk, ChunkBuffer};
use crate::config::PlayerConfig;
use crate::log::{BufferSample, SelectionEvent, SessionLog, TransferEvent};
use crate::playback::{PlayState, PlaybackEngine};
use crate::policy::{AbrPolicy, SelectionContext, TransferRecord};
use crate::scheduler::{due_fetches, PipelineState};
use abr_event::time::{Duration, Instant};
use abr_httpsim::origin::Origin;
use abr_media::track::{MediaType, TrackId};
use abr_net::link::{FlowId, Link};
use abr_obs::{Event, ObsHandle};
use std::collections::BTreeMap;

/// Extra first-byte delay for a request routed through the edge cache (if
/// any): zero on a hit, the miss penalty on a miss (which warms the cache).
fn edge_delay(
    edge: &mut Option<EdgeCache>,
    origin: &Origin,
    req: &abr_httpsim::request::Request,
    now: Instant,
) -> Duration {
    match edge {
        None => Duration::ZERO,
        Some(e) => {
            let (hit, _) = e
                .cache
                .fetch_at(origin, req, now)
                .expect("request already validated");
            if hit {
                Duration::ZERO
            } else {
                e.miss_penalty
            }
        }
    }
}

/// Total length of the union of (possibly overlapping) intervals.
fn busy_union(mut intervals: Vec<(Instant, Instant)>) -> Duration {
    intervals.sort();
    let mut total = Duration::ZERO;
    let mut cur: Option<(Instant, Instant)> = None;
    for (lo, hi) in intervals {
        match cur {
            Some((clo, chi)) if lo <= chi => cur = Some((clo, chi.max(hi))),
            Some((clo, chi)) => {
                total += chi - clo;
                cur = Some((lo, hi));
            }
            None => cur = Some((lo, hi)),
        }
    }
    if let Some((clo, chi)) = cur {
        total += chi - clo;
    }
    total
}

/// A chunk request in flight.
#[derive(Debug, Clone, Copy)]
struct ChunkFetch {
    media: MediaType,
    track: TrackId,
    chunk: usize,
    opened_at: Instant,
}

/// A request in flight: a media chunk, or a second-level playlist that
/// must land before a chunk request can be issued (§4.1 lazy fetching) or
/// before adaptation starts (eager prefetch).
#[derive(Debug, Clone, Copy)]
enum Pending {
    Chunk(ChunkFetch),
    Playlist {
        track: TrackId,
        requested_at: Instant,
        /// The chunk request to issue once the playlist arrives (`None`
        /// for eager prefetches, which are not tied to a chunk).
        then: Option<ChunkFetch>,
    },
    /// A pre-combined audio+video chunk (muxed delivery, §1).
    Muxed {
        video: TrackId,
        audio: TrackId,
        chunk: usize,
        opened_at: Instant,
    },
}

impl Pending {
    fn media(&self) -> MediaType {
        match self {
            Pending::Chunk(c) => c.media,
            Pending::Playlist { track, .. } => track.media,
            // The muxed pipeline is driven through the video lane.
            Pending::Muxed { .. } => MediaType::Video,
        }
    }
}

/// An edge cache between the player and the origin: cache misses pay an
/// extra origin round trip before the first byte (the mechanism behind
/// the §1 claim that demuxing improves CDN effectiveness).
#[derive(Debug)]
pub struct EdgeCache {
    /// The cache (persisting across sessions lets experiments model a
    /// second viewer hitting a warmed edge).
    pub cache: abr_httpsim::cache::CdnCache,
    /// Extra first-byte delay on a cache miss (edge → origin round trip).
    pub miss_penalty: Duration,
}

/// How content is packaged for delivery (§1's muxed-vs-demuxed axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryMode {
    /// Separate audio and video tracks: two pipelines, per-media chunks —
    /// the paper's subject. The default.
    Demuxed,
    /// Pre-combined audio+video variants: one download per chunk position
    /// carrying both components. There is no pipeline-coordination problem
    /// by construction — the trade-off §1 describes is that the origin
    /// must store (and the CDN cache) every M×N pairing.
    Muxed,
}

/// When the player fetches second-level media playlists (§4.1, footnote 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaylistFetch {
    /// Playlists are already known (out-of-band / cached): no extra
    /// transfers. The default.
    Preloaded,
    /// All playlists are fetched up front, before the first chunk — §4.1's
    /// recommendation ("the player should download these files and read
    /// the information before making rate adaptation decisions").
    Eager,
    /// A track's playlist is fetched only when a chunk from that track is
    /// first selected — the practice §4.1 recommends *avoiding*: every
    /// first use of a track stalls the pipeline for a playlist round trip.
    Lazy,
}

/// A configured streaming session, ready to run.
pub struct Session {
    origin: Origin,
    link: Link,
    policy: Box<dyn AbrPolicy>,
    config: PlayerConfig,
    deadline: Instant,
    playlist_fetch: PlaylistFetch,
    playlist_sizes: BTreeMap<TrackId, abr_media::units::Bytes>,
    packaging: abr_manifest::build::Packaging,
    delivery: DeliveryMode,
    edge: Option<EdgeCache>,
    /// Scheduled user seeks: (wall time, target media position), sorted.
    seeks: Vec<(Instant, Duration)>,
    obs: ObsHandle,
}

impl Session {
    /// Builds a session. The default simulation deadline is 20× the content
    /// duration plus two minutes — hit only by pathologically starved runs.
    pub fn new(
        origin: Origin,
        link: Link,
        policy: Box<dyn AbrPolicy>,
        config: PlayerConfig,
    ) -> Session {
        config.validate();
        let deadline = Instant::ZERO + origin.content().duration() * 20 + Duration::from_secs(120);
        Session {
            origin,
            link,
            policy,
            config,
            deadline,
            playlist_fetch: PlaylistFetch::Preloaded,
            playlist_sizes: BTreeMap::new(),
            packaging: abr_manifest::build::Packaging::SegmentFiles {
                with_bitrate_tags: false,
            },
            delivery: DeliveryMode::Demuxed,
            edge: None,
            seeks: Vec::new(),
            obs: ObsHandle::disabled(),
        }
    }

    /// Attaches an observability handle. The session distributes it to the
    /// link, the origin, the edge cache, and the policy, and emits the full
    /// lifecycle event stream ([`Event::SessionStart`] through
    /// [`Event::SessionEnd`]) plus live metrics while it runs. A trace
    /// recorded this way reconstructs the [`SessionLog`] exactly via
    /// [`SessionLog::from_trace`].
    pub fn with_obs(mut self, obs: ObsHandle) -> Session {
        self.obs = obs;
        self
    }

    /// Schedules forward user seeks: at each wall-clock instant, jump the
    /// playhead to the given media position (rounded down to a chunk
    /// boundary). Seeks that land before startup, after content end, or
    /// behind the playhead are skipped.
    pub fn with_seeks(mut self, mut seeks: Vec<(Instant, Duration)>) -> Session {
        seeks.sort_by_key(|&(at, _)| at);
        self.seeks = seeks;
        self
    }

    /// Routes requests through an edge cache: hits start delivering after
    /// the normal link latency, misses pay `miss_penalty` extra (and warm
    /// the cache). Returns the possibly-warmed cache with the log via
    /// [`Session::run_with_edge`]; `run` discards it.
    pub fn with_edge_cache(mut self, edge: EdgeCache) -> Session {
        self.edge = Some(edge);
        self
    }

    /// Switches to muxed delivery (§1): one transfer per chunk position
    /// carrying both components; the policy's video and audio selections
    /// for a position are fetched as a single pre-combined variant.
    pub fn with_delivery(mut self, delivery: DeliveryMode) -> Session {
        self.delivery = delivery;
        self
    }

    /// Selects the server packaging: whole segment files (default) or byte
    /// ranges into one file per track (§4.1's `EXT-X-BYTERANGE` mode).
    /// Transfer sizes are identical; only the request shape differs.
    pub fn with_packaging(mut self, packaging: abr_manifest::build::Packaging) -> Session {
        self.packaging = packaging;
        self
    }

    /// Overrides the simulation deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Session {
        self.deadline = deadline;
        self
    }

    /// Enables second-level playlist fetching (§4.1, footnote 2): the
    /// session builds every track's media playlist, publishes it at the
    /// origin, and the player pays real transfers for them — up front
    /// (`Eager`) or on first use of each track (`Lazy`).
    pub fn with_playlist_fetch(
        mut self,
        mode: PlaylistFetch,
        packaging: abr_manifest::build::Packaging,
    ) -> Session {
        self.playlist_fetch = mode;
        if mode != PlaylistFetch::Preloaded {
            let content = self.origin.content().clone();
            for id in content.track_ids() {
                let playlist = abr_manifest::build::build_media_playlist(&content, id, packaging);
                let path = abr_manifest::build::playlist_uri(id);
                let body = playlist.to_text();
                self.origin.publish_document(&path, &body);
                let req = abr_httpsim::request::Request::whole(
                    abr_httpsim::request::ObjectId::Document { path },
                );
                let size = self
                    .origin
                    .transfer_size(&req)
                    .expect("published just above");
                self.playlist_sizes.insert(id, size);
            }
        }
        self
    }

    /// Like [`Session::run`], but also returns the (now warmed) edge cache
    /// so a follow-up session can reuse it.
    pub fn run_with_edge(self) -> (SessionLog, Option<EdgeCache>) {
        let mut me = self;
        let log = me.run_inner();
        (log, me.edge.take())
    }

    /// Runs to completion (content fully played, starvation, or deadline)
    /// and returns the session log.
    pub fn run(self) -> SessionLog {
        let mut me = self;
        me.run_inner()
    }

    fn run_inner(&mut self) -> SessionLog {
        let content = self.origin.content().clone();
        let chunk_duration = content.chunk_duration();
        let num_chunks = content.num_chunks();

        let obs = self.obs.clone();
        self.link.set_obs(obs.clone());
        self.origin.set_obs(obs.clone());
        if let Some(e) = &mut self.edge {
            e.cache.set_obs(obs.clone());
        }
        self.policy.set_obs(&obs);

        let mut audio_buf = ChunkBuffer::new(MediaType::Audio);
        let mut video_buf = ChunkBuffer::new(MediaType::Video);
        let mut playback = PlaybackEngine::new(
            content.duration(),
            self.config.startup_threshold,
            self.config.resume_threshold,
        );
        let mut pending: BTreeMap<FlowId, Pending> = BTreeMap::new();
        let mut playlists_ready: std::collections::BTreeSet<TrackId> =
            std::collections::BTreeSet::new();
        let total_tracks = content.track_ids().len();
        let mut current_audio: Option<usize> = None;
        let mut current_video: Option<usize> = None;
        let mut log = SessionLog {
            policy: self.policy.name().to_string(),
            selections: Vec::new(),
            transfers: Vec::new(),
            buffer_samples: Vec::new(),
            stalls: Vec::new(),
            playlist_fetches: Vec::new(),
            seeks: Vec::new(),
            startup_at: None,
            ended_at: None,
            finished_at: Instant::ZERO,
            chunk_duration,
            num_chunks,
        };
        let mut now = Instant::ZERO;
        let mut meter_last = Instant::ZERO;
        obs.emit(Instant::ZERO, || Event::SessionStart {
            policy: log.policy.clone(),
            chunk_duration,
            num_chunks,
        });

        // Issues every due fetch at `now`; returns true if any was issued.
        macro_rules! schedule {
            () => {{
                // Under eager fetching, adaptation waits for every playlist.
                let gated = self.playlist_fetch == PlaylistFetch::Eager
                    && playlists_ready.len() < total_tracks;
                let in_flight = |media: MediaType| pending.values().any(|p| p.media() == media);
                let pipes = |buf: &ChunkBuffer, media: MediaType| PipelineState {
                    in_flight: in_flight(media),
                    next_chunk: buf.next_download_index(),
                    level: buf.level(),
                };
                let mut due = if gated {
                    Vec::new()
                } else {
                    due_fetches(
                        &self.config,
                        pipes(&audio_buf, MediaType::Audio),
                        pipes(&video_buf, MediaType::Video),
                        num_chunks,
                    )
                };
                if self.delivery == DeliveryMode::Muxed {
                    // One pipeline: each muxed transfer fills both buffers,
                    // so only the video pipeline issues requests.
                    due.retain(|m| *m == MediaType::Video);
                }
                for media in due {
                    let buf = match media {
                        MediaType::Audio => &audio_buf,
                        MediaType::Video => &video_buf,
                    };
                    let chunk = buf.next_download_index();
                    let ctx = SelectionContext {
                        now,
                        media,
                        chunk,
                        audio_level: audio_buf.level(),
                        video_level: video_buf.level(),
                        chunk_duration,
                        current_audio,
                        current_video,
                        playing: playback.state() == PlayState::Playing,
                    };
                    let track = obs.time("policy.decision_ns", || self.policy.select(&ctx));
                    assert_eq!(track.media, media, "policy returned wrong media type");
                    assert!(
                        track.index < content.ladder(media).len(),
                        "policy selected out-of-ladder track {track}"
                    );
                    match media {
                        MediaType::Audio => current_audio = Some(track.index),
                        MediaType::Video => current_video = Some(track.index),
                    }
                    let info = content.track(track);
                    log.selections.push(SelectionEvent {
                        at: now,
                        chunk,
                        track,
                        declared: info.declared,
                        avg_bitrate: info.avg,
                    });
                    obs.emit(now, || Event::TrackSelected {
                        chunk,
                        track,
                        declared: info.declared,
                        avg_bitrate: info.avg,
                    });
                    if self.delivery == DeliveryMode::Muxed {
                        // Ask the policy for the paired audio component too
                        // (joint policies return the same combination).
                        let actx = SelectionContext {
                            media: MediaType::Audio,
                            ..ctx
                        };
                        let audio_track =
                            obs.time("policy.decision_ns", || self.policy.select(&actx));
                        assert_eq!(audio_track.media, MediaType::Audio);
                        current_audio = Some(audio_track.index);
                        let ainfo = content.track(audio_track);
                        log.selections.push(SelectionEvent {
                            at: now,
                            chunk,
                            track: audio_track,
                            declared: ainfo.declared,
                            avg_bitrate: ainfo.avg,
                        });
                        obs.emit(now, || Event::TrackSelected {
                            chunk,
                            track: audio_track,
                            declared: ainfo.declared,
                            avg_bitrate: ainfo.avg,
                        });
                        let combo = abr_media::combo::Combo::new(track.index, audio_track.index);
                        let req = abr_httpsim::request::Request::whole(
                            abr_httpsim::request::ObjectId::MuxedSegment { combo, chunk },
                        );
                        let size = self.origin.transfer_size(&req).expect("valid muxed chunk");
                        let extra = edge_delay(&mut self.edge, &self.origin, &req, now);
                        let flow = self.link.open_flow_after(size, extra);
                        obs.emit(now, || Event::RequestIssued {
                            flow: flow.0,
                            track: None,
                            chunk: Some(chunk),
                            size,
                        });
                        pending.insert(
                            flow,
                            Pending::Muxed {
                                video: track,
                                audio: audio_track,
                                chunk,
                                opened_at: now,
                            },
                        );
                        continue;
                    }
                    let fetch = ChunkFetch {
                        media,
                        track,
                        chunk,
                        opened_at: now,
                    };
                    if self.playlist_fetch == PlaylistFetch::Lazy
                        && !playlists_ready.contains(&track)
                    {
                        // §4.1's warned-against practice: the chunk request
                        // must wait for this track's playlist round trip.
                        let size = self.playlist_sizes[&track];
                        let flow = self.link.open_flow(size);
                        obs.emit(now, || Event::RequestIssued {
                            flow: flow.0,
                            track: Some(track),
                            chunk: None,
                            size,
                        });
                        pending.insert(
                            flow,
                            Pending::Playlist {
                                track,
                                requested_at: now,
                                then: Some(fetch),
                            },
                        );
                    } else {
                        let req = match self.packaging {
                            abr_manifest::build::Packaging::SingleFile => self
                                .origin
                                .range_request(track, chunk)
                                .expect("valid chunk range"),
                            abr_manifest::build::Packaging::SegmentFiles { .. } => {
                                Origin::segment_request(track, chunk)
                            }
                        };
                        let size = self
                            .origin
                            .transfer_size(&req)
                            .expect("valid chunk request");
                        let extra = edge_delay(&mut self.edge, &self.origin, &req, now);
                        let flow = self.link.open_flow_after(size, extra);
                        obs.emit(now, || Event::RequestIssued {
                            flow: flow.0,
                            track: Some(track),
                            chunk: Some(chunk),
                            size,
                        });
                        pending.insert(flow, Pending::Chunk(fetch));
                    }
                }
                obs.gauge("session.pending_requests", pending.len() as f64);
            }};
        }

        macro_rules! sample {
            () => {
                log.buffer_samples.push(BufferSample {
                    at: now,
                    audio: audio_buf.level(),
                    video: video_buf.level(),
                });
                obs.emit(now, || Event::BufferStateChange {
                    audio: audio_buf.level(),
                    video: video_buf.level(),
                });
            };
        }

        let mut seek_queue: std::collections::VecDeque<(Instant, Duration)> =
            self.seeks.drain(..).collect();
        if self.playlist_fetch == PlaylistFetch::Eager {
            for track in content.track_ids() {
                let size = self.playlist_sizes[&track];
                let flow = self.link.open_flow(size);
                obs.emit(now, || Event::RequestIssued {
                    flow: flow.0,
                    track: Some(track),
                    chunk: None,
                    size,
                });
                pending.insert(
                    flow,
                    Pending::Playlist {
                        track,
                        requested_at: now,
                        then: None,
                    },
                );
            }
        }
        schedule!();
        sample!();

        loop {
            if playback.state() == PlayState::Ended {
                break;
            }
            let completion = self.link.next_completion();
            let boundary = playback.next_boundary(now, &audio_buf, &video_buf);
            // When a pipeline is idle only because its buffer is at the
            // target, wake up the moment playout drains it back below the
            // target (plus 1 ms so the strict `level < max_buffer` gate in
            // the scheduler passes).
            let refill = if playback.state() == PlayState::Playing {
                [
                    (&audio_buf, MediaType::Audio),
                    (&video_buf, MediaType::Video),
                ]
                .into_iter()
                .filter(|(buf, media)| {
                    !pending.values().any(|p| p.media() == *media)
                        && buf.next_download_index() < num_chunks
                        && buf.level() >= self.config.max_buffer
                })
                .map(|(buf, _)| {
                    now + (buf.level() - self.config.max_buffer) + Duration::from_millis(1)
                })
                .min()
            } else {
                None
            };
            // A pending seek is an event once playback has started.
            let seek_at = if playback.startup_at().is_some() {
                seek_queue.front().map(|&(at, _)| at.max(now))
            } else {
                None
            };
            let t = match [completion, boundary, refill, seek_at]
                .into_iter()
                .flatten()
                .min()
            {
                Some(t) => t,
                None => break, // starved: stalled with a dead link
            };
            if t > self.deadline {
                break;
            }

            // Playout first (consumes pre-existing buffer content over
            // [now, t]); completions arriving at t are usable from t on.
            let completions = self.link.advance_to(t);
            let state_before_advance = playback.state();
            playback.advance(now, t, &mut audio_buf, &mut video_buf);
            now = t;
            if state_before_advance == PlayState::Playing {
                match playback.state() {
                    PlayState::Stalled => obs.emit(now, || Event::StallBegin),
                    PlayState::Ended => obs.emit(now, || Event::PlaybackEnded),
                    _ => {}
                }
            }

            // Aggregate bandwidth-meter window (all flows, completed and
            // still in flight) since the previous completion event —
            // ExoPlayer-style global accounting.
            let (window_bytes, window_busy) = if completions.is_empty() {
                (abr_media::units::Bytes::ZERO, Duration::ZERO)
            } else {
                let mut bytes = abr_media::units::Bytes::ZERO;
                let mut intervals: Vec<(Instant, Instant)> = Vec::new();
                {
                    let mut take = |profile: &abr_net::profile::DeliveryProfile| {
                        bytes += profile.bytes_between(meter_last, now);
                        for s in profile.segments() {
                            let lo = s.start.max(meter_last);
                            let hi = s.end.min(now);
                            if lo < hi {
                                intervals.push((lo, hi));
                            }
                        }
                    };
                    for c in &completions {
                        take(&c.profile);
                    }
                    for id in pending.keys() {
                        if let Some(p) = self.link.flow_profile(*id) {
                            take(p);
                        }
                    }
                }
                meter_last = now;
                (bytes, busy_union(intervals))
            };
            let mut first_completion = true;

            for c in completions {
                let p = match pending.remove(&c.id).expect("completion for unknown flow") {
                    Pending::Muxed {
                        video,
                        audio,
                        chunk,
                        opened_at,
                    } => {
                        audio_buf.push(BufferedChunk {
                            index: chunk,
                            track: audio,
                            duration: chunk_duration,
                        });
                        video_buf.push(BufferedChunk {
                            index: chunk,
                            track: video,
                            duration: chunk_duration,
                        });
                        let record = TransferRecord {
                            media: MediaType::Video,
                            track: video,
                            chunk,
                            size: c.size,
                            opened_at,
                            completed_at: c.at,
                            profile: c.profile,
                            window_bytes: if first_completion {
                                window_bytes
                            } else {
                                abr_media::units::Bytes::ZERO
                            },
                            window_busy: if first_completion {
                                window_busy
                            } else {
                                Duration::ZERO
                            },
                        };
                        first_completion = false;
                        self.policy.on_transfer(&record);
                        let estimate_after = self.policy.debug_estimate();
                        log.transfers.push(TransferEvent {
                            at: c.at,
                            chunk,
                            track: video,
                            size: c.size,
                            duration: c.at.saturating_duration_since(opened_at),
                            estimate_after,
                        });
                        obs.emit(c.at, || Event::TransferCompleted {
                            flow: c.id.0,
                            track: video,
                            chunk,
                            size: c.size,
                            opened_at,
                            estimate_after,
                        });
                        continue;
                    }
                    Pending::Playlist {
                        track,
                        requested_at,
                        then,
                    } => {
                        playlists_ready.insert(track);
                        log.playlist_fetches.push(crate::log::PlaylistFetchEvent {
                            track,
                            requested_at,
                            completed_at: c.at,
                        });
                        obs.emit(c.at, || Event::PlaylistFetch {
                            track,
                            requested_at,
                        });
                        if let Some(fetch) = then {
                            // A seek may have flushed past this position.
                            let buf = match fetch.media {
                                MediaType::Audio => &audio_buf,
                                MediaType::Video => &video_buf,
                            };
                            if fetch.chunk != buf.next_download_index() {
                                continue;
                            }
                            // Issue the deferred chunk request now.
                            let req = match self.packaging {
                                abr_manifest::build::Packaging::SingleFile => self
                                    .origin
                                    .range_request(fetch.track, fetch.chunk)
                                    .expect("valid chunk range"),
                                abr_manifest::build::Packaging::SegmentFiles { .. } => {
                                    Origin::segment_request(fetch.track, fetch.chunk)
                                }
                            };
                            let size = self
                                .origin
                                .transfer_size(&req)
                                .expect("valid chunk request");
                            let extra = edge_delay(&mut self.edge, &self.origin, &req, c.at);
                            let flow = self.link.open_flow_after(size, extra);
                            obs.emit(c.at, || Event::RequestIssued {
                                flow: flow.0,
                                track: Some(fetch.track),
                                chunk: Some(fetch.chunk),
                                size,
                            });
                            pending.insert(
                                flow,
                                Pending::Chunk(ChunkFetch {
                                    opened_at: c.at,
                                    ..fetch
                                }),
                            );
                        }
                        continue;
                    }
                    Pending::Chunk(f) => f,
                };
                let buf = match p.media {
                    MediaType::Audio => &mut audio_buf,
                    MediaType::Video => &mut video_buf,
                };
                buf.push(BufferedChunk {
                    index: p.chunk,
                    track: p.track,
                    duration: chunk_duration,
                });
                let (wb, wd) = if first_completion {
                    (window_bytes, window_busy)
                } else {
                    (abr_media::units::Bytes::ZERO, Duration::ZERO)
                };
                first_completion = false;
                let record = TransferRecord {
                    media: p.media,
                    track: p.track,
                    chunk: p.chunk,
                    size: c.size,
                    opened_at: p.opened_at,
                    completed_at: c.at,
                    profile: c.profile,
                    window_bytes: wb,
                    window_busy: wd,
                };
                self.policy.on_transfer(&record);
                let estimate_after = self.policy.debug_estimate();
                log.transfers.push(TransferEvent {
                    at: c.at,
                    chunk: p.chunk,
                    track: p.track,
                    size: c.size,
                    duration: c.at.saturating_duration_since(p.opened_at),
                    estimate_after,
                });
                obs.emit(c.at, || Event::TransferCompleted {
                    flow: c.id.0,
                    track: p.track,
                    chunk: p.chunk,
                    size: c.size,
                    opened_at: p.opened_at,
                    estimate_after,
                });
            }
            obs.gauge("session.pending_requests", pending.len() as f64);

            // Apply any due seek: flush buffers, drop in-flight chunk
            // requests, reposition the playhead at a chunk boundary.
            while let Some(&(at, target)) = seek_queue.front() {
                if at > now || playback.startup_at().is_none() {
                    break;
                }
                seek_queue.pop_front();
                let chunk_idx = (target.as_micros() / chunk_duration.as_micros()) as usize;
                let aligned = chunk_duration * chunk_idx as u64;
                if playback.state() == PlayState::Ended
                    || chunk_idx >= num_chunks
                    || aligned <= playback.position()
                {
                    continue; // not a forward seek anymore: ignore
                }
                // Drop in-flight chunk transfers (playlist fetches keep
                // running; their deferred chunks are re-validated below).
                let stale: Vec<FlowId> = pending
                    .iter()
                    .filter(|(_, p)| !matches!(p, Pending::Playlist { .. }))
                    .map(|(id, _)| *id)
                    .collect();
                for id in stale {
                    pending.remove(&id);
                    self.link.cancel_flow(id);
                }
                audio_buf.flush_to(chunk_idx);
                video_buf.flush_to(chunk_idx);
                if playback.state() == PlayState::Stalled {
                    // The seek closes the open stall (the rebuffering that
                    // follows is accounted to the seek).
                    obs.emit(now, || Event::StallEnd);
                }
                obs.emit(now, || Event::SeekStarted {
                    from: playback.position(),
                    to: aligned,
                });
                playback.seek(now, aligned);
            }

            let state_before_start = playback.state();
            playback.try_start(now, &audio_buf, &video_buf);
            if playback.state() == PlayState::Playing {
                match state_before_start {
                    PlayState::Startup => obs.emit(now, || Event::PlaybackStarted),
                    PlayState::Stalled => obs.emit(now, || Event::StallEnd),
                    PlayState::Seeking => obs.emit(now, || Event::SeekResumed),
                    _ => {}
                }
            }
            schedule!();
            sample!();
        }

        obs.emit(now, || Event::SessionEnd);
        log.startup_at = playback.startup_at();
        log.ended_at = playback.ended_at();
        log.stalls = playback.stalls().to_vec();
        log.seeks = playback.seeks().to_vec();
        log.finished_at = now;
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SyncMode;
    use crate::log::SessionLog;
    use crate::policy::FixedPolicy;
    use abr_media::content::Content;
    use abr_media::units::{BitsPerSec, Bytes};
    use abr_net::trace::Trace;

    fn kbps(k: u64) -> BitsPerSec {
        BitsPerSec::from_kbps(k)
    }

    fn run_fixed(rate_kbps: u64, video: usize, audio: usize, sync: SyncMode) -> SessionLog {
        let content = Content::drama_show(1);
        let origin = Origin::with_overhead(content.clone(), Bytes::ZERO);
        let link = Link::new(Trace::constant(kbps(rate_kbps)));
        let config = PlayerConfig {
            sync,
            ..PlayerConfig::default_chunked(content.chunk_duration())
        };
        Session::new(origin, link, Box::new(FixedPolicy { video, audio }), config).run()
    }

    const CHUNKED: SyncMode = SyncMode::ChunkLevel {
        tolerance: Duration::from_secs(4),
    };

    #[test]
    fn ample_bandwidth_plays_clean() {
        // V1+A1 needs ~239 Kbps average; 5 Mbps is overkill.
        let log = run_fixed(5_000, 0, 0, CHUNKED);
        assert!(log.completed(), "must play to the end");
        assert_eq!(log.stall_count(), 0);
        assert_eq!(log.selected_tracks(MediaType::Video), vec![0; 75]);
        assert_eq!(log.selected_tracks(MediaType::Audio), vec![0; 75]);
        assert!(log.startup_at.unwrap() < Instant::from_secs(2));
        assert_eq!(log.ended_at, Some(log.finished_at));
    }

    #[test]
    fn starved_session_stalls() {
        // V6+A3 averages ~3.1 Mbps; a 500 Kbps link must rebuffer heavily.
        let log = run_fixed(500, 5, 2, CHUNKED);
        assert!(log.stall_count() > 0, "starved run must stall");
        assert!(log.total_stall() > Duration::from_secs(60));
    }

    #[test]
    fn buffers_stay_balanced_with_chunk_sync() {
        let log = run_fixed(2_000, 2, 1, CHUNKED);
        assert!(log.completed());
        // With one-chunk tolerance the imbalance can never exceed ~2 chunks.
        assert!(
            log.max_buffer_imbalance() <= Duration::from_secs(9),
            "imbalance {}",
            log.max_buffer_imbalance()
        );
    }

    #[test]
    fn independent_mode_unbalances_buffers() {
        // Audio (A2, 196 Kbps) downloads far faster than video (V5,
        // 1421 Kbps) on a tight link: without sync, audio races ahead.
        let log = run_fixed(2_000, 4, 1, SyncMode::Independent);
        assert!(
            log.max_buffer_imbalance() > Duration::from_secs(12),
            "imbalance {}",
            log.max_buffer_imbalance()
        );
    }

    #[test]
    fn every_chunk_transferred_exactly_once() {
        let log = run_fixed(3_000, 1, 0, CHUNKED);
        assert_eq!(log.transfers.len(), 150);
        let mut audio_chunks: Vec<usize> = log
            .transfers
            .iter()
            .filter(|t| t.track.media == MediaType::Audio)
            .map(|t| t.chunk)
            .collect();
        audio_chunks.sort_unstable();
        assert_eq!(audio_chunks, (0..75).collect::<Vec<_>>());
    }

    #[test]
    fn deadline_cuts_off_starved_runs() {
        let content = Content::drama_show(1);
        let origin = Origin::with_overhead(content.clone(), Bytes::ZERO);
        // 1 Kbps: nothing meaningful ever downloads.
        let link = Link::new(Trace::constant(kbps(1)));
        let config = PlayerConfig::default_chunked(content.chunk_duration());
        let log = Session::new(
            origin,
            link,
            Box::new(FixedPolicy { video: 0, audio: 0 }),
            config,
        )
        .with_deadline(Instant::from_secs(600))
        .run();
        assert!(!log.completed());
        assert!(log.finished_at <= Instant::from_secs(600));
    }

    #[test]
    fn preloaded_playlists_cost_nothing() {
        let log = run_fixed(2_000, 1, 0, CHUNKED);
        assert!(log.playlist_fetches.is_empty());
    }

    fn run_with_playlists(mode: PlaylistFetch, video: usize, audio: usize) -> SessionLog {
        let content = Content::drama_show(1);
        let origin = Origin::with_overhead(content.clone(), Bytes(320));
        let link = Link::with_latency(Trace::constant(kbps(2_000)), Duration::from_millis(40));
        let config = PlayerConfig::default_chunked(content.chunk_duration());
        Session::new(origin, link, Box::new(FixedPolicy { video, audio }), config)
            .with_playlist_fetch(mode, abr_manifest::build::Packaging::SingleFile)
            .run()
    }

    #[test]
    fn eager_fetches_every_playlist_before_startup() {
        let log = run_with_playlists(PlaylistFetch::Eager, 1, 0);
        assert!(log.completed());
        // 6 video + 3 audio playlists, all before the first chunk arrives.
        assert_eq!(log.playlist_fetches.len(), 9);
        let last_playlist = log
            .playlist_fetches
            .iter()
            .map(|p| p.completed_at)
            .max()
            .unwrap();
        let first_chunk = log.transfers.first().unwrap().at;
        assert!(last_playlist <= first_chunk, "playlists land before chunks");
        // And startup is later than a preloaded run's.
        let preloaded = run_with_playlists(PlaylistFetch::Preloaded, 1, 0);
        assert!(log.startup_at.unwrap() > preloaded.startup_at.unwrap());
    }

    #[test]
    fn lazy_fetches_only_used_tracks_and_delays_their_first_chunk() {
        let log = run_with_playlists(PlaylistFetch::Lazy, 2, 1);
        assert!(log.completed());
        // A fixed policy touches exactly one video + one audio track.
        assert_eq!(log.playlist_fetches.len(), 2);
        let tracks: Vec<TrackId> = log.playlist_fetches.iter().map(|p| p.track).collect();
        assert!(tracks.contains(&TrackId::video(2)));
        assert!(tracks.contains(&TrackId::audio(1)));
        // The first chunk request was deferred behind the playlist
        // round trip: first transfer completes after the playlist did.
        let first_chunk = log.transfers.first().unwrap().at;
        let first_playlist = log
            .playlist_fetches
            .iter()
            .map(|p| p.completed_at)
            .min()
            .unwrap();
        assert!(first_chunk > first_playlist);
        // Startup also trails the preloaded run.
        let preloaded = run_with_playlists(PlaylistFetch::Preloaded, 2, 1);
        assert!(log.startup_at.unwrap() > preloaded.startup_at.unwrap());
    }

    #[test]
    fn forward_seek_skips_content_and_resumes() {
        let content = Content::drama_show(1);
        let origin = Origin::with_overhead(content.clone(), Bytes::ZERO);
        let link = Link::with_latency(Trace::constant(kbps(2_000)), Duration::from_millis(20));
        let config = PlayerConfig::default_chunked(content.chunk_duration());
        // At t=30 s, jump to media position 200 s (chunk 50).
        let log = Session::new(
            origin,
            link,
            Box::new(FixedPolicy { video: 1, audio: 0 }),
            config,
        )
        .with_seeks(vec![(Instant::from_secs(30), Duration::from_secs(200))])
        .run();
        assert_eq!(log.seeks.len(), 1);
        let seek = log.seeks[0];
        assert_eq!(seek.at, Instant::from_secs(30));
        assert_eq!(seek.to, Duration::from_secs(200));
        assert!(seek.resumed.is_some(), "playback resumed after the seek");
        // Playback reached the end even though the middle was skipped.
        assert!(log.ended_at.is_some());
        // Chunks in the skipped region were never selected.
        let video_chunks: std::collections::BTreeSet<usize> = log
            .selections
            .iter()
            .filter(|s| s.track.media == MediaType::Video)
            .map(|s| s.chunk)
            .collect();
        assert!(video_chunks.contains(&0));
        assert!(video_chunks.contains(&50));
        assert!(video_chunks.contains(&74));
        // The deep-skip region (selected-before-seek prefix aside) has a
        // hole: chunk 45 was neither buffered nor fetched after the flush.
        assert!(!video_chunks.contains(&45) || seek.at > Instant::from_secs(170));
        // Wall time saved: the session ends well before a full watch.
        assert!(log.finished_at < Instant::from_secs(240));
    }

    #[test]
    fn stale_seeks_are_ignored() {
        let content = Content::drama_show(1);
        let origin = Origin::with_overhead(content.clone(), Bytes::ZERO);
        let link = Link::new(Trace::constant(kbps(2_000)));
        let config = PlayerConfig::default_chunked(content.chunk_duration());
        // Backward / past-the-end seeks are dropped.
        let log = Session::new(
            origin,
            link,
            Box::new(FixedPolicy { video: 0, audio: 0 }),
            config,
        )
        .with_seeks(vec![
            (Instant::from_secs(100), Duration::from_secs(4)), // behind the playhead
            (Instant::from_secs(120), Duration::from_secs(400)), // past the end
        ])
        .run();
        assert!(log.seeks.is_empty());
        assert!(log.completed());
    }

    #[test]
    fn edge_cache_misses_slow_the_cold_session() {
        let content = Content::drama_show(1);
        let mk = |edge: Option<EdgeCache>| {
            let origin = Origin::with_overhead(content.clone(), Bytes::ZERO);
            let link = Link::with_latency(Trace::constant(kbps(2_000)), Duration::from_millis(10));
            let config = PlayerConfig::default_chunked(content.chunk_duration());
            let mut s = Session::new(
                origin,
                link,
                Box::new(FixedPolicy { video: 1, audio: 0 }),
                config,
            );
            if let Some(e) = edge {
                s = s.with_edge_cache(e);
            }
            s.run_with_edge()
        };
        // Cold edge: every request misses and pays 80 ms to the origin.
        let cold_edge = EdgeCache {
            cache: abr_httpsim::cache::CdnCache::new(Bytes(1 << 32)),
            miss_penalty: Duration::from_millis(80),
        };
        let (cold, warmed) = mk(Some(cold_edge));
        let warmed = warmed.expect("edge returned");
        assert_eq!(warmed.cache.stats().misses, 150, "every chunk missed");
        // Warm edge (second viewer, same tracks): every request hits.
        let (warm, warmed2) = mk(Some(warmed));
        assert_eq!(warmed2.unwrap().cache.stats().hits, 150);
        // And a no-edge control.
        let (control, none) = mk(None);
        assert!(none.is_none());
        // Miss penalties delay startup and finish.
        assert!(cold.startup_at.unwrap() > warm.startup_at.unwrap());
        assert_eq!(
            warm.startup_at, control.startup_at,
            "hits cost nothing extra"
        );
        assert!(cold.finished_at >= warm.finished_at);
    }

    #[test]
    fn muxed_delivery_fills_both_buffers_in_lockstep() {
        let content = Content::drama_show(1);
        let origin = Origin::with_overhead(content.clone(), Bytes::ZERO);
        let link = Link::new(Trace::constant(kbps(2_000)));
        let config = PlayerConfig::default_chunked(content.chunk_duration());
        let log = Session::new(
            origin,
            link,
            Box::new(FixedPolicy { video: 1, audio: 0 }),
            config,
        )
        .with_delivery(DeliveryMode::Muxed)
        .run();
        assert!(log.completed());
        // One transfer per chunk position, not two.
        assert_eq!(log.transfers.len(), 75);
        // Both selections logged per position.
        assert_eq!(log.selections.len(), 150);
        // Perfectly balanced buffers by construction.
        assert_eq!(log.max_buffer_imbalance(), Duration::ZERO);
        // Transfer sizes are the sum of both components.
        for t in &log.transfers {
            let expect = content.chunk_size(TrackId::video(1), t.chunk)
                + content.chunk_size(TrackId::audio(0), t.chunk);
            assert_eq!(t.size, expect);
        }
    }

    #[test]
    fn byte_range_packaging_is_timing_identical() {
        // §4.1: the two packaging modes carry the same bytes; the session
        // timeline must be identical to the microsecond.
        let content = Content::drama_show(1);
        let mk = |packaging| {
            let origin = Origin::with_overhead(content.clone(), Bytes(320));
            let link = Link::with_latency(Trace::constant(kbps(1_500)), Duration::from_millis(20));
            let config = PlayerConfig::default_chunked(content.chunk_duration());
            Session::new(
                origin,
                link,
                Box::new(FixedPolicy { video: 1, audio: 0 }),
                config,
            )
            .with_packaging(packaging)
            .run()
        };
        let seg = mk(abr_manifest::build::Packaging::SegmentFiles {
            with_bitrate_tags: false,
        });
        let rng = mk(abr_manifest::build::Packaging::SingleFile);
        assert_eq!(seg.transfers.len(), rng.transfers.len());
        for (a, b) in seg.transfers.iter().zip(rng.transfers.iter()) {
            assert_eq!(a.at, b.at);
            assert_eq!(a.size, b.size);
        }
        assert_eq!(seg.startup_at, rng.startup_at);
        assert_eq!(seg.ended_at, rng.ended_at);
    }

    #[test]
    fn sessions_are_bit_reproducible() {
        // The determinism claim, end to end: identical inputs produce
        // identical logs, selection by selection and stall by stall.
        let run_once = || {
            let content = Content::drama_show(99);
            let origin = Origin::with_overhead(content.clone(), Bytes(320));
            let link = Link::with_latency(
                Trace::random_walk(
                    kbps(900),
                    kbps(200),
                    kbps(2_000),
                    0.4,
                    Duration::from_secs(3),
                    Duration::from_secs(3600),
                    5,
                ),
                Duration::from_millis(20),
            );
            let config = PlayerConfig::default_chunked(content.chunk_duration());
            Session::new(
                origin,
                link,
                Box::new(FixedPolicy { video: 2, audio: 1 }),
                config,
            )
            .run()
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.selections, b.selections);
        assert_eq!(a.transfers, b.transfers);
        assert_eq!(a.stalls, b.stalls);
        assert_eq!(a.buffer_samples, b.buffer_samples);
        assert_eq!(a.startup_at, b.startup_at);
        assert_eq!(a.finished_at, b.finished_at);
    }

    #[test]
    fn buffer_samples_monotone_in_time() {
        let log = run_fixed(1_500, 2, 0, CHUNKED);
        assert!(log.buffer_samples.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(
            log.buffer_samples.len() > 150,
            "a sample per event at least"
        );
    }
}
