//! The ABR policy interface.
//!
//! A policy sees exactly what a real client-side rate-adaptation module
//! sees: completed-transfer records (with full delivery profiles, so any
//! real estimator — whole-transfer, interval-sampled, per-media — can be
//! built on top) and a selection context (buffer levels, playback state,
//! chunk position). It returns the track to fetch for the next chunk of
//! the requested media type.

use abr_event::time::{Duration, Instant};
use abr_media::track::{MediaType, TrackId};
use abr_media::units::{BitsPerSec, Bytes};
use abr_net::profile::DeliveryProfile;

/// A completed chunk transfer, as observed by the client.
#[derive(Debug, Clone)]
pub struct TransferRecord {
    /// Media type of the chunk.
    pub media: MediaType,
    /// Track the chunk came from.
    pub track: TrackId,
    /// Playback-order chunk index.
    pub chunk: usize,
    /// On-the-wire bytes transferred (body + headers).
    pub size: Bytes,
    /// When the request was issued.
    pub opened_at: Instant,
    /// When the last byte arrived.
    pub completed_at: Instant,
    /// Full delivery history.
    pub profile: DeliveryProfile,
    /// Bytes delivered across **all** of the client's flows since the last
    /// completion event (ExoPlayer's aggregate `BandwidthMeter` samples at
    /// transfer boundaries over all concurrent transfers; per-stream
    /// estimators ignore this). Zero for the second and later completions
    /// of a same-instant batch.
    pub window_bytes: Bytes,
    /// Busy time (some flow actively delivering) in the same window.
    pub window_busy: Duration,
}

impl TransferRecord {
    /// Whole-transfer throughput: size over request-to-last-byte wall time.
    /// `None` for an instantaneous transfer.
    pub fn throughput(&self) -> Option<BitsPerSec> {
        let d = self.completed_at.saturating_duration_since(self.opened_at);
        if d.is_zero() {
            return None;
        }
        Some(self.size.rate_over_micros(d.as_micros()))
    }
}

/// Everything a policy may consult when choosing the next track.
#[derive(Debug, Clone, Copy)]
pub struct SelectionContext {
    /// Current virtual time.
    pub now: Instant,
    /// The media type a decision is needed for.
    pub media: MediaType,
    /// The chunk index about to be fetched.
    pub chunk: usize,
    /// Audio buffer level, seconds.
    pub audio_level: Duration,
    /// Video buffer level, seconds.
    pub video_level: Duration,
    /// Duration of every chunk.
    pub chunk_duration: Duration,
    /// Ladder index of the most recently selected audio track, if any.
    pub current_audio: Option<usize>,
    /// Ladder index of the most recently selected video track, if any.
    pub current_video: Option<usize>,
    /// True once playback has started and is not stalled.
    pub playing: bool,
}

impl SelectionContext {
    /// Buffer level of the media being decided.
    pub fn level_for_decision(&self) -> Duration {
        match self.media {
            MediaType::Audio => self.audio_level,
            MediaType::Video => self.video_level,
        }
    }
}

/// A rate-adaptation policy.
pub trait AbrPolicy {
    /// Human-readable policy name for logs and reports.
    fn name(&self) -> &str;

    /// Observes a completed transfer (both media types flow through here,
    /// matching what a client's network stack can see).
    fn on_transfer(&mut self, record: &TransferRecord);

    /// Chooses the track for the next chunk of `ctx.media`.
    fn select(&mut self, ctx: &SelectionContext) -> TrackId;

    /// The policy's current bandwidth estimate, for logging; `None` when
    /// the policy has no meaningful single estimate.
    fn debug_estimate(&self) -> Option<BitsPerSec> {
        None
    }

    /// Hands the policy an observability handle. Instrumented policies
    /// store it and emit `estimate_updated` / `policy_decision` events;
    /// the default implementation ignores it.
    fn set_obs(&mut self, obs: &abr_obs::ObsHandle) {
        let _ = obs;
    }
}

/// Per-chunk-position decision lock for joint policies.
///
/// A joint policy decides a *combination* per chunk position, but the
/// session asks for audio and video separately — and the estimate or
/// buffer may move between the two requests. Locking the first decision
/// for a position guarantees both components come from one combination
/// (§4.2: "the selection of the audio and video tracks for each chunk
/// position be considered jointly").
#[derive(Debug, Clone, Default)]
pub struct ChunkLock {
    map: std::collections::BTreeMap<usize, usize>,
}

impl ChunkLock {
    /// An empty lock table.
    pub fn new() -> ChunkLock {
        ChunkLock::default()
    }

    /// The decision locked for `chunk`, if any.
    pub fn get(&self, chunk: usize) -> Option<usize> {
        self.map.get(&chunk).copied()
    }

    /// Locks `decision` for `chunk`, pruning old positions (which can
    /// never be requested again).
    pub fn lock(&mut self, chunk: usize, decision: usize) {
        self.map.insert(chunk, decision);
        while self.map.len() > 8 {
            let oldest = *self.map.keys().next().expect("non-empty");
            self.map.remove(&oldest);
        }
    }
}

/// A trivial fixed-track policy, useful for tests and as a baseline: always
/// the given rungs.
#[derive(Debug, Clone)]
pub struct FixedPolicy {
    /// Video ladder index to always select.
    pub video: usize,
    /// Audio ladder index to always select.
    pub audio: usize,
}

impl AbrPolicy for FixedPolicy {
    fn name(&self) -> &str {
        "fixed"
    }

    fn on_transfer(&mut self, _record: &TransferRecord) {}

    fn select(&mut self, ctx: &SelectionContext) -> TrackId {
        match ctx.media {
            MediaType::Audio => TrackId::audio(self.audio),
            MediaType::Video => TrackId::video(self.video),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_throughput() {
        let rec = TransferRecord {
            media: MediaType::Video,
            track: TrackId::video(0),
            chunk: 0,
            size: Bytes(125_000),
            opened_at: Instant::from_secs(10),
            completed_at: Instant::from_secs(11),
            profile: DeliveryProfile::new(),
            window_bytes: Bytes(125_000),
            window_busy: Duration::from_secs(1),
        };
        assert_eq!(rec.throughput(), Some(BitsPerSec::from_kbps(1000)));
        let instant = TransferRecord {
            completed_at: Instant::from_secs(10),
            ..rec
        };
        assert_eq!(instant.throughput(), None);
    }

    #[test]
    fn fixed_policy_selects_constant_tracks() {
        let mut p = FixedPolicy { video: 2, audio: 1 };
        let ctx = SelectionContext {
            now: Instant::ZERO,
            media: MediaType::Video,
            chunk: 0,
            audio_level: Duration::ZERO,
            video_level: Duration::ZERO,
            chunk_duration: Duration::from_secs(4),
            current_audio: None,
            current_video: None,
            playing: false,
        };
        assert_eq!(p.select(&ctx), TrackId::video(2));
        let actx = SelectionContext {
            media: MediaType::Audio,
            ..ctx
        };
        assert_eq!(p.select(&actx), TrackId::audio(1));
        assert_eq!(p.name(), "fixed");
        assert_eq!(p.debug_estimate(), None);
    }

    #[test]
    fn context_level_for_decision() {
        let ctx = SelectionContext {
            now: Instant::ZERO,
            media: MediaType::Audio,
            chunk: 0,
            audio_level: Duration::from_secs(2),
            video_level: Duration::from_secs(9),
            chunk_duration: Duration::from_secs(4),
            current_audio: None,
            current_video: None,
            playing: true,
        };
        assert_eq!(ctx.level_for_decision(), Duration::from_secs(2));
        let v = SelectionContext {
            media: MediaType::Video,
            ..ctx
        };
        assert_eq!(v.level_for_decision(), Duration::from_secs(9));
    }
}
